//! # selprop — umbrella crate
//!
//! One-stop re-export of the reproduction of *Beeri, Kanellakis,
//! Bancilhon, Ramakrishnan — "Bounds on the Propagation of Selection
//! into Logic Programs"* (PODS 1987 / JCSS 1990).
//!
//! The actual machinery lives in the workspace crates; this package
//! re-exports them under stable names and owns the repository-level
//! integration tests (`tests/`, keyed to the paper's theorems) and the
//! runnable walkthroughs (`examples/`). See the repository `README.md`
//! for the crate map and `EXPERIMENTS.md` for the E1–E10 harness.
//!
//! ```
//! use selprop::core::chain::ChainProgram;
//! use selprop::core::propagate::{propagate, Propagation};
//!
//! let chain = ChainProgram::parse(
//!     "?- anc(john, Y).\n\
//!      anc(X, Y) :- par(X, Y).\n\
//!      anc(X, Y) :- anc(X, Z), par(Z, Y).",
//! )
//! .unwrap();
//! assert!(matches!(
//!     propagate(&chain).unwrap(),
//!     Propagation::Propagated { .. }
//! ));
//! ```

#![warn(missing_docs)]

pub use selprop_automata as automata;
pub use selprop_core as core;
pub use selprop_datalog as datalog;
pub use selprop_grammar as grammar;
pub use selprop_mgs as mgs;
pub use selprop_ws1s as ws1s;
