//! Self-embedding detection.
//!
//! Chomsky's theorem: a context-free grammar that is **not**
//! self-embedding (no nonterminal `A` with `A ⇒* αAβ`, `α, β` deriving
//! nonempty strings) generates a *regular* language. Self-embedding is
//! decidable, so this gives the propagation engine its main *sound,
//! decidable sufficient condition* for the regularity required by
//! Theorem 3.3(1) — while the full regularity question stays undecidable
//! (Corollary 3.4), exactly as the paper proves.
//!
//! On a cleaned ε-free grammar, every symbol derives a nonempty terminal
//! string, so `A ⇒* αAβ` is self-embedding iff α and β are nonempty as
//! symbol sequences. We compute the relation
//! `A ⇝(l,r) B` = "A derives a sentential form with B, where l/r records
//! whether material exists to the left/right" by transitive closure.

use std::collections::VecDeque;

use crate::cfg::{Cfg, Sym};
use crate::clean::normalize;

/// The outcome of the self-embedding test.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SelfEmbedding {
    /// The grammar is not self-embedding, hence `L(G)` is regular
    /// (Chomsky). The Mohri–Nederhof compilation of such a grammar is
    /// exact.
    No,
    /// The grammar is self-embedding; the named nonterminal satisfies
    /// `A ⇒* αAβ` with nonempty α, β. (The *language* may still be
    /// regular — self-embedding is a property of the grammar.)
    Yes {
        /// Name of a self-embedding nonterminal.
        nonterminal: String,
    },
}

impl SelfEmbedding {
    /// Whether the grammar was found non-self-embedding.
    pub fn is_non_self_embedding(&self) -> bool {
        matches!(self, SelfEmbedding::No)
    }
}

/// Decides whether (the cleaned form of) `g` is self-embedding.
pub fn self_embedding(g: &Cfg) -> SelfEmbedding {
    let (clean, _eps) = normalize(g);
    let n = clean.num_nonterminals();
    if n == 0 {
        return SelfEmbedding::No;
    }
    // reach[a][b] = Some((l, r)) best-known flags for A ⇝ B; flags only
    // ever turn on, so saturation terminates. We track all flag
    // combinations reached: a 2x2 bitmask per pair.
    let flag_bit = |l: bool, r: bool| 1u8 << (usize::from(l) * 2 + usize::from(r));
    let mut reach = vec![vec![0u8; n]; n];
    let mut queue: VecDeque<(usize, usize, bool, bool)> = VecDeque::new();

    // Base step: one production application.
    for p in &clean.productions {
        for (pos, s) in p.body.iter().enumerate() {
            if let Sym::N(b) = s {
                let l = pos > 0;
                let r = pos + 1 < p.body.len();
                let a = p.head.index();
                let bit = flag_bit(l, r);
                if reach[a][b.index()] & bit == 0 {
                    reach[a][b.index()] |= bit;
                    queue.push_back((a, b.index(), l, r));
                }
            }
        }
    }
    // Transitive closure: (A ⇝(l1,r1) B) ∘ (B ⇝(l2,r2) C).
    // Precompute the one-step relation for composing on the right.
    let one_step: Vec<Vec<(usize, bool, bool)>> = {
        let mut os = vec![Vec::new(); n];
        for p in &clean.productions {
            for (pos, s) in p.body.iter().enumerate() {
                if let Sym::N(b) = s {
                    os[p.head.index()].push((b.index(), pos > 0, pos + 1 < p.body.len()));
                }
            }
        }
        os
    };
    while let Some((a, b, l1, r1)) = queue.pop_front() {
        if a == b && l1 && r1 {
            return SelfEmbedding::Yes {
                nonterminal: clean.nonterminal_names[a].clone(),
            };
        }
        for &(c, l2, r2) in &one_step[b] {
            let l = l1 || l2;
            let r = r1 || r2;
            let bit = flag_bit(l, r);
            if reach[a][c] & bit == 0 {
                reach[a][c] |= bit;
                queue.push_back((a, c, l, r));
            }
        }
    }
    SelfEmbedding::No
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn left_linear_is_nse() {
        // Program A from Example 1.1: anc → par | anc par.
        let g = Cfg::parse("anc -> par | anc par").unwrap();
        assert_eq!(self_embedding(&g), SelfEmbedding::No);
    }

    #[test]
    fn right_linear_is_nse() {
        // Program B: anc → par | par anc.
        let g = Cfg::parse("anc -> par | par anc").unwrap();
        assert_eq!(self_embedding(&g), SelfEmbedding::No);
    }

    #[test]
    fn balanced_pairs_is_self_embedding() {
        // Section 7 example: p → b1 b2 | b1 p b2 — the classic
        // non-regular b1^n b2^n.
        let g = Cfg::parse("p -> b1 b2 | b1 p b2").unwrap();
        match self_embedding(&g) {
            SelfEmbedding::Yes { nonterminal } => assert_eq!(nonterminal, "p"),
            SelfEmbedding::No => panic!("b1^n b2^n grammar must self-embed"),
        }
    }

    #[test]
    fn nonlinear_same_language_self_embeds() {
        // Program C: anc → par | anc anc. L = par+ is regular, but the
        // grammar itself is self-embedding (anc ⇒ anc anc ⇒ anc anc anc
        // with anc in the middle) — demonstrating that self-embedding is
        // a grammar property, not a language property.
        let g = Cfg::parse("anc -> par | anc anc").unwrap();
        assert!(matches!(self_embedding(&g), SelfEmbedding::Yes { .. }));
    }

    #[test]
    fn indirect_self_embedding() {
        // s ⇒ a t, t ⇒ s b: s ⇒* a s b — self-embedding through a cycle.
        let g = Cfg::parse("s -> a t | c\nt -> s b").unwrap();
        assert!(matches!(self_embedding(&g), SelfEmbedding::Yes { .. }));
    }

    #[test]
    fn mixed_but_separate_sccs_is_nse() {
        // Left recursion in one nonterminal, right recursion in another,
        // non-mutually-recursive: still NSE.
        let g = Cfg::parse("s -> l r\nl -> a | l a\nr -> b | b r").unwrap();
        assert_eq!(self_embedding(&g), SelfEmbedding::No);
    }

    #[test]
    fn useless_self_embedding_ignored() {
        // The self-embedding nonterminal is unreachable: cleaning drops it.
        let g = Cfg::parse("s -> a\nq -> a q b | c").unwrap();
        assert_eq!(self_embedding(&g), SelfEmbedding::No);
    }

    #[test]
    fn empty_grammar_is_nse() {
        let g = Cfg::parse("s -> s a").unwrap();
        assert_eq!(self_embedding(&g), SelfEmbedding::No);
    }
}
