//! # selprop-grammar
//!
//! Context-free grammar toolkit for the reproduction of *Beeri,
//! Kanellakis, Bancilhon, Ramakrishnan — "Bounds on the Propagation of
//! Selection into Logic Programs"* (PODS 1987 / JCSS 1990).
//!
//! Section 3 of the paper associates with every chain program `H` a
//! grammar `G(H)` and language `L(H)`; the paper's results are stated in
//! terms of `L(H)`:
//!
//! - **finiteness** of `L(H)` — decidable — characterizes propagation of
//!   the `p(X,X)` selection (Theorem 3.3(2)) and boundedness /
//!   first-order expressibility (Prop. 8.2): [`analysis`];
//! - **regularity** of `L(H)` — undecidable — characterizes propagation
//!   of selections with constants (Theorem 3.3(1)); this crate provides
//!   the decidable machinery around that undecidable core:
//!   [`self_embedding`] (Chomsky's sufficient condition) and [`regular`]
//!   (strongly-regular exact compilation plus the Mohri–Nederhof
//!   envelope `R(H)` of Section 7);
//! - **quotients** `L(H)/R` — the semantics of magic sets (Section 7):
//!   [`quotient`], with [`barhillel`] products as supporting machinery;
//! - **sentential forms** — the undecidability reduction of Prop. 8.1:
//!   [`sentential`];
//! - **unary alphabets** — effective regularity for one-letter languages
//!   (every unary CFL is regular): [`unary`];
//! - [`cnf`] — Chomsky normal form and CYK membership, the ground truth
//!   every construction is validated against.

#![warn(missing_docs)]

pub mod analysis;
pub mod barhillel;
pub mod cfg;
pub mod clean;
pub mod cnf;
pub mod quotient;
pub mod regular;
pub mod sample;
pub mod self_embedding;
pub mod sentential;
pub mod unary;

pub use cfg::{Cfg, NonTerminal, Production, Sym};
pub use cnf::CnfGrammar;
