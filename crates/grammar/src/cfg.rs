//! Context-free grammars over interned alphabets.
//!
//! Section 3 of the paper associates with every chain program `H` a
//! context-free grammar `G(H)`: IDB predicates become nonterminals, EDB
//! predicates become terminals, each chain rule becomes a production, and
//! the goal predicate becomes the start symbol. This module provides the
//! grammar representation that `selprop-core` targets with exactly that
//! transformation.

use std::fmt;

use selprop_automata::alphabet::{Alphabet, Symbol};

/// A nonterminal, identified by a dense index into [`Cfg::nonterminal_names`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NonTerminal(pub u32);

impl NonTerminal {
    /// The dense index of this nonterminal.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NonTerminal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// A grammar symbol: terminal or nonterminal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Sym {
    /// A terminal symbol from the grammar's alphabet.
    T(Symbol),
    /// A nonterminal.
    N(NonTerminal),
}

impl Sym {
    /// Whether this is a terminal.
    pub fn is_terminal(self) -> bool {
        matches!(self, Sym::T(_))
    }

    /// The nonterminal inside, if any.
    pub fn as_nonterminal(self) -> Option<NonTerminal> {
        match self {
            Sym::N(n) => Some(n),
            Sym::T(_) => None,
        }
    }
}

/// A production `head → body`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Production {
    /// The head nonterminal.
    pub head: NonTerminal,
    /// The body: a (possibly empty) sequence of symbols.
    pub body: Vec<Sym>,
}

/// A context-free grammar.
///
/// Invariants maintained by the constructors: every nonterminal mentioned
/// in a production exists in `nonterminal_names`; the start nonterminal
/// exists. Emptiness of bodies (ε-productions) is allowed — chain-program
/// grammars never produce them (chain rule bodies are nonempty, Section 3),
/// but derived grammars (quotients, Section 7) may.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Terminal alphabet.
    pub alphabet: Alphabet,
    /// Nonterminal names, indexed by [`NonTerminal`].
    pub nonterminal_names: Vec<String>,
    /// Start nonterminal.
    pub start: NonTerminal,
    /// Productions.
    pub productions: Vec<Production>,
}

impl Cfg {
    /// Creates a grammar with a single nonterminal named `start` and no
    /// productions (the empty language).
    pub fn new(alphabet: Alphabet, start_name: &str) -> Self {
        Self {
            alphabet,
            nonterminal_names: vec![start_name.to_owned()],
            start: NonTerminal(0),
            productions: Vec::new(),
        }
    }

    /// Adds a nonterminal with the given name, returning its handle.
    pub fn add_nonterminal(&mut self, name: &str) -> NonTerminal {
        let id = NonTerminal(
            u32::try_from(self.nonterminal_names.len()).expect("too many nonterminals"),
        );
        self.nonterminal_names.push(name.to_owned());
        id
    }

    /// Finds a nonterminal by name.
    pub fn nonterminal(&self, name: &str) -> Option<NonTerminal> {
        self.nonterminal_names
            .iter()
            .position(|n| n == name)
            .map(|i| NonTerminal(i as u32))
    }

    /// Adds a production.
    pub fn add_production(&mut self, head: NonTerminal, body: Vec<Sym>) {
        debug_assert!(head.index() < self.nonterminal_names.len());
        debug_assert!(body.iter().all(|s| match s {
            Sym::N(n) => n.index() < self.nonterminal_names.len(),
            Sym::T(t) => t.index() < self.alphabet.len(),
        }));
        self.productions.push(Production { head, body });
    }

    /// Number of nonterminals.
    pub fn num_nonterminals(&self) -> usize {
        self.nonterminal_names.len()
    }

    /// Iterates over the productions of a given head.
    pub fn productions_of(&self, head: NonTerminal) -> impl Iterator<Item = &Production> {
        self.productions.iter().filter(move |p| p.head == head)
    }

    /// The name of a nonterminal.
    pub fn name(&self, n: NonTerminal) -> &str {
        &self.nonterminal_names[n.index()]
    }

    /// Renders a symbol using grammar names.
    pub fn render_sym(&self, s: Sym) -> String {
        match s {
            Sym::T(t) => self.alphabet.name(t).to_owned(),
            Sym::N(n) => self.name(n).to_owned(),
        }
    }

    /// Renders the grammar in the paper's arrow notation, start symbol first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut prods: Vec<&Production> = self.productions.iter().collect();
        prods.sort_by_key(|p| (p.head != self.start, p.head.index()));
        for p in prods {
            let rhs = if p.body.is_empty() {
                "ε".to_owned()
            } else {
                p.body
                    .iter()
                    .map(|&s| self.render_sym(s))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            out.push_str(&format!("{} → {}\n", self.name(p.head), rhs));
        }
        out
    }

    /// Parses a grammar from arrow notation, e.g.
    ///
    /// ```text
    /// anc -> par
    /// anc -> anc par
    /// ```
    ///
    /// Identifiers seen on the left of `->` anywhere in the text are
    /// nonterminals (the first head is the start symbol); everything else
    /// is a terminal interned into a fresh alphabet. `|` separates
    /// alternative bodies, and the literal `eps` denotes ε.
    ///
    /// ```
    /// use selprop_grammar::{Cfg, analysis};
    /// let g = Cfg::parse("p -> b1 b2 | b1 p b2").unwrap();
    /// // L(G) = { b1^n b2^n : n ≥ 1 } — infinite, with a pump witness
    /// assert!(!analysis::finiteness(&g).is_finite());
    /// ```
    pub fn parse(text: &str) -> Result<Cfg, String> {
        let mut heads: Vec<String> = Vec::new();
        let mut lines: Vec<(String, Vec<Vec<String>>)> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (lhs, rhs) = line
                .split_once("->")
                .or_else(|| line.split_once('→'))
                .ok_or_else(|| format!("line {}: missing '->'", lineno + 1))?;
            let head = lhs.trim().to_owned();
            if head.is_empty() || head.contains(char::is_whitespace) {
                return Err(format!("line {}: bad head '{head}'", lineno + 1));
            }
            if !heads.contains(&head) {
                heads.push(head.clone());
            }
            let alts: Vec<Vec<String>> = rhs
                .split('|')
                .map(|alt| {
                    alt.split_whitespace()
                        .map(str::to_owned)
                        .filter(|t| t != "eps" && t != "ε")
                        .collect()
                })
                .collect();
            lines.push((head, alts));
        }
        if heads.is_empty() {
            return Err("no productions".to_owned());
        }
        let mut alphabet = Alphabet::new();
        // terminals: all tokens that never appear as heads
        for (_, alts) in &lines {
            for alt in alts {
                for tok in alt {
                    if !heads.contains(tok) {
                        alphabet.intern(tok);
                    }
                }
            }
        }
        let mut cfg = Cfg::new(alphabet, &heads[0]);
        for h in &heads[1..] {
            cfg.add_nonterminal(h);
        }
        for (head, alts) in &lines {
            let head_nt = cfg.nonterminal(head).expect("head interned");
            for alt in alts {
                let body = alt
                    .iter()
                    .map(|tok| match cfg.nonterminal(tok) {
                        Some(n) => Sym::N(n),
                        None => Sym::T(cfg.alphabet.get(tok).expect("terminal interned")),
                    })
                    .collect();
                cfg.add_production(head_nt, body);
            }
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_by_hand() {
        let al = Alphabet::from_names(["par"]);
        let par = al.get("par").unwrap();
        let mut g = Cfg::new(al, "anc");
        let anc = g.start;
        g.add_production(anc, vec![Sym::T(par)]);
        g.add_production(anc, vec![Sym::N(anc), Sym::T(par)]);
        assert_eq!(g.num_nonterminals(), 1);
        assert_eq!(g.productions.len(), 2);
        assert_eq!(g.productions_of(anc).count(), 2);
    }

    #[test]
    fn parse_ancestor_grammar() {
        let g = Cfg::parse("anc -> par | anc par").unwrap();
        assert_eq!(g.num_nonterminals(), 1);
        assert_eq!(g.productions.len(), 2);
        assert_eq!(g.name(g.start), "anc");
        assert!(g.alphabet.get("par").is_some());
    }

    #[test]
    fn parse_multiline_with_comments() {
        let text = "# Program C from Example 1.1\nanc -> par\nanc -> anc anc\n";
        let g = Cfg::parse(text).unwrap();
        assert_eq!(g.productions.len(), 2);
        let anc = g.start;
        let bodies: Vec<_> = g.productions_of(anc).map(|p| p.body.len()).collect();
        assert!(bodies.contains(&1));
        assert!(bodies.contains(&2));
    }

    #[test]
    fn parse_epsilon() {
        let g = Cfg::parse("s -> eps | a s").unwrap();
        assert!(g.productions.iter().any(|p| p.body.is_empty()));
    }

    #[test]
    fn parse_errors() {
        assert!(Cfg::parse("").is_err());
        assert!(Cfg::parse("no arrow here").is_err());
    }

    #[test]
    fn render_shows_start_first() {
        let g = Cfg::parse("p -> b1 b2 | b1 p b2").unwrap();
        let text = g.render();
        assert!(text.starts_with("p →"));
        assert!(text.contains("b1 p b2"));
    }
}
