//! Unary-alphabet languages: effective regularity.
//!
//! Every context-free language over a **one-letter alphabet is regular**
//! (Parikh), and its length set is ultimately periodic with threshold and
//! period bounded exponentially in the size of a CNF grammar (Pighizzini,
//! Shallit, Wang, *Unary context-free grammars and pushdown automata*,
//! JCSS 2002: an `h`-variable CNF unary grammar converts to an automaton
//! with `2^{O(h)}` states). This gives the propagation engine a region
//! where Theorem 3.3(1) is **decidable despite self-embedding grammars**
//! — covering the paper's Program C (`anc → par | anc anc`, language
//! `par⁺` hidden behind a mixed-recursion grammar), and matching the
//! Lemma 6.1 proof's own reliance on the unary case.
//!
//! Procedure: compute the exact length set up to a horizon `2B + B²`
//! (with `B = 2^h` the threshold/period bound), detect the minimal
//! `(threshold, period)` pattern, build the candidate DFA, and
//! double-check the inclusion `L(G) ⊆ R` rigorously via a Bar-Hillel
//! product with the complement (the converse inclusion holds on the
//! whole agreement horizon, which exceeds `threshold + lcm` for any pair
//! of languages within the bound). Grammars whose CNF exceeds the size
//! cap return `None` and the engine stays honestly `Unknown`.

use selprop_automata::dfa::Dfa;
use selprop_automata::minimize::minimize;
use selprop_automata::nfa::Nfa;

use crate::analysis::is_empty;
use crate::barhillel::intersect;
use crate::cfg::Cfg;
use crate::cnf::CnfGrammar;

/// A certified unary regularity result.
#[derive(Clone, Debug)]
pub struct UnaryRegularity {
    /// The DFA recognizing `L(G)` (over the grammar's 1-letter alphabet).
    pub dfa: Dfa,
    /// Detected threshold of the ultimately periodic length set.
    pub threshold: usize,
    /// Detected period.
    pub period: usize,
    /// The horizon up to which the length set was computed exactly.
    pub horizon: usize,
}

/// Maximum cleaned-grammar nonterminal count attempted (the horizon
/// grows as `4^h`).
const MAX_VARS: usize = 6;

/// Decides regularity of a unary-alphabet CFG. Returns `None` when the
/// alphabet is not unary or the grammar exceeds the size cap.
pub fn unary_regularity(g: &Cfg) -> Option<UnaryRegularity> {
    if g.alphabet.len() != 1 {
        return None;
    }
    let cnf = CnfGrammar::from_cfg(g);
    // Bound parameter: the nonterminal count of the *cleaned* grammar
    // before binarization (glue variables from binarization do not change
    // the language and would inflate the bound pointlessly). The +2
    // margin keeps us comfortably above the Pighizzini–Shallit–Wang
    // threshold/period bound for small grammars; the Bar-Hillel upper
    // check below self-validates the certificate regardless.
    let h0 = crate::clean::normalize(g).0.num_nonterminals().max(1);
    if h0 > MAX_VARS {
        return None;
    }
    let bound = 1usize << (h0 + 2); // B = 2^(h0+2)
    let horizon = 2 * bound + bound * bound;

    let lengths = length_set(&cnf, horizon);

    // detect minimal (threshold, period) with period ≤ B, threshold ≤ 2B
    let (threshold, period) = detect_pattern(&lengths, bound)?;

    // build the candidate DFA: chain 0..threshold+period-1, wrap the tail
    let dfa = periodic_dfa(g, &lengths, threshold, period);

    // rigorous upper check: L(G) ⊆ R  ⟺  L(G) ∩ ¬R = ∅
    let complement = dfa.complement();
    if !is_empty(&intersect(g, &complement)) {
        // detection was fooled (cannot happen within the bound, but the
        // check is cheap and makes the certificate self-validating)
        return None;
    }
    Some(UnaryRegularity {
        dfa,
        threshold,
        period,
        horizon,
    })
}

/// The exact derivable-length bitmap of the start symbol up to `horizon`,
/// by increasing-length dynamic programming over the CNF grammar.
fn length_set(cnf: &CnfGrammar, horizon: usize) -> Vec<bool> {
    let m = cnf.num_nonterminals;
    // derivable[a][n] for n ≤ horizon
    let mut derivable = vec![vec![false; horizon + 1]; m.max(1)];
    if m == 0 {
        let mut out = vec![false; horizon + 1];
        out[0] = cnf.epsilon;
        return out;
    }
    for &(hd, _) in &cnf.terms {
        derivable[hd][1] = true;
    }
    for n in 2..=horizon {
        for &(hd, l, r) in &cnf.pairs {
            if derivable[hd][n] {
                continue;
            }
            for i in 1..n {
                if derivable[l][i] && derivable[r][n - i] {
                    derivable[hd][n] = true;
                    break;
                }
            }
        }
    }
    let mut out = derivable[cnf.start].clone();
    out[0] = cnf.epsilon;
    out
}

/// Finds the minimal `(threshold, period)` such that
/// `lengths[n] == lengths[n + period]` for all `threshold ≤ n ≤ horizon - period`.
fn detect_pattern(lengths: &[bool], bound: usize) -> Option<(usize, usize)> {
    let horizon = lengths.len() - 1;
    for period in 1..=bound {
        // find the least threshold that works for this period
        let mut threshold = 0;
        let mut n = horizon.checked_sub(period)?;
        loop {
            if lengths[n] != lengths[n + period] {
                threshold = n + 1;
                break;
            }
            if n == 0 {
                break;
            }
            n -= 1;
        }
        if threshold <= 2 * bound {
            return Some((threshold, period));
        }
    }
    None
}

/// Builds the minimal-ish DFA for an ultimately periodic unary length
/// set: a chain of `threshold` states followed by a `period`-cycle.
fn periodic_dfa(g: &Cfg, lengths: &[bool], threshold: usize, period: usize) -> Dfa {
    let sym = g
        .alphabet
        .symbols()
        .next()
        .expect("unary alphabet has one symbol");
    let mut nfa = Nfa::new(g.alphabet.clone());
    let total = threshold + period;
    for _ in 0..total {
        nfa.add_state();
    }
    nfa.set_start(0);
    for (q, &in_set) in lengths.iter().enumerate().take(total) {
        let next = if q + 1 < total { q + 1 } else { threshold };
        nfa.add_transition(q, sym, next);
        if in_set {
            nfa.set_accept(q);
        }
    }
    minimize(&Dfa::from_nfa(&nfa))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::words_up_to;
    use selprop_automata::equiv::equivalent;
    use selprop_automata::regex::Regex;

    fn regex_dfa(g: &Cfg, text: &str) -> Dfa {
        let mut al = g.alphabet.clone();
        Regex::parse(text, &mut al).unwrap().to_dfa(&al)
    }

    #[test]
    fn program_c_grammar_is_par_plus() {
        // the paper's Program C: self-embedding grammar, regular language
        let g = Cfg::parse("anc -> par | anc anc").unwrap();
        let u = unary_regularity(&g).expect("unary grammar within bounds");
        let expected = regex_dfa(&g, "par par*");
        assert!(equivalent(&u.dfa, &expected), "Program C defines par+");
        assert_eq!(u.period, 1);
        assert!(u.threshold <= 2);
    }

    #[test]
    fn even_lengths() {
        let g = Cfg::parse("s -> a a | s a a").unwrap();
        let u = unary_regularity(&g).unwrap();
        let expected = regex_dfa(&g, "a a (a a)*");
        assert!(equivalent(&u.dfa, &expected));
        assert_eq!(u.period, 2);
    }

    #[test]
    fn doubling_grammar() {
        // s → a | s s: lengths = all of 1.. (every n ≥ 1 reachable)
        let g = Cfg::parse("s -> a | s s").unwrap();
        let u = unary_regularity(&g).unwrap();
        let expected = regex_dfa(&g, "a a*");
        assert!(equivalent(&u.dfa, &expected));
    }

    #[test]
    fn fibonacci_like_sums() {
        // s → a a a | a a a a a | s s : sums of 3s and 5s = {3,5,6,8,9,10,11,...}
        // ultimately periodic with period 1 from 8 (numerical semigroup ⟨3,5⟩)
        let g = Cfg::parse("s -> a a a | a a a a a | s s").unwrap();
        let u = unary_regularity(&g).unwrap();
        for (n, expected) in [
            (0, false), (1, false), (2, false), (3, true), (4, false),
            (5, true), (6, true), (7, false), (8, true), (9, true),
            (10, true), (11, true), (12, true),
        ] {
            let sym = g.alphabet.symbols().next().unwrap();
            let w = vec![sym; n];
            assert_eq!(u.dfa.accepts_word(&w), expected, "length {n}");
        }
    }

    #[test]
    fn finite_unary_language() {
        let g = Cfg::parse("s -> a | a a a").unwrap();
        let u = unary_regularity(&g).unwrap();
        assert!(u.dfa.is_finite());
        assert_eq!(u.dfa.finite_language().len(), 2);
    }

    #[test]
    fn non_unary_rejected() {
        let g = Cfg::parse("p -> b1 b2 | b1 p b2").unwrap();
        assert!(unary_regularity(&g).is_none());
    }

    #[test]
    fn empty_unary_language() {
        let g = Cfg::parse("s -> s a").unwrap();
        // cleaned grammar is empty: alphabet still unary
        if let Some(u) = unary_regularity(&g) {
            assert!(u.dfa.is_empty());
        }
    }

    #[test]
    fn epsilon_in_unary_language() {
        let g = Cfg::parse("s -> eps | a s").unwrap();
        let u = unary_regularity(&g).unwrap();
        assert!(u.dfa.accepts_word(&[]));
        let expected = regex_dfa(&g, "a*");
        assert!(equivalent(&u.dfa, &expected));
    }

    #[test]
    fn dfa_matches_enumeration() {
        for src in ["s -> a | s a a", "s -> a a | s s", "s -> a | s s s"] {
            let g = Cfg::parse(src).unwrap();
            let u = unary_regularity(&g).unwrap();
            let words = words_up_to(&g, 14);
            for n in 0..=14usize {
                let sym = g.alphabet.symbols().next().unwrap();
                let w = vec![sym; n];
                assert_eq!(
                    u.dfa.accepts_word(&w),
                    words.contains(&w),
                    "mismatch at length {n} for {src}"
                );
            }
        }
    }
}
