//! Grammar cleaning: generating/reachable analysis, useless-symbol
//! removal, ε-elimination and unit-production elimination.
//!
//! The decision procedures of the reproduction (finiteness for
//! Theorem 3.3(2) and Prop. 8.2, self-embedding for the regularity
//! certificates) are only correct on *cleaned* grammars, so every analysis
//! entry point normalizes through this module first.

use std::collections::BTreeSet;

use crate::cfg::{Cfg, NonTerminal, Production, Sym};

/// The set of generating nonterminals (those deriving at least one
/// terminal string).
pub fn generating(g: &Cfg) -> BTreeSet<NonTerminal> {
    let mut gen: BTreeSet<NonTerminal> = BTreeSet::new();
    let mut changed = true;
    while changed {
        changed = false;
        for p in &g.productions {
            if gen.contains(&p.head) {
                continue;
            }
            let ok = p.body.iter().all(|s| match s {
                Sym::T(_) => true,
                Sym::N(n) => gen.contains(n),
            });
            if ok {
                gen.insert(p.head);
                changed = true;
            }
        }
    }
    gen
}

/// The set of nonterminals reachable from the start symbol.
pub fn reachable(g: &Cfg) -> BTreeSet<NonTerminal> {
    let mut seen = BTreeSet::from([g.start]);
    let mut stack = vec![g.start];
    while let Some(n) = stack.pop() {
        for p in g.productions_of(n) {
            for s in &p.body {
                if let Sym::N(m) = s {
                    if seen.insert(*m) {
                        stack.push(*m);
                    }
                }
            }
        }
    }
    seen
}

/// The set of nullable nonterminals (those deriving ε).
pub fn nullable(g: &Cfg) -> BTreeSet<NonTerminal> {
    let mut null: BTreeSet<NonTerminal> = BTreeSet::new();
    let mut changed = true;
    while changed {
        changed = false;
        for p in &g.productions {
            if null.contains(&p.head) {
                continue;
            }
            let ok = p.body.iter().all(|s| match s {
                Sym::T(_) => false,
                Sym::N(n) => null.contains(n),
            });
            if ok {
                null.insert(p.head);
                changed = true;
            }
        }
    }
    null
}

/// Removes useless symbols: first non-generating, then unreachable.
///
/// The result generates the same language. If the language is empty the
/// result keeps only the start nonterminal with no productions.
pub fn remove_useless(g: &Cfg) -> Cfg {
    let gen = generating(g);
    // Step 1: drop productions mentioning non-generating nonterminals.
    let step1 = Cfg {
        alphabet: g.alphabet.clone(),
        nonterminal_names: g.nonterminal_names.clone(),
        start: g.start,
        productions: g
            .productions
            .iter()
            .filter(|p| {
                gen.contains(&p.head)
                    && p.body.iter().all(|s| match s {
                        Sym::T(_) => true,
                        Sym::N(n) => gen.contains(n),
                    })
            })
            .cloned()
            .collect(),
    };
    // Step 2: restrict to reachable nonterminals and compact ids.
    let reach = reachable(&step1);
    let mut keep: Vec<NonTerminal> = reach.iter().copied().collect();
    keep.sort();
    let mut remap = vec![u32::MAX; g.num_nonterminals()];
    for (i, n) in keep.iter().enumerate() {
        remap[n.index()] = i as u32;
    }
    let productions = step1
        .productions
        .iter()
        .filter(|p| reach.contains(&p.head))
        .map(|p| Production {
            head: NonTerminal(remap[p.head.index()]),
            body: p
                .body
                .iter()
                .map(|&s| match s {
                    Sym::T(t) => Sym::T(t),
                    Sym::N(n) => Sym::N(NonTerminal(remap[n.index()])),
                })
                .collect(),
        })
        .collect();
    Cfg {
        alphabet: g.alphabet.clone(),
        nonterminal_names: keep
            .iter()
            .map(|&n| g.nonterminal_names[n.index()].clone())
            .collect(),
        start: NonTerminal(remap[g.start.index()]),
        productions,
    }
}

/// ε-elimination. Returns the ε-free grammar and whether ε was in the
/// original language (callers must track that bit separately).
pub fn remove_epsilon(g: &Cfg) -> (Cfg, bool) {
    let null = nullable(g);
    let eps_in_lang = null.contains(&g.start);
    let mut productions: Vec<Production> = Vec::new();
    for p in &g.productions {
        // For each subset of nullable occurrences, emit the body with that
        // subset erased (capped: bodies in this codebase are short — chain
        // rules and CNF bodies — so the 2^k expansion is fine).
        let nullable_positions: Vec<usize> = p
            .body
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Sym::N(n) if null.contains(n)))
            .map(|(i, _)| i)
            .collect();
        let k = nullable_positions.len();
        assert!(k <= 16, "pathological ε-elimination blowup");
        for mask in 0..(1u32 << k) {
            let erase: BTreeSet<usize> = nullable_positions
                .iter()
                .enumerate()
                .filter(|(bit, _)| mask & (1 << bit) != 0)
                .map(|(_, &pos)| pos)
                .collect();
            let body: Vec<Sym> = p
                .body
                .iter()
                .enumerate()
                .filter(|(i, _)| !erase.contains(i))
                .map(|(_, &s)| s)
                .collect();
            if body.is_empty() {
                continue; // ε handled by the flag
            }
            if !productions.iter().any(|q| q.head == p.head && q.body == body) {
                productions.push(Production { head: p.head, body });
            }
        }
    }
    (
        Cfg {
            alphabet: g.alphabet.clone(),
            nonterminal_names: g.nonterminal_names.clone(),
            start: g.start,
            productions,
        },
        eps_in_lang,
    )
}

/// Unit-production elimination (`A → B`). Assumes no ε-productions.
pub fn remove_units(g: &Cfg) -> Cfg {
    let n = g.num_nonterminals();
    // unit_pairs[a][b]: A ⇒* B via unit productions only.
    let mut unit = vec![vec![false; n]; n];
    for (i, row) in unit.iter_mut().enumerate() {
        row[i] = true;
    }
    let mut changed = true;
    while changed {
        changed = false;
        for p in &g.productions {
            if let [Sym::N(b)] = p.body.as_slice() {
                for row in unit.iter_mut() {
                    if row[p.head.index()] && !row[b.index()] {
                        row[b.index()] = true;
                        changed = true;
                    }
                }
            }
        }
    }
    let mut productions: Vec<Production> = Vec::new();
    for (a, row) in unit.iter().enumerate() {
        for (b, &reach) in row.iter().enumerate() {
            if !reach {
                continue;
            }
            for p in g.productions_of(NonTerminal(b as u32)) {
                if matches!(p.body.as_slice(), [Sym::N(_)]) {
                    continue; // skip unit productions themselves
                }
                let head = NonTerminal(a as u32);
                if !productions
                    .iter()
                    .any(|q| q.head == head && q.body == p.body)
                {
                    productions.push(Production {
                        head,
                        body: p.body.clone(),
                    });
                }
            }
        }
    }
    Cfg {
        alphabet: g.alphabet.clone(),
        nonterminal_names: g.nonterminal_names.clone(),
        start: g.start,
        productions,
    }
}

/// Full normalization: ε-elimination, unit elimination, useless removal.
///
/// Returns the cleaned ε-free grammar and the "`ε ∈ L`" bit.
pub fn normalize(g: &Cfg) -> (Cfg, bool) {
    let (g, eps) = remove_epsilon(g);
    let g = remove_units(&g);
    let g = remove_useless(&g);
    (g, eps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generating_excludes_hopeless() {
        let g = Cfg::parse("s -> a t | b\nt -> t a").unwrap();
        let gen = generating(&g);
        let s = g.nonterminal("s").unwrap();
        let t = g.nonterminal("t").unwrap();
        assert!(gen.contains(&s));
        assert!(!gen.contains(&t));
    }

    #[test]
    fn reachable_excludes_orphans() {
        let g = Cfg::parse("s -> a\nq -> b").unwrap();
        let reach = reachable(&g);
        assert!(reach.contains(&g.nonterminal("s").unwrap()));
        assert!(!reach.contains(&g.nonterminal("q").unwrap()));
    }

    #[test]
    fn remove_useless_compacts() {
        let g = Cfg::parse("s -> a t | b\nt -> t a\nq -> b").unwrap();
        let clean = remove_useless(&g);
        assert_eq!(clean.num_nonterminals(), 1);
        assert_eq!(clean.productions.len(), 1); // only s -> b survives
    }

    #[test]
    fn nullable_and_epsilon_removal() {
        let g = Cfg::parse("s -> a t\nt -> eps | b t").unwrap();
        let null = nullable(&g);
        assert!(null.contains(&g.nonterminal("t").unwrap()));
        assert!(!null.contains(&g.nonterminal("s").unwrap()));
        let (g2, eps) = remove_epsilon(&g);
        assert!(!eps);
        // s -> a t | a ; t -> b t | b
        assert!(!g2.productions.iter().any(|p| p.body.is_empty()));
        assert_eq!(g2.productions.len(), 4);
    }

    #[test]
    fn epsilon_in_language_flag() {
        let g = Cfg::parse("s -> eps | a s").unwrap();
        let (_, eps) = remove_epsilon(&g);
        assert!(eps);
    }

    #[test]
    fn unit_removal() {
        let g = Cfg::parse("s -> t | a\nt -> u\nu -> b b").unwrap();
        let (g2, _) = remove_epsilon(&g);
        let g3 = remove_units(&g2);
        assert!(!g3
            .productions
            .iter()
            .any(|p| matches!(p.body.as_slice(), [Sym::N(_)])));
        // s derives: a, b b
        let s = g3.start;
        let bodies: Vec<usize> = g3.productions_of(s).map(|p| p.body.len()).collect();
        assert!(bodies.contains(&1));
        assert!(bodies.contains(&2));
    }

    #[test]
    fn normalize_empty_language() {
        let g = Cfg::parse("s -> s a").unwrap();
        let (clean, eps) = normalize(&g);
        assert!(!eps);
        assert!(clean.productions.is_empty());
    }
}
