//! Chomsky normal form and CYK membership.
//!
//! CNF powers the exact membership test used everywhere a construction
//! must be validated against the language it claims to produce (quotient
//! grammars in Section 7, sentential-form grammars in Prop. 8.1).

use crate::cfg::{Cfg, Sym};
use crate::clean::normalize;
use selprop_automata::alphabet::Symbol;

/// A grammar in Chomsky normal form.
///
/// All productions are `A → B C` (`pairs`) or `A → a` (`terms`); whether ε
/// belongs to the language is carried in [`CnfGrammar::epsilon`].
#[derive(Clone, Debug)]
pub struct CnfGrammar {
    /// Number of nonterminals.
    pub num_nonterminals: usize,
    /// Start nonterminal index.
    pub start: usize,
    /// Binary productions `(head, left, right)`.
    pub pairs: Vec<(usize, usize, usize)>,
    /// Terminal productions `(head, terminal)`.
    pub terms: Vec<(usize, Symbol)>,
    /// Whether ε is in the language.
    pub epsilon: bool,
    /// Nonterminal names (for diagnostics).
    pub names: Vec<String>,
}

impl CnfGrammar {
    /// Converts an arbitrary CFG to CNF (normalizing first).
    pub fn from_cfg(g: &Cfg) -> CnfGrammar {
        let (g, epsilon) = normalize(g);
        let mut names = g.nonterminal_names.clone();
        let mut pairs = Vec::new();
        let mut terms = Vec::new();

        // TERM: map each terminal to a proxy nonterminal (lazily).
        let mut term_proxy: Vec<Option<usize>> = vec![None; g.alphabet.len()];
        let mut proxy_for = |t: Symbol, names: &mut Vec<String>, terms: &mut Vec<(usize, Symbol)>| {
            if let Some(p) = term_proxy[t.index()] {
                return p;
            }
            let p = names.len();
            names.push(format!("T_{}", t.index()));
            terms.push((p, t));
            term_proxy[t.index()] = Some(p);
            p
        };

        for p in &g.productions {
            match p.body.as_slice() {
                [Sym::T(t)] => terms.push((p.head.index(), *t)),
                [_] => unreachable!("unit productions removed by normalize"),
                [] => unreachable!("ε-productions removed by normalize"),
                body => {
                    // Replace terminals by proxies, then binarize
                    // left-to-right with fresh glue nonterminals.
                    let ids: Vec<usize> = body
                        .iter()
                        .map(|&s| match s {
                            Sym::N(n) => n.index(),
                            Sym::T(t) => proxy_for(t, &mut names, &mut terms),
                        })
                        .collect();
                    let mut rhs = ids[ids.len() - 1];
                    for i in (1..ids.len() - 1).rev() {
                        let glue = names.len();
                        names.push(format!("G{}", names.len()));
                        pairs.push((glue, ids[i], rhs));
                        rhs = glue;
                    }
                    pairs.push((p.head.index(), ids[0], rhs));
                }
            }
        }
        CnfGrammar {
            num_nonterminals: names.len(),
            start: g.start.index(),
            pairs,
            terms,
            epsilon,
            names,
        }
    }

    /// CYK membership test.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let n = word.len();
        if n == 0 {
            return self.epsilon;
        }
        if self.num_nonterminals == 0 {
            return false;
        }
        let m = self.num_nonterminals;
        // table[i][len-1] = bitset of nonterminals deriving word[i..i+len]
        let mut table = vec![vec![vec![false; m]; n]; n];
        for (i, &a) in word.iter().enumerate() {
            for &(h, t) in &self.terms {
                if t == a {
                    table[i][0][h] = true;
                }
            }
        }
        for len in 2..=n {
            for i in 0..=(n - len) {
                for split in 1..len {
                    for &(h, l, r) in &self.pairs {
                        if table[i][split - 1][l] && table[i + split][len - split - 1][r] {
                            table[i][len - 1][h] = true;
                        }
                    }
                }
            }
        }
        table[0][n - 1][self.start]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(g: &Cfg, text: &str) -> Vec<Symbol> {
        text.split_whitespace()
            .map(|t| g.alphabet.get(t).unwrap())
            .collect()
    }

    #[test]
    fn balanced_pairs() {
        // Section 7's example language: b1^n b2^n, n ≥ 1.
        let g = Cfg::parse("p -> b1 b2 | b1 p b2").unwrap();
        let cnf = CnfGrammar::from_cfg(&g);
        assert!(cnf.accepts(&syms(&g, "b1 b2")));
        assert!(cnf.accepts(&syms(&g, "b1 b1 b2 b2")));
        assert!(cnf.accepts(&syms(&g, "b1 b1 b1 b2 b2 b2")));
        assert!(!cnf.accepts(&syms(&g, "b1 b2 b2")));
        assert!(!cnf.accepts(&syms(&g, "b2 b1")));
        assert!(!cnf.accepts(&[]));
    }

    #[test]
    fn ancestor_language() {
        let g = Cfg::parse("anc -> par | anc par").unwrap();
        let cnf = CnfGrammar::from_cfg(&g);
        assert!(cnf.accepts(&syms(&g, "par")));
        assert!(cnf.accepts(&syms(&g, "par par par")));
        assert!(!cnf.accepts(&[]));
    }

    #[test]
    fn epsilon_language() {
        let g = Cfg::parse("s -> eps | a s").unwrap();
        let cnf = CnfGrammar::from_cfg(&g);
        assert!(cnf.epsilon);
        assert!(cnf.accepts(&[]));
        assert!(cnf.accepts(&syms(&g, "a a")));
    }

    #[test]
    fn long_chain_bodies_binarize() {
        let g = Cfg::parse("s -> a b c d e").unwrap();
        let cnf = CnfGrammar::from_cfg(&g);
        assert!(cnf.accepts(&syms(&g, "a b c d e")));
        assert!(!cnf.accepts(&syms(&g, "a b c d")));
    }

    #[test]
    fn empty_language() {
        let g = Cfg::parse("s -> s a").unwrap();
        let cnf = CnfGrammar::from_cfg(&g);
        assert!(!cnf.accepts(&[]));
        let a = g.alphabet.get("a").unwrap();
        assert!(!cnf.accepts(&[a]));
    }

    #[test]
    fn nonlinear_ancestor_program_c() {
        // Program C: anc -> par | anc anc, language par+.
        let g = Cfg::parse("anc -> par | anc anc").unwrap();
        let cnf = CnfGrammar::from_cfg(&g);
        for n in 1..6 {
            let w = vec![g.alphabet.get("par").unwrap(); n];
            assert!(cnf.accepts(&w), "par^{n} should be accepted");
        }
        assert!(!cnf.accepts(&[]));
    }
}
