//! Bar-Hillel product: the intersection of a context-free language with a
//! regular language is context-free, by the classic triple construction.
//!
//! Used by the containment experiments (Prop. 8.1 — refuting containment
//! by intersecting with regular probes) and by the magic-sets analysis
//! (restricting `L(H)` to the labels actually present in a database).

use selprop_automata::dfa::Dfa;

use crate::cfg::{Cfg, NonTerminal, Sym};
use crate::clean::normalize;

/// Constructs a CFG for `L(g) ∩ L(r)`.
///
/// Nonterminals are triples `⟨q, A, q'⟩` deriving the words of `A` that
/// drive the DFA from `q` to `q'`. Body state sequences are enumerated
/// recursively; cleaned chain-grammar bodies are short, so the `|Q|^(k-1)`
/// expansion stays small.
pub fn intersect(g: &Cfg, r: &Dfa) -> Cfg {
    assert_eq!(g.alphabet, r.alphabet, "intersection requires a shared alphabet");
    let (clean, eps_l) = normalize(g);
    let nq = r.num_states();
    let nn = clean.num_nonterminals();
    let mut out = Cfg::new(g.alphabet.clone(), "I_start");
    let start = out.start;
    if eps_l && r.accepts_word(&[]) {
        out.add_production(start, Vec::new());
    }
    if nn == 0 || nq == 0 {
        return out;
    }

    let mut ids: Vec<Option<NonTerminal>> = vec![None; nn * nq * nq];
    let mut triple = |out: &mut Cfg, q: usize, a: usize, qp: usize| -> NonTerminal {
        let key = (a * nq + q) * nq + qp;
        if let Some(n) = ids[key] {
            return n;
        }
        let n = out.add_nonterminal(&format!("⟨{q},{},{qp}⟩", clean.nonterminal_names[a]));
        ids[key] = Some(n);
        n
    };

    for f in 0..nq {
        if r.is_accept(f) {
            let n = triple(&mut out, r.start(), clean.start.index(), f);
            out.add_production(start, vec![Sym::N(n)]);
        }
    }

    for p in &clean.productions {
        let k = p.body.len();
        // enumerate all state sequences q = s0, s1, ..., sk = q'
        // compatible with terminal steps; nonterminal steps are free.
        let mut seqs: Vec<Vec<usize>> = (0..nq).map(|q| vec![q]).collect();
        for &sym in &p.body {
            let mut next = Vec::new();
            for seq in &seqs {
                let cur = *seq.last().expect("nonempty");
                match sym {
                    Sym::T(t) => {
                        let mut s2 = seq.clone();
                        s2.push(r.step(cur, t));
                        next.push(s2);
                    }
                    Sym::N(_) => {
                        for qn in 0..nq {
                            let mut s2 = seq.clone();
                            s2.push(qn);
                            next.push(s2);
                        }
                    }
                }
            }
            seqs = next;
        }
        for seq in seqs {
            let head = triple(&mut out, seq[0], p.head.index(), seq[k]);
            let body: Vec<Sym> = p
                .body
                .iter()
                .enumerate()
                .map(|(i, &sym)| match sym {
                    Sym::T(t) => Sym::T(t),
                    Sym::N(b) => Sym::N(triple(&mut out, seq[i], b.index(), seq[i + 1])),
                })
                .collect();
            out.add_production(head, body);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{is_empty, words_up_to};
    use selprop_automata::regex::Regex;

    fn regex_dfa(g: &Cfg, text: &str) -> Dfa {
        let mut al = g.alphabet.clone();
        Regex::parse(text, &mut al).unwrap().to_dfa(&al)
    }

    #[test]
    fn intersection_restricts() {
        // L = par+, R = words of even length → par^2, par^4, ...
        let g = Cfg::parse("anc -> par | anc par").unwrap();
        let r = regex_dfa(&g, "(par par)*");
        let i = intersect(&g, &r);
        let words = words_up_to(&i, 6);
        let lens: Vec<usize> = words.iter().map(Vec::len).collect();
        assert_eq!(lens, vec![2, 4, 6]);
    }

    #[test]
    fn intersection_with_balanced_pairs() {
        let g = Cfg::parse("p -> b1 b2 | b1 p b2").unwrap();
        // restrict to words of length 4: exactly b1 b1 b2 b2
        let r = regex_dfa(&g, "(b1|b2)(b1|b2)(b1|b2)(b1|b2)");
        let i = intersect(&g, &r);
        let words = words_up_to(&i, 8);
        assert_eq!(words.len(), 1);
        assert_eq!(words[0].len(), 4);
    }

    #[test]
    fn empty_intersection() {
        let g = Cfg::parse("p -> b1 b2 | b1 p b2").unwrap();
        let r = regex_dfa(&g, "b2 (b1|b2)*"); // words starting with b2
        let i = intersect(&g, &r);
        assert!(is_empty(&i));
    }

    #[test]
    fn epsilon_handling() {
        let g = Cfg::parse("s -> eps | a s").unwrap();
        let r = regex_dfa(&g, "ε | a");
        let i = intersect(&g, &r);
        let words = words_up_to(&i, 3);
        assert_eq!(words.len(), 2); // ε and a
        assert!(words[0].is_empty());
    }

    #[test]
    fn brute_force_agreement() {
        let g = Cfg::parse("s -> a | a s b").unwrap();
        let r = regex_dfa(&g, "a a (a|b)*");
        let i = intersect(&g, &r);
        let got = words_up_to(&i, 6);
        let want: Vec<_> = words_up_to(&g, 6)
            .into_iter()
            .filter(|w| r.accepts_word(w))
            .collect();
        assert_eq!(got, want);
    }
}
