//! Sentential-form grammars (Proposition 8.1).
//!
//! Blattner proved that equality of the *sentential form* sets of two
//! context-free grammars is undecidable; the paper (Prop. 8.1) reduces
//! containment/equivalence of **uniform chain programs** to exactly that
//! problem. This module builds, for a grammar `G`, a grammar `SF(G)` over
//! the extended alphabet `Σ ∪ N` whose language is the set of sentential
//! forms of `G` — the reduction's key object.

use selprop_automata::alphabet::Alphabet;

use crate::cfg::{Cfg, NonTerminal, Sym};

/// The sentential-form grammar of `g`, together with the extended
/// alphabet (terminals of `g` followed by one terminal per nonterminal,
/// named `@<nonterminal>`).
pub fn sentential_forms(g: &Cfg) -> Cfg {
    // Extended alphabet: original terminals plus nonterminal markers.
    let mut alphabet = g.alphabet.clone();
    let markers: Vec<_> = g
        .nonterminal_names
        .iter()
        .map(|n| alphabet.intern(&format!("@{n}")))
        .collect();

    let mut out = Cfg {
        alphabet,
        nonterminal_names: g
            .nonterminal_names
            .iter()
            .map(|n| format!("SF_{n}"))
            .collect(),
        start: NonTerminal(g.start.0),
        productions: Vec::new(),
    };
    for (a, &marker) in markers.iter().enumerate() {
        let nt = NonTerminal(a as u32);
        // A sentential form of A is either the marker @A itself...
        out.add_production(nt, vec![Sym::T(marker)]);
        // ...or any production body with symbols replaced by their
        // sentential-form nonterminals.
        for p in g.productions_of(nt) {
            let body = p
                .body
                .iter()
                .map(|&s| match s {
                    Sym::T(t) => Sym::T(t),
                    Sym::N(b) => Sym::N(NonTerminal(b.0)),
                })
                .collect();
            out.add_production(nt, body);
        }
    }
    out
}

/// The extended alphabet used by [`sentential_forms`] (useful for
/// interpreting its words).
pub fn extended_alphabet(g: &Cfg) -> Alphabet {
    let mut alphabet = g.alphabet.clone();
    for n in &g.nonterminal_names {
        alphabet.intern(&format!("@{n}"));
    }
    alphabet
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::words_up_to;

    #[test]
    fn sentential_forms_of_ancestor() {
        let g = Cfg::parse("anc -> par | anc par").unwrap();
        let sf = sentential_forms(&g);
        let words = words_up_to(&sf, 3);
        let al = &sf.alphabet;
        let render: Vec<String> = words.iter().map(|w| al.render_word(w)).collect();
        // Sentential forms: @anc, par, @anc par, par par, @anc par par, ...
        assert!(render.contains(&"@anc".to_owned()));
        assert!(render.contains(&"par".to_owned()));
        assert!(render.contains(&"@anc par".to_owned()));
        assert!(render.contains(&"par par".to_owned()));
        // Things that are NOT sentential forms of the left-linear grammar:
        assert!(!render.contains(&"par @anc".to_owned()));
    }

    #[test]
    fn sentential_forms_include_terminal_words() {
        // every word of L(G) is a sentential form
        let g = Cfg::parse("p -> b1 b2 | b1 p b2").unwrap();
        let sf = sentential_forms(&g);
        let lang = words_up_to(&g, 4);
        let forms = words_up_to(&sf, 4);
        for w in &lang {
            assert!(forms.contains(w), "language word missing from forms");
        }
    }

    #[test]
    fn marker_symbols_distinct() {
        let g = Cfg::parse("s -> a t\nt -> b").unwrap();
        let al = extended_alphabet(&g);
        assert!(al.get("@s").is_some());
        assert!(al.get("@t").is_some());
        assert_ne!(al.get("@s"), al.get("@t"));
    }
}
