//! Regular approximation and exact regular compilation of CFGs
//! (Mohri–Nederhof).
//!
//! Section 7 of the paper needs a "**regular envelope** `R(H)`" — a
//! regular superset of `L(H)` to approximate magic-set quotients when the
//! exact quotient is not known to be regular. Mohri & Nederhof's
//! transformation provides exactly this:
//!
//! - A grammar is **strongly regular** when every mutually-recursive SCC
//!   of nonterminals is purely left-linear or purely right-linear *within
//!   the SCC*. Strongly regular grammars compile to finite automata
//!   **exactly** (this covers the paper's Programs A and B, every
//!   non-self-embedding grammar after cleaning, and every grammar built
//!   from a DFA by [`selprop_automata::linear`]).
//! - Any other SCC is transformed into a right-linear over-approximation;
//!   the compiled automaton then recognizes a regular **superset** of
//!   `L(G)`.
//!
//! [`approximate`] reports which case occurred via
//! [`RegularApproximation::exact`] — when `true`, the automaton is a
//! *certificate of regularity* for `L(G)`, which is how the propagation
//! engine (Theorem 3.3(1) "if" direction) establishes regularity.

use std::collections::BTreeSet;

use selprop_automata::dfa::Dfa;
use selprop_automata::nfa::{Nfa, StateId};

use crate::cfg::{Cfg, NonTerminal, Production, Sym};
use crate::clean::normalize;

/// Result of compiling a CFG to a finite automaton.
#[derive(Clone, Debug)]
pub struct RegularApproximation {
    /// Automaton with `L(nfa) ⊇ L(G)`; equality iff `exact`.
    pub nfa: Nfa,
    /// `true` iff the (cleaned) grammar was strongly regular, making the
    /// automaton exact.
    pub exact: bool,
    /// Names of the SCCs that had to be over-approximated (empty iff
    /// `exact`).
    pub approximated_sccs: Vec<Vec<String>>,
}

impl RegularApproximation {
    /// Convenience: determinized form of the automaton.
    pub fn dfa(&self) -> Dfa {
        Dfa::from_nfa(&self.nfa)
    }
}

/// How an SCC's recursion is shaped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SccShape {
    /// No production in the SCC references the SCC (trivial).
    Trivial,
    /// Every in-SCC reference is the last body symbol.
    RightLinear,
    /// Every in-SCC reference is the first body symbol.
    LeftLinear,
    /// Mixed — requires the Mohri–Nederhof transformation.
    Mixed,
}

/// Whether the cleaned form of `g` is strongly regular.
pub fn is_strongly_regular(g: &Cfg) -> bool {
    let (clean, _) = normalize(g);
    let sccs = condensation(&clean);
    sccs.iter()
        .all(|scc| classify_scc(&clean, scc) != SccShape::Mixed)
}

/// Compiles `g` to a finite automaton: exact if strongly regular,
/// otherwise a Mohri–Nederhof regular superset.
pub fn approximate(g: &Cfg) -> RegularApproximation {
    let (clean, eps) = normalize(g);
    if clean.productions.is_empty() {
        let mut nfa = Nfa::empty(g.alphabet.clone());
        if eps {
            let q = nfa.add_state();
            nfa.set_start(q);
            nfa.set_accept(q);
        }
        return RegularApproximation {
            nfa,
            exact: true,
            approximated_sccs: Vec::new(),
        };
    }

    // Transform mixed SCCs to right-linear (the approximation step).
    let mut approximated_sccs = Vec::new();
    let mut work = clean.clone();
    loop {
        let sccs = condensation(&work);
        let mixed = sccs
            .iter()
            .find(|scc| classify_scc(&work, scc) == SccShape::Mixed)
            .cloned();
        match mixed {
            None => break,
            Some(scc) => {
                approximated_sccs.push(
                    scc.iter().map(|n| work.name(*n).to_owned()).collect(),
                );
                work = transform_scc(&work, &scc);
            }
        }
    }
    let exact = approximated_sccs.is_empty();

    // Compile the strongly-regular grammar bottom-up over its SCC DAG.
    let mut lang: Vec<Option<Nfa>> = vec![None; work.num_nonterminals()];
    for scc in condensation(&work) {
        compile_scc(&work, &scc, &mut lang);
    }
    let mut nfa = lang[work.start.index()]
        .clone()
        .unwrap_or_else(|| Nfa::empty(work.alphabet.clone()));
    if eps {
        nfa = nfa.union(&Nfa::from_word(work.alphabet.clone(), &[]));
    }
    RegularApproximation {
        nfa,
        exact,
        approximated_sccs,
    }
}

/// SCCs of the nonterminal reference graph, in dependency-first
/// (reverse-topological) order — exactly the order bottom-up compilation
/// wants. Iterative Tarjan.
fn condensation(g: &Cfg) -> Vec<Vec<NonTerminal>> {
    let n = g.num_nonterminals();
    let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for p in &g.productions {
        for s in &p.body {
            if let Sym::N(m) = s {
                edges[p.head.index()].insert(m.index());
            }
        }
    }
    let edges: Vec<Vec<usize>> = edges
        .into_iter()
        .map(|s| s.into_iter().collect())
        .collect();

    let mut index = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut counter = 0usize;
    let mut out: Vec<Vec<NonTerminal>> = Vec::new();

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        // iterative Tarjan: frames of (node, child cursor)
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        index[root] = counter;
        low[root] = counter;
        counter += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            if *cursor < edges[v].len() {
                let w = edges[v][*cursor];
                *cursor += 1;
                if index[w] == usize::MAX {
                    index[w] = counter;
                    low[w] = counter;
                    counter += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&mut (u, _)) = frames.last_mut() {
                    low[u] = low[u].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        on_stack[w] = false;
                        scc.push(NonTerminal(w as u32));
                        if w == v {
                            break;
                        }
                    }
                    scc.sort();
                    out.push(scc);
                }
            }
        }
    }
    out
}

/// Classifies the recursion shape of an SCC.
fn classify_scc(g: &Cfg, scc: &[NonTerminal]) -> SccShape {
    let in_scc: BTreeSet<NonTerminal> = scc.iter().copied().collect();
    let mut right_ok = true;
    let mut left_ok = true;
    let mut any = false;
    for p in &g.productions {
        if !in_scc.contains(&p.head) {
            continue;
        }
        let occ: Vec<usize> = p
            .body
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Sym::N(m) if in_scc.contains(m)))
            .map(|(i, _)| i)
            .collect();
        if occ.is_empty() {
            continue;
        }
        any = true;
        if occ.len() > 1 {
            return SccShape::Mixed;
        }
        let pos = occ[0];
        if pos != p.body.len() - 1 {
            right_ok = false;
        }
        if pos != 0 {
            left_ok = false;
        }
        if !right_ok && !left_ok {
            return SccShape::Mixed;
        }
    }
    if !any {
        SccShape::Trivial
    } else if right_ok {
        SccShape::RightLinear
    } else {
        SccShape::LeftLinear
    }
}

/// The Mohri–Nederhof transformation of one mixed SCC: introduces a primed
/// partner `A'` per nonterminal and rewrites the SCC's productions to a
/// right-linear shape recognizing a superset of the original language.
fn transform_scc(g: &Cfg, scc: &[NonTerminal]) -> Cfg {
    let in_scc: BTreeSet<NonTerminal> = scc.iter().copied().collect();
    let mut out = g.clone();
    // primed partner ids
    let mut primed = std::collections::BTreeMap::new();
    for &a in scc {
        let name = format!("{}'", g.name(a));
        primed.insert(a, out.add_nonterminal(&name));
    }
    let mut new_productions: Vec<Production> = Vec::new();
    for p in &g.productions {
        if !in_scc.contains(&p.head) {
            new_productions.push(p.clone());
            continue;
        }
        // Split body at in-SCC occurrences: α0 B1 α1 B2 ... Bm αm.
        let mut segments: Vec<Vec<Sym>> = vec![Vec::new()];
        let mut bs: Vec<NonTerminal> = Vec::new();
        for &s in &p.body {
            match s {
                Sym::N(m) if in_scc.contains(&m) => {
                    bs.push(m);
                    segments.push(Vec::new());
                }
                other => segments.last_mut().expect("nonempty").push(other),
            }
        }
        let a = p.head;
        let a_primed = primed[&a];
        if bs.is_empty() {
            // A → α0 A'
            let mut body = segments[0].clone();
            body.push(Sym::N(a_primed));
            new_productions.push(Production { head: a, body });
        } else {
            // A → α0 B1
            let mut body = segments[0].clone();
            body.push(Sym::N(bs[0]));
            new_productions.push(Production { head: a, body });
            // Bi' → αi B(i+1)
            for i in 0..bs.len() - 1 {
                let mut body = segments[i + 1].clone();
                body.push(Sym::N(bs[i + 1]));
                new_productions.push(Production {
                    head: primed[&bs[i]],
                    body,
                });
            }
            // Bm' → αm A'
            let m = bs.len() - 1;
            let mut body = segments[m + 1].clone();
            body.push(Sym::N(a_primed));
            new_productions.push(Production {
                head: primed[&bs[m]],
                body,
            });
        }
    }
    // A' → ε for every member (the "forget the return address" step that
    // makes this an over-approximation).
    for &a in scc {
        new_productions.push(Production {
            head: primed[&a],
            body: Vec::new(),
        });
    }
    out.productions = new_productions;
    out
}

/// Compiles one SCC of a strongly-regular grammar, given the automata of
/// all lower SCCs in `lang`.
fn compile_scc(g: &Cfg, scc: &[NonTerminal], lang: &mut [Option<Nfa>]) {
    let shape = classify_scc(g, scc);
    debug_assert_ne!(shape, SccShape::Mixed, "compile requires strong regularity");
    let reverse = shape == SccShape::LeftLinear;
    let in_scc: BTreeSet<NonTerminal> = scc.iter().copied().collect();

    // One shared automaton for the whole SCC: a state per member plus a
    // common final state; bodies are threaded between them.
    let mut nfa = Nfa::new(g.alphabet.clone());
    let mut state_of: std::collections::BTreeMap<NonTerminal, StateId> =
        std::collections::BTreeMap::new();
    for &a in scc {
        state_of.insert(a, nfa.add_state());
    }
    let final_state = nfa.add_state();
    nfa.set_accept(final_state);

    for p in &g.productions {
        if !in_scc.contains(&p.head) {
            continue;
        }
        // Determine the in-SCC tail (if any) and the atom sequence.
        let atoms: Vec<Sym>;
        let mut tail: Option<NonTerminal> = None;
        if reverse {
            // left-linear: body = [B?] atoms...; reversed it becomes
            // right-linear: rev(atoms) [B?] with reversed atom languages.
            let mut body = p.body.clone();
            if let Some(Sym::N(m)) = body.first() {
                if in_scc.contains(m) {
                    tail = Some(*m);
                    body.remove(0);
                }
            }
            body.reverse();
            atoms = body;
        } else {
            let mut body = p.body.clone();
            if let Some(Sym::N(m)) = body.last() {
                if in_scc.contains(m) {
                    tail = Some(*m);
                    body.pop();
                }
            }
            atoms = std::mem::take(&mut body);
        }
        // Thread the atoms from state(head) towards tail-or-final.
        let mut cur = state_of[&p.head];
        for &atom in &atoms {
            let sub = atom_nfa(g, atom, lang, reverse);
            let offset = nfa.num_states();
            for _ in 0..sub.num_states() {
                nfa.add_state();
            }
            for (q, a, r) in sub.transitions() {
                nfa.add_transition(q + offset, a, r + offset);
            }
            for (q, r) in sub.epsilon_transitions() {
                nfa.add_epsilon(q + offset, r + offset);
            }
            for &s in sub.starts() {
                nfa.add_epsilon(cur, s + offset);
            }
            let joint = nfa.add_state();
            for &f in sub.accepts() {
                nfa.add_epsilon(f + offset, joint);
            }
            cur = joint;
        }
        match tail {
            Some(b) => nfa.add_epsilon(cur, state_of[&b]),
            None => nfa.add_epsilon(cur, final_state),
        }
    }

    // Extract the per-member language: paths state(A) → final, reversed
    // for left-linear SCCs.
    for &a in scc {
        let mut member = nfa.clone();
        // reset starts
        let mut fresh = Nfa::new(g.alphabet.clone());
        for _ in 0..member.num_states() {
            fresh.add_state();
        }
        for (q, s, r) in member.transitions() {
            fresh.add_transition(q, s, r);
        }
        for (q, r) in member.epsilon_transitions() {
            fresh.add_epsilon(q, r);
        }
        fresh.set_start(state_of[&a]);
        fresh.set_accept(final_state);
        member = fresh;
        if reverse {
            member = member.reversed();
        }
        lang[a.index()] = Some(member);
    }
}

/// The automaton of a single body symbol: a one-letter NFA for a terminal,
/// the (already compiled) language for a lower-SCC nonterminal; reversed
/// when compiling a left-linear SCC.
fn atom_nfa(g: &Cfg, atom: Sym, lang: &[Option<Nfa>], reverse: bool) -> Nfa {
    match atom {
        Sym::T(t) => Nfa::from_word(g.alphabet.clone(), &[t]),
        Sym::N(m) => {
            let sub = lang[m.index()]
                .clone()
                .unwrap_or_else(|| Nfa::empty(g.alphabet.clone()));
            if reverse {
                sub.reversed()
            } else {
                sub
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::words_up_to;
    use crate::cnf::CnfGrammar;
    use selprop_automata::equiv::{equivalent, included};
    use selprop_automata::regex::Regex;

    fn regex_dfa(g: &Cfg, text: &str) -> Dfa {
        let mut al = g.alphabet.clone();
        Regex::parse(text, &mut al).unwrap().to_dfa(&al)
    }

    #[test]
    fn left_linear_ancestor_is_exact() {
        let g = Cfg::parse("anc -> par | anc par").unwrap();
        assert!(is_strongly_regular(&g));
        let approx = approximate(&g);
        assert!(approx.exact);
        let expected = regex_dfa(&g, "par par*");
        assert!(equivalent(&approx.dfa(), &expected));
    }

    #[test]
    fn right_linear_ancestor_is_exact() {
        let g = Cfg::parse("anc -> par | par anc").unwrap();
        let approx = approximate(&g);
        assert!(approx.exact);
        let expected = regex_dfa(&g, "par par*");
        assert!(equivalent(&approx.dfa(), &expected));
    }

    #[test]
    fn nested_sccs_compile_exactly() {
        // s right-recursive over l, l left-recursive over terminals:
        // l = a+, s = (a+ b)* a+ c ... choose: s -> l c | l b s.
        let g = Cfg::parse("s -> l c | l b s\nl -> a | l a").unwrap();
        let approx = approximate(&g);
        assert!(approx.exact);
        let expected = regex_dfa(&g, "(a a* b)* a a* c");
        assert!(equivalent(&approx.dfa(), &expected));
    }

    #[test]
    fn balanced_pairs_is_approximated() {
        let g = Cfg::parse("p -> b1 b2 | b1 p b2").unwrap();
        assert!(!is_strongly_regular(&g));
        let approx = approximate(&g);
        assert!(!approx.exact);
        assert_eq!(approx.approximated_sccs.len(), 1);
        // The approximation must contain the language...
        let dfa = approx.dfa();
        let cnf = CnfGrammar::from_cfg(&g);
        for w in words_up_to(&g, 10) {
            assert!(cnf.accepts(&w));
            assert!(dfa.accepts_word(&w), "approximation must be a superset");
        }
        // ...and for MN on this grammar it is b1 (b1|b2)* b2 ∩ ... at
        // least the unbalanced word b1 b2 b2 shows properness:
        let b1 = g.alphabet.get("b1").unwrap();
        let b2 = g.alphabet.get("b2").unwrap();
        assert!(dfa.accepts_word(&[b1, b1, b2]) || dfa.accepts_word(&[b1, b2, b2]));
    }

    #[test]
    fn approximation_is_superset_for_palindromes() {
        let g = Cfg::parse("s -> a | b | a s a | b s b").unwrap();
        let approx = approximate(&g);
        assert!(!approx.exact);
        let dfa = approx.dfa();
        let cnf = CnfGrammar::from_cfg(&g);
        for w in words_up_to(&g, 7) {
            assert!(cnf.accepts(&w));
            assert!(dfa.accepts_word(&w));
        }
    }

    #[test]
    fn program_c_nonlinear_approximation_contains_par_plus() {
        // Program C from Example 1.1: anc → par | anc anc. L = par+,
        // regular — but the grammar is mixed, so MN over-approximates.
        let g = Cfg::parse("anc -> par | anc anc").unwrap();
        let approx = approximate(&g);
        assert!(!approx.exact);
        let par_plus = regex_dfa(&g, "par par*");
        assert!(included(&par_plus, &approx.dfa()));
        // For a unary alphabet the superset of par+ within par* is par+
        // or par*; either way it stays within par*.
        let par_star = regex_dfa(&g, "par*");
        assert!(included(&approx.dfa(), &par_star));
    }

    #[test]
    fn finite_language_is_exact() {
        let g = Cfg::parse("s -> a b | c").unwrap();
        let approx = approximate(&g);
        assert!(approx.exact);
        let expected = regex_dfa(&g, "a b | c");
        assert!(equivalent(&approx.dfa(), &expected));
    }

    #[test]
    fn empty_language_compiles() {
        let g = Cfg::parse("s -> s a").unwrap();
        let approx = approximate(&g);
        assert!(approx.exact);
        assert!(approx.dfa().is_empty());
    }

    #[test]
    fn epsilon_preserved() {
        let g = Cfg::parse("s -> eps | a s").unwrap();
        let approx = approximate(&g);
        assert!(approx.exact);
        let dfa = approx.dfa();
        assert!(dfa.accepts_word(&[]));
        let a = g.alphabet.get("a").unwrap();
        assert!(dfa.accepts_word(&[a, a]));
    }

    #[test]
    fn non_self_embedding_compiles_exactly() {
        // NSE but with both left and right recursion in *different* SCCs.
        let g = Cfg::parse("s -> l r\nl -> a | l a\nr -> b | b r").unwrap();
        let approx = approximate(&g);
        assert!(approx.exact);
        let expected = regex_dfa(&g, "a a* b b*");
        assert!(equivalent(&approx.dfa(), &expected));
    }
}
