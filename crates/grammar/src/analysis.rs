//! Language-level analyses on CFGs: emptiness, **finiteness** (the
//! decidable side of Corollary 3.4), pumping witnesses for infiniteness
//! certificates, shortest words, and bounded enumeration.
//!
//! Finiteness drives both Theorem 3.3(2) (selection `p(X,X)` propagates
//! iff `L(H)` is finite) and Proposition 8.2 (FO-expressible ⇔ bounded ⇔
//! `L(H)` finite), so it gets a constructive API: a finite language is
//! returned as an explicit word list; an infinite one as a pumping
//! certificate `u x^i w z^i y`.

use std::collections::{BTreeMap, BTreeSet};

use crate::cfg::{Cfg, NonTerminal, Sym};
use crate::clean::normalize;
use selprop_automata::alphabet::Symbol;

/// Whether `L(G)` is empty.
pub fn is_empty(g: &Cfg) -> bool {
    let (clean, eps) = normalize(g);
    !eps && clean.productions.is_empty()
}

/// The decision outcome for finiteness, with certificates both ways.
#[derive(Clone, Debug)]
pub enum Finiteness {
    /// The language is finite; all its words, in length-lex order.
    Finite(Vec<Vec<Symbol>>),
    /// The language is infinite; a pumping certificate.
    Infinite(PumpWitness),
}

impl Finiteness {
    /// Whether the language was found finite.
    pub fn is_finite(&self) -> bool {
        matches!(self, Finiteness::Finite(_))
    }
}

/// A concrete pumping certificate: for every `i ≥ 0`,
/// `prefix · pump_left^i · middle · pump_right^i · suffix ∈ L(G)`,
/// with `pump_left · pump_right` nonempty.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PumpWitness {
    /// `u` — context to the left of the pumped nonterminal.
    pub prefix: Vec<Symbol>,
    /// `x` — pumped on the left.
    pub pump_left: Vec<Symbol>,
    /// `w` — a shortest word of the pumped nonterminal.
    pub middle: Vec<Symbol>,
    /// `z` — pumped on the right.
    pub pump_right: Vec<Symbol>,
    /// `y` — context to the right.
    pub suffix: Vec<Symbol>,
    /// The recursive nonterminal's name (diagnostics).
    pub nonterminal: String,
}

impl PumpWitness {
    /// Materializes the pumped word for a given `i`.
    pub fn word(&self, i: usize) -> Vec<Symbol> {
        let mut w = self.prefix.clone();
        for _ in 0..i {
            w.extend_from_slice(&self.pump_left);
        }
        w.extend_from_slice(&self.middle);
        for _ in 0..i {
            w.extend_from_slice(&self.pump_right);
        }
        w.extend_from_slice(&self.suffix);
        w
    }
}

/// Decides finiteness of `L(G)` (Hopcroft–Ullman: a cleaned, ε-free,
/// unit-free grammar has an infinite language iff its nonterminal
/// reference graph has a cycle).
pub fn finiteness(g: &Cfg) -> Finiteness {
    let (clean, eps) = normalize(g);
    if let Some(cycle) = find_cycle(&clean) {
        return Finiteness::Infinite(pump_witness(&clean, &cycle));
    }
    // Acyclic: enumerate everything. The longest word is bounded by the
    // product of maximal body lengths along the (acyclic) nonterminal DAG;
    // enumerate by increasing length until all nonterminal expansions are
    // exhausted — with an acyclic reference graph the recursion
    // terminates, so direct recursive enumeration is safe.
    let mut memo: BTreeMap<NonTerminal, Vec<Vec<Symbol>>> = BTreeMap::new();
    let mut words = if clean.productions.is_empty() && !eps {
        Vec::new()
    } else {
        enumerate_all(&clean, clean.start, &mut memo)
    };
    if eps {
        words.push(Vec::new());
    }
    words.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    words.dedup();
    Finiteness::Finite(words)
}

/// All words of an acyclic (hence finite) grammar, by naive recursion.
fn enumerate_all(
    g: &Cfg,
    nt: NonTerminal,
    memo: &mut BTreeMap<NonTerminal, Vec<Vec<Symbol>>>,
) -> Vec<Vec<Symbol>> {
    if let Some(ws) = memo.get(&nt) {
        return ws.clone();
    }
    let mut out: Vec<Vec<Symbol>> = Vec::new();
    for p in g.productions_of(nt).cloned().collect::<Vec<_>>() {
        let mut partials: Vec<Vec<Symbol>> = vec![Vec::new()];
        for s in &p.body {
            let expansions: Vec<Vec<Symbol>> = match s {
                Sym::T(t) => vec![vec![*t]],
                Sym::N(m) => enumerate_all(g, *m, memo),
            };
            let mut next = Vec::new();
            for w in &partials {
                for e in &expansions {
                    let mut w2 = w.clone();
                    w2.extend_from_slice(e);
                    next.push(w2);
                }
            }
            partials = next;
        }
        out.extend(partials);
    }
    out.sort();
    out.dedup();
    memo.insert(nt, out.clone());
    out
}

/// Finds a cycle in the nonterminal reference graph of a cleaned grammar,
/// returned as a list of (production index, position of the nonterminal
/// occurrence used) forming `A0 → ... A1 ..., A1 → ... A2 ..., ...` back
/// to `A0`.
fn find_cycle(g: &Cfg) -> Option<Vec<(usize, usize)>> {
    let n = g.num_nonterminals();
    // edges: nt -> (production, position, target nt)
    let mut edges: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); n];
    for (pi, p) in g.productions.iter().enumerate() {
        for (pos, s) in p.body.iter().enumerate() {
            if let Sym::N(m) = s {
                edges[p.head.index()].push((pi, pos, m.index()));
            }
        }
    }
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; n];
    // stack entries: (node, edge cursor); `path` mirrors the gray chain
    // with the edge taken to get to the next node.
    for root in 0..n {
        if color[root] != Color::White {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        let mut path: Vec<(usize, usize, usize)> = Vec::new(); // (prod, pos, target)
        color[root] = Color::Gray;
        while let Some(&(node, cursor)) = stack.last() {
            if cursor < edges[node].len() {
                stack.last_mut().unwrap().1 += 1;
                let (pi, pos, target) = edges[node][cursor];
                match color[target] {
                    Color::Gray => {
                        // Found a cycle: unwind `path` from the occurrence
                        // of `target` in the gray chain.
                        path.push((pi, pos, target));
                        let start_idx = stack
                            .iter()
                            .position(|&(q, _)| q == target)
                            .expect("gray node on stack");
                        let cycle: Vec<(usize, usize)> = path[start_idx..]
                            .iter()
                            .map(|&(pi, pos, _)| (pi, pos))
                            .collect();
                        return Some(cycle);
                    }
                    Color::White => {
                        color[target] = Color::Gray;
                        stack.push((target, 0));
                        path.push((pi, pos, target));
                    }
                    Color::Black => {}
                }
            } else {
                color[node] = Color::Black;
                stack.pop();
                path.pop();
            }
        }
    }
    None
}

/// Builds a concrete pumping certificate from a nonterminal cycle.
fn pump_witness(g: &Cfg, cycle: &[(usize, usize)]) -> PumpWitness {
    let shortest = shortest_words(g);
    let expand = |s: Sym| -> Vec<Symbol> {
        match s {
            Sym::T(t) => vec![t],
            Sym::N(n) => shortest[n.index()]
                .clone()
                .expect("cleaned grammar: every nonterminal generates"),
        }
    };
    // Walk the cycle: A0 ⇒ pre0 A1 post0 ⇒ pre0 pre1 A2 post1 post0 ⇒ ...
    let mut pump_left: Vec<Symbol> = Vec::new();
    let mut pump_right_rev: Vec<Symbol> = Vec::new();
    let a0 = g.productions[cycle[0].0].head;
    for &(pi, pos) in cycle {
        let p = &g.productions[pi];
        for s in &p.body[..pos] {
            pump_left.extend(expand(*s));
        }
        for s in p.body[pos + 1..].iter().rev() {
            let mut e = expand(*s);
            e.reverse();
            pump_right_rev.extend(e);
        }
    }
    let mut pump_right = pump_right_rev;
    pump_right.reverse();
    debug_assert!(
        !pump_left.is_empty() || !pump_right.is_empty(),
        "cycle in cleaned grammar must pump"
    );
    // Context: S ⇒* prefix A0 suffix, by BFS over nonterminals.
    let (prefix, suffix) = context_of(g, a0, &shortest);
    let middle = shortest[a0.index()].clone().expect("generating");
    PumpWitness {
        prefix,
        pump_left,
        middle,
        pump_right,
        suffix,
        nonterminal: g.name(a0).to_owned(),
    }
}

/// Shortest terminal word derivable from each nonterminal (None if none —
/// cannot happen on cleaned grammars).
pub fn shortest_words(g: &Cfg) -> Vec<Option<Vec<Symbol>>> {
    let n = g.num_nonterminals();
    let mut best: Vec<Option<Vec<Symbol>>> = vec![None; n];
    let mut changed = true;
    while changed {
        changed = false;
        for p in &g.productions {
            let mut word: Vec<Symbol> = Vec::new();
            let mut ok = true;
            for s in &p.body {
                match s {
                    Sym::T(t) => word.push(*t),
                    Sym::N(m) => match &best[m.index()] {
                        Some(w) => word.extend_from_slice(w),
                        None => {
                            ok = false;
                            break;
                        }
                    },
                }
            }
            if !ok {
                continue;
            }
            let better = match &best[p.head.index()] {
                None => true,
                Some(cur) => word.len() < cur.len(),
            };
            if better {
                best[p.head.index()] = Some(word);
                changed = true;
            }
        }
    }
    best
}

/// Finds terminal strings `u, y` with `S ⇒* u A y` (shortest-ish, by BFS
/// over derivation contexts).
fn context_of(
    g: &Cfg,
    target: NonTerminal,
    shortest: &[Option<Vec<Symbol>>],
) -> (Vec<Symbol>, Vec<Symbol>) {
    // parent[n] = (production index, position) used to reach n from head
    let n = g.num_nonterminals();
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[g.start.index()] = true;
    let mut queue = std::collections::VecDeque::from([g.start]);
    while let Some(a) = queue.pop_front() {
        if a == target {
            break;
        }
        for (pi, p) in g.productions.iter().enumerate() {
            if p.head != a {
                continue;
            }
            for (pos, s) in p.body.iter().enumerate() {
                if let Sym::N(m) = s {
                    if !seen[m.index()] {
                        seen[m.index()] = true;
                        parent[m.index()] = Some((pi, pos));
                        queue.push_back(*m);
                    }
                }
            }
        }
    }
    // Unwind from target to start, accumulating expansions.
    let expand = |s: Sym| -> Vec<Symbol> {
        match s {
            Sym::T(t) => vec![t],
            Sym::N(nt) => shortest[nt.index()].clone().unwrap_or_default(),
        }
    };
    let mut prefix: Vec<Symbol> = Vec::new();
    let mut suffix: Vec<Symbol> = Vec::new();
    let mut cur = target;
    while cur != g.start {
        let (pi, pos) = parent[cur.index()].expect("target reachable from start");
        let p = &g.productions[pi];
        let mut pre: Vec<Symbol> = Vec::new();
        for s in &p.body[..pos] {
            pre.extend(expand(*s));
        }
        let mut post: Vec<Symbol> = Vec::new();
        for s in &p.body[pos + 1..] {
            post.extend(expand(*s));
        }
        pre.extend(prefix);
        prefix = pre;
        suffix.extend(post);
        cur = p.head;
    }
    (prefix, suffix)
}

/// Enumerates all words of `L(G)` with length ≤ `max_len`, in length-lex
/// order. Exact (uses a per-(nonterminal, length) dynamic program), so it
/// terminates on infinite languages too.
pub fn words_up_to(g: &Cfg, max_len: usize) -> Vec<Vec<Symbol>> {
    let (clean, eps) = normalize(g);
    let n = clean.num_nonterminals();
    // table[nt][len] = set of derivable words of exactly `len`
    let mut table: Vec<Vec<BTreeSet<Vec<Symbol>>>> = vec![vec![BTreeSet::new(); max_len + 1]; n];
    let mut changed = true;
    while changed {
        changed = false;
        for p in &clean.productions {
            // compose the body with all length splits
            let mut partials: Vec<Vec<Symbol>> = vec![Vec::new()];
            for s in &p.body {
                let mut next: Vec<Vec<Symbol>> = Vec::new();
                for w in &partials {
                    match s {
                        Sym::T(t) => {
                            if w.len() < max_len {
                                let mut w2 = w.clone();
                                w2.push(*t);
                                next.push(w2);
                            }
                        }
                        Sym::N(m) => {
                            for bucket in &table[m.index()][1..=(max_len - w.len())] {
                                for e in bucket {
                                    let mut w2 = w.clone();
                                    w2.extend_from_slice(e);
                                    next.push(w2);
                                }
                            }
                        }
                    }
                }
                partials = next;
                if partials.is_empty() {
                    break;
                }
            }
            for w in partials {
                let len = w.len();
                if len <= max_len && table[p.head.index()][len].insert(w) {
                    changed = true;
                }
            }
        }
    }
    let mut out: Vec<Vec<Symbol>> = Vec::new();
    if eps {
        out.push(Vec::new());
    }
    if n > 0 {
        for bucket in &table[clean.start.index()][1..=max_len] {
            out.extend(bucket.iter().cloned());
        }
    }
    out.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::CnfGrammar;

    #[test]
    fn emptiness() {
        assert!(is_empty(&Cfg::parse("s -> s a").unwrap()));
        assert!(!is_empty(&Cfg::parse("s -> a").unwrap()));
        assert!(!is_empty(&Cfg::parse("s -> eps").unwrap()));
    }

    #[test]
    fn finite_language_enumerated() {
        let g = Cfg::parse("s -> a b | a c | d").unwrap();
        match finiteness(&g) {
            Finiteness::Finite(words) => {
                assert_eq!(words.len(), 3);
                assert_eq!(words[0].len(), 1);
            }
            Finiteness::Infinite(_) => panic!("finite language reported infinite"),
        }
    }

    #[test]
    fn infinite_language_certified() {
        let g = Cfg::parse("anc -> par | anc par").unwrap();
        match finiteness(&g) {
            Finiteness::Infinite(w) => {
                let cnf = CnfGrammar::from_cfg(&g);
                for i in 0..5 {
                    assert!(cnf.accepts(&w.word(i)), "pumped word {i} not in L");
                }
                assert!(!w.pump_left.is_empty() || !w.pump_right.is_empty());
            }
            Finiteness::Finite(_) => panic!("infinite language reported finite"),
        }
    }

    #[test]
    fn balanced_pairs_pump_certificate() {
        let g = Cfg::parse("p -> b1 b2 | b1 p b2").unwrap();
        match finiteness(&g) {
            Finiteness::Infinite(w) => {
                let cnf = CnfGrammar::from_cfg(&g);
                for i in 0..4 {
                    assert!(cnf.accepts(&w.word(i)));
                }
                // both-sided pumping for the balanced language
                assert!(!w.pump_left.is_empty());
                assert!(!w.pump_right.is_empty());
            }
            Finiteness::Finite(_) => panic!(),
        }
    }

    #[test]
    fn hidden_recursion_is_not_infinite() {
        // t is recursive but non-generating; language is {a}, finite.
        let g = Cfg::parse("s -> a | t\nt -> t b").unwrap();
        assert!(finiteness(&g).is_finite());
    }

    #[test]
    fn unit_cycle_is_not_infinite() {
        let g = Cfg::parse("s -> t | a\nt -> s").unwrap();
        match finiteness(&g) {
            Finiteness::Finite(words) => assert_eq!(words.len(), 1),
            Finiteness::Infinite(_) => panic!("unit cycle mistaken for pumping"),
        }
    }

    #[test]
    fn words_up_to_matches_cyk() {
        let g = Cfg::parse("p -> b1 b2 | b1 p b2").unwrap();
        let words = words_up_to(&g, 6);
        assert_eq!(words.len(), 3); // b1b2, b1^2b2^2, b1^3b2^3
        let cnf = CnfGrammar::from_cfg(&g);
        for w in &words {
            assert!(cnf.accepts(w));
        }
    }

    #[test]
    fn words_up_to_with_epsilon() {
        let g = Cfg::parse("s -> eps | a s").unwrap();
        let words = words_up_to(&g, 3);
        assert_eq!(words.len(), 4); // ε, a, aa, aaa
        assert!(words[0].is_empty());
    }

    #[test]
    fn shortest_word_lengths() {
        let g = Cfg::parse("s -> a t b\nt -> c | s").unwrap();
        let (clean, _) = normalize(&g);
        let shortest = shortest_words(&clean);
        let s = clean.nonterminal("s").unwrap();
        assert_eq!(shortest[s.index()].as_ref().unwrap().len(), 3);
    }
}
