//! Right quotient of a context-free language by a regular language.
//!
//! Section 7 of the paper reads the magic-sets transformation on a chain
//! program `H` as the computation of **language quotients**: for each rule
//! `i` with "don't care" regular expression `R_i`, the magic predicate
//! corresponds to `L(H)/R_i = { x | ∃y ∈ R_i : xy ∈ L(H) }`. The quotient
//! of a CFL by a regular language is context-free, with an effective
//! grammar construction — implemented here — after which
//! [`crate::regular::approximate`] decides whether the quotient grammar is
//! strongly regular (as it is in the paper's `b1^n b2^n` worked example,
//! where both quotients come out as `b1 b1*`).

use selprop_automata::dfa::Dfa;

use crate::cfg::{Cfg, NonTerminal, Sym};
use crate::clean::normalize;

/// Constructs a CFG for the right quotient `L(g) / L(r)`.
///
/// Triple construction: a nonterminal `Q[A, q, q']` derives
/// `{ x | ∃y : A ⇒* xy, δ(q, y) = q' }` — `x` is the part kept by the
/// quotient, `y` the part consumed by a run of `r` from `q` to `q'`.
/// Original nonterminals are imported as `Orig[A]` copies to generate the
/// fully-kept prefixes `body[..i]`.
// The (q, q', i, mid) expansion walks four index spaces that jointly
// address `suffix`; iterator/enumerate forms obscure the DFA-state
// arithmetic the construction is about.
#[allow(clippy::needless_range_loop)]
pub fn right_quotient(g: &Cfg, r: &Dfa) -> Cfg {
    assert_eq!(
        g.alphabet, r.alphabet,
        "quotient requires a shared alphabet"
    );
    let (clean, eps_l) = normalize(g);
    let nq = r.num_states();
    let nn = clean.num_nonterminals();

    let mut out = Cfg::new(g.alphabet.clone(), "Q_start");
    let start = out.start;
    if nn == 0 || nq == 0 {
        if eps_l && r.accepts_word(&[]) {
            out.add_production(start, Vec::new());
        }
        return out;
    }

    // Copies of the original nonterminals (for prefixes kept wholesale).
    let orig: Vec<NonTerminal> = (0..nn)
        .map(|a| out.add_nonterminal(&format!("Orig[{}]", clean.nonterminal_names[a])))
        .collect();
    for p in &clean.productions {
        let body = p
            .body
            .iter()
            .map(|&s| match s {
                Sym::T(t) => Sym::T(t),
                Sym::N(b) => Sym::N(orig[b.index()]),
            })
            .collect();
        out.add_production(orig[p.head.index()], body);
    }

    // Reach[A][q][q'] = A derives some terminal z with δ(q, z) = q'.
    let reach = reachability(&clean, r);

    // Q-nonterminal ids, allocated lazily.
    let mut ids: Vec<Option<NonTerminal>> = vec![None; nn * nq * nq];
    let mut q_nt = |out: &mut Cfg, a: usize, q: usize, qp: usize| -> NonTerminal {
        let key = (a * nq + q) * nq + qp;
        if let Some(n) = ids[key] {
            return n;
        }
        let n = out.add_nonterminal(&format!("Q[{},{q},{qp}]", clean.nonterminal_names[a]));
        ids[key] = Some(n);
        n
    };

    // Start productions: L/R = ∪_f Q[S, start_R, f].
    for f in 0..nq {
        if r.is_accept(f) {
            let n = q_nt(&mut out, clean.start.index(), r.start(), f);
            out.add_production(start, vec![Sym::N(n)]);
        }
    }
    // ε ∈ L case: then ε ∈ L/R iff ε ∈ R.
    if eps_l && r.accepts_word(&[]) {
        out.add_production(start, Vec::new());
    }

    // Per-production expansion.
    for p in &clean.productions {
        let k = p.body.len();
        debug_assert!(k >= 1, "cleaned grammar is ε-free");
        // suffix[i][s][s'] = body[i..] can drive the DFA from s to s'.
        let mut suffix: Vec<Vec<Vec<bool>>> = Vec::with_capacity(k + 1);
        suffix.resize(k + 1, vec![vec![false; nq]; nq]);
        for (s, row) in suffix[k].iter_mut().enumerate() {
            row[s] = true;
        }
        for i in (0..k).rev() {
            let step = symbol_reach(r, p.body[i], &reach);
            let next = suffix[i + 1].clone();
            suffix[i] = compose(&step, &next, nq);
        }
        for q in 0..nq {
            for qp in 0..nq {
                for i in 0..k {
                    // x covers body[..i] fully and splits inside body[i];
                    // y's run: q --y_i--> mid, then body[i+1..] drives
                    // mid → q'.
                    for mid in 0..nq {
                        if !suffix[i + 1][mid][qp] {
                            continue;
                        }
                        let mut body: Vec<Sym> = p.body[..i]
                            .iter()
                            .map(|&s| match s {
                                Sym::T(t) => Sym::T(t),
                                Sym::N(b) => Sym::N(orig[b.index()]),
                            })
                            .collect();
                        match p.body[i] {
                            Sym::T(t) => {
                                if mid == q {
                                    // x_i = t, y_i = ε
                                    body.push(Sym::T(t));
                                } else if r.step(q, t) == mid {
                                    // x_i = ε, y_i = t: keep only the
                                    // prefix.
                                } else {
                                    continue;
                                }
                            }
                            Sym::N(b) => {
                                let n = q_nt(&mut out, b.index(), q, mid);
                                body.push(Sym::N(n));
                            }
                        }
                        let head = q_nt(&mut out, p.head.index(), q, qp);
                        out.add_production(head, body);
                    }
                }
            }
        }
    }
    out
}

/// `Reach[A][q][q']`: nonterminal `A` derives a terminal string driving
/// the DFA from `q` to `q'`. Monotone fixpoint over the productions.
fn reachability(g: &Cfg, r: &Dfa) -> Vec<Vec<Vec<bool>>> {
    let nq = r.num_states();
    let nn = g.num_nonterminals();
    let mut reach = vec![vec![vec![false; nq]; nq]; nn];
    let mut changed = true;
    while changed {
        changed = false;
        for p in &g.productions {
            let mut cur = identity(nq);
            for &s in &p.body {
                let step = symbol_reach(r, s, &reach);
                cur = compose(&cur, &step, nq);
            }
            let dst = &mut reach[p.head.index()];
            for q in 0..nq {
                for qp in 0..nq {
                    if cur[q][qp] && !dst[q][qp] {
                        dst[q][qp] = true;
                        changed = true;
                    }
                }
            }
        }
    }
    reach
}

fn identity(nq: usize) -> Vec<Vec<bool>> {
    let mut m = vec![vec![false; nq]; nq];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = true;
    }
    m
}

fn compose(a: &[Vec<bool>], b: &[Vec<bool>], nq: usize) -> Vec<Vec<bool>> {
    let mut m = vec![vec![false; nq]; nq];
    for q in 0..nq {
        for mid in 0..nq {
            if a[q][mid] {
                for qp in 0..nq {
                    if b[mid][qp] {
                        m[q][qp] = true;
                    }
                }
            }
        }
    }
    m
}

/// The state-pair relation of a single grammar symbol.
fn symbol_reach(r: &Dfa, s: Sym, reach: &[Vec<Vec<bool>>]) -> Vec<Vec<bool>> {
    let nq = r.num_states();
    match s {
        Sym::T(t) => {
            let mut m = vec![vec![false; nq]; nq];
            for (q, row) in m.iter_mut().enumerate() {
                row[r.step(q, t)] = true;
            }
            m
        }
        Sym::N(n) => reach[n.index()].clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::words_up_to;
    use crate::regular::approximate;
    use selprop_automata::equiv::equivalent;
    use selprop_automata::regex::Regex;
    use selprop_automata::Symbol;

    fn regex_dfa(g: &Cfg, text: &str) -> Dfa {
        let mut al = g.alphabet.clone();
        Regex::parse(text, &mut al).unwrap().to_dfa(&al)
    }

    /// Ground-truth quotient by enumeration.
    fn brute_quotient(g: &Cfg, r: &Dfa, max_x: usize, max_y: usize) -> Vec<Vec<Symbol>> {
        let lw = words_up_to(g, max_x + max_y);
        let rw = r.words_up_to(max_y);
        let mut out: Vec<Vec<Symbol>> = Vec::new();
        for w in &lw {
            for split in 0..=w.len() {
                let (x, y) = w.split_at(split);
                if x.len() <= max_x && rw.iter().any(|cand| cand == y) {
                    out.push(x.to_vec());
                }
            }
        }
        out.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        out.dedup();
        out
    }

    #[test]
    fn paper_worked_example_b1n_b2n() {
        // Section 7: H with L(H) = { b1^n b2^n : n ≥ 1 }; rule regular
        // expressions are * b2 b2* (for the recursive rule, reading the
        // suffix after the magic point) — the paper states both quotients
        // equal b1 b1* (a positive number of b1's).
        let g = Cfg::parse("p -> b1 b2 | b1 p b2").unwrap();
        // R = b2 b2* : suffixes that remain after the recursive descent.
        let r = regex_dfa(&g, "b2 b2*");
        let q = right_quotient(&g, &r);
        let approx = approximate(&q);
        // The quotient { b1^n b2^m : 1 ≤ m < n } / ... — compute expected:
        // x b2^j ∈ L with j ≥ 1 means x = b1^n b2^(n-j), j ≥ 1:
        // x ∈ { b1^n b2^i : 0 ≤ i < n }. That language is not regular;
        // the paper instead quotients by the *per-variable* pattern and
        // gets b1 b1*. Here we validate the construction itself against
        // brute force.
        let got = words_up_to(&q, 5);
        let want = brute_quotient(&g, &r, 5, 10);
        assert_eq!(got, want);
        let _ = approx;
    }

    #[test]
    fn paper_quotients_via_regular_envelope() {
        // Section 7's worked example, via the paper's own fallback: when
        // L(H)/R is not established regular, quotient the regular
        // envelope R(H) instead. Here R(H) = Mohri–Nederhof(L(H)) comes
        // out as the tight envelope b1+ b2+, and both rule patterns
        // * b1 b2 * and * b1 * b2 * give the quotient b1* — the magic set
        // of "nodes reachable from c by b1-edges" (the paper's `magic`
        // predicate: magic(c) seed plus b1-closure).
        let g = Cfg::parse("p -> b1 b2 | b1 p b2").unwrap();
        let envelope = approximate(&g);
        assert!(!envelope.exact);
        // envelope = b1+ b2+
        let tight = regex_dfa(&g, "b1 b1* b2 b2*");
        assert!(equivalent(&envelope.dfa(), &tight));
        // Rule 1 (p → b1 b2): pattern * b1 b2 * ; rule 2 (p → b1 p b2):
        // pattern * b1 * b2 *. Both quotients come out b1* — the magic
        // set "nodes reachable from c by b1-edges" (seed included).
        let rule1 = regex_dfa(&g, "(b1|b2)* b1 b2 (b1|b2)*");
        let rule2 = {
            let b1 = g.alphabet.get("b1").unwrap();
            let b2 = g.alphabet.get("b2").unwrap();
            selprop_automata::regex::Regex::dont_care_pattern(&g.alphabet, &[b1, b2])
                .to_dfa(&g.alphabet)
        };
        for (name, rdfa) in [("* b1 b2 *", rule1), ("* b1 * b2 *", rule2)] {
            let q = selprop_automata::ops::right_quotient(&envelope.dfa(), &rdfa);
            let expected = regex_dfa(&g, "b1*");
            assert!(equivalent(&q, &expected), "R(H)/({name}) should be b1*");
        }
    }

    #[test]
    fn cfg_quotient_agrees_with_brute_force_on_paper_example() {
        // The exact CFG quotient construction on the same example,
        // validated against enumeration (the quotient language here is
        // b1* ∪ { b1^n b2^m : m < n }, which is context-free but not
        // regular — the reason the paper's heuristic needs the envelope).
        let g = Cfg::parse("p -> b1 b2 | b1 p b2").unwrap();
        let r = {
            let b1 = g.alphabet.get("b1").unwrap();
            let b2 = g.alphabet.get("b2").unwrap();
            selprop_automata::regex::Regex::dont_care_pattern(&g.alphabet, &[b1, b2])
                .to_dfa(&g.alphabet)
        };
        let q = right_quotient(&g, &r);
        let got = words_up_to(&q, 4);
        let want = brute_quotient(&g, &r, 4, 12);
        assert_eq!(got, want);
    }

    #[test]
    fn quotient_matches_brute_force_regular_case() {
        let g = Cfg::parse("s -> a | a s b").unwrap(); // a^n+1 b^n-ish
        let r = regex_dfa(&g, "b*");
        let q = right_quotient(&g, &r);
        let got = words_up_to(&q, 5);
        let want = brute_quotient(&g, &r, 5, 10);
        assert_eq!(got, want);
    }

    #[test]
    fn quotient_by_epsilon_only() {
        let g = Cfg::parse("anc -> par | anc par").unwrap();
        let r = regex_dfa(&g, "ε");
        let q = right_quotient(&g, &r);
        // L/{ε} = L
        let got = words_up_to(&q, 4);
        let want = words_up_to(&g, 4);
        assert_eq!(got, want);
    }

    #[test]
    fn quotient_by_empty_is_empty() {
        let g = Cfg::parse("anc -> par | anc par").unwrap();
        let r = regex_dfa(&g, "∅");
        let q = right_quotient(&g, &r);
        assert!(crate::analysis::is_empty(&q));
    }

    #[test]
    fn quotient_with_epsilon_in_l() {
        let g = Cfg::parse("s -> eps | a s").unwrap(); // a*
        let r = regex_dfa(&g, "a a*");
        let q = right_quotient(&g, &r);
        // a*/a+ = a*
        let got = words_up_to(&q, 4);
        let want = words_up_to(&g, 4);
        assert_eq!(got, want);
    }

    #[test]
    fn quotient_whole_words() {
        // L = {ab}, R = {ab} → quotient contains ε.
        let g = Cfg::parse("s -> a b").unwrap();
        let r = regex_dfa(&g, "a b");
        let q = right_quotient(&g, &r);
        let words = words_up_to(&q, 3);
        assert_eq!(words, vec![Vec::<Symbol>::new()]);
    }
}
