//! Random sampling of words and derivations from a CFG.
//!
//! The experiment harness uses sampled words as workload seeds (paths to
//! embed in databases) and the test suite uses them as randomized
//! membership witnesses. Sampling is length-aware: it first computes
//! which (nonterminal, length) pairs are inhabited, then samples
//! uniformly over *derivation splits* — every word of the target length
//! has nonzero probability.

use rand::rngs::StdRng;
use rand::Rng;
#[cfg(test)]
use rand::SeedableRng;
use selprop_automata::alphabet::Symbol;

use crate::cfg::{Cfg, NonTerminal, Sym};
use crate::clean::normalize;

/// A length-aware sampler over a cleaned grammar.
pub struct Sampler {
    grammar: Cfg,
    /// `inhabited[nt][len]`: some word of exactly `len` derivable.
    inhabited: Vec<Vec<bool>>,
    max_len: usize,
    epsilon: bool,
}

impl Sampler {
    /// Prepares a sampler for words up to `max_len`.
    pub fn new(g: &Cfg, max_len: usize) -> Sampler {
        let (clean, epsilon) = normalize(g);
        let n = clean.num_nonterminals();
        let mut inhabited = vec![vec![false; max_len + 1]; n.max(1)];
        let mut changed = true;
        while changed {
            changed = false;
            for p in &clean.productions {
                // lengths reachable for this production body
                let mut reach = vec![false; max_len + 1];
                reach[0] = true;
                for s in &p.body {
                    let mut next = vec![false; max_len + 1];
                    for base in 0..=max_len {
                        if !reach[base] {
                            continue;
                        }
                        match s {
                            Sym::T(_) => {
                                if base < max_len {
                                    next[base + 1] = true;
                                }
                            }
                            Sym::N(m) => {
                                for l in 1..=(max_len - base) {
                                    if inhabited[m.index()][l] {
                                        next[base + l] = true;
                                    }
                                }
                            }
                        }
                    }
                    reach = next;
                }
                let dst = &mut inhabited[p.head.index()];
                for (len, &r) in reach.iter().enumerate() {
                    if r && !dst[len] {
                        dst[len] = true;
                        changed = true;
                    }
                }
            }
        }
        Sampler {
            grammar: clean,
            inhabited,
            max_len,
            epsilon,
        }
    }

    /// The inhabited word lengths of the start symbol, ascending.
    pub fn inhabited_lengths(&self) -> Vec<usize> {
        let mut out: Vec<usize> = Vec::new();
        if self.epsilon {
            out.push(0);
        }
        if self.grammar.num_nonterminals() > 0 {
            for len in 1..=self.max_len {
                if self.inhabited[self.grammar.start.index()][len] {
                    out.push(len);
                }
            }
        }
        out
    }

    /// Samples a word of exactly `len` from the start symbol, or `None`
    /// if no such word exists.
    pub fn sample(&self, len: usize, rng: &mut StdRng) -> Option<Vec<Symbol>> {
        if len == 0 {
            return self.epsilon.then(Vec::new);
        }
        if self.grammar.num_nonterminals() == 0
            || !self.inhabited[self.grammar.start.index()][len]
        {
            return None;
        }
        let mut out = Vec::new();
        self.expand(self.grammar.start, len, rng, &mut out);
        Some(out)
    }

    /// Samples a word of a random inhabited length ≤ `max_len`.
    pub fn sample_any(&self, rng: &mut StdRng) -> Option<Vec<Symbol>> {
        let lens = self.inhabited_lengths();
        if lens.is_empty() {
            return None;
        }
        let len = lens[rng.gen_range(0..lens.len())];
        self.sample(len, rng)
    }

    fn expand(&self, nt: NonTerminal, len: usize, rng: &mut StdRng, out: &mut Vec<Symbol>) {
        // candidate productions that can produce exactly `len`
        let candidates: Vec<&crate::cfg::Production> = self
            .grammar
            .productions_of(nt)
            .filter(|p| self.body_can(&p.body, len))
            .collect();
        debug_assert!(!candidates.is_empty(), "inhabited implies a candidate");
        let p = candidates[rng.gen_range(0..candidates.len())];
        // split `len` across the body left to right
        let mut remaining = len;
        let body = &p.body;
        for (i, s) in body.iter().enumerate() {
            match s {
                Sym::T(t) => {
                    out.push(*t);
                    remaining -= 1;
                }
                Sym::N(m) => {
                    // choose a length for this nonterminal such that the
                    // rest of the body can still consume the remainder
                    let rest = &body[i + 1..];
                    let choices: Vec<usize> = (1..=remaining)
                        .filter(|&l| {
                            self.inhabited[m.index()][l] && self.rest_can(rest, remaining - l)
                        })
                        .collect();
                    debug_assert!(!choices.is_empty());
                    let l = choices[rng.gen_range(0..choices.len())];
                    self.expand(*m, l, rng, out);
                    remaining -= l;
                }
            }
        }
        debug_assert_eq!(remaining, 0);
    }

    fn body_can(&self, body: &[Sym], len: usize) -> bool {
        self.rest_can(body, len)
    }

    fn rest_can(&self, rest: &[Sym], len: usize) -> bool {
        // DP over the suffix: can `rest` produce exactly `len`?
        let mut reach = vec![false; len + 1];
        reach[0] = true;
        for s in rest {
            let mut next = vec![false; len + 1];
            for base in 0..=len {
                if !reach[base] {
                    continue;
                }
                match s {
                    Sym::T(_) => {
                        if base < len {
                            next[base + 1] = true;
                        }
                    }
                    Sym::N(m) => {
                        for l in 1..=(len - base) {
                            if self.inhabited[m.index()][l] {
                                next[base + l] = true;
                            }
                        }
                    }
                }
            }
            reach = next;
        }
        reach[len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::CnfGrammar;

    #[test]
    fn samples_are_members() {
        let g = Cfg::parse("p -> b1 b2 | b1 p b2").unwrap();
        let cnf = CnfGrammar::from_cfg(&g);
        let sampler = Sampler::new(&g, 12);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let w = sampler.sample_any(&mut rng).expect("inhabited");
            assert!(cnf.accepts(&w), "sampled non-member {w:?}");
        }
    }

    #[test]
    fn exact_length_sampling() {
        let g = Cfg::parse("p -> b1 b2 | b1 p b2").unwrap();
        let sampler = Sampler::new(&g, 12);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sampler.sample(4, &mut rng).unwrap().len(), 4);
        assert!(sampler.sample(3, &mut rng).is_none(), "odd lengths empty");
        assert_eq!(sampler.inhabited_lengths(), vec![2, 4, 6, 8, 10, 12]);
    }

    #[test]
    fn nonlinear_grammar_sampling_covers_words() {
        // Program C grammar: par+ — every length inhabited
        let g = Cfg::parse("anc -> par | anc anc").unwrap();
        let sampler = Sampler::new(&g, 8);
        assert_eq!(sampler.inhabited_lengths().len(), 8);
        let mut rng = StdRng::seed_from_u64(3);
        for len in 1..=8 {
            assert_eq!(sampler.sample(len, &mut rng).unwrap().len(), len);
        }
    }

    #[test]
    fn epsilon_sampling() {
        let g = Cfg::parse("s -> eps | a s").unwrap();
        let sampler = Sampler::new(&g, 4);
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(sampler.sample(0, &mut rng), Some(vec![]));
        assert_eq!(sampler.inhabited_lengths(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_language_sampling() {
        let g = Cfg::parse("s -> s a").unwrap();
        let sampler = Sampler::new(&g, 5);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(sampler.sample_any(&mut rng).is_none());
    }

    #[test]
    fn distribution_touches_distinct_words() {
        // sanity: sampling length 6 of (a|b)^* grammar reaches multiple words
        let g = Cfg::parse("s -> a | b | a s | b s").unwrap();
        let sampler = Sampler::new(&g, 6);
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..60 {
            seen.insert(sampler.sample(3, &mut rng).unwrap());
        }
        assert!(seen.len() >= 4, "only {} distinct words sampled", seen.len());
    }
}
