//! Property-based tests for the CFG toolkit.
//!
//! Random small grammars over a 2-symbol alphabet are generated as raw
//! production lists; every analysis is cross-checked against CYK
//! membership and bounded enumeration.

use proptest::prelude::*;
use selprop_grammar::analysis::{finiteness, words_up_to, Finiteness};
use selprop_grammar::barhillel::intersect;
use selprop_grammar::cfg::{Cfg, NonTerminal, Sym};
use selprop_grammar::cnf::CnfGrammar;
use selprop_grammar::quotient::right_quotient;
use selprop_grammar::regular::approximate;
use selprop_grammar::self_embedding::{self_embedding, SelfEmbedding};
use selprop_grammar::sentential::sentential_forms;
use selprop_automata::alphabet::Alphabet;
use selprop_automata::regex::Regex;
use selprop_automata::Symbol;

const NT: usize = 3; // nonterminals per generated grammar
const MAX_BODY: usize = 3;

/// A random grammar over terminals {a, b} and nonterminals {n0, n1, n2}.
fn arb_cfg() -> impl Strategy<Value = Cfg> {
    // each production: (head in 0..NT, body of symbols encoded 0..=4)
    // 0 => a, 1 => b, 2..=4 => n0..n2
    let prod = (0..NT as u32, proptest::collection::vec(0u8..5, 0..=MAX_BODY));
    proptest::collection::vec(prod, 1..8).prop_map(|prods| {
        let al = Alphabet::from_names(["a", "b"]);
        let mut g = Cfg::new(al, "n0");
        for i in 1..NT {
            g.add_nonterminal(&format!("n{i}"));
        }
        for (head, body) in prods {
            let body: Vec<Sym> = body
                .into_iter()
                .map(|code| match code {
                    0 => Sym::T(Symbol(0)),
                    1 => Sym::T(Symbol(1)),
                    k => Sym::N(NonTerminal(u32::from(k) - 2)),
                })
                .collect();
            g.add_production(NonTerminal(head), body);
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn enumeration_agrees_with_cyk(g in arb_cfg()) {
        let cnf = CnfGrammar::from_cfg(&g);
        let words = words_up_to(&g, 5);
        // every enumerated word is accepted
        for w in &words {
            prop_assert!(cnf.accepts(w), "enumerated word rejected by CYK");
        }
        // every word of length ≤ 4 accepted by CYK is enumerated
        let mut frontier: Vec<Vec<Symbol>> = vec![vec![]];
        let mut all: Vec<Vec<Symbol>> = vec![vec![]];
        for _ in 0..4 {
            let mut next = Vec::new();
            for w in &frontier {
                for s in [Symbol(0), Symbol(1)] {
                    let mut w2 = w.clone();
                    w2.push(s);
                    next.push(w2);
                }
            }
            all.extend(next.iter().cloned());
            frontier = next;
        }
        for w in all {
            prop_assert_eq!(cnf.accepts(&w), words.contains(&w));
        }
    }

    #[test]
    fn finiteness_decision_is_sound(g in arb_cfg()) {
        match finiteness(&g) {
            Finiteness::Finite(words) => {
                // enumeration up to a larger bound finds nothing new
                let max = words.iter().map(Vec::len).max().unwrap_or(0);
                let more = words_up_to(&g, max + 3);
                prop_assert_eq!(words, more);
            }
            Finiteness::Infinite(w) => {
                let cnf = CnfGrammar::from_cfg(&g);
                for i in 0..4 {
                    prop_assert!(cnf.accepts(&w.word(i)),
                        "pump witness iteration {} not in language", i);
                }
                // pumping changes length
                prop_assert!(w.word(1).len() > w.word(0).len());
            }
        }
    }

    #[test]
    fn approximation_is_superset(g in arb_cfg()) {
        let approx = approximate(&g);
        let dfa = approx.dfa();
        for w in words_up_to(&g, 6) {
            prop_assert!(dfa.accepts_word(&w), "approximation lost a word");
        }
    }

    #[test]
    fn exact_approximation_is_equal(g in arb_cfg()) {
        let approx = approximate(&g);
        if approx.exact {
            // language of the automaton restricted to short words must
            // match the grammar's enumeration exactly
            let cnf = CnfGrammar::from_cfg(&g);
            for w in dfa_words(&approx.dfa(), 6) {
                prop_assert!(cnf.accepts(&w), "exact automaton gained a word");
            }
        }
    }

    #[test]
    fn nse_implies_exact(g in arb_cfg()) {
        if self_embedding(&g) == SelfEmbedding::No {
            let approx = approximate(&g);
            prop_assert!(approx.exact,
                "non-self-embedding grammar must compile exactly, got {:?}",
                approx.approximated_sccs);
        }
    }

    #[test]
    fn barhillel_is_exact_intersection(g in arb_cfg()) {
        let mut al = g.alphabet.clone();
        let r = Regex::parse("a (a|b)*", &mut al).unwrap().to_dfa(&al);
        let i = intersect(&g, &r);
        let cnf = CnfGrammar::from_cfg(&g);
        let icnf = CnfGrammar::from_cfg(&i);
        for w in all_words(5) {
            let expected = cnf.accepts(&w) && r.accepts_word(&w);
            prop_assert_eq!(icnf.accepts(&w), expected, "intersection wrong on {:?}", w);
        }
    }

    #[test]
    fn quotient_is_sound_and_complete(g in arb_cfg()) {
        let mut al = g.alphabet.clone();
        let r = Regex::parse("b*", &mut al).unwrap().to_dfa(&al);
        let q = right_quotient(&g, &r);
        let qcnf = CnfGrammar::from_cfg(&q);
        let lw = words_up_to(&g, 8);
        let rw = r.words_up_to(8);
        for x in all_words(4) {
            let expected = rw.iter().any(|y| {
                let mut xy = x.clone();
                xy.extend_from_slice(y);
                lw.contains(&xy)
            });
            // soundness+completeness up to the enumeration horizon: the
            // brute-force check only sees xy up to length 8, so only
            // require agreement when the CFG quotient also says yes with
            // a witness that short — here both directions hold because
            // r's pumping adds only b's and L's words ≤ 8 cover x ≤ 4.
            if expected {
                prop_assert!(qcnf.accepts(&x), "quotient missing {:?}", x);
            }
        }
    }

    #[test]
    fn sentential_forms_contain_language(g in arb_cfg()) {
        let sf = sentential_forms(&g);
        let lang = words_up_to(&g, 4);
        let forms = words_up_to(&sf, 4);
        for w in &lang {
            prop_assert!(forms.contains(w));
        }
    }
}

/// All words over {a, b} of length ≤ n.
fn all_words(n: usize) -> Vec<Vec<Symbol>> {
    let mut out: Vec<Vec<Symbol>> = vec![vec![]];
    let mut frontier: Vec<Vec<Symbol>> = vec![vec![]];
    for _ in 0..n {
        let mut next = Vec::new();
        for w in &frontier {
            for s in [Symbol(0), Symbol(1)] {
                let mut w2 = w.clone();
                w2.push(s);
                next.push(w2);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

fn dfa_words(dfa: &selprop_automata::Dfa, n: usize) -> Vec<Vec<Symbol>> {
    dfa.words_up_to(n)
}
