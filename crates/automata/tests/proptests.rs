//! Property-based tests for the regular-language toolkit.
//!
//! Strategy: generate random regular expressions over a 2-symbol alphabet,
//! compile them to DFAs, and check algebraic laws of the language algebra
//! against brute-force word enumeration.

use proptest::prelude::*;
use selprop_automata::alphabet::Alphabet;
use selprop_automata::dfa::Dfa;
use selprop_automata::equiv::{counterexample, equivalent, equivalent_hk, included};
use selprop_automata::minimize::{minimize, minimize_moore, tables_identical};
use selprop_automata::ops::{prefixes, right_quotient, suffixes};
use selprop_automata::regex::{dfa_to_regex, Regex};
use selprop_automata::Symbol;

fn alphabet() -> Alphabet {
    Alphabet::from_names(["a", "b"])
}

/// Random regex of bounded depth.
fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        Just(Regex::Sym(Symbol(0))),
        Just(Regex::Sym(Symbol(1))),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Regex::concat(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Regex::alt(a, b)),
            inner.prop_map(Regex::star),
        ]
    })
}

/// All words over {a, b} of length ≤ n.
fn all_words(n: usize) -> Vec<Vec<Symbol>> {
    let mut out: Vec<Vec<Symbol>> = vec![vec![]];
    let mut frontier: Vec<Vec<Symbol>> = vec![vec![]];
    for _ in 0..n {
        let mut next = Vec::new();
        for w in &frontier {
            for s in [Symbol(0), Symbol(1)] {
                let mut w2 = w.clone();
                w2.push(s);
                next.push(w2);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn minimization_preserves_language(re in arb_regex()) {
        let al = alphabet();
        let dfa = re.to_dfa(&al);
        let min = minimize(&dfa);
        for w in all_words(6) {
            prop_assert_eq!(dfa.accepts_word(&w), min.accepts_word(&w));
        }
    }

    #[test]
    fn hopcroft_agrees_with_moore(re in arb_regex()) {
        let al = alphabet();
        let dfa = re.to_dfa(&al);
        let m1 = minimize(&dfa);
        let m2 = minimize_moore(&dfa);
        prop_assert!(tables_identical(&m1, &m2));
    }

    #[test]
    fn minimal_dfa_is_no_larger(re in arb_regex()) {
        let al = alphabet();
        let dfa = re.to_dfa(&al);
        let min = minimize(&dfa);
        prop_assert!(min.num_states() <= dfa.num_states());
    }

    #[test]
    fn complement_is_involution(re in arb_regex()) {
        let al = alphabet();
        let dfa = re.to_dfa(&al);
        let cc = dfa.complement().complement();
        prop_assert!(equivalent(&dfa, &cc));
    }

    #[test]
    fn de_morgan(re1 in arb_regex(), re2 in arb_regex()) {
        let al = alphabet();
        let d1 = re1.to_dfa(&al);
        let d2 = re2.to_dfa(&al);
        let lhs = d1.union(&d2).complement();
        let rhs = d1.complement().intersect(&d2.complement());
        prop_assert!(equivalent(&lhs, &rhs));
    }

    #[test]
    fn equivalence_methods_agree(re1 in arb_regex(), re2 in arb_regex()) {
        let al = alphabet();
        let d1 = re1.to_dfa(&al);
        let d2 = re2.to_dfa(&al);
        let product = equivalent(&d1, &d2);
        let hk = equivalent_hk(&d1, &d2);
        let iso = tables_identical(&minimize(&d1), &minimize(&d2));
        prop_assert_eq!(product, hk);
        prop_assert_eq!(product, iso);
    }

    #[test]
    fn counterexample_is_sound(re1 in arb_regex(), re2 in arb_regex()) {
        let al = alphabet();
        let d1 = re1.to_dfa(&al);
        let d2 = re2.to_dfa(&al);
        match counterexample(&d1, &d2) {
            Some(ce) => {
                prop_assert_ne!(d1.accepts_word(&ce.word), d2.accepts_word(&ce.word));
                prop_assert_eq!(ce.in_a, d1.accepts_word(&ce.word));
            }
            None => prop_assert!(equivalent(&d1, &d2)),
        }
    }

    #[test]
    fn inclusion_is_reflexive_and_antisymmetric(re1 in arb_regex(), re2 in arb_regex()) {
        let al = alphabet();
        let d1 = re1.to_dfa(&al);
        let d2 = re2.to_dfa(&al);
        prop_assert!(included(&d1, &d1));
        if included(&d1, &d2) && included(&d2, &d1) {
            prop_assert!(equivalent(&d1, &d2));
        }
    }

    #[test]
    fn dfa_regex_roundtrip(re in arb_regex()) {
        let al = alphabet();
        let dfa = re.to_dfa(&al);
        let re2 = dfa_to_regex(&dfa);
        let dfa2 = re2.to_dfa(&al);
        prop_assert!(equivalent(&dfa, &dfa2));
    }

    #[test]
    fn quotient_by_epsilon_is_identity(re in arb_regex()) {
        let al = alphabet();
        let dfa = re.to_dfa(&al);
        let eps = Regex::Epsilon.to_dfa(&al);
        let q = right_quotient(&dfa, &eps);
        prop_assert!(equivalent(&q, &dfa));
    }

    #[test]
    fn quotient_matches_brute_force(re1 in arb_regex(), re2 in arb_regex()) {
        let al = alphabet();
        let l = re1.to_dfa(&al);
        let r = re2.to_dfa(&al);
        let q = right_quotient(&l, &r);
        // brute force on words up to length 4 (suffixes up to length 8)
        let lw = l.words_up_to(12);
        let rw = r.words_up_to(8);
        for x in all_words(4) {
            let expected = rw.iter().any(|y| {
                let mut xy = x.clone();
                xy.extend_from_slice(y);
                lw.contains(&xy)
            });
            prop_assert_eq!(q.accepts_word(&x), expected,
                "quotient mismatch on {:?}", x);
        }
    }

    #[test]
    fn prefix_closure_contains_language(re in arb_regex()) {
        let al = alphabet();
        let dfa = re.to_dfa(&al);
        let p = prefixes(&dfa);
        prop_assert!(included(&dfa, &p));
        // every prefix of an accepted word is accepted by p
        for w in dfa.words_up_to(5) {
            for i in 0..=w.len() {
                prop_assert!(p.accepts_word(&w[..i]));
            }
        }
    }

    #[test]
    fn suffix_closure_contains_language(re in arb_regex()) {
        let al = alphabet();
        let dfa = re.to_dfa(&al);
        let s = suffixes(&dfa);
        prop_assert!(included(&dfa, &s));
        for w in dfa.words_up_to(5) {
            for i in 0..=w.len() {
                prop_assert!(s.accepts_word(&w[i..]));
            }
        }
    }

    #[test]
    fn finiteness_agrees_with_enumeration_growth(re in arb_regex()) {
        let al = alphabet();
        let dfa = re.to_dfa(&al);
        let min = minimize(&dfa);
        if min.is_finite() {
            // every word longer than the state count is rejected
            let n = min.num_states();
            for w in min.words_up_to(n + 3) {
                prop_assert!(w.len() <= n);
            }
        } else {
            // there are accepted words longer than the state count
            let n = min.num_states();
            let has_long = !min
                .words_up_to(2 * n + 2)
                .iter()
                .all(|w| w.len() <= n);
            prop_assert!(has_long);
        }
    }

    #[test]
    fn count_words_matches_enumeration(re in arb_regex()) {
        let al = alphabet();
        let dfa = re.to_dfa(&al);
        let counts = dfa.count_words_by_length(5);
        let words = dfa.words_up_to(5);
        for (len, &count) in counts.iter().enumerate().take(6) {
            let n = words.iter().filter(|w| w.len() == len).count() as u64;
            prop_assert_eq!(count, n);
        }
    }

    #[test]
    fn nfa_reversal_is_involution_on_language(re in arb_regex()) {
        let al = alphabet();
        let dfa = re.to_dfa(&al);
        let rev2 = Dfa::from_nfa(&dfa.to_nfa().reversed().reversed());
        prop_assert!(equivalent(&dfa, &rev2));
    }
}
