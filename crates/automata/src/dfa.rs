//! Deterministic finite automata: subset construction, products,
//! complement, and the language queries (emptiness, finiteness,
//! membership, shortest word, bounded enumeration) that drive the
//! decision procedures of Theorem 3.3 and Section 7.

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::alphabet::{Alphabet, Symbol};
use crate::nfa::{Nfa, StateId};

/// A deterministic finite automaton.
///
/// The transition function is *total*: every state has an outgoing edge on
/// every alphabet symbol. Totality is maintained by construction (a sink
/// state is added when needed), which makes complementation a pure
/// accept-flip and keeps product constructions simple.
#[derive(Clone, Debug)]
pub struct Dfa {
    /// Shared alphabet.
    pub alphabet: Alphabet,
    /// `transitions[q][a.index()]` is the unique successor of `q` on `a`.
    transitions: Vec<Vec<StateId>>,
    /// Initial state.
    start: StateId,
    /// `accepting[q]` marks accepting states.
    accepting: Vec<bool>,
}

impl Dfa {
    /// Builds a DFA from raw parts. `transitions[q]` must have exactly one
    /// entry per alphabet symbol.
    pub fn from_parts(
        alphabet: Alphabet,
        transitions: Vec<Vec<StateId>>,
        start: StateId,
        accepting: Vec<bool>,
    ) -> Self {
        let k = alphabet.len();
        assert_eq!(transitions.len(), accepting.len());
        assert!(start < transitions.len() || transitions.is_empty());
        for row in &transitions {
            assert_eq!(row.len(), k, "transition table must be total");
        }
        Self {
            alphabet,
            transitions,
            start,
            accepting,
        }
    }

    /// Determinizes an NFA by subset construction (ε-closures included).
    pub fn from_nfa(nfa: &Nfa) -> Self {
        let alphabet = nfa.alphabet.clone();
        let symbols: Vec<Symbol> = alphabet.symbols().collect();
        let mut subset_ids: HashMap<BTreeSet<StateId>, StateId> = HashMap::new();
        let mut transitions: Vec<Vec<StateId>> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();
        let mut queue: VecDeque<BTreeSet<StateId>> = VecDeque::new();

        let start_set = nfa.epsilon_closure(nfa.starts());
        subset_ids.insert(start_set.clone(), 0);
        transitions.push(vec![usize::MAX; symbols.len()]);
        accepting.push(start_set.iter().any(|&q| nfa.is_accept(q)));
        queue.push_back(start_set);

        while let Some(set) = queue.pop_front() {
            let id = subset_ids[&set];
            for &a in &symbols {
                let mut next = BTreeSet::new();
                for &q in &set {
                    next.extend(nfa.successors(q, a));
                }
                let next = nfa.epsilon_closure(&next);
                let next_id = *subset_ids.entry(next.clone()).or_insert_with(|| {
                    let nid = transitions.len();
                    transitions.push(vec![usize::MAX; symbols.len()]);
                    accepting.push(next.iter().any(|&q| nfa.is_accept(q)));
                    queue.push_back(next);
                    nid
                });
                transitions[id][a.index()] = next_id;
            }
        }
        Self {
            alphabet,
            transitions,
            start: 0,
            accepting,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Initial state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Whether state `q` is accepting.
    pub fn is_accept(&self, q: StateId) -> bool {
        self.accepting[q]
    }

    /// The unique successor of `q` on symbol `a`.
    pub fn step(&self, q: StateId, a: Symbol) -> StateId {
        self.transitions[q][a.index()]
    }

    /// Runs the DFA on `word` from the start state.
    pub fn run(&self, word: &[Symbol]) -> StateId {
        word.iter().fold(self.start, |q, &a| self.step(q, a))
    }

    /// Whether the DFA accepts `word`.
    pub fn accepts_word(&self, word: &[Symbol]) -> bool {
        self.accepting[self.run(word)]
    }

    /// Complement: accepts exactly the words this DFA rejects.
    pub fn complement(&self) -> Dfa {
        let mut out = self.clone();
        for b in &mut out.accepting {
            *b = !*b;
        }
        out
    }

    /// Product construction with a boolean combiner on acceptance.
    ///
    /// `combine(self_accepts, other_accepts)` decides acceptance of the
    /// pair state; intersection, union and difference are thin wrappers.
    pub fn product(&self, other: &Dfa, combine: impl Fn(bool, bool) -> bool) -> Dfa {
        assert_eq!(
            self.alphabet, other.alphabet,
            "product requires a shared alphabet"
        );
        let symbols: Vec<Symbol> = self.alphabet.symbols().collect();
        let mut ids: HashMap<(StateId, StateId), StateId> = HashMap::new();
        let mut transitions: Vec<Vec<StateId>> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();
        let mut queue = VecDeque::new();

        let start = (self.start, other.start);
        ids.insert(start, 0);
        transitions.push(vec![usize::MAX; symbols.len()]);
        accepting.push(combine(
            self.accepting[start.0],
            other.accepting[start.1],
        ));
        queue.push_back(start);

        while let Some((p, q)) = queue.pop_front() {
            let id = ids[&(p, q)];
            for &a in &symbols {
                let next = (self.step(p, a), other.step(q, a));
                let next_id = *ids.entry(next).or_insert_with(|| {
                    let nid = transitions.len();
                    transitions.push(vec![usize::MAX; symbols.len()]);
                    accepting.push(combine(self.accepting[next.0], other.accepting[next.1]));
                    queue.push_back(next);
                    nid
                });
                transitions[id][a.index()] = next_id;
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            transitions,
            start: 0,
            accepting,
        }
    }

    /// Intersection of languages.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        self.product(other, |x, y| x && y)
    }

    /// Union of languages.
    pub fn union(&self, other: &Dfa) -> Dfa {
        self.product(other, |x, y| x || y)
    }

    /// Difference `L(self) \ L(other)`.
    pub fn difference(&self, other: &Dfa) -> Dfa {
        self.product(other, |x, y| x && !y)
    }

    /// Symmetric difference — empty iff the two languages are equal.
    pub fn symmetric_difference(&self, other: &Dfa) -> Dfa {
        self.product(other, |x, y| x != y)
    }

    /// Whether the language is empty (no accepting state reachable).
    pub fn is_empty(&self) -> bool {
        self.find_accepted_word().is_none()
    }

    /// A shortest accepted word, if any (BFS).
    pub fn find_accepted_word(&self) -> Option<Vec<Symbol>> {
        if self.transitions.is_empty() {
            return None;
        }
        let symbols: Vec<Symbol> = self.alphabet.symbols().collect();
        let mut pred: Vec<Option<(StateId, Symbol)>> = vec![None; self.num_states()];
        let mut seen = vec![false; self.num_states()];
        let mut queue = VecDeque::new();
        seen[self.start] = true;
        queue.push_back(self.start);
        let mut hit = None;
        if self.accepting[self.start] {
            hit = Some(self.start);
        }
        while hit.is_none() {
            let Some(q) = queue.pop_front() else { break };
            for &a in &symbols {
                let r = self.step(q, a);
                if !seen[r] {
                    seen[r] = true;
                    pred[r] = Some((q, a));
                    if self.accepting[r] {
                        hit = Some(r);
                    }
                    queue.push_back(r);
                }
            }
        }
        let mut q = hit?;
        let mut word = Vec::new();
        while let Some((p, a)) = pred[q] {
            word.push(a);
            q = p;
        }
        word.reverse();
        Some(word)
    }

    /// Whether the language is finite.
    ///
    /// The language is infinite iff some state that is both reachable from
    /// the start and co-reachable to an accepting state lies on a cycle.
    pub fn is_finite(&self) -> bool {
        let live = self.live_states();
        // Detect a cycle within the live subgraph via iterative DFS coloring.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color = vec![Color::White; self.num_states()];
        let symbols: Vec<Symbol> = self.alphabet.symbols().collect();
        for &root in &live {
            if color[root] != Color::White {
                continue;
            }
            // stack of (state, next symbol index to explore)
            let mut stack: Vec<(StateId, usize)> = vec![(root, 0)];
            color[root] = Color::Gray;
            while let Some(&mut (q, ref mut i)) = stack.last_mut() {
                if *i < symbols.len() {
                    let a = symbols[*i];
                    *i += 1;
                    let r = self.step(q, a);
                    if !live.contains(&r) {
                        continue;
                    }
                    match color[r] {
                        Color::Gray => return false, // cycle among live states
                        Color::White => {
                            color[r] = Color::Gray;
                            stack.push((r, 0));
                        }
                        Color::Black => {}
                    }
                } else {
                    color[q] = Color::Black;
                    stack.pop();
                }
            }
        }
        true
    }

    /// States reachable from the start *and* co-reachable to acceptance.
    pub fn live_states(&self) -> BTreeSet<StateId> {
        if self.transitions.is_empty() {
            return BTreeSet::new();
        }
        let symbols: Vec<Symbol> = self.alphabet.symbols().collect();
        // forward reachability
        let mut fwd = vec![false; self.num_states()];
        let mut queue = VecDeque::from([self.start]);
        fwd[self.start] = true;
        while let Some(q) = queue.pop_front() {
            for &a in &symbols {
                let r = self.step(q, a);
                if !fwd[r] {
                    fwd[r] = true;
                    queue.push_back(r);
                }
            }
        }
        // backward reachability from accepting states
        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); self.num_states()];
        for q in 0..self.num_states() {
            for &a in &symbols {
                rev[self.step(q, a)].push(q);
            }
        }
        let mut bwd = vec![false; self.num_states()];
        let mut queue: VecDeque<StateId> = (0..self.num_states())
            .filter(|&q| self.accepting[q])
            .collect();
        for &q in &queue {
            bwd[q] = true;
        }
        while let Some(q) = queue.pop_front() {
            for &p in &rev[q] {
                if !bwd[p] {
                    bwd[p] = true;
                    queue.push_back(p);
                }
            }
        }
        (0..self.num_states())
            .filter(|&q| fwd[q] && bwd[q])
            .collect()
    }

    /// Enumerates all accepted words of length at most `max_len`,
    /// in length-lexicographic order.
    pub fn words_up_to(&self, max_len: usize) -> Vec<Vec<Symbol>> {
        let symbols: Vec<Symbol> = self.alphabet.symbols().collect();
        let mut out = Vec::new();
        // frontier of (state, word) pairs at the current length
        let mut frontier: Vec<(StateId, Vec<Symbol>)> = vec![(self.start, Vec::new())];
        if self.accepting[self.start] {
            out.push(Vec::new());
        }
        for _ in 0..max_len {
            let mut next = Vec::new();
            for (q, w) in &frontier {
                for &a in &symbols {
                    let r = self.step(*q, a);
                    // prune states that can never reach acceptance
                    let mut w2 = w.clone();
                    w2.push(a);
                    if self.accepting[r] {
                        out.push(w2.clone());
                    }
                    next.push((r, w2));
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        out.sort_by(|x, y| x.len().cmp(&y.len()).then_with(|| x.cmp(y)));
        out.dedup();
        out
    }

    /// Counts accepted words of each length `0..=max_len` (dynamic
    /// programming; useful for the experiment harness's language-size
    /// series).
    pub fn count_words_by_length(&self, max_len: usize) -> Vec<u64> {
        let symbols: Vec<Symbol> = self.alphabet.symbols().collect();
        let n = self.num_states();
        let mut counts = Vec::with_capacity(max_len + 1);
        // paths[q] = number of paths of current length from start to q
        let mut paths = vec![0u64; n];
        paths[self.start] = 1;
        let accepted =
            |paths: &[u64]| -> u64 { (0..n).filter(|&q| self.accepting[q]).map(|q| paths[q]).sum() };
        counts.push(accepted(&paths));
        for _ in 0..max_len {
            let mut next = vec![0u64; n];
            for (q, &count) in paths.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                for &a in &symbols {
                    let r = self.step(q, a);
                    next[r] = next[r].saturating_add(count);
                }
            }
            paths = next;
            counts.push(accepted(&paths));
        }
        counts
    }

    /// All accepted words of a finite language. Panics if the language is
    /// infinite (check [`Dfa::is_finite`] first).
    pub fn finite_language(&self) -> Vec<Vec<Symbol>> {
        assert!(self.is_finite(), "finite_language on an infinite language");
        // Any accepted word of a finite language has length < number of
        // live states (otherwise it would repeat a live state, giving a
        // pumpable cycle).
        let bound = self.live_states().len();
        self.words_up_to(bound)
    }

    /// Converts back to an NFA (for reuse of NFA combinators).
    pub fn to_nfa(&self) -> Nfa {
        let mut nfa = Nfa::new(self.alphabet.clone());
        for _ in 0..self.num_states() {
            nfa.add_state();
        }
        for q in 0..self.num_states() {
            for a in self.alphabet.symbols() {
                nfa.add_transition(q, a, self.step(q, a));
            }
            if self.accepting[q] {
                nfa.set_accept(q);
            }
        }
        if self.num_states() > 0 {
            nfa.set_start(self.start);
        }
        nfa
    }

    /// The accepting-state bitmap.
    pub fn accepting(&self) -> &[bool] {
        &self.accepting
    }

    /// The raw transition table (`[state][symbol index] -> state`).
    pub fn transition_table(&self) -> &[Vec<StateId>] {
        &self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn ab() -> (Alphabet, Symbol, Symbol) {
        let a = Alphabet::from_names(["a", "b"]);
        (a.clone(), a.get("a").unwrap(), a.get("b").unwrap())
    }

    fn word_dfa(word: &[Symbol]) -> Dfa {
        let (al, _, _) = ab();
        Dfa::from_nfa(&Nfa::from_word(al, word))
    }

    #[test]
    fn determinization_preserves_language() {
        let (al, a, b) = ab();
        // (ab)* via NFA combinators
        let nfa = Nfa::from_word(al.clone(), &[a])
            .concat(&Nfa::from_word(al, &[b]))
            .star();
        let dfa = Dfa::from_nfa(&nfa);
        assert!(dfa.accepts_word(&[]));
        assert!(dfa.accepts_word(&[a, b]));
        assert!(dfa.accepts_word(&[a, b, a, b]));
        assert!(!dfa.accepts_word(&[a]));
        assert!(!dfa.accepts_word(&[b, a]));
    }

    #[test]
    fn complement_flips_membership() {
        let (_, a, b) = ab();
        let dfa = word_dfa(&[a, b]);
        let comp = dfa.complement();
        assert!(!comp.accepts_word(&[a, b]));
        assert!(comp.accepts_word(&[]));
        assert!(comp.accepts_word(&[b, a]));
    }

    #[test]
    fn products() {
        let (al, a, b) = ab();
        // L1 = words starting with a; L2 = words ending with b
        let starts_a = Dfa::from_nfa(
            &Nfa::from_word(al.clone(), &[a]).concat(&Nfa::sigma_star(al.clone())),
        );
        let ends_b =
            Dfa::from_nfa(&Nfa::sigma_star(al.clone()).concat(&Nfa::from_word(al, &[b])));
        let both = starts_a.intersect(&ends_b);
        assert!(both.accepts_word(&[a, b]));
        assert!(both.accepts_word(&[a, a, b]));
        assert!(!both.accepts_word(&[a, a]));
        assert!(!both.accepts_word(&[b, a, b]));
        let either = starts_a.union(&ends_b);
        assert!(either.accepts_word(&[a, a]));
        assert!(either.accepts_word(&[b, b]));
        assert!(!either.accepts_word(&[b, a]));
        let diff = starts_a.difference(&ends_b);
        assert!(diff.accepts_word(&[a, a]));
        assert!(!diff.accepts_word(&[a, b]));
    }

    #[test]
    fn emptiness_and_shortest_word() {
        let (al, a, b) = ab();
        let dfa = word_dfa(&[a, b, b]);
        assert!(!dfa.is_empty());
        assert_eq!(dfa.find_accepted_word().unwrap(), vec![a, b, b]);
        let empty = Dfa::from_nfa(&Nfa::empty(al));
        assert!(empty.is_empty());
        assert!(empty.find_accepted_word().is_none());
    }

    #[test]
    fn finiteness() {
        let (al, a, b) = ab();
        assert!(word_dfa(&[a, b]).is_finite());
        let star = Dfa::from_nfa(&Nfa::from_word(al.clone(), &[a]).star());
        assert!(!star.is_finite());
        let empty = Dfa::from_nfa(&Nfa::empty(al));
        assert!(empty.is_finite());
    }

    #[test]
    fn finite_language_enumeration() {
        let (al, a, b) = ab();
        let n1 = Nfa::from_word(al.clone(), &[a, b]);
        let n2 = Nfa::from_word(al, &[b]);
        let dfa = Dfa::from_nfa(&n1.union(&n2));
        let words = dfa.finite_language();
        assert_eq!(words, vec![vec![b], vec![a, b]]);
    }

    #[test]
    fn words_up_to_enumerates_in_order() {
        let (al, a, _) = ab();
        let star = Dfa::from_nfa(&Nfa::from_word(al, &[a]).star());
        let words = star.words_up_to(3);
        assert_eq!(words, vec![vec![], vec![a], vec![a, a], vec![a, a, a]]);
    }

    #[test]
    fn count_words_by_length_matches_enumeration() {
        let (al, a, b) = ab();
        // all words over {a,b}: counts should be 1,2,4,8
        let all = Dfa::from_nfa(&Nfa::sigma_star(al));
        assert_eq!(all.count_words_by_length(3), vec![1, 2, 4, 8]);
        let ab_dfa = word_dfa(&[a, b]);
        assert_eq!(ab_dfa.count_words_by_length(3), vec![0, 0, 1, 0]);
    }

    #[test]
    fn symmetric_difference_detects_equality() {
        let (al, a, b) = ab();
        let l1 = Nfa::from_word(al.clone(), &[a]).concat(&Nfa::from_word(al.clone(), &[b]));
        let l2 = Nfa::from_word(al, &[a, b]);
        let d1 = Dfa::from_nfa(&l1);
        let d2 = Dfa::from_nfa(&l2);
        assert!(d1.symmetric_difference(&d2).is_empty());
    }
}
