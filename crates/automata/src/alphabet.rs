//! Interned alphabets.
//!
//! Every regular-language object in this crate (and every grammar in
//! `selprop-grammar`) works over an [`Alphabet`]: an interning table from
//! human-readable symbol names (the EDB predicate names of a chain program,
//! e.g. `"par"`, `"b1"`) to dense [`Symbol`] ids. Dense ids keep transition
//! tables small and comparisons branch-free.

use std::collections::HashMap;
use std::fmt;

/// An interned terminal symbol (letter) of an [`Alphabet`].
///
/// `Symbol` is a plain index newtype: cheap to copy, hash and compare. A
/// `Symbol` is only meaningful together with the alphabet that produced it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The position of this symbol in its alphabet, as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// An interning table of symbol names.
///
/// In the paper's setting the alphabet is the set of EDB predicates
/// `Σ = {b_1, ..., b_k}` of a chain program (Section 3). The same alphabet
/// is shared between the grammar `G(H)`, the language `L(H)` and all the
/// automata derived from them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Alphabet {
    names: Vec<String>,
    index: HashMap<String, Symbol>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an alphabet from a list of names, interning them in order.
    ///
    /// Duplicate names are interned once; the returned alphabet preserves
    /// first-occurrence order.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut a = Self::new();
        for n in names {
            a.intern(n.as_ref());
        }
        a
    }

    /// Interns `name`, returning its symbol. Idempotent.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&s) = self.index.get(name) {
            return s;
        }
        let s = Symbol(u32::try_from(self.names.len()).expect("alphabet too large"));
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), s);
        s
    }

    /// Looks up a previously interned name.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.index.get(name).copied()
    }

    /// The name of a symbol. Panics if the symbol is not from this alphabet.
    pub fn name(&self, s: Symbol) -> &str {
        &self.names[s.index()]
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all symbols in interning order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.names.len() as u32).map(Symbol)
    }

    /// Renders a word (slice of symbols) as a dot-free concatenation of
    /// names separated by spaces, or `"ε"` for the empty word.
    pub fn render_word(&self, word: &[Symbol]) -> String {
        if word.is_empty() {
            return "ε".to_owned();
        }
        word.iter()
            .map(|&s| self.name(s))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut a = Alphabet::new();
        let b1 = a.intern("b1");
        let b2 = a.intern("b2");
        assert_ne!(b1, b2);
        assert_eq!(a.intern("b1"), b1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn lookup_and_names() {
        let a = Alphabet::from_names(["par", "b1", "b2", "par"]);
        assert_eq!(a.len(), 3);
        let par = a.get("par").unwrap();
        assert_eq!(a.name(par), "par");
        assert!(a.get("missing").is_none());
    }

    #[test]
    fn symbols_iterates_in_order() {
        let a = Alphabet::from_names(["x", "y"]);
        let syms: Vec<_> = a.symbols().collect();
        assert_eq!(syms, vec![Symbol(0), Symbol(1)]);
    }

    #[test]
    fn render_word_formats() {
        let a = Alphabet::from_names(["b1", "b2"]);
        let b1 = a.get("b1").unwrap();
        let b2 = a.get("b2").unwrap();
        assert_eq!(a.render_word(&[]), "ε");
        assert_eq!(a.render_word(&[b1, b2, b1]), "b1 b2 b1");
    }
}
