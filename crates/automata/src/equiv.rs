//! Language equivalence and inclusion for regular languages.
//!
//! Two independent algorithms are provided and cross-checked by the test
//! suite:
//!
//! 1. product automaton + emptiness (`L1 ⊆ L2 iff L1 ∩ ¬L2 = ∅`), and
//! 2. Hopcroft–Karp style union-find bisimulation on the pair graph,
//!
//! plus a counterexample extractor. These power the "outputs identical"
//! validation of every rewrite the propagation engine produces, and the
//! `Language(φ) = L(H)` checks of the WS1S experiments (Lemma 5.1).

use std::collections::{HashMap, VecDeque};

use crate::alphabet::Symbol;
use crate::dfa::Dfa;

/// Whether `L(a) ⊆ L(b)`, by emptiness of `a ∩ ¬b`.
pub fn included(a: &Dfa, b: &Dfa) -> bool {
    a.difference(b).is_empty()
}

/// Whether `L(a) = L(b)`, by emptiness of the symmetric difference.
pub fn equivalent(a: &Dfa, b: &Dfa) -> bool {
    a.symmetric_difference(b).is_empty()
}

/// A shortest word in exactly one of the two languages, or `None` if the
/// languages are equal. The witness reports which side contains it.
pub fn counterexample(a: &Dfa, b: &Dfa) -> Option<Counterexample> {
    let diff = a.symmetric_difference(b);
    let word = diff.find_accepted_word()?;
    let in_a = a.accepts_word(&word);
    Some(Counterexample { word, in_a })
}

/// A word distinguishing two regular languages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counterexample {
    /// The distinguishing word.
    pub word: Vec<Symbol>,
    /// `true` if the word belongs to the first language (and not the
    /// second); `false` for the converse.
    pub in_a: bool,
}

/// Hopcroft–Karp union-find equivalence check (no product automaton is
/// materialized; pairs are merged on the fly).
pub fn equivalent_hk(a: &Dfa, b: &Dfa) -> bool {
    assert_eq!(a.alphabet, b.alphabet, "equivalence requires a shared alphabet");
    let symbols: Vec<Symbol> = a.alphabet.symbols().collect();
    // Union-find over the disjoint union of state spaces:
    // ids 0..a.n are a's states, a.n.. are b's.
    let offset = a.num_states();
    let total = offset + b.num_states();
    let mut parent: Vec<usize> = (0..total).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut queue = VecDeque::new();
    queue.push_back((a.start(), b.start()));
    while let Some((p, q)) = queue.pop_front() {
        let rp = find(&mut parent, p);
        let rq = find(&mut parent, offset + q);
        if rp == rq {
            continue;
        }
        if a.is_accept(p) != b.is_accept(q) {
            return false;
        }
        parent[rp] = rq;
        for &s in &symbols {
            queue.push_back((a.step(p, s), b.step(q, s)));
        }
    }
    true
}

/// Memoized two-way inclusion testing for batches of pairs; useful in the
/// containment experiments (E10) where many grammar-derived DFAs are
/// compared pairwise.
#[derive(Default)]
pub struct InclusionCache {
    cache: HashMap<(usize, usize), bool>,
}

impl InclusionCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tests `L(dfas[i]) ⊆ L(dfas[j])`, memoizing on the index pair.
    pub fn included(&mut self, dfas: &[Dfa], i: usize, j: usize) -> bool {
        if let Some(&r) = self.cache.get(&(i, j)) {
            return r;
        }
        let r = included(&dfas[i], &dfas[j]);
        self.cache.insert((i, j), r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::nfa::Nfa;

    fn setup() -> (Alphabet, Symbol, Symbol) {
        let al = Alphabet::from_names(["a", "b"]);
        (al.clone(), al.get("a").unwrap(), al.get("b").unwrap())
    }

    #[test]
    fn inclusion_basic() {
        let (al, a, b) = setup();
        let ab = Dfa::from_nfa(&Nfa::from_word(al.clone(), &[a, b]));
        let all = Dfa::from_nfa(&Nfa::sigma_star(al));
        assert!(included(&ab, &all));
        assert!(!included(&all, &ab));
        let _ = b;
    }

    #[test]
    fn equivalence_of_different_constructions() {
        let (al, a, b) = setup();
        // a(ba)* vs (ab)*a
        let l1 = Nfa::from_word(al.clone(), &[a]).concat(&Nfa::from_word(al.clone(), &[b, a]).star());
        let l2 = Nfa::from_word(al.clone(), &[a, b]).star().concat(&Nfa::from_word(al, &[a]));
        let d1 = Dfa::from_nfa(&l1);
        let d2 = Dfa::from_nfa(&l2);
        assert!(equivalent(&d1, &d2));
        assert!(equivalent_hk(&d1, &d2));
    }

    #[test]
    fn counterexample_is_shortest() {
        let (al, a, b) = setup();
        // a* vs a*b? differ on shortest word "b"? a* = {ε,a,aa,...}; a*b adds words ending in b.
        let d1 = Dfa::from_nfa(&Nfa::from_word(al.clone(), &[a]).star());
        let d2 = Dfa::from_nfa(
            &Nfa::from_word(al.clone(), &[a])
                .star()
                .concat(&Nfa::from_word(al, &[b])),
        );
        let ce = counterexample(&d1, &d2).unwrap();
        // shortest distinguishing word: ε (in a*, not in a*b)
        assert_eq!(ce.word, Vec::<Symbol>::new());
        assert!(ce.in_a);
    }

    #[test]
    fn counterexample_none_for_equal() {
        let (al, a, _) = setup();
        let d1 = Dfa::from_nfa(&Nfa::from_word(al.clone(), &[a]));
        let d2 = Dfa::from_nfa(&Nfa::from_word(al, &[a]));
        assert!(counterexample(&d1, &d2).is_none());
    }

    #[test]
    fn hk_disagrees_on_acceptance_mismatch() {
        let (al, a, _) = setup();
        let d1 = Dfa::from_nfa(&Nfa::from_word(al.clone(), &[a]));
        let d2 = Dfa::from_nfa(&Nfa::from_word(al, &[a, a]));
        assert!(!equivalent_hk(&d1, &d2));
        assert!(!equivalent(&d1, &d2));
    }

    #[test]
    fn inclusion_cache_memoizes() {
        let (al, a, _) = setup();
        let d1 = Dfa::from_nfa(&Nfa::from_word(al.clone(), &[a]));
        let d2 = Dfa::from_nfa(&Nfa::from_word(al.clone(), &[a]).star());
        let dfas = vec![d1, d2];
        let mut cache = InclusionCache::new();
        assert!(cache.included(&dfas, 0, 1));
        assert!(cache.included(&dfas, 0, 1));
        assert!(!cache.included(&dfas, 1, 0));
    }
}
