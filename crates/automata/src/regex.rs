//! Regular expressions: AST, a small parser, Thompson construction, and
//! DFA → regex state elimination (for human-readable certificates).
//!
//! Section 7 of the paper builds per-rule regular expressions of the form
//! `* t1 * t2 ... *` (`*` a "don't care"); [`Regex::dont_care_pattern`]
//! constructs exactly those.

use std::fmt;

use crate::alphabet::{Alphabet, Symbol};
use crate::dfa::Dfa;
use crate::nfa::Nfa;

/// A regular expression over an interned alphabet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Regex {
    /// The empty language `∅`.
    Empty,
    /// The empty word `ε`.
    Epsilon,
    /// A single symbol.
    Sym(Symbol),
    /// Concatenation `r · s`.
    Concat(Box<Regex>, Box<Regex>),
    /// Alternation `r | s`.
    Alt(Box<Regex>, Box<Regex>),
    /// Kleene star `r*`.
    Star(Box<Regex>),
}

impl Regex {
    /// Concatenation smart constructor (simplifies ∅ and ε).
    pub fn concat(a: Regex, b: Regex) -> Regex {
        match (a, b) {
            (Regex::Empty, _) | (_, Regex::Empty) => Regex::Empty,
            (Regex::Epsilon, r) | (r, Regex::Epsilon) => r,
            (a, b) => Regex::Concat(Box::new(a), Box::new(b)),
        }
    }

    /// Alternation smart constructor (simplifies ∅; collapses identical arms).
    pub fn alt(a: Regex, b: Regex) -> Regex {
        match (a, b) {
            (Regex::Empty, r) | (r, Regex::Empty) => r,
            (a, b) if a == b => a,
            (a, b) => Regex::Alt(Box::new(a), Box::new(b)),
        }
    }

    /// Star smart constructor (∅* = ε* = ε; r** = r*).
    pub fn star(a: Regex) -> Regex {
        match a {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            s @ Regex::Star(_) => s,
            a => Regex::Star(Box::new(a)),
        }
    }

    /// Concatenation of a word of symbols.
    pub fn word(word: &[Symbol]) -> Regex {
        word.iter()
            .fold(Regex::Epsilon, |acc, &s| Regex::concat(acc, Regex::Sym(s)))
    }

    /// `Σ*` over `alphabet`.
    pub fn sigma_star(alphabet: &Alphabet) -> Regex {
        let any = alphabet
            .symbols()
            .fold(Regex::Empty, |acc, s| Regex::alt(acc, Regex::Sym(s)));
        Regex::star(any)
    }

    /// The Section 7 "don't care" pattern: given the terminals kept from
    /// a chain rule body, builds `Σ* t1 Σ* t2 ... Σ* tk Σ*` — the paper's
    /// `* t1 * t2 * ... *` with `*` read as `Σ*`.
    pub fn dont_care_pattern(alphabet: &Alphabet, terminals: &[Symbol]) -> Regex {
        let mut re = Regex::sigma_star(alphabet);
        for &t in terminals {
            re = Regex::concat(re, Regex::Sym(t));
            re = Regex::concat(re, Regex::sigma_star(alphabet));
        }
        re
    }

    /// Thompson construction: the NFA of this expression.
    pub fn to_nfa(&self, alphabet: &Alphabet) -> Nfa {
        match self {
            Regex::Empty => Nfa::empty(alphabet.clone()),
            Regex::Epsilon => Nfa::from_word(alphabet.clone(), &[]),
            Regex::Sym(s) => Nfa::from_word(alphabet.clone(), &[*s]),
            Regex::Concat(a, b) => a.to_nfa(alphabet).concat(&b.to_nfa(alphabet)),
            Regex::Alt(a, b) => a.to_nfa(alphabet).union(&b.to_nfa(alphabet)),
            Regex::Star(a) => a.to_nfa(alphabet).star(),
        }
    }

    /// The DFA of this expression.
    pub fn to_dfa(&self, alphabet: &Alphabet) -> Dfa {
        Dfa::from_nfa(&self.to_nfa(alphabet))
    }

    /// Parses a regex from text. Grammar:
    ///
    /// ```text
    /// alt    := concat ('|' concat)*
    /// concat := star+
    /// star   := atom '*'*
    /// atom   := name | '(' alt ')' | 'ε' | '∅'
    /// ```
    ///
    /// Names are whitespace/metacharacter-delimited identifiers interned
    /// into `alphabet` (which is extended as needed).
    ///
    /// ```
    /// use selprop_automata::{Alphabet, Regex};
    /// let mut al = Alphabet::new();
    /// let re = Regex::parse("b1 b1* b2", &mut al).unwrap();
    /// let dfa = re.to_dfa(&al);
    /// let b1 = al.get("b1").unwrap();
    /// let b2 = al.get("b2").unwrap();
    /// assert!(dfa.accepts_word(&[b1, b1, b2]));
    /// assert!(!dfa.accepts_word(&[b2]));
    /// ```
    pub fn parse(text: &str, alphabet: &mut Alphabet) -> Result<Regex, String> {
        let mut p = Parser {
            chars: text.chars().collect(),
            pos: 0,
            alphabet,
        };
        let re = p.alt()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(format!("trailing input at position {}", p.pos));
        }
        Ok(re)
    }

    /// Renders with names from `alphabet`.
    pub fn display<'a>(&'a self, alphabet: &'a Alphabet) -> RegexDisplay<'a> {
        RegexDisplay { re: self, alphabet }
    }
}

/// Pretty-printer bound to an alphabet.
pub struct RegexDisplay<'a> {
    re: &'a Regex,
    alphabet: &'a Alphabet,
}

impl fmt::Display for RegexDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(re: &Regex, al: &Alphabet, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
            match re {
                Regex::Empty => write!(f, "∅"),
                Regex::Epsilon => write!(f, "ε"),
                Regex::Sym(s) => write!(f, "{}", al.name(*s)),
                Regex::Concat(a, b) => {
                    if prec > 1 {
                        write!(f, "(")?;
                    }
                    go(a, al, f, 1)?;
                    write!(f, " ")?;
                    go(b, al, f, 1)?;
                    if prec > 1 {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Regex::Alt(a, b) => {
                    if prec > 0 {
                        write!(f, "(")?;
                    }
                    go(a, al, f, 0)?;
                    write!(f, " | ")?;
                    go(b, al, f, 0)?;
                    if prec > 0 {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Regex::Star(a) => {
                    go(a, al, f, 2)?;
                    write!(f, "*")
                }
            }
        }
        go(self.re, self.alphabet, f, 0)
    }
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    alphabet: &'a mut Alphabet,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).copied()
    }

    fn alt(&mut self) -> Result<Regex, String> {
        let mut re = self.concat()?;
        while self.peek() == Some('|') {
            self.pos += 1;
            re = Regex::alt(re, self.concat()?);
        }
        Ok(re)
    }

    fn concat(&mut self) -> Result<Regex, String> {
        let mut re = self.star()?;
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            re = Regex::concat(re, self.star()?);
        }
        Ok(re)
    }

    fn star(&mut self) -> Result<Regex, String> {
        let mut re = self.atom()?;
        while self.peek() == Some('*') {
            self.pos += 1;
            re = Regex::star(re);
        }
        Ok(re)
    }

    fn atom(&mut self) -> Result<Regex, String> {
        match self.peek() {
            Some('(') => {
                self.pos += 1;
                let re = self.alt()?;
                if self.peek() != Some(')') {
                    return Err(format!("expected ')' at position {}", self.pos));
                }
                self.pos += 1;
                Ok(re)
            }
            Some('ε') => {
                self.pos += 1;
                Ok(Regex::Epsilon)
            }
            Some('∅') => {
                self.pos += 1;
                Ok(Regex::Empty)
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                let start = self.pos;
                while self
                    .chars
                    .get(self.pos)
                    .is_some_and(|c| c.is_alphanumeric() || *c == '_')
                {
                    self.pos += 1;
                }
                let name: String = self.chars[start..self.pos].iter().collect();
                Ok(Regex::Sym(self.alphabet.intern(&name)))
            }
            other => Err(format!("unexpected {:?} at position {}", other, self.pos)),
        }
    }
}

/// Converts a DFA to a regular expression by state elimination.
///
/// The result can be large; it is intended for *certificates* (showing a
/// user the regular language the propagation engine established), not for
/// further computation.
pub fn dfa_to_regex(dfa: &Dfa) -> Regex {
    let n = dfa.num_states();
    if n == 0 {
        return Regex::Empty;
    }
    // GNFA with states 0..n plus fresh start `n` and accept `n+1`.
    let total = n + 2;
    let start = n;
    let accept = n + 1;
    let mut edge: Vec<Vec<Regex>> = vec![vec![Regex::Empty; total]; total];
    for (q, row) in edge.iter_mut().enumerate().take(n) {
        for a in dfa.alphabet.symbols() {
            let r = dfa.step(q, a);
            let e = row[r].clone();
            row[r] = Regex::alt(e, Regex::Sym(a));
        }
        if dfa.is_accept(q) {
            row[accept] = Regex::alt(row[accept].clone(), Regex::Epsilon);
        }
    }
    edge[start][dfa.start()] = Regex::Epsilon;

    for victim in 0..n {
        let self_loop = Regex::star(edge[victim][victim].clone());
        let preds: Vec<usize> = (0..total)
            .filter(|&p| p != victim && edge[p][victim] != Regex::Empty)
            .collect();
        let succs: Vec<usize> = (0..total)
            .filter(|&s| s != victim && edge[victim][s] != Regex::Empty)
            .collect();
        for &p in &preds {
            for &s in &succs {
                let path = Regex::concat(
                    Regex::concat(edge[p][victim].clone(), self_loop.clone()),
                    edge[victim][s].clone(),
                );
                edge[p][s] = Regex::alt(edge[p][s].clone(), path);
            }
        }
        edge[victim].fill(Regex::Empty);
        for row in edge.iter_mut() {
            row[victim] = Regex::Empty;
        }
    }
    edge[start][accept].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::equivalent;

    fn setup() -> (Alphabet, Symbol, Symbol) {
        let al = Alphabet::from_names(["a", "b"]);
        (al.clone(), al.get("a").unwrap(), al.get("b").unwrap())
    }

    #[test]
    fn parse_and_accept() {
        let (mut al, a, b) = setup();
        let re = Regex::parse("(a b)* | b", &mut al).unwrap();
        let dfa = re.to_dfa(&al);
        assert!(dfa.accepts_word(&[]));
        assert!(dfa.accepts_word(&[a, b]));
        assert!(dfa.accepts_word(&[b]));
        assert!(dfa.accepts_word(&[a, b, a, b]));
        assert!(!dfa.accepts_word(&[a]));
    }

    #[test]
    fn parse_multichar_names() {
        let mut al = Alphabet::new();
        let re = Regex::parse("b1 b1* b2", &mut al).unwrap();
        let b1 = al.get("b1").unwrap();
        let b2 = al.get("b2").unwrap();
        let dfa = re.to_dfa(&al);
        assert!(dfa.accepts_word(&[b1, b2]));
        assert!(dfa.accepts_word(&[b1, b1, b1, b2]));
        assert!(!dfa.accepts_word(&[b2]));
        let _ = re;
    }

    #[test]
    fn parse_errors() {
        let mut al = Alphabet::new();
        assert!(Regex::parse("(a", &mut al).is_err());
        assert!(Regex::parse("a )", &mut al).is_err());
        assert!(Regex::parse("", &mut al).is_err());
    }

    #[test]
    fn smart_constructors_simplify() {
        let (_, a, _) = setup();
        assert_eq!(Regex::concat(Regex::Empty, Regex::Sym(a)), Regex::Empty);
        assert_eq!(Regex::concat(Regex::Epsilon, Regex::Sym(a)), Regex::Sym(a));
        assert_eq!(Regex::alt(Regex::Empty, Regex::Sym(a)), Regex::Sym(a));
        assert_eq!(Regex::star(Regex::Empty), Regex::Epsilon);
        assert_eq!(
            Regex::star(Regex::star(Regex::Sym(a))),
            Regex::star(Regex::Sym(a))
        );
    }

    #[test]
    fn roundtrip_dfa_regex_dfa() {
        let (mut al, _, _) = setup();
        for text in ["(a b)*", "a* b a*", "a | b b", "(a | b)* a"] {
            let re = Regex::parse(text, &mut al).unwrap();
            let dfa = re.to_dfa(&al);
            let re2 = dfa_to_regex(&dfa);
            let dfa2 = re2.to_dfa(&al);
            assert!(equivalent(&dfa, &dfa2), "roundtrip failed for {text}");
        }
    }

    #[test]
    fn dont_care_pattern_matches_paper_shape() {
        let (al, a, b) = setup();
        // * a * : any word containing at least one 'a'
        let re = Regex::dont_care_pattern(&al, &[a]);
        let dfa = re.to_dfa(&al);
        assert!(dfa.accepts_word(&[a]));
        assert!(dfa.accepts_word(&[b, a, b]));
        assert!(!dfa.accepts_word(&[b, b]));
        assert!(!dfa.accepts_word(&[]));
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let (mut al, _, _) = setup();
        let re = Regex::parse("(a | b)* a b*", &mut al).unwrap();
        let shown = format!("{}", re.display(&al));
        let re2 = Regex::parse(&shown, &mut al).unwrap();
        assert!(equivalent(&re.to_dfa(&al), &re2.to_dfa(&al)));
    }
}
