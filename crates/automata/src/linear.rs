//! Left-/right-linear grammars and their correspondence with finite
//! automata.
//!
//! This is the bridge the paper's Theorem 3.3 walks across: a regular
//! `L(H)` has a **left-linear** grammar `G_left`, which transcribes into a
//! chain program `H_left` whose selection `p(c, Y)` can be "naively"
//! propagated into a monadic program (Example 1.1, Program A → Program D).
//! [`LinearGrammar::from_dfa_left`] produces the left-linear grammar from a
//! DFA; `selprop-core` then performs the program transcription.

use crate::alphabet::{Alphabet, Symbol};
use crate::dfa::Dfa;
use crate::nfa::Nfa;

/// Which side the nonterminal sits on in every production.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Linearity {
    /// Productions of the form `A → B t` or `A → t` (nonterminal first).
    Left,
    /// Productions of the form `A → t B` or `A → t` (nonterminal last).
    Right,
}

/// A production of a linear grammar.
///
/// For [`Linearity::Left`]: `head → tail_nonterminal? terminal?` read as
/// `A → B t`, `A → t`, `A → B`, or `A → ε` depending on which parts are
/// present. For [`Linearity::Right`] the nonterminal follows the terminal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinearProduction {
    /// Head nonterminal (dense id).
    pub head: usize,
    /// Terminal, if any.
    pub terminal: Option<Symbol>,
    /// Body nonterminal, if any.
    pub nonterminal: Option<usize>,
}

/// A strictly one-sided linear grammar with dense nonterminal ids.
#[derive(Clone, Debug)]
pub struct LinearGrammar {
    /// The terminal alphabet.
    pub alphabet: Alphabet,
    /// Human-readable nonterminal names, indexed by id.
    pub nonterminal_names: Vec<String>,
    /// Start nonterminal id.
    pub start: usize,
    /// Productions.
    pub productions: Vec<LinearProduction>,
    /// Left or right linearity.
    pub linearity: Linearity,
}

impl LinearGrammar {
    /// Builds a **left-linear** grammar for the language of `dfa`.
    ///
    /// Construction (textbook, and the one Theorem 3.3's "if" direction
    /// needs): one nonterminal `N_q` per DFA state, with `N_q → N_p t`
    /// whenever `δ(p, t) = q`, `N_{q0} → ε`, and start symbols for each
    /// accepting state. Since a left-linear grammar needs a single start,
    /// a fresh start nonterminal `S → N_f` is added per accepting `f`.
    ///
    /// The grammar derives `w` from `S` iff `dfa` accepts `w`.
    pub fn from_dfa_left(dfa: &Dfa) -> LinearGrammar {
        let n = dfa.num_states();
        let start = n; // fresh start nonterminal
        let mut nonterminal_names: Vec<String> = (0..n).map(|q| format!("N{q}")).collect();
        nonterminal_names.push("S".to_owned());
        let mut productions = Vec::new();
        // N_{q0} → ε
        productions.push(LinearProduction {
            head: dfa.start(),
            terminal: None,
            nonterminal: None,
        });
        for p in 0..n {
            for a in dfa.alphabet.symbols() {
                let q = dfa.step(p, a);
                productions.push(LinearProduction {
                    head: q,
                    terminal: Some(a),
                    nonterminal: Some(p),
                });
            }
        }
        for f in 0..n {
            if dfa.is_accept(f) {
                productions.push(LinearProduction {
                    head: start,
                    terminal: None,
                    nonterminal: Some(f),
                });
            }
        }
        LinearGrammar {
            alphabet: dfa.alphabet.clone(),
            nonterminal_names,
            start,
            productions,
            linearity: Linearity::Left,
        }
    }

    /// Builds a **right-linear** grammar for the language of `dfa`:
    /// `N_p → t N_q` whenever `δ(p, t) = q`, `N_f → ε` for accepting `f`,
    /// start `N_{q0}`.
    pub fn from_dfa_right(dfa: &Dfa) -> LinearGrammar {
        let n = dfa.num_states();
        let nonterminal_names: Vec<String> = (0..n).map(|q| format!("N{q}")).collect();
        let mut productions = Vec::new();
        for p in 0..n {
            for a in dfa.alphabet.symbols() {
                let q = dfa.step(p, a);
                productions.push(LinearProduction {
                    head: p,
                    terminal: Some(a),
                    nonterminal: Some(q),
                });
            }
            if dfa.is_accept(p) {
                productions.push(LinearProduction {
                    head: p,
                    terminal: None,
                    nonterminal: None,
                });
            }
        }
        LinearGrammar {
            alphabet: dfa.alphabet.clone(),
            nonterminal_names,
            start: dfa.start(),
            productions,
            linearity: Linearity::Right,
        }
    }

    /// Converts back to an NFA; `L(nfa) = L(grammar)`.
    ///
    /// For a right-linear grammar nonterminals are NFA states directly.
    /// A left-linear grammar is converted by reversing (derivations of a
    /// left-linear grammar read backwards are right-linear).
    pub fn to_nfa(&self) -> Nfa {
        match self.linearity {
            Linearity::Right => self.right_linear_to_nfa(),
            Linearity::Left => {
                let mut rev = self.clone();
                rev.linearity = Linearity::Right;
                // A → B t (left) reversed is A → t B (right) over reversed
                // words; keep structure, then reverse the automaton.
                rev.right_linear_to_nfa().reversed()
            }
        }
    }

    fn right_linear_to_nfa(&self) -> Nfa {
        let mut nfa = Nfa::new(self.alphabet.clone());
        let n = self.nonterminal_names.len();
        for _ in 0..n {
            nfa.add_state();
        }
        let accept = nfa.add_state();
        nfa.set_accept(accept);
        nfa.set_start(self.start);
        for p in &self.productions {
            match (p.terminal, p.nonterminal) {
                (Some(t), Some(b)) => nfa.add_transition(p.head, t, b),
                (Some(t), None) => nfa.add_transition(p.head, t, accept),
                (None, Some(b)) => nfa.add_epsilon(p.head, b),
                (None, None) => nfa.add_epsilon(p.head, accept),
            }
        }
        nfa
    }

    /// Number of nonterminals.
    pub fn num_nonterminals(&self) -> usize {
        self.nonterminal_names.len()
    }

    /// Renders the grammar in the paper's arrow notation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for p in &self.productions {
            let head = &self.nonterminal_names[p.head];
            let mut rhs: Vec<String> = Vec::new();
            match self.linearity {
                Linearity::Left => {
                    if let Some(b) = p.nonterminal {
                        rhs.push(self.nonterminal_names[b].clone());
                    }
                    if let Some(t) = p.terminal {
                        rhs.push(self.alphabet.name(t).to_owned());
                    }
                }
                Linearity::Right => {
                    if let Some(t) = p.terminal {
                        rhs.push(self.alphabet.name(t).to_owned());
                    }
                    if let Some(b) = p.nonterminal {
                        rhs.push(self.nonterminal_names[b].clone());
                    }
                }
            }
            let rhs = if rhs.is_empty() {
                "ε".to_owned()
            } else {
                rhs.join(" ")
            };
            out.push_str(&format!("{head} → {rhs}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::equivalent;
    use crate::regex::Regex;

    fn regex_dfa(text: &str) -> (Alphabet, Dfa) {
        let mut al = Alphabet::from_names(["a", "b"]);
        let re = Regex::parse(text, &mut al).unwrap();
        let dfa = re.to_dfa(&al);
        (al, dfa)
    }

    #[test]
    fn left_linear_roundtrip() {
        for text in ["(a b)*", "a a* b", "a | b*", "(a | b)* a b"] {
            let (_, dfa) = regex_dfa(text);
            let g = LinearGrammar::from_dfa_left(&dfa);
            assert_eq!(g.linearity, Linearity::Left);
            let back = Dfa::from_nfa(&g.to_nfa());
            assert!(equivalent(&dfa, &back), "left-linear roundtrip for {text}");
        }
    }

    #[test]
    fn right_linear_roundtrip() {
        for text in ["(a b)*", "a a* b", "a | b*", "b (a b)* a"] {
            let (_, dfa) = regex_dfa(text);
            let g = LinearGrammar::from_dfa_right(&dfa);
            assert_eq!(g.linearity, Linearity::Right);
            let back = Dfa::from_nfa(&g.to_nfa());
            assert!(equivalent(&dfa, &back), "right-linear roundtrip for {text}");
        }
    }

    #[test]
    fn render_mentions_all_nonterminals() {
        let (_, dfa) = regex_dfa("a b");
        let g = LinearGrammar::from_dfa_left(&dfa);
        let text = g.render();
        assert!(text.contains("S →"));
        assert!(text.contains("→"));
    }

    #[test]
    fn ancestor_grammar_from_paper() {
        // Example 1.1: left-linear {anc → par, anc → anc par} defines par+.
        // Build par+ as a DFA, extract left-linear grammar, check language.
        let mut al = Alphabet::new();
        let re = Regex::parse("par par*", &mut al).unwrap();
        let dfa = re.to_dfa(&al);
        let g = LinearGrammar::from_dfa_left(&dfa);
        let back = Dfa::from_nfa(&g.to_nfa());
        assert!(equivalent(&dfa, &back));
        let par = al.get("par").unwrap();
        assert!(back.accepts_word(&[par]));
        assert!(back.accepts_word(&[par, par, par]));
        assert!(!back.accepts_word(&[]));
    }
}
