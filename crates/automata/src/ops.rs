//! Regular-language operations beyond the boolean algebra: quotients,
//! prefix/suffix closures, and homomorphic images under symbol renaming.
//!
//! The star of this module is the **right quotient**
//! `L/R = { x | ∃ y ∈ R : xy ∈ L }` — the operation Section 7 of the paper
//! identifies as the semantic content of the magic-sets transformation on
//! chain programs (the magic predicate for a rule with regular expression
//! `R_i` computes `L(H)/R_i`).

use std::collections::VecDeque;

use crate::alphabet::{Alphabet, Symbol};
use crate::dfa::Dfa;
use crate::nfa::Nfa;

/// Right quotient of regular languages: `L(l) / L(r) = {x | ∃y ∈ L(r), xy ∈ L(l)}`.
///
/// Construction: a state `q` of `l` becomes accepting in the quotient iff
/// the language of words leading from `q` to acceptance in `l` intersects
/// `L(r)`. That intersection test is a product reachability check.
pub fn right_quotient(l: &Dfa, r: &Dfa) -> Dfa {
    assert_eq!(l.alphabet, r.alphabet, "quotient requires a shared alphabet");
    let symbols: Vec<Symbol> = l.alphabet.symbols().collect();
    let mut accepting = vec![false; l.num_states()];
    // For each state q of l, test emptiness of L_q(l) ∩ L(r) where L_q is
    // the language of l started at q. All tests share one product search
    // seeded from every (q, r.start) pair.
    for (q, acc) in accepting.iter_mut().enumerate() {
        *acc = product_reaches_accept(l, q, r, r.start(), &symbols);
    }
    Dfa::from_parts(
        l.alphabet.clone(),
        l.transition_table().to_vec(),
        l.start(),
        accepting,
    )
}

/// Left quotient: `L(r) \ L(l) = {y | ∃x ∈ L(r), xy ∈ L(l)}`.
///
/// Computed by reversal: `r⁻¹ \ l = reverse(reverse(l) / reverse(r))`.
pub fn left_quotient(r: &Dfa, l: &Dfa) -> Dfa {
    let l_rev = Dfa::from_nfa(&l.to_nfa().reversed());
    let r_rev = Dfa::from_nfa(&r.to_nfa().reversed());
    let q_rev = right_quotient(&l_rev, &r_rev);
    Dfa::from_nfa(&q_rev.to_nfa().reversed())
}

/// Whether some word drives the pair `(ql, qr)` simultaneously to
/// accepting states of `l` and `r`.
fn product_reaches_accept(
    l: &Dfa,
    ql: usize,
    r: &Dfa,
    qr: usize,
    symbols: &[Symbol],
) -> bool {
    let nr = r.num_states();
    let idx = |a: usize, b: usize| a * nr + b;
    let mut seen = vec![false; l.num_states() * nr];
    let mut queue = VecDeque::from([(ql, qr)]);
    seen[idx(ql, qr)] = true;
    while let Some((a, b)) = queue.pop_front() {
        if l.is_accept(a) && r.is_accept(b) {
            return true;
        }
        for &s in symbols {
            let na = l.step(a, s);
            let nb = r.step(b, s);
            if !seen[idx(na, nb)] {
                seen[idx(na, nb)] = true;
                queue.push_back((na, nb));
            }
        }
    }
    false
}

/// Prefix closure: all prefixes of words in `L`.
pub fn prefixes(l: &Dfa) -> Dfa {
    // A state is accepting iff it can reach an accepting state.
    let live = l.live_states();
    let accepting: Vec<bool> = (0..l.num_states()).map(|q| live.contains(&q)).collect();
    // live_states also requires forward reachability, which is what we
    // want: unreachable states stay rejecting (harmless).
    Dfa::from_parts(
        l.alphabet.clone(),
        l.transition_table().to_vec(),
        l.start(),
        accepting,
    )
}

/// Suffix closure: all suffixes of words in `L`.
pub fn suffixes(l: &Dfa) -> Dfa {
    Dfa::from_nfa(&prefixes(&Dfa::from_nfa(&l.to_nfa().reversed())).to_nfa().reversed())
}

/// Image of `L` under a symbol-to-symbol renaming into a (possibly
/// different) alphabet. Renamings may merge symbols, in which case the
/// image is taken of the induced string homomorphism.
///
/// Used by Lemma 6.1's final reduction step: "replace all EDB predicates
/// by a single EDB `b`" is exactly the merging homomorphism onto a unary
/// alphabet.
pub fn rename(l: &Dfa, target: &Alphabet, map: impl Fn(Symbol) -> Symbol) -> Dfa {
    let mut nfa = Nfa::new(target.clone());
    for _ in 0..l.num_states() {
        nfa.add_state();
    }
    for q in 0..l.num_states() {
        for a in l.alphabet.symbols() {
            nfa.add_transition(q, map(a), l.step(q, a));
        }
        if l.is_accept(q) {
            nfa.set_accept(q);
        }
    }
    if l.num_states() > 0 {
        nfa.set_start(l.start());
    }
    Dfa::from_nfa(&nfa)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::equivalent;

    fn setup() -> (Alphabet, Symbol, Symbol) {
        let al = Alphabet::from_names(["a", "b"]);
        (al.clone(), al.get("a").unwrap(), al.get("b").unwrap())
    }

    /// Brute-force quotient over enumerated words, as ground truth.
    fn brute_quotient(l: &Dfa, r: &Dfa, max_len: usize) -> Vec<Vec<Symbol>> {
        let lw = l.words_up_to(max_len * 2);
        let rw = r.words_up_to(max_len * 2);
        let mut out = Vec::new();
        // x is in L/R iff some y in R with xy in L; enumerate all x
        // up to max_len by breadth-first expansion.
        let symbols: Vec<Symbol> = l.alphabet.symbols().collect();
        let mut xs: Vec<Vec<Symbol>> = vec![vec![]];
        let mut frontier: Vec<Vec<Symbol>> = vec![vec![]];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for x in &frontier {
                for &s in &symbols {
                    let mut x2 = x.clone();
                    x2.push(s);
                    next.push(x2);
                }
            }
            xs.extend(next.iter().cloned());
            frontier = next;
        }
        for x in xs {
            let hit = rw.iter().any(|y| {
                let mut xy = x.clone();
                xy.extend_from_slice(y);
                lw.contains(&xy)
            });
            if hit {
                out.push(x);
            }
        }
        out.sort_by(|x, y| x.len().cmp(&y.len()).then_with(|| x.cmp(y)));
        out
    }

    #[test]
    fn paper_example_quotient() {
        // Section 7 worked example: L = { b1^n b2^n | n ≥ 1 },
        // R = * b2 b2* rendered as Σ* b2 b2* ... here we check the regular
        // skeleton: quotient of (ab)-balanced pairs is not regular, so we
        // check the regular sub-case L' = a a* b b* with R = b b*:
        // L'/R = a a* b* (strip at least one trailing b).
        let (al, a, b) = setup();
        let aab = Nfa::from_word(al.clone(), &[a])
            .concat(&Nfa::from_word(al.clone(), &[a]).star())
            .concat(&Nfa::from_word(al.clone(), &[b]))
            .concat(&Nfa::from_word(al.clone(), &[b]).star());
        let l = Dfa::from_nfa(&aab);
        let r = Dfa::from_nfa(
            &Nfa::from_word(al.clone(), &[b]).concat(&Nfa::from_word(al.clone(), &[b]).star()),
        );
        let q = right_quotient(&l, &r);
        // expected: a a* b*
        let expected = Dfa::from_nfa(
            &Nfa::from_word(al.clone(), &[a])
                .concat(&Nfa::from_word(al.clone(), &[a]).star())
                .concat(&Nfa::from_word(al, &[b]).star()),
        );
        assert!(equivalent(&q, &expected));
    }

    #[test]
    fn quotient_matches_brute_force() {
        let (al, a, b) = setup();
        // L = (a|b)* a b, R = {b, ab}
        let l = Dfa::from_nfa(
            &Nfa::sigma_star(al.clone()).concat(&Nfa::from_word(al.clone(), &[a, b])),
        );
        let r = Dfa::from_nfa(
            &Nfa::from_word(al.clone(), &[b]).union(&Nfa::from_word(al, &[a, b])),
        );
        let q = right_quotient(&l, &r);
        let got = q.words_up_to(4);
        let want = brute_quotient(&l, &r, 4);
        assert_eq!(got, want);
    }

    #[test]
    fn left_quotient_basic() {
        let (al, a, b) = setup();
        // R \ L with L = {ab, bb}, R = {a}: expect {b}
        let l = Dfa::from_nfa(
            &Nfa::from_word(al.clone(), &[a, b]).union(&Nfa::from_word(al.clone(), &[b, b])),
        );
        let r = Dfa::from_nfa(&Nfa::from_word(al.clone(), &[a]));
        let q = left_quotient(&r, &l);
        let expected = Dfa::from_nfa(&Nfa::from_word(al, &[b]));
        assert!(equivalent(&q, &expected));
    }

    #[test]
    fn prefix_suffix_closures() {
        let (al, a, b) = setup();
        let l = Dfa::from_nfa(&Nfa::from_word(al.clone(), &[a, b, a]));
        let p = prefixes(&l);
        assert!(p.accepts_word(&[]));
        assert!(p.accepts_word(&[a]));
        assert!(p.accepts_word(&[a, b]));
        assert!(p.accepts_word(&[a, b, a]));
        assert!(!p.accepts_word(&[b]));
        let s = suffixes(&l);
        assert!(s.accepts_word(&[]));
        assert!(s.accepts_word(&[a]));
        assert!(s.accepts_word(&[b, a]));
        assert!(s.accepts_word(&[a, b, a]));
        assert!(!s.accepts_word(&[a, b]));
    }

    #[test]
    fn rename_merges_onto_unary() {
        let (al, a, b) = setup();
        let unary = Alphabet::from_names(["b"]);
        let ub = unary.get("b").unwrap();
        // L = {ab} maps to {bb}
        let l = Dfa::from_nfa(&Nfa::from_word(al, &[a, b]));
        let m = rename(&l, &unary, |_| ub);
        assert!(m.accepts_word(&[ub, ub]));
        assert!(!m.accepts_word(&[ub]));
        assert!(!m.accepts_word(&[ub, ub, ub]));
    }

    #[test]
    fn left_quotient_of_infinite_languages() {
        // a* \ a*b = a*b? No: left quotient {y : exists x in a*, xy in a*b}
        // = a*b (strip any a-prefix, any suffix of an a*b word is a*b or b-less tail)
        let (al, a, b) = setup();
        let l = Dfa::from_nfa(
            &Nfa::from_word(al.clone(), &[a]).star().concat(&Nfa::from_word(al.clone(), &[b])),
        );
        let r = Dfa::from_nfa(&Nfa::from_word(al.clone(), &[a]).star());
        let q = left_quotient(&r, &l);
        // every suffix of a^n b obtainable: a^k b and b itself
        assert!(q.accepts_word(&[b]));
        assert!(q.accepts_word(&[a, b]));
        assert!(q.accepts_word(&[a, a, a, b]));
        assert!(!q.accepts_word(&[a]));
        assert!(!q.accepts_word(&[b, a]));
    }

    #[test]
    fn rename_injective_preserves_language() {
        let (al, a, b) = setup();
        // swap a and b
        let swapped = Alphabet::from_names(["a", "b"]);
        let l = Dfa::from_nfa(&Nfa::from_word(al, &[a, b]));
        let m = rename(&l, &swapped, |s| if s == a { b } else { a });
        assert!(m.accepts_word(&[b, a]));
        assert!(!m.accepts_word(&[a, b]));
    }

    #[test]
    fn quotient_by_empty_language_is_empty() {
        let (al, a, _) = setup();
        let l = Dfa::from_nfa(&Nfa::from_word(al.clone(), &[a]));
        let r = Dfa::from_nfa(&Nfa::empty(al));
        assert!(right_quotient(&l, &r).is_empty());
    }

    #[test]
    fn quotient_by_epsilon_is_identity() {
        let (al, a, b) = setup();
        let l = Dfa::from_nfa(&Nfa::from_word(al.clone(), &[a, b]).star());
        let eps = Dfa::from_nfa(&Nfa::from_word(al, &[]));
        let q = right_quotient(&l, &eps);
        assert!(equivalent(&q, &l));
    }
}
