//! DFA minimization (Hopcroft's partition-refinement algorithm) and
//! canonical forms.
//!
//! Minimization matters twice in this reproduction: it keeps the monadic
//! rewrites produced by Theorem 3.3's "if" direction small (one monadic
//! IDB per DFA state), and a canonical minimal DFA gives a second,
//! independent language-equivalence check (isomorphism of minimal DFAs)
//! used to cross-validate the product-based test in [`crate::equiv`].

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::alphabet::Symbol;
use crate::dfa::Dfa;
use crate::nfa::StateId;

/// Returns the minimal DFA for the language of `dfa`.
///
/// The result is restricted to states reachable from the start, has at most
/// one dead (non-live) state, and is unique up to state renaming. States
/// are numbered canonically by a BFS from the start state with symbols in
/// alphabet order, so two calls on language-equal inputs produce *identical*
/// tables (see [`canonicalize`]).
pub fn minimize(dfa: &Dfa) -> Dfa {
    let reachable = reachable_order(dfa);
    if reachable.is_empty() {
        return dfa.clone();
    }
    // Re-index to reachable states only.
    let mut index_of = vec![usize::MAX; dfa.num_states()];
    for (i, &q) in reachable.iter().enumerate() {
        index_of[q] = i;
    }
    let n = reachable.len();
    let symbols: Vec<Symbol> = dfa.alphabet.symbols().collect();
    let k = symbols.len();
    let trans: Vec<Vec<usize>> = reachable
        .iter()
        .map(|&q| symbols.iter().map(|&a| index_of[dfa.step(q, a)]).collect())
        .collect();
    let accepting: Vec<bool> = reachable.iter().map(|&q| dfa.is_accept(q)).collect();

    // Hopcroft partition refinement.
    // partition: class id per state; classes: list of member lists.
    let mut class_of: Vec<usize> = accepting.iter().map(|&b| usize::from(b)).collect();
    let has_accepting = accepting.iter().any(|&b| b);
    let has_rejecting = accepting.iter().any(|&b| !b);
    let mut num_classes = usize::from(has_accepting) + usize::from(has_rejecting);
    if !has_accepting {
        // all rejecting: single class 0 already
        class_of.fill(0);
        num_classes = 1;
    } else if !has_rejecting {
        class_of.fill(0);
        num_classes = 1;
    }

    // Precompute reverse transitions: rev[a][q] = predecessors of q on a.
    let mut rev: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); n]; k];
    for (q, row) in trans.iter().enumerate() {
        for (ai, &r) in row.iter().enumerate() {
            rev[ai][r].push(q);
        }
    }

    let mut worklist: VecDeque<(usize, usize)> = VecDeque::new(); // (class, symbol index)
    for ai in 0..k {
        for c in 0..num_classes {
            worklist.push_back((c, ai));
        }
    }

    let mut members: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (q, &c) in class_of.iter().enumerate() {
        members[c].push(q);
    }

    while let Some((c, ai)) = worklist.pop_front() {
        // X = states with a transition on `ai` into class `c`.
        let mut x: Vec<usize> = Vec::new();
        for &q in &members[c] {
            x.extend(rev[ai][q].iter().copied());
        }
        if x.is_empty() {
            continue;
        }
        // Group X by current class, then split classes.
        let mut hits: HashMap<usize, Vec<usize>> = HashMap::new();
        for q in x {
            hits.entry(class_of[q]).or_default().push(q);
        }
        for (cls, hit) in hits {
            if hit.len() == members[cls].len() {
                continue; // no split
            }
            // Split class `cls` into hit / rest.
            let new_cls = members.len();
            let mut hit_sorted = hit;
            hit_sorted.sort_unstable();
            hit_sorted.dedup();
            if hit_sorted.len() == members[cls].len() {
                continue;
            }
            for &q in &hit_sorted {
                class_of[q] = new_cls;
            }
            members[cls].retain(|&q| class_of[q] == cls);
            members.push(hit_sorted);
            for aj in 0..k {
                // Conservative variant of Hopcroft's worklist rule: after a
                // split, enqueue *both* parts for every symbol. Textbook
                // Hopcroft enqueues only the smaller part when the parent
                // class is not pending; enqueueing both is always correct
                // and the asymptotic loss is irrelevant at our state counts
                // (rewrite DFAs have tens of states).
                worklist.push_back((cls, aj));
                worklist.push_back((new_cls, aj));
            }
        }
    }

    // Build quotient DFA.
    let num_classes = members.len();
    let mut qtrans = vec![vec![usize::MAX; k]; num_classes];
    let mut qacc = vec![false; num_classes];
    for q in 0..n {
        let c = class_of[q];
        qacc[c] = accepting[q];
        for ai in 0..k {
            qtrans[c][ai] = class_of[trans[q][ai]];
        }
    }
    // Some classes may be empty (created then fully drained) — compact.
    let live: Vec<usize> = (0..num_classes).filter(|&c| !members[c].is_empty()).collect();
    let mut remap = vec![usize::MAX; num_classes];
    for (i, &c) in live.iter().enumerate() {
        remap[c] = i;
    }
    let transitions: Vec<Vec<StateId>> = live
        .iter()
        .map(|&c| qtrans[c].iter().map(|&r| remap[r]).collect())
        .collect();
    let accepting: Vec<bool> = live.iter().map(|&c| qacc[c]).collect();
    let start = remap[class_of[0]]; // reachable[0] is the original start

    canonicalize(&Dfa::from_parts(
        dfa.alphabet.clone(),
        transitions,
        start,
        accepting,
    ))
}

/// Renumbers states by BFS discovery order (start first, symbols in
/// alphabet order), yielding a canonical table: two isomorphic DFAs
/// canonicalize to byte-identical tables.
pub fn canonicalize(dfa: &Dfa) -> Dfa {
    let order = reachable_order(dfa);
    let mut index_of = vec![usize::MAX; dfa.num_states()];
    for (i, &q) in order.iter().enumerate() {
        index_of[q] = i;
    }
    let symbols: Vec<Symbol> = dfa.alphabet.symbols().collect();
    let transitions: Vec<Vec<StateId>> = order
        .iter()
        .map(|&q| symbols.iter().map(|&a| index_of[dfa.step(q, a)]).collect())
        .collect();
    let accepting: Vec<bool> = order.iter().map(|&q| dfa.is_accept(q)).collect();
    Dfa::from_parts(dfa.alphabet.clone(), transitions, 0, accepting)
}

/// BFS order of reachable states, deterministic in alphabet order.
fn reachable_order(dfa: &Dfa) -> Vec<StateId> {
    if dfa.num_states() == 0 {
        return Vec::new();
    }
    let symbols: Vec<Symbol> = dfa.alphabet.symbols().collect();
    let mut seen = vec![false; dfa.num_states()];
    let mut order = Vec::new();
    let mut queue = VecDeque::from([dfa.start()]);
    seen[dfa.start()] = true;
    while let Some(q) = queue.pop_front() {
        order.push(q);
        for &a in &symbols {
            let r = dfa.step(q, a);
            if !seen[r] {
                seen[r] = true;
                queue.push_back(r);
            }
        }
    }
    order
}

/// Checks whether two canonical DFAs are byte-identical (used as the
/// isomorphism test after [`minimize`]).
pub fn tables_identical(a: &Dfa, b: &Dfa) -> bool {
    if a.alphabet != b.alphabet
        || a.num_states() != b.num_states()
        || a.start() != b.start()
        || a.accepting() != b.accepting()
    {
        return false;
    }
    a.transition_table() == b.transition_table()
}

/// Moore's O(kn²) partition refinement — a slow, obviously-correct
/// reference implementation used by the property tests to validate
/// [`minimize`].
pub fn minimize_moore(dfa: &Dfa) -> Dfa {
    let order = reachable_order(dfa);
    if order.is_empty() {
        return dfa.clone();
    }
    let mut index_of = vec![usize::MAX; dfa.num_states()];
    for (i, &q) in order.iter().enumerate() {
        index_of[q] = i;
    }
    let symbols: Vec<Symbol> = dfa.alphabet.symbols().collect();
    let n = order.len();
    let trans: Vec<Vec<usize>> = order
        .iter()
        .map(|&q| symbols.iter().map(|&a| index_of[dfa.step(q, a)]).collect())
        .collect();
    let accepting: Vec<bool> = order.iter().map(|&q| dfa.is_accept(q)).collect();

    let mut class_of: Vec<usize> = accepting.iter().map(|&b| usize::from(b)).collect();
    loop {
        // signature: (class, classes of successors)
        let mut sig_ids: BTreeMap<(usize, Vec<usize>), usize> = BTreeMap::new();
        let mut next_class = vec![0usize; n];
        for q in 0..n {
            let sig = (
                class_of[q],
                trans[q].iter().map(|&r| class_of[r]).collect::<Vec<_>>(),
            );
            let next_id = sig_ids.len();
            let id = *sig_ids.entry(sig).or_insert(next_id);
            next_class[q] = id;
        }
        if next_class == class_of {
            break;
        }
        class_of = next_class;
    }
    let num_classes = class_of.iter().copied().max().unwrap_or(0) + 1;
    let mut qtrans = vec![vec![usize::MAX; symbols.len()]; num_classes];
    let mut qacc = vec![false; num_classes];
    for q in 0..n {
        let c = class_of[q];
        qacc[c] = accepting[q];
        for (ai, &r) in trans[q].iter().enumerate() {
            qtrans[c][ai] = class_of[r];
        }
    }
    canonicalize(&Dfa::from_parts(
        dfa.alphabet.clone(),
        qtrans,
        class_of[0],
        qacc,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::nfa::Nfa;

    fn ab() -> (Alphabet, Symbol, Symbol) {
        let a = Alphabet::from_names(["a", "b"]);
        (a.clone(), a.get("a").unwrap(), a.get("b").unwrap())
    }

    #[test]
    fn minimize_collapses_redundant_states() {
        let (al, a, b) = ab();
        // (a|b)(a|b) built wastefully: 'aa' | 'ab' | 'ba' | 'bb'
        let words = [[a, a], [a, b], [b, a], [b, b]];
        let mut nfa = Nfa::from_word(al.clone(), &words[0]);
        for w in &words[1..] {
            nfa = nfa.union(&Nfa::from_word(al.clone(), w));
        }
        let dfa = Dfa::from_nfa(&nfa);
        let min = minimize(&dfa);
        // minimal DFA for "exactly two letters": q0 -> q1 -> q2(acc) -> sink
        assert_eq!(min.num_states(), 4);
        assert!(min.accepts_word(&[a, b]));
        assert!(!min.accepts_word(&[a]));
        assert!(!min.accepts_word(&[a, b, a]));
    }

    #[test]
    fn minimize_agrees_with_moore() {
        let (al, a, b) = ab();
        let nfa = Nfa::from_word(al.clone(), &[a])
            .star()
            .concat(&Nfa::from_word(al, &[b]));
        let dfa = Dfa::from_nfa(&nfa);
        let m1 = minimize(&dfa);
        let m2 = minimize_moore(&dfa);
        assert!(tables_identical(&m1, &m2));
    }

    #[test]
    fn minimize_is_idempotent() {
        let (al, a, b) = ab();
        let nfa = Nfa::from_word(al.clone(), &[a, b]).star();
        let dfa = Dfa::from_nfa(&nfa);
        let m1 = minimize(&dfa);
        let m2 = minimize(&m1);
        assert!(tables_identical(&m1, &m2));
        let _ = al;
    }

    #[test]
    fn canonical_equal_for_isomorphic_dfas() {
        let (al, a, b) = ab();
        // Build (ab)* two different ways.
        let d1 = Dfa::from_nfa(
            &Nfa::from_word(al.clone(), &[a]).concat(&Nfa::from_word(al.clone(), &[b])).star(),
        );
        let d2 = Dfa::from_nfa(&Nfa::from_word(al, &[a, b]).star());
        assert!(tables_identical(&minimize(&d1), &minimize(&d2)));
    }

    #[test]
    fn minimize_empty_language() {
        let (al, a, _) = ab();
        let dfa = Dfa::from_nfa(&Nfa::empty(al));
        let min = minimize(&dfa);
        assert!(min.is_empty());
        assert!(!min.accepts_word(&[a]));
        assert_eq!(min.num_states(), 1); // single dead state
    }
}
