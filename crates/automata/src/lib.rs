//! # selprop-automata
//!
//! Finite automata and regular-language toolkit for the reproduction of
//! *Beeri, Kanellakis, Bancilhon, Ramakrishnan — "Bounds on the
//! Propagation of Selection into Logic Programs"* (PODS 1987 / JCSS 1990).
//!
//! The paper ties selection propagation on chain Datalog programs to the
//! **regularity** of an associated context-free language `L(H)`
//! (Theorem 3.3). Regular languages therefore carry most of the
//! reproduction's machinery:
//!
//! - [`alphabet`] — interned alphabets shared by grammars and automata;
//! - [`nfa`], [`dfa`] — automata with the boolean algebra of languages,
//!   emptiness/finiteness tests and word enumeration;
//! - [`minimize`] — Hopcroft minimization and canonical forms (keeps the
//!   monadic rewrites of Theorem 3.3 small);
//! - [`equiv`] — language equivalence/inclusion with counterexamples
//!   (validates every rewrite the propagation engine emits);
//! - [`ops`] — quotients `L/R` (the semantics of magic sets, Section 7),
//!   prefix/suffix closures, renaming homomorphisms (Lemma 6.1's
//!   single-EDB reduction);
//! - [`regex`] — expressions, parsing, Thompson construction, and DFA →
//!   regex certificates, including Section 7's `* t1 * t2 ... *` patterns;
//! - [`linear`] — left-/right-linear grammars ⇄ automata, the bridge the
//!   Theorem 3.3 "if" direction walks to build monadic programs;
//! - [`dot`] — Graphviz export for auditing certificate automata.

#![warn(missing_docs)]

pub mod alphabet;
pub mod dfa;
pub mod dot;
pub mod equiv;
pub mod linear;
pub mod minimize;
pub mod nfa;
pub mod ops;
pub mod regex;

pub use alphabet::{Alphabet, Symbol};
pub use dfa::Dfa;
pub use nfa::Nfa;
pub use regex::Regex;
