//! Nondeterministic finite automata with ε-transitions.
//!
//! The NFA is the workhorse intermediate representation: regular
//! expressions, left-/right-linear grammars (the paper's `H_left`
//! construction in Theorem 3.3) and Mohri–Nederhof approximations all
//! produce NFAs, which are then determinized ([`crate::dfa::Dfa::from_nfa`])
//! and minimized for decision procedures.

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::alphabet::{Alphabet, Symbol};

/// A state id within an [`Nfa`].
pub type StateId = usize;

/// A nondeterministic finite automaton with ε-transitions over an
/// interned [`Alphabet`].
#[derive(Clone, Debug)]
pub struct Nfa {
    /// Shared alphabet.
    pub alphabet: Alphabet,
    /// `transitions[q]` maps a symbol to the set of successor states.
    transitions: Vec<HashMap<Symbol, BTreeSet<StateId>>>,
    /// `epsilon[q]` is the set of ε-successors of `q`.
    epsilon: Vec<BTreeSet<StateId>>,
    /// Initial states.
    starts: BTreeSet<StateId>,
    /// Accepting states.
    accepts: BTreeSet<StateId>,
}

impl Nfa {
    /// Creates an empty NFA (no states, empty language) over `alphabet`.
    pub fn new(alphabet: Alphabet) -> Self {
        Self {
            alphabet,
            transitions: Vec::new(),
            epsilon: Vec::new(),
            starts: BTreeSet::new(),
            accepts: BTreeSet::new(),
        }
    }

    /// Adds a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        self.transitions.push(HashMap::new());
        self.epsilon.push(BTreeSet::new());
        self.transitions.len() - 1
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Marks `q` as an initial state.
    pub fn set_start(&mut self, q: StateId) {
        self.starts.insert(q);
    }

    /// Marks `q` as accepting.
    pub fn set_accept(&mut self, q: StateId) {
        self.accepts.insert(q);
    }

    /// Whether `q` is accepting.
    pub fn is_accept(&self, q: StateId) -> bool {
        self.accepts.contains(&q)
    }

    /// The set of initial states.
    pub fn starts(&self) -> &BTreeSet<StateId> {
        &self.starts
    }

    /// The set of accepting states.
    pub fn accepts(&self) -> &BTreeSet<StateId> {
        &self.accepts
    }

    /// Adds a labeled transition `q --a--> r`.
    pub fn add_transition(&mut self, q: StateId, a: Symbol, r: StateId) {
        self.transitions[q].entry(a).or_default().insert(r);
    }

    /// Adds an ε-transition `q --ε--> r`.
    pub fn add_epsilon(&mut self, q: StateId, r: StateId) {
        self.epsilon[q].insert(r);
    }

    /// Successors of `q` on symbol `a` (without ε-closure).
    pub fn successors(&self, q: StateId, a: Symbol) -> impl Iterator<Item = StateId> + '_ {
        self.transitions[q]
            .get(&a)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Iterates over all labeled transitions `(q, a, r)`.
    pub fn transitions(&self) -> impl Iterator<Item = (StateId, Symbol, StateId)> + '_ {
        self.transitions.iter().enumerate().flat_map(|(q, m)| {
            m.iter()
                .flat_map(move |(&a, set)| set.iter().map(move |&r| (q, a, r)))
        })
    }

    /// Iterates over all ε-transitions `(q, r)`.
    pub fn epsilon_transitions(&self) -> impl Iterator<Item = (StateId, StateId)> + '_ {
        self.epsilon
            .iter()
            .enumerate()
            .flat_map(|(q, set)| set.iter().map(move |&r| (q, r)))
    }

    /// ε-closure of a set of states.
    pub fn epsilon_closure(&self, set: &BTreeSet<StateId>) -> BTreeSet<StateId> {
        let mut closure = set.clone();
        let mut queue: VecDeque<StateId> = set.iter().copied().collect();
        while let Some(q) = queue.pop_front() {
            for &r in &self.epsilon[q] {
                if closure.insert(r) {
                    queue.push_back(r);
                }
            }
        }
        closure
    }

    /// Whether the NFA accepts `word`.
    pub fn accepts_word(&self, word: &[Symbol]) -> bool {
        let mut current = self.epsilon_closure(&self.starts);
        for &a in word {
            let mut next = BTreeSet::new();
            for &q in &current {
                for r in self.successors(q, a) {
                    next.insert(r);
                }
            }
            current = self.epsilon_closure(&next);
            if current.is_empty() {
                return false;
            }
        }
        current.iter().any(|q| self.accepts.contains(q))
    }

    /// The reversal automaton: accepts `w` iff `self` accepts `w` reversed.
    ///
    /// Used for the `p(X, c)` goal form of Theorem 3.3, where the selection
    /// binds the *second* argument and the natural construction is
    /// right-linear / reversed.
    pub fn reversed(&self) -> Nfa {
        let mut rev = Nfa::new(self.alphabet.clone());
        for _ in 0..self.num_states() {
            rev.add_state();
        }
        for (q, a, r) in self.transitions() {
            rev.add_transition(r, a, q);
        }
        for (q, r) in self.epsilon_transitions() {
            rev.add_epsilon(r, q);
        }
        for &q in &self.accepts {
            rev.set_start(q);
        }
        for &q in &self.starts {
            rev.set_accept(q);
        }
        rev
    }

    /// Union of two NFAs over the same alphabet (language union).
    pub fn union(&self, other: &Nfa) -> Nfa {
        assert_eq!(
            self.alphabet, other.alphabet,
            "union requires a shared alphabet"
        );
        let mut out = self.clone();
        let offset = out.num_states();
        for _ in 0..other.num_states() {
            out.add_state();
        }
        for (q, a, r) in other.transitions() {
            out.add_transition(q + offset, a, r + offset);
        }
        for (q, r) in other.epsilon_transitions() {
            out.add_epsilon(q + offset, r + offset);
        }
        for &q in other.starts() {
            out.set_start(q + offset);
        }
        for &q in other.accepts() {
            out.set_accept(q + offset);
        }
        out
    }

    /// Concatenation: the language `L(self) · L(other)`.
    pub fn concat(&self, other: &Nfa) -> Nfa {
        assert_eq!(
            self.alphabet, other.alphabet,
            "concat requires a shared alphabet"
        );
        let mut out = self.clone();
        let offset = out.num_states();
        for _ in 0..other.num_states() {
            out.add_state();
        }
        for (q, a, r) in other.transitions() {
            out.add_transition(q + offset, a, r + offset);
        }
        for (q, r) in other.epsilon_transitions() {
            out.add_epsilon(q + offset, r + offset);
        }
        let old_accepts: Vec<StateId> = out.accepts.iter().copied().collect();
        out.accepts.clear();
        for &f in &old_accepts {
            for &s in other.starts() {
                out.add_epsilon(f, s + offset);
            }
        }
        for &q in other.accepts() {
            out.set_accept(q + offset);
        }
        out
    }

    /// Kleene star of the language.
    pub fn star(&self) -> Nfa {
        let mut out = self.clone();
        let new_start = out.add_state();
        for &s in &out.starts.clone() {
            out.add_epsilon(new_start, s);
        }
        for &f in &out.accepts.clone() {
            out.add_epsilon(f, new_start);
        }
        out.starts.clear();
        out.set_start(new_start);
        out.set_accept(new_start);
        out
    }

    /// An NFA accepting exactly the single word `word`.
    pub fn from_word(alphabet: Alphabet, word: &[Symbol]) -> Nfa {
        let mut nfa = Nfa::new(alphabet);
        let mut q = nfa.add_state();
        nfa.set_start(q);
        for &a in word {
            let r = nfa.add_state();
            nfa.add_transition(q, a, r);
            q = r;
        }
        nfa.set_accept(q);
        nfa
    }

    /// An NFA accepting the empty language.
    pub fn empty(alphabet: Alphabet) -> Nfa {
        Nfa::new(alphabet)
    }

    /// An NFA accepting `Σ*` (all words).
    pub fn sigma_star(alphabet: Alphabet) -> Nfa {
        let mut nfa = Nfa::new(alphabet);
        let q = nfa.add_state();
        nfa.set_start(q);
        nfa.set_accept(q);
        for a in nfa.alphabet.symbols().collect::<Vec<_>>() {
            nfa.add_transition(q, a, q);
        }
        nfa
    }

    /// States reachable from the start states (following both labeled and
    /// ε-transitions).
    pub fn reachable_states(&self) -> BTreeSet<StateId> {
        let mut seen = self.starts.clone();
        let mut queue: VecDeque<StateId> = seen.iter().copied().collect();
        while let Some(q) = queue.pop_front() {
            let nexts = self.transitions[q]
                .values()
                .flat_map(|s| s.iter().copied())
                .chain(self.epsilon[q].iter().copied());
            for r in nexts {
                if seen.insert(r) {
                    queue.push_back(r);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> (Alphabet, Symbol, Symbol) {
        let a = Alphabet::from_names(["a", "b"]);
        let sa = a.get("a").unwrap();
        let sb = a.get("b").unwrap();
        (a, sa, sb)
    }

    #[test]
    fn single_word_acceptance() {
        let (al, a, b) = ab();
        let nfa = Nfa::from_word(al, &[a, b, a]);
        assert!(nfa.accepts_word(&[a, b, a]));
        assert!(!nfa.accepts_word(&[a, b]));
        assert!(!nfa.accepts_word(&[]));
        assert!(!nfa.accepts_word(&[a, b, a, a]));
    }

    #[test]
    fn union_accepts_both() {
        let (al, a, b) = ab();
        let n1 = Nfa::from_word(al.clone(), &[a]);
        let n2 = Nfa::from_word(al, &[b, b]);
        let u = n1.union(&n2);
        assert!(u.accepts_word(&[a]));
        assert!(u.accepts_word(&[b, b]));
        assert!(!u.accepts_word(&[b]));
    }

    #[test]
    fn concat_and_star() {
        let (al, a, b) = ab();
        let n1 = Nfa::from_word(al.clone(), &[a]);
        let n2 = Nfa::from_word(al, &[b]);
        let cat = n1.concat(&n2); // {ab}
        assert!(cat.accepts_word(&[a, b]));
        assert!(!cat.accepts_word(&[a]));
        let st = cat.star(); // (ab)*
        assert!(st.accepts_word(&[]));
        assert!(st.accepts_word(&[a, b, a, b]));
        assert!(!st.accepts_word(&[a, b, a]));
    }

    #[test]
    fn reversal() {
        let (al, a, b) = ab();
        let nfa = Nfa::from_word(al, &[a, a, b]);
        let rev = nfa.reversed();
        assert!(rev.accepts_word(&[b, a, a]));
        assert!(!rev.accepts_word(&[a, a, b]));
    }

    #[test]
    fn sigma_star_accepts_everything() {
        let (al, a, b) = ab();
        let nfa = Nfa::sigma_star(al);
        assert!(nfa.accepts_word(&[]));
        assert!(nfa.accepts_word(&[a, b, b, a]));
    }

    #[test]
    fn empty_language() {
        let (al, a, _) = ab();
        let nfa = Nfa::empty(al);
        assert!(!nfa.accepts_word(&[]));
        assert!(!nfa.accepts_word(&[a]));
    }

    #[test]
    fn epsilon_closure_chases_chains() {
        let (al, _, _) = ab();
        let mut nfa = Nfa::new(al);
        let q0 = nfa.add_state();
        let q1 = nfa.add_state();
        let q2 = nfa.add_state();
        nfa.add_epsilon(q0, q1);
        nfa.add_epsilon(q1, q2);
        let c = nfa.epsilon_closure(&BTreeSet::from([q0]));
        assert_eq!(c, BTreeSet::from([q0, q1, q2]));
    }
}
