//! Graphviz DOT export for automata — the certificates the propagation
//! engine produces (regularity DFAs, envelope automata, quotients) are
//! easiest to audit visually.

use std::fmt::Write as _;

use crate::dfa::Dfa;
use crate::nfa::Nfa;

/// Renders a DFA in DOT format. Dead states (non-live) are drawn dashed
/// so certificate diagrams stay readable.
pub fn dfa_to_dot(dfa: &Dfa, name: &str) -> String {
    let live = dfa.live_states();
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  start [shape=point];");
    for q in 0..dfa.num_states() {
        let shape = if dfa.is_accept(q) {
            "doublecircle"
        } else {
            "circle"
        };
        let style = if live.contains(&q) { "solid" } else { "dashed" };
        let _ = writeln!(out, "  q{q} [shape={shape}, style={style}];");
    }
    if dfa.num_states() > 0 {
        let _ = writeln!(out, "  start -> q{};", dfa.start());
    }
    // merge parallel edges into one label
    for q in 0..dfa.num_states() {
        let mut by_target: std::collections::BTreeMap<usize, Vec<String>> = Default::default();
        for a in dfa.alphabet.symbols() {
            by_target
                .entry(dfa.step(q, a))
                .or_default()
                .push(dfa.alphabet.name(a).to_owned());
        }
        for (r, labels) in by_target {
            let _ = writeln!(out, "  q{q} -> q{r} [label=\"{}\"];", labels.join(","));
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders an NFA in DOT format (ε-transitions labeled `ε`).
pub fn nfa_to_dot(nfa: &Nfa, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  start [shape=point];");
    for q in 0..nfa.num_states() {
        let shape = if nfa.is_accept(q) {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(out, "  q{q} [shape={shape}];");
    }
    for &s in nfa.starts() {
        let _ = writeln!(out, "  start -> q{s};");
    }
    for (q, a, r) in nfa.transitions() {
        let _ = writeln!(out, "  q{q} -> q{r} [label=\"{}\"];", nfa.alphabet.name(a));
    }
    for (q, r) in nfa.epsilon_transitions() {
        let _ = writeln!(out, "  q{q} -> q{r} [label=\"ε\"];");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::regex::Regex;

    #[test]
    fn dfa_dot_structure() {
        let mut al = Alphabet::new();
        let re = Regex::parse("par par*", &mut al).unwrap();
        let dfa = crate::minimize::minimize(&re.to_dfa(&al));
        let dot = dfa_to_dot(&dfa, "par_plus");
        assert!(dot.starts_with("digraph \"par_plus\""));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("label=\"par\""));
        assert!(dot.contains("start ->"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn nfa_dot_includes_epsilon() {
        let mut al = Alphabet::new();
        let re = Regex::parse("a*", &mut al).unwrap();
        let nfa = re.to_nfa(&al);
        let dot = nfa_to_dot(&nfa, "a_star");
        assert!(dot.contains("ε"));
    }

    #[test]
    fn dead_states_dashed() {
        let mut al = Alphabet::new();
        let re = Regex::parse("a b", &mut al).unwrap();
        let dfa = re.to_dfa(&al); // has a sink
        let dot = dfa_to_dot(&dfa, "ab");
        assert!(dot.contains("style=dashed"));
    }
}
