//! Property tests for the MGS crate: cycle symmetry holds for *random*
//! monadic programs (not just the curated probes), and the ∃MSO
//! cyclicity sentence agrees with a graph-theoretic cycle check on
//! random small digraphs.

use proptest::prelude::*;
use selprop_datalog::parser::parse_program;
use selprop_mgs::fixpoint::has_cycle_via_fixpoint;
use selprop_mgs::logic::{cyclic_sigma, emso_check};
use selprop_mgs::structure::FiniteStructure;
use selprop_mgs::symmetry::{cycle_colors_uniform, distinguishes};

/// A random monadic program over one binary EDB `b`: a handful of unary
/// IDBs with rules of the shapes
///   w_i(X) :- b(X, Y).        (out-degree mark)
///   w_i(Y) :- b(X, Y).        (in-degree mark)
///   w_i(Y) :- w_j(X), b(X, Y). (forward propagation)
///   w_i(X) :- w_j(Y), b(X, Y). (backward propagation)
/// plus the boolean goal `yes :- w_0(X).`
fn arb_monadic_program() -> impl Strategy<Value = String> {
    let rule = (0u8..3, 0u8..3, 0u8..4);
    proptest::collection::vec(rule, 1..8).prop_map(|rules| {
        let mut s = String::from("?- yes.\nyes :- w0(X).\n");
        // make sure w0 exists even if no rule heads it
        s.push_str("w0(X) :- b(X, Y).\n");
        for (wi, wj, shape) in rules {
            let line = match shape {
                0 => format!("w{wi}(X) :- b(X, Y).\n"),
                1 => format!("w{wi}(Y) :- b(X, Y).\n"),
                2 => format!("w{wi}(Y) :- w{wj}(X), b(X, Y).\n"),
                _ => format!("w{wi}(X) :- w{wj}(Y), b(X, Y).\n"),
            };
            s.push_str(&line);
        }
        s
    })
}

/// DFS-based ground truth for "has a directed cycle".
fn has_cycle_dfs(s: &FiniteStructure) -> bool {
    let n = s.domain;
    let mut succ = vec![Vec::new(); n];
    if let Some(edges) = s.binary.get("b") {
        for &(a, b) in edges {
            succ[a].push(b);
        }
    }
    #[derive(Clone, Copy, PartialEq)]
    enum C {
        White,
        Gray,
        Black,
    }
    let mut color = vec![C::White; n];
    for root in 0..n {
        if color[root] != C::White {
            continue;
        }
        let mut stack = vec![(root, 0usize)];
        color[root] = C::Gray;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            if *i < succ[v].len() {
                let w = succ[v][*i];
                *i += 1;
                match color[w] {
                    C::Gray => return true,
                    C::White => {
                        color[w] = C::Gray;
                        stack.push((w, 0));
                    }
                    C::Black => {}
                }
            } else {
                color[v] = C::Black;
                stack.pop();
            }
        }
    }
    false
}

/// Random small digraph.
fn arb_graph() -> impl Strategy<Value = FiniteStructure> {
    (2usize..6, proptest::collection::vec((0u8..6, 0u8..6), 0..10)).prop_map(|(n, edges)| {
        let mut s = FiniteStructure::new(n);
        for (a, b) in edges {
            let (a, b) = (a as usize % n, b as usize % n);
            s.add_edge("b", a, b);
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_monadic_programs_are_cycle_symmetric(src in arb_monadic_program(), len in 3usize..9) {
        let p = parse_program(&src).unwrap();
        prop_assert!(p.is_monadic());
        prop_assert!(cycle_colors_uniform(&p, len), "symmetry broken by:\n{src}");
    }

    #[test]
    fn random_monadic_programs_are_cycle_blind(src in arb_monadic_program()) {
        let p = parse_program(&src).unwrap();
        let path = FiniteStructure::path(7, "b");
        let with_cycle = path.disjoint_union(&FiniteStructure::cycle(4, "b"));
        prop_assert!(
            !distinguishes(&p, &path, &with_cycle),
            "Lemma 6.2 violated by:\n{src}"
        );
    }

    #[test]
    fn random_monadic_programs_cannot_tell_large_cycles_apart(src in arb_monadic_program()) {
        let p = parse_program(&src).unwrap();
        let c9 = FiniteStructure::cycle(9, "b");
        let c11 = FiniteStructure::cycle(11, "b");
        prop_assert!(!distinguishes(&p, &c9, &c11));
    }

    #[test]
    fn emso_cyclicity_matches_dfs(s in arb_graph()) {
        let want = has_cycle_dfs(&s);
        prop_assert_eq!(emso_check(&s, &["w"], &cyclic_sigma()), want);
    }

    #[test]
    fn fixpoint_cyclicity_matches_dfs(s in arb_graph()) {
        let want = has_cycle_dfs(&s);
        prop_assert_eq!(has_cycle_via_fixpoint(&s), want);
    }
}
