//! First-order and existential monadic second-order (∃MSO) model checking
//! on finite structures — the machinery of monadic generalized spectra
//! (Fagin, ref.\[16\]; paper Section 2.2).
//!
//! A set of finite structures is an **MGS** if it is the class of models
//! of a sentence `∃w1 ... ∃wr σ` with `σ` first-order and the `wi`
//! monadic. The checkers here are brute force (exponential in `r·n`),
//! which is exactly what the experiments need: small structures, total
//! certainty.

use crate::structure::FiniteStructure;

/// A first-order term.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FoTerm {
    /// A variable (de Bruijn-free: caller-chosen index).
    Var(usize),
    /// A named constant of the structure.
    Const(String),
}

/// First-order formulas over a relational vocabulary with named binary
/// and unary relations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FoFormula {
    /// Truth.
    True,
    /// `rel(t1, t2)` for a binary relation.
    Edge(String, FoTerm, FoTerm),
    /// `rel(t)` for a unary relation.
    In(String, FoTerm),
    /// `t1 = t2`.
    Eq(FoTerm, FoTerm),
    /// Negation.
    Not(Box<FoFormula>),
    /// Conjunction.
    And(Box<FoFormula>, Box<FoFormula>),
    /// Disjunction.
    Or(Box<FoFormula>, Box<FoFormula>),
    /// Implication.
    Implies(Box<FoFormula>, Box<FoFormula>),
    /// `∃x φ`.
    Exists(usize, Box<FoFormula>),
    /// `∀x φ`.
    Forall(usize, Box<FoFormula>),
    /// `∃!x φ` (Example 2.2.3 uses it directly).
    ExistsUnique(usize, Box<FoFormula>),
}

impl FoFormula {
    /// `¬φ`.
    // A DSL constructor taking the operand by value, not an `ops::Not`
    // impl (which would force `!f` syntax on boxed formulas).
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: FoFormula) -> FoFormula {
        FoFormula::Not(Box::new(f))
    }
    /// `φ ∧ ψ`.
    pub fn and(a: FoFormula, b: FoFormula) -> FoFormula {
        FoFormula::And(Box::new(a), Box::new(b))
    }
    /// `φ ∨ ψ`.
    pub fn or(a: FoFormula, b: FoFormula) -> FoFormula {
        FoFormula::Or(Box::new(a), Box::new(b))
    }
    /// `φ ⇒ ψ`.
    pub fn implies(a: FoFormula, b: FoFormula) -> FoFormula {
        FoFormula::Implies(Box::new(a), Box::new(b))
    }
    /// `φ ⇔ ψ`.
    pub fn iff(a: FoFormula, b: FoFormula) -> FoFormula {
        FoFormula::and(
            FoFormula::implies(a.clone(), b.clone()),
            FoFormula::implies(b, a),
        )
    }
    /// `∃x φ`.
    pub fn exists(x: usize, f: FoFormula) -> FoFormula {
        FoFormula::Exists(x, Box::new(f))
    }
    /// `∀x φ`.
    pub fn forall(x: usize, f: FoFormula) -> FoFormula {
        FoFormula::Forall(x, Box::new(f))
    }
}

/// Evaluates a first-order formula on a structure under a partial
/// variable assignment (`env[i] = Some(element)`).
pub fn fo_check(s: &FiniteStructure, f: &FoFormula, env: &mut Vec<Option<usize>>) -> bool {
    let term = |t: &FoTerm, env: &Vec<Option<usize>>| -> usize {
        match t {
            FoTerm::Var(i) => env[*i].expect("unbound variable"),
            FoTerm::Const(name) => *s
                .constants
                .get(name)
                .unwrap_or_else(|| panic!("unknown constant {name}")),
        }
    };
    match f {
        FoFormula::True => true,
        FoFormula::Edge(rel, t1, t2) => s.has_edge(rel, term(t1, env), term(t2, env)),
        FoFormula::In(rel, t) => s
            .unary
            .get(rel)
            .is_some_and(|set| set.contains(&term(t, env))),
        FoFormula::Eq(t1, t2) => term(t1, env) == term(t2, env),
        FoFormula::Not(g) => !fo_check(s, g, env),
        FoFormula::And(a, b) => fo_check(s, a, env) && fo_check(s, b, env),
        FoFormula::Or(a, b) => fo_check(s, a, env) || fo_check(s, b, env),
        FoFormula::Implies(a, b) => !fo_check(s, a, env) || fo_check(s, b, env),
        FoFormula::Exists(x, g) => quantify(s, *x, g, env).any(|b| b),
        FoFormula::Forall(x, g) => quantify(s, *x, g, env).all(|b| b),
        FoFormula::ExistsUnique(x, g) => {
            quantify(s, *x, g, env).filter(|&b| b).count() == 1
        }
    }
}

fn quantify<'a>(
    s: &'a FiniteStructure,
    x: usize,
    g: &'a FoFormula,
    env: &'a mut Vec<Option<usize>>,
) -> impl Iterator<Item = bool> + 'a {
    if env.len() <= x {
        env.resize(x + 1, None);
    }
    (0..s.domain).map(move |e| {
        // re-borrow the environment per element
        let mut local = env.clone();
        local[x] = Some(e);
        fo_check(s, g, &mut local)
    })
}

/// Evaluates a sentence (no free variables).
pub fn fo_sentence(s: &FiniteStructure, f: &FoFormula) -> bool {
    fo_check(s, f, &mut Vec::new())
}

/// Checks an existential monadic second-order sentence
/// `∃w_names[0] ... ∃w_names[r-1] σ` by enumerating all assignments of
/// the monadic predicates. Exponential (`2^(r·n)`); intended for the
/// small structures of the Section 6 experiments.
pub fn emso_check(s: &FiniteStructure, monadic: &[&str], sigma: &FoFormula) -> bool {
    let n = s.domain;
    let r = monadic.len();
    assert!(r * n <= 24, "∃MSO enumeration too large ({r} sets × {n} elements)");
    let total = 1usize << (r * n);
    for mask in 0..total {
        let mut s2 = s.clone();
        for (wi, w) in monadic.iter().enumerate() {
            s2.unary.entry((*w).to_owned()).or_default().clear();
            for e in 0..n {
                if mask & (1 << (wi * n + e)) != 0 {
                    s2.add_mark(w, e);
                }
            }
        }
        if fo_sentence(&s2, sigma) {
            return true;
        }
    }
    false
}

/// Example 2.2.1: the ∃MSO sentence for **disconnectedness** of an
/// undirected graph over edge relation `b`:
/// `∃w (∃X w(X) ∧ ∃X ¬w(X) ∧ ∀X∀Y (b(X,Y) ⇒ (w(X) ⇔ w(Y))))`.
pub fn disconnected_sigma() -> FoFormula {
    use FoFormula as F;
    use FoTerm::Var;
    let w = "w";
    F::and(
        F::and(
            F::exists(0, F::In(w.into(), Var(0))),
            F::exists(0, F::not(F::In(w.into(), Var(0)))),
        ),
        F::forall(
            0,
            F::forall(
                1,
                F::implies(
                    F::Edge("b".into(), Var(0), Var(1)),
                    F::iff(F::In(w.into(), Var(0)), F::In(w.into(), Var(1))),
                ),
            ),
        ),
    )
}

/// Example 2.2.2: source–sink **non-reachability** as an MGS over
/// `b, c1, c2`: a partition `w` separating `c1` from `c2` with no edges
/// crossing from `w` out of `w`.
pub fn nonreachability_sigma() -> FoFormula {
    use FoFormula as F;
    use FoTerm::{Const, Var};
    let w = "w";
    F::and(
        F::and(
            F::In(w.into(), Const("c1".into())),
            F::not(F::In(w.into(), Const("c2".into()))),
        ),
        F::forall(
            0,
            F::forall(
                1,
                F::implies(
                    F::and(
                        F::Edge("b".into(), Var(0), Var(1)),
                        F::In(w.into(), Var(0)),
                    ),
                    F::In(w.into(), Var(1)),
                ),
            ),
        ),
    )
}

/// Example 2.2.3: **cyclicity** of a directed graph as an MGS over `b`:
/// `∃w (∃X w(X)) ∧ ∀X (w(X) ⇒ (∃!Y (w(Y) ∧ b(X,Y)) ∧ ∃!Z (w(Z) ∧ b(Z,X))))`.
///
/// (The paper's formula with in/out-degree exactly 1 inside `w`; we add
/// the nonemptiness conjunct that the displayed formula leaves implicit.)
pub fn cyclic_sigma() -> FoFormula {
    use FoFormula as F;
    use FoTerm::Var;
    let w = "w";
    F::and(
        F::exists(0, F::In(w.into(), Var(0))),
        F::forall(
            0,
            F::implies(
                F::In(w.into(), Var(0)),
                F::and(
                    F::ExistsUnique(
                        1,
                        Box::new(F::and(
                            F::In(w.into(), Var(1)),
                            F::Edge("b".into(), Var(0), Var(1)),
                        )),
                    ),
                    F::ExistsUnique(
                        1,
                        Box::new(F::and(
                            F::In(w.into(), Var(1)),
                            F::Edge("b".into(), Var(1), Var(0)),
                        )),
                    ),
                ),
            ),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disconnectedness_example_2_2_1() {
        // connected path: not disconnected
        let p = FiniteStructure::path(4, "b").symmetric_closure("b");
        assert!(!emso_check(&p, &["w"], &disconnected_sigma()));
        // two components: disconnected
        let u = FiniteStructure::path(2, "b")
            .disjoint_union(&FiniteStructure::path(2, "b"))
            .symmetric_closure("b");
        assert!(emso_check(&u, &["w"], &disconnected_sigma()));
    }

    #[test]
    fn nonreachability_example_2_2_2() {
        // path 0→1→2 with c1=0, c2=2: reachable, so non-reachability fails
        let mut p = FiniteStructure::path(3, "b");
        p.set_constant("c1", 0);
        p.set_constant("c2", 2);
        assert!(!emso_check(&p, &["w"], &nonreachability_sigma()));
        // reversed constants: 2 cannot reach 0 in the directed path
        let mut q = FiniteStructure::path(3, "b");
        q.set_constant("c1", 2);
        q.set_constant("c2", 0);
        assert!(emso_check(&q, &["w"], &nonreachability_sigma()));
    }

    #[test]
    fn cyclicity_example_2_2_3() {
        let c = FiniteStructure::cycle(4, "b");
        assert!(emso_check(&c, &["w"], &cyclic_sigma()));
        let p = FiniteStructure::path(4, "b");
        assert!(!emso_check(&p, &["w"], &cyclic_sigma()));
        // path plus disjoint cycle: cyclic
        let u = FiniteStructure::path(3, "b").disjoint_union(&FiniteStructure::cycle(3, "b"));
        assert!(emso_check(&u, &["w"], &cyclic_sigma()));
    }

    #[test]
    fn fo_quantifiers() {
        use FoFormula as F;
        use FoTerm::Var;
        let p = FiniteStructure::path(3, "b");
        // ∃x∃y b(x, y)
        let f = F::exists(0, F::exists(1, F::Edge("b".into(), Var(0), Var(1))));
        assert!(fo_sentence(&p, &f));
        // ∀x∃y b(x, y): false (last node has no successor)
        let g = F::forall(0, F::exists(1, F::Edge("b".into(), Var(0), Var(1))));
        assert!(!fo_sentence(&p, &g));
        // on a cycle it holds
        let c = FiniteStructure::cycle(3, "b");
        assert!(fo_sentence(&c, &g));
    }

    #[test]
    fn exists_unique() {
        use FoFormula as F;
        use FoTerm::Var;
        let p = FiniteStructure::path(3, "b");
        // every node has at most one successor; node 0 exactly one
        let f = F::ExistsUnique(1, Box::new(F::Edge("b".into(), Var(0), Var(1))));
        let mut env = vec![Some(0), None];
        assert!(fo_check(&p, &f, &mut env));
        let mut env2 = vec![Some(2), None];
        assert!(!fo_check(&p, &f, &mut env2)); // last node: zero successors
    }
}
