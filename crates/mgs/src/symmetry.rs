//! The symmetry arguments of Section 6, executable.
//!
//! Lemma 6.1's proof rests on two facts about **monadic** Datalog
//! programs that we check on concrete structures:
//!
//! 1. *Cycle symmetry*: on a directed cycle, a monadic program assigns
//!    the same set of colors (derived monadic IDB facts) to every node —
//!    rule applications are invariant under rotation
//!    ([`cycle_colors_uniform`]).
//! 2. *Cycle blindness*: two cycles larger than the program's symbol
//!    count are indistinguishable by any monadic program
//!    ([`distinguishes`] on `C_m` vs `C_n`), and a path `P_n` is
//!    indistinguishable from `P_n ⊎ C_k` — whereas the paper's binary
//!    Program CYCLE distinguishes them, which is why `p(X, X)` selection
//!    cannot be propagated when `L(H)` is infinite (Theorem 3.3(2),
//!    "only if").

use selprop_datalog::ast::Program;
use selprop_datalog::eval::{answer, evaluate, Strategy};

use crate::structure::FiniteStructure;

/// The paper's Program CYCLE (Section 6): binary, goal `p(X, X)`,
/// answering the set of nodes on directed cycles of `b`.
pub fn program_cycle() -> Program {
    selprop_datalog::parser::parse_program(
        "?- p(X, X).\n\
         p(X, Y) :- b(X, Y).\n\
         p(X, Y) :- p(X, Z), b(Z, Y).",
    )
    .expect("CYCLE parses")
}

/// Runs `program` on a structure and returns, per domain element, the set
/// of monadic IDB predicates ("colors") derived for it.
pub fn node_colors(program: &Program, s: &FiniteStructure) -> Vec<Vec<String>> {
    let mut program = program.clone();
    let (db, ids) = s.to_database(&mut program.symbols);
    let result = evaluate(&program, &db, Strategy::SemiNaive);
    let idbs = program.idb_predicates();
    let mut colors: Vec<Vec<String>> = vec![Vec::new(); s.domain];
    for &p in &idbs {
        let Some(rel) = result.idb.relation(p) else {
            continue;
        };
        if rel.arity() != 1 {
            continue;
        }
        for t in rel.iter() {
            if let Some(i) = ids.iter().position(|&c| c == t[0]) {
                colors[i].push(program.symbols.pred_name(p).to_owned());
            }
        }
    }
    for c in &mut colors {
        c.sort();
        c.dedup();
    }
    colors
}

/// Section 6, case (b): on a directed cycle every node receives the same
/// color set from a monadic program. Returns `true` when uniform.
pub fn cycle_colors_uniform(program: &Program, cycle_len: usize) -> bool {
    assert!(program.is_monadic(), "symmetry claim is about monadic programs");
    let c = FiniteStructure::cycle(cycle_len, "b");
    let colors = node_colors(program, &c);
    colors.windows(2).all(|w| w[0] == w[1])
}

/// Whether the program's boolean goal (0-ary or via nonempty answer set)
/// distinguishes the two structures: returns `true` if the answer
/// nonemptiness differs.
pub fn distinguishes(program: &Program, s1: &FiniteStructure, s2: &FiniteStructure) -> bool {
    let run = |s: &FiniteStructure| -> bool {
        let mut p = program.clone();
        let (db, _) = s.to_database(&mut p.symbols);
        let (ans, _) = answer(&p, &db, Strategy::SemiNaive);
        !ans.is_empty()
    };
    run(s1) != run(s2)
}

/// A family of monadic probe programs over a single binary EDB `b`, used
/// by the experiments as concrete instances of "all monadic programs":
/// reachability-from-everywhere, in/out-degree marks, k-step marks and
/// their boolean combinations via multiple IDBs.
pub fn monadic_probe_programs() -> Vec<Program> {
    let sources = [
        // reach: a node with an outgoing edge, transitively marked backwards
        "?- yes.\n\
         yes :- w(X).\n\
         w(X) :- b(X, Y).\n\
         w(X) :- b(X, Y), w(Y).",
        // two-colors: alternate marks along edges
        "?- yes.\n\
         yes :- wa(X), wb(X).\n\
         wa(X) :- b(X, Y).\n\
         wb(Y) :- wa(X), b(X, Y).\n\
         wa(Y) :- wb(X), b(X, Y).",
        // three-step marks
        "?- yes.\n\
         yes :- w3(X).\n\
         w1(Y) :- b(X, Y).\n\
         w2(Y) :- w1(X), b(X, Y).\n\
         w3(Y) :- w2(X), b(X, Y).",
        // sources and sinks interplay: mark every edge endpoint
        "?- yes.\n\
         yes :- ws(X).\n\
         ws(X) :- b(X, Y).\n\
         ws(Y) :- b(X, Y).\n\
         ws(X) :- ws(Y), b(X, Y).",
    ];
    sources
        .iter()
        .map(|s| selprop_datalog::parser::parse_program(s).expect("probe parses"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_program_finds_cycle_nodes() {
        let p = program_cycle();
        let mut p2 = p.clone();
        let s = FiniteStructure::path(3, "b").disjoint_union(&FiniteStructure::cycle(3, "b"));
        let (db, ids) = s.to_database(&mut p2.symbols);
        let (ans, _) = answer(&p2, &db, Strategy::SemiNaive);
        // exactly the three cycle nodes (shifted by 3)
        assert_eq!(ans.len(), 3);
        for id in &ids[3..6] {
            assert!(ans.contains(&[*id]));
        }
    }

    #[test]
    fn binary_cycle_program_distinguishes_path_from_path_plus_cycle() {
        let p = program_cycle();
        // boolean variant: does any cycle exist?
        let pb = selprop_datalog::parser::parse_program(
            "?- yes.\n\
             yes :- p(X, X).\n\
             p(X, Y) :- b(X, Y).\n\
             p(X, Y) :- p(X, Z), b(Z, Y).",
        )
        .unwrap();
        let path = FiniteStructure::path(6, "b");
        let with_cycle = path.disjoint_union(&FiniteStructure::cycle(4, "b"));
        assert!(distinguishes(&pb, &path, &with_cycle));
        let _ = p;
    }

    #[test]
    fn monadic_probes_do_not_distinguish() {
        // Lemma 6.2's operative content on concrete probes: none of the
        // monadic probe programs can tell P_n from P_n ⊎ C_k (for n, k
        // comfortably above their symbol counts).
        let path = FiniteStructure::path(8, "b");
        let with_cycle = path.disjoint_union(&FiniteStructure::cycle(5, "b"));
        for (i, p) in monadic_probe_programs().iter().enumerate() {
            assert!(p.is_monadic(), "probe {i} must be monadic");
            assert!(
                !distinguishes(p, &path, &with_cycle),
                "monadic probe {i} unexpectedly distinguished the structures"
            );
        }
    }

    #[test]
    fn wait_probe_zero_finds_outgoing_edges_on_both() {
        // sanity: the probes do fire (they answer true on both structures,
        // not false on both vacuously) — except where genuinely empty.
        let path = FiniteStructure::path(8, "b");
        let p = &monadic_probe_programs()[0];
        let mut p2 = p.clone();
        let (db, _) = path.to_database(&mut p2.symbols);
        let (ans, _) = answer(&p2, &db, Strategy::SemiNaive);
        assert!(!ans.is_empty());
    }

    #[test]
    fn cycle_symmetry_for_probes() {
        for (i, p) in monadic_probe_programs().iter().enumerate() {
            for len in [3usize, 5, 8] {
                assert!(
                    cycle_colors_uniform(p, len),
                    "probe {i} broke cycle symmetry at length {len}"
                );
            }
        }
    }

    #[test]
    fn monadic_cannot_distinguish_large_cycles() {
        // Section 6 case (b): two cycles above the program's symbol count
        // are indistinguishable...
        let c9 = FiniteStructure::cycle(9, "b");
        let c11 = FiniteStructure::cycle(11, "b");
        for p in &monadic_probe_programs() {
            assert!(!distinguishes(p, &c9, &c11));
        }
        // ...while a chain program with goal p(X,X) and L(H) = {b^10}
        // (say, 10-step cycles) distinguishes C_10 from C_11.
        let pb = selprop_datalog::parser::parse_program(
            "?- yes.\n\
             yes :- p(X, X).\n\
             p(X, Y) :- b(X, Z1), b(Z1, Z2), b(Z2, Z3), b(Z3, Z4), b(Z4, Y).",
        )
        .unwrap();
        let c5 = FiniteStructure::cycle(5, "b");
        let c7 = FiniteStructure::cycle(7, "b");
        assert!(distinguishes(&pb, &c5, &c7));
    }
}
