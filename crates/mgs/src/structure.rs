//! Finite relational structures for the monadic-generalized-spectra
//! experiments (Section 6 and Examples 2.2.1–2.2.3 of the paper).
//!
//! A structure has a finite domain `0..n`, named binary relations (edge
//! relations `b, b1, ...`), named unary relations (the candidate monadic
//! predicates `w, w1, ...`), and named distinguished constants
//! (`c1` source / `c2` sink in Example 2.2.2).

use std::collections::{BTreeMap, BTreeSet};

/// A finite structure over domain `{0, ..., domain-1}`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FiniteStructure {
    /// Domain size.
    pub domain: usize,
    /// Binary relations by name.
    pub binary: BTreeMap<String, BTreeSet<(usize, usize)>>,
    /// Unary relations by name.
    pub unary: BTreeMap<String, BTreeSet<usize>>,
    /// Distinguished constants by name.
    pub constants: BTreeMap<String, usize>,
}

impl FiniteStructure {
    /// An empty structure with `n` elements.
    pub fn new(n: usize) -> Self {
        Self {
            domain: n,
            ..Self::default()
        }
    }

    /// Adds an edge to a binary relation.
    pub fn add_edge(&mut self, rel: &str, from: usize, to: usize) {
        assert!(from < self.domain && to < self.domain);
        self.binary
            .entry(rel.to_owned())
            .or_default()
            .insert((from, to));
    }

    /// Adds an element to a unary relation.
    pub fn add_mark(&mut self, rel: &str, elem: usize) {
        assert!(elem < self.domain);
        self.unary.entry(rel.to_owned()).or_default().insert(elem);
    }

    /// Names a constant.
    pub fn set_constant(&mut self, name: &str, elem: usize) {
        assert!(elem < self.domain);
        self.constants.insert(name.to_owned(), elem);
    }

    /// Whether `(from, to)` is in the binary relation `rel`.
    pub fn has_edge(&self, rel: &str, from: usize, to: usize) -> bool {
        self.binary
            .get(rel)
            .is_some_and(|s| s.contains(&(from, to)))
    }

    /// The directed path `0 → 1 → ... → n-1` with edge relation `rel`
    /// (the paper's `P` in Lemma 6.2).
    pub fn path(n: usize, rel: &str) -> Self {
        let mut s = Self::new(n);
        for i in 0..n.saturating_sub(1) {
            s.add_edge(rel, i, i + 1);
        }
        s
    }

    /// The directed cycle on `n` nodes (the paper's `C` structures in
    /// Section 6, case b).
    pub fn cycle(n: usize, rel: &str) -> Self {
        let mut s = Self::new(n);
        for i in 0..n {
            s.add_edge(rel, i, (i + 1) % n);
        }
        s
    }

    /// Disjoint union; the right structure's elements are shifted by
    /// `self.domain`. Constants of `other` are dropped (union structures
    /// in Lemma 6.2 carry no constants).
    pub fn disjoint_union(&self, other: &FiniteStructure) -> FiniteStructure {
        let mut s = FiniteStructure::new(self.domain + other.domain);
        for (rel, edges) in &self.binary {
            for &(a, b) in edges {
                s.add_edge(rel, a, b);
            }
        }
        for (rel, edges) in &other.binary {
            for &(a, b) in edges {
                s.add_edge(rel, a + self.domain, b + self.domain);
            }
        }
        for (rel, marks) in &self.unary {
            for &a in marks {
                s.add_mark(rel, a);
            }
        }
        for (rel, marks) in &other.unary {
            for &a in marks {
                s.add_mark(rel, a + self.domain);
            }
        }
        for (name, &e) in &self.constants {
            s.set_constant(name, e);
        }
        s
    }

    /// Undirected view: both orientations of every edge (Example 2.2.1
    /// deals with undirected graphs).
    pub fn symmetric_closure(&self, rel: &str) -> FiniteStructure {
        let mut s = self.clone();
        if let Some(edges) = self.binary.get(rel) {
            for &(a, b) in edges {
                s.add_edge(rel, b, a);
            }
        }
        s
    }

    /// Exports the structure as a Datalog database over the given symbol
    /// spaces, with domain element `i` interned as `n{i}` (or reusing
    /// constant names). Returns the database and the constant ids used.
    pub fn to_database(
        &self,
        symbols: &mut selprop_datalog::Symbols,
    ) -> (selprop_datalog::Database, Vec<selprop_datalog::Const>) {
        let mut db = selprop_datalog::Database::new();
        // name each element: constants get their names, others n{i}
        let mut names: Vec<String> = (0..self.domain).map(|i| format!("n{i}")).collect();
        for (name, &e) in &self.constants {
            names[e] = name.clone();
        }
        let ids: Vec<selprop_datalog::Const> =
            names.iter().map(|n| symbols.constant(n)).collect();
        for (rel, edges) in &self.binary {
            let p = symbols.predicate(rel);
            for &(a, b) in edges {
                db.insert(p, vec![ids[a], ids[b]]);
            }
        }
        for (rel, marks) in &self.unary {
            let p = symbols.predicate(rel);
            for &a in marks {
                db.insert(p, vec![ids[a]]);
            }
        }
        (db, ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let p = FiniteStructure::path(4, "b");
        assert_eq!(p.binary["b"].len(), 3);
        assert!(p.has_edge("b", 0, 1));
        assert!(!p.has_edge("b", 3, 0));
    }

    #[test]
    fn cycle_shape() {
        let c = FiniteStructure::cycle(3, "b");
        assert_eq!(c.binary["b"].len(), 3);
        assert!(c.has_edge("b", 2, 0));
    }

    #[test]
    fn disjoint_union_shifts() {
        let p = FiniteStructure::path(3, "b");
        let c = FiniteStructure::cycle(2, "b");
        let u = p.disjoint_union(&c);
        assert_eq!(u.domain, 5);
        assert!(u.has_edge("b", 3, 4));
        assert!(u.has_edge("b", 4, 3));
        assert!(!u.has_edge("b", 2, 3));
    }

    #[test]
    fn symmetric_closure_doubles() {
        let p = FiniteStructure::path(3, "b").symmetric_closure("b");
        assert!(p.has_edge("b", 1, 0));
        assert!(p.has_edge("b", 0, 1));
    }

    #[test]
    fn database_export() {
        let mut c = FiniteStructure::cycle(3, "b");
        c.set_constant("c1", 0);
        let mut sy = selprop_datalog::Symbols::new();
        let (db, ids) = c.to_database(&mut sy);
        assert_eq!(ids.len(), 3);
        assert_eq!(db.num_facts(), 3);
        assert!(sy.get_constant("c1").is_some());
    }
}
