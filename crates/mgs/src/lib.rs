//! # selprop-mgs
//!
//! Monadic generalized spectra and the Section 6 symmetry arguments, for
//! the reproduction of *Beeri, Kanellakis, Bancilhon, Ramakrishnan —
//! "Bounds on the Propagation of Selection into Logic Programs"*
//! (PODS 1987 / JCSS 1990).
//!
//! The paper's Theorem 3.3(2) lower bound ("`p(X,X)` propagable only if
//! `L(H)` finite") is proved via Fagin's monadic generalized spectra:
//! DAGs are not an MGS (Lemma 6.2), and monadic programs are blind to
//! cycles. This crate provides the finite-model-theory toolkit to
//! *exhibit* those phenomena:
//!
//! - [`structure`] — finite structures: paths, cycles, disjoint unions,
//!   export to Datalog databases;
//! - [`logic`] — FO and existential-MSO model checking, with the paper's
//!   Examples 2.2.1 (disconnectedness), 2.2.2 (source–sink
//!   non-reachability) and 2.2.3 (cyclicity) as ready-made sentences;
//! - [`symmetry`] — executable cycle symmetry: monadic programs color
//!   all nodes of a cycle identically, cannot distinguish `P_n` from
//!   `P_n ⊎ C_k` or two large cycles, while the binary Program CYCLE
//!   does.

#![warn(missing_docs)]

pub mod fixpoint;
pub mod logic;
pub mod structure;
pub mod symmetry;

pub use fixpoint::{has_cycle_via_fixpoint, MonadicFixpoint};
pub use logic::{emso_check, fo_sentence, FoFormula, FoTerm};
pub use structure::FiniteStructure;
