//! Monadic fixpoint programs with negation — Example 6.3 and the
//! Corollary 5.4 discussion.
//!
//! Lemma 6.1 shows plain monadic *Datalog* cannot express cyclicity. The
//! paper's Example 6.3 shows the boundary is negation: allowing
//! first-order bodies that are **monotone in the head predicate** (here,
//! a universally quantified implication with negation on base facts),
//! the single rule
//!
//! ```text
//! w(X) :- w(X) ∨ ∀Y (b(X, Y) ⇒ w(Y))
//! ```
//!
//! computes, as a least fixpoint, the set of nodes *not on any cycle*
//! (mark sinks, then nodes all of whose successors are marked, ...), and
//! a first-order difference then answers cyclicity. This module
//! implements exactly that class: monadic least-fixpoint programs whose
//! step is an FO formula over the structure plus the (positively
//! occurring) fixpoint predicate.

use crate::logic::{fo_check, FoFormula, FoTerm};
use crate::structure::FiniteStructure;

/// A monadic least-fixpoint definition: `w(X) ≡ lfp. φ(X, w)` where `φ`
/// must be monotone in `w` (callers' responsibility; the paper's
/// Example 6.3 formula is).
#[derive(Clone, Debug)]
pub struct MonadicFixpoint {
    /// The name of the fixpoint predicate (a unary relation symbol usable
    /// inside `step` via [`FoFormula::In`]).
    pub predicate: String,
    /// The step formula with free variable index 0 playing `X`.
    pub step: FoFormula,
}

impl MonadicFixpoint {
    /// Computes the least fixpoint on `s`, returning the final set and
    /// the number of iterations to convergence.
    pub fn evaluate(&self, s: &FiniteStructure) -> (Vec<usize>, usize) {
        let mut current = s.clone();
        current.unary.entry(self.predicate.clone()).or_default();
        let mut iterations = 0;
        loop {
            iterations += 1;
            let mut next = current.clone();
            let mut changed = false;
            for e in 0..s.domain {
                if current.unary[&self.predicate].contains(&e) {
                    continue;
                }
                let mut env = vec![Some(e)];
                if fo_check(&current, &self.step, &mut env) {
                    next.add_mark(&self.predicate, e);
                    changed = true;
                }
            }
            current = next;
            if !changed {
                break;
            }
        }
        let set: Vec<usize> = current.unary[&self.predicate].iter().copied().collect();
        (set, iterations)
    }
}

/// Example 6.3's fixpoint: `w(X) :- w(X) ∨ ∀Y (b(X,Y) ⇒ w(Y))`.
/// Its least fixpoint is the set of nodes from which no infinite walk
/// exists — i.e., the nodes *not on (or leading to) a cycle*.
pub fn example_6_3() -> MonadicFixpoint {
    use FoFormula as F;
    use FoTerm::Var;
    MonadicFixpoint {
        predicate: "w".to_owned(),
        step: F::or(
            F::In("w".into(), Var(0)),
            F::forall(
                1,
                F::implies(
                    F::Edge("b".into(), Var(0), Var(1)),
                    F::In("w".into(), Var(1)),
                ),
            ),
        ),
    }
}

/// The cyclicity query of Example 6.3: the graph has a cycle iff the
/// fixpoint of [`example_6_3`] does not cover the domain (the difference
/// "all nodes minus marked" is a first-order post-processing step).
pub fn has_cycle_via_fixpoint(s: &FiniteStructure) -> bool {
    let (marked, _) = example_6_3().evaluate(s);
    marked.len() < s.domain
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_proceed_from_sinks() {
        // path 0→1→2: sinks first (2), then 1, then 0
        let p = FiniteStructure::path(3, "b");
        let (marked, iters) = example_6_3().evaluate(&p);
        assert_eq!(marked, vec![0, 1, 2]);
        assert!(iters >= 3, "marking proceeds one layer per iteration");
    }

    #[test]
    fn cycle_nodes_never_marked() {
        let s = FiniteStructure::path(3, "b").disjoint_union(&FiniteStructure::cycle(3, "b"));
        let (marked, _) = example_6_3().evaluate(&s);
        assert_eq!(marked, vec![0, 1, 2], "only the path nodes are marked");
    }

    #[test]
    fn cyclicity_query_example_6_3() {
        assert!(!has_cycle_via_fixpoint(&FiniteStructure::path(6, "b")));
        assert!(has_cycle_via_fixpoint(&FiniteStructure::cycle(4, "b")));
        let u = FiniteStructure::path(5, "b").disjoint_union(&FiniteStructure::cycle(3, "b"));
        assert!(has_cycle_via_fixpoint(&u));
        // self-loop is a cycle
        let mut s = FiniteStructure::new(2);
        s.add_edge("b", 0, 0);
        assert!(has_cycle_via_fixpoint(&s));
    }

    #[test]
    fn contrast_with_pure_monadic_datalog() {
        // The point of Example 6.3: with negation-in-the-step, monadic
        // fixpoints DO distinguish P_n from P_n ⊎ C_k — which Lemma 6.1
        // proves pure monadic Datalog cannot.
        let path = FiniteStructure::path(8, "b");
        let with_cycle = path.disjoint_union(&FiniteStructure::cycle(5, "b"));
        assert_ne!(
            has_cycle_via_fixpoint(&path),
            has_cycle_via_fixpoint(&with_cycle)
        );
        for probe in crate::symmetry::monadic_probe_programs() {
            assert!(!crate::symmetry::distinguishes(&probe, &path, &with_cycle));
        }
    }

    #[test]
    fn nodes_reaching_cycles_stay_unmarked() {
        // 0→1→2→0 cycle plus a tail 3→0 feeding it: 3 reaches the cycle,
        // so it has an infinite walk and stays unmarked.
        let mut s = FiniteStructure::new(4);
        s.add_edge("b", 0, 1);
        s.add_edge("b", 1, 2);
        s.add_edge("b", 2, 0);
        s.add_edge("b", 3, 0);
        let (marked, _) = example_6_3().evaluate(&s);
        assert!(marked.is_empty());
    }

    #[test]
    fn dag_converges_in_depth_iterations() {
        // longest path controls convergence
        let p = FiniteStructure::path(10, "b");
        let (_, iters) = example_6_3().evaluate(&p);
        assert!(iters <= 12);
    }
}
