//! Property tests for the WS1S compiler: random formulas over two tracks
//! are compiled and checked against a brute-force evaluator; algebraic
//! laws (double negation, quantifier duality) are verified at the
//! automaton level.

use proptest::prelude::*;
use selprop_automata::equiv::equivalent;
use selprop_automata::Symbol;
use selprop_ws1s::compile::compile;
use selprop_ws1s::syntax::{Formula, VarId};

const W: VarId = VarId(0); // free second-order track
const X: VarId = VarId(1); // quantified FO track
const Y: VarId = VarId(2); // quantified FO track

/// Random quantifier-free cores over x, y, W.
fn arb_core() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::In(X, W)),
        Just(Formula::In(Y, W)),
        Just(Formula::Eq(X, Y)),
        Just(Formula::Succ(X, Y)),
        Just(Formula::Lt(X, Y)),
        Just(Formula::True),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::or(a, b)),
            inner.prop_map(Formula::not),
        ]
    })
}

/// Closed formulas: quantify x and y in random order/polarity.
fn arb_formula() -> impl Strategy<Value = Formula> {
    (arb_core(), 0u8..4).prop_map(|(core, mode)| match mode {
        0 => Formula::exists_fo(X, Formula::exists_fo(Y, core)),
        1 => Formula::forall_fo(X, Formula::exists_fo(Y, core)),
        2 => Formula::exists_fo(X, Formula::forall_fo(Y, core)),
        _ => Formula::forall_fo(X, Formula::forall_fo(Y, core)),
    })
}

/// Brute-force evaluation on a word given as W-membership bits.
fn eval(f: &Formula, w_bits: &[bool], x: Option<usize>, y: Option<usize>) -> bool {
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::In(v, _) if *v == X => x.map(|i| w_bits[i]).unwrap_or(false),
        Formula::In(v, _) if *v == Y => y.map(|i| w_bits[i]).unwrap_or(false),
        Formula::In(..) => false,
        Formula::Eq(..) => x.is_some() && x == y,
        Formula::Succ(..) => matches!((x, y), (Some(i), Some(j)) if j == i + 1),
        Formula::Lt(..) => matches!((x, y), (Some(i), Some(j)) if i < j),
        Formula::Not(g) => !eval(g, w_bits, x, y),
        Formula::And(a, b) => eval(a, w_bits, x, y) && eval(b, w_bits, x, y),
        Formula::Or(a, b) => eval(a, w_bits, x, y) || eval(b, w_bits, x, y),
        Formula::Implies(a, b) => !eval(a, w_bits, x, y) || eval(b, w_bits, x, y),
        Formula::ExistsFo(v, g) if *v == X => (0..w_bits.len()).any(|i| eval(g, w_bits, Some(i), y)),
        Formula::ExistsFo(v, g) if *v == Y => (0..w_bits.len()).any(|j| eval(g, w_bits, x, Some(j))),
        Formula::ForallFo(v, g) if *v == X => (0..w_bits.len()).all(|i| eval(g, w_bits, Some(i), y)),
        Formula::ForallFo(v, g) if *v == Y => (0..w_bits.len()).all(|j| eval(g, w_bits, x, Some(j))),
        _ => unreachable!("unsupported shape in this test family"),
    }
}

/// All W-assignments of length ≤ n as bit vectors.
fn words(n: usize) -> Vec<Vec<bool>> {
    let mut out = vec![vec![]];
    for len in 1..=n {
        for mask in 0..(1u32 << len) {
            out.push((0..len).map(|i| mask & (1 << i) != 0).collect());
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn compiler_matches_brute_force(f in arb_formula()) {
        let compiled = compile(&f, 3, &[]);
        for w in words(5) {
            let symbols: Vec<Symbol> = w
                .iter()
                .map(|&b| Symbol(u32::from(b)))
                .collect();
            let want = eval(&f, &w, None, None);
            prop_assert_eq!(
                compiled.dfa.accepts_word(&symbols),
                want,
                "mismatch on {:?} for {}", w, f
            );
        }
    }

    #[test]
    fn double_negation(f in arb_formula()) {
        let a = compile(&f, 3, &[]);
        let b = compile(&Formula::not(Formula::not(f)), 3, &[]);
        prop_assert!(equivalent(&a.dfa, &b.dfa));
    }

    #[test]
    fn quantifier_duality(core in arb_core()) {
        // ∀x φ ≡ ¬∃x ¬φ  at the automaton level, with y closed first
        let closed = |inner: Formula| Formula::exists_fo(Y, inner);
        let lhs = compile(&Formula::forall_fo(X, closed(core.clone())), 3, &[]);
        let rhs = compile(
            &Formula::not(Formula::exists_fo(X, Formula::not(closed(core)))),
            3,
            &[],
        );
        prop_assert!(equivalent(&lhs.dfa, &rhs.dfa));
    }

    #[test]
    fn de_morgan_on_compiled(f in arb_formula(), g in arb_formula()) {
        let lhs = compile(&Formula::not(Formula::and(f.clone(), g.clone())), 3, &[]);
        let rhs = compile(&Formula::or(Formula::not(f), Formula::not(g)), 3, &[]);
        prop_assert!(equivalent(&lhs.dfa, &rhs.dfa));
    }
}
