//! The Büchi–Elgot–Trakhtenbrot compilation: WS1S formulas → DFAs over
//! bit-vector alphabets.
//!
//! Each variable owns a *track* (bit) of the alphabet; a word over
//! `2^m` letters encodes an assignment of all `m` variables: a
//! second-order variable's set is the positions where its bit is 1, a
//! first-order variable's position is the unique position where its bit
//! is 1 (singleton constraint, enforced at quantification and at the free
//! level by [`compile`]).
//!
//! This is the effective content of the paper's citation trail
//! [9, 15, 26]: `Language(φ)` is regular, constructively. The structure
//! is compositional — atomic automata, products for ∧/∨, complement for
//! ¬, and **projection + determinization** for ∃ — so the cost of
//! quantifier alternation (exponential per ∀∃ flip) is visible in the
//! E7 experiment series.

use selprop_automata::alphabet::{Alphabet, Symbol};
use selprop_automata::dfa::Dfa;
use selprop_automata::minimize::minimize;
use selprop_automata::nfa::Nfa;

use crate::syntax::{Formula, VarId};

/// The compiled form of a formula: a DFA over the `2^num_tracks` letter
/// alphabet, whose accepted words are exactly the satisfying assignments.
/// Bound tracks are normalized to all-zero.
#[derive(Clone, Debug)]
pub struct CompiledFormula {
    /// The automaton.
    pub dfa: Dfa,
    /// Number of tracks (variables).
    pub num_tracks: usize,
    /// Which tracks are first-order *free* variables (their singleton
    /// constraint is conjoined at the top level).
    pub free_fo: Vec<VarId>,
}

/// Builds the `2^m` bit-vector alphabet. Letter `Symbol(mask)` has bit
/// `t` set iff variable track `t` is 1.
pub fn track_alphabet(num_tracks: usize) -> Alphabet {
    assert!(num_tracks <= 16, "track alphabet too large");
    Alphabet::from_names((0..(1usize << num_tracks)).map(|mask| format!("{mask:b}")))
}

/// Whether `letter` has the bit of `track` set.
#[inline]
fn bit(letter: Symbol, track: usize) -> bool {
    letter.0 & (1 << track) != 0
}

/// Compiles a formula whose free variables are all second-order, over
/// `num_tracks` tracks (callers that also have free first-order variables
/// list them in `free_fo`; their singleton constraints are conjoined).
pub fn compile(f: &Formula, num_tracks: usize, free_fo: &[VarId]) -> CompiledFormula {
    if let Some(m) = f.max_var() {
        assert!(m < num_tracks, "variable track out of range");
    }
    let alphabet = track_alphabet(num_tracks);
    let mut dfa = go(f, &alphabet);
    for &v in free_fo {
        dfa = dfa.intersect(&singleton(&alphabet, v.0));
        dfa = minimize(&dfa);
    }
    CompiledFormula {
        dfa,
        num_tracks,
        free_fo: free_fo.to_vec(),
    }
}

fn go(f: &Formula, al: &Alphabet) -> Dfa {
    let dfa = match f {
        Formula::True => all_words(al),
        Formula::False => Dfa::from_nfa(&Nfa::empty(al.clone())),
        Formula::Eq(x, y) => eq(al, x.0, y.0),
        Formula::Succ(x, y) => succ(al, x.0, y.0),
        Formula::Lt(x, y) => lt(al, x.0, y.0),
        Formula::In(x, w) => is_in(al, x.0, w.0),
        Formula::IsFirst(x) => is_first(al, x.0),
        Formula::IsLast(x) => is_last(al, x.0),
        Formula::Not(g) => go(g, al).complement(),
        Formula::And(a, b) => go(a, al).intersect(&go(b, al)),
        Formula::Or(a, b) => go(a, al).union(&go(b, al)),
        Formula::Implies(a, b) => go(a, al).complement().union(&go(b, al)),
        Formula::ExistsFo(v, g) => {
            let body = go(g, al).intersect(&singleton(al, v.0));
            project(&body, al, v.0)
        }
        Formula::ForallFo(v, g) => {
            // ∀x φ ≡ ¬∃x ¬φ (with the singleton constraint inside ∃)
            let body = go(g, al).complement().intersect(&singleton(al, v.0));
            project(&body, al, v.0).complement()
        }
        Formula::ExistsSo(v, g) => project(&go(g, al), al, v.0),
        Formula::ForallSo(v, g) => project(&go(g, al).complement(), al, v.0).complement(),
    };
    minimize(&dfa)
}

/// Projection of a track: existentially erase its bits, then normalize
/// the track to zero.
fn project(dfa: &Dfa, al: &Alphabet, track: usize) -> Dfa {
    let mut nfa = Nfa::new(al.clone());
    for _ in 0..dfa.num_states() {
        nfa.add_state();
    }
    nfa.set_start(dfa.start());
    for q in 0..dfa.num_states() {
        if dfa.is_accept(q) {
            nfa.set_accept(q);
        }
        for a in al.symbols() {
            // the projected automaton reads `a` but may follow either
            // value of the erased bit
            let a0 = Symbol(a.0 & !(1 << track));
            let a1 = Symbol(a.0 | (1 << track));
            nfa.add_transition(q, a, dfa.step(q, a0));
            nfa.add_transition(q, a, dfa.step(q, a1));
        }
    }
    let projected = Dfa::from_nfa(&nfa);
    minimize(&projected.intersect(&zero_track(al, track)))
}

/// All words (⊤).
fn all_words(al: &Alphabet) -> Dfa {
    Dfa::from_nfa(&Nfa::sigma_star(al.clone()))
}

/// The track is 1 at exactly one position.
fn singleton(al: &Alphabet, track: usize) -> Dfa {
    build(al, 3, 0, &[1], |state, letter| match (state, bit(letter, track)) {
        (0, false) => 0,
        (0, true) => 1,
        (1, false) => 1,
        (1, true) => 2,
        (2, _) => 2,
        _ => unreachable!(),
    })
}

/// The track is 0 everywhere.
fn zero_track(al: &Alphabet, track: usize) -> Dfa {
    build(al, 2, 0, &[0], |state, letter| match (state, bit(letter, track)) {
        (0, false) => 0,
        _ => 1,
    })
}

/// Tracks x and y agree at every position (with singleton x, y this is
/// position equality).
fn eq(al: &Alphabet, x: usize, y: usize) -> Dfa {
    build(al, 2, 0, &[0], |state, letter| {
        if state == 0 && bit(letter, x) == bit(letter, y) {
            0
        } else {
            1
        }
    })
}

/// x's mark is immediately followed by y's mark (and neither appears
/// elsewhere — guaranteed by the singleton constraints).
fn succ(al: &Alphabet, x: usize, y: usize) -> Dfa {
    // state 0: not seen x; state 1: x seen at previous position;
    // state 2: satisfied; state 3: dead.
    build(al, 4, 0, &[2], |state, letter| {
        let bx = bit(letter, x);
        let by = bit(letter, y);
        match state {
            0 => match (bx, by) {
                (false, false) => 0,
                (true, false) => 1,
                _ => 3,
            },
            1 => match (bx, by) {
                (false, true) => 2,
                _ => 3,
            },
            2 => match (bx, by) {
                (false, false) => 2,
                _ => 3,
            },
            _ => 3,
        }
    })
}

/// x's mark is strictly before y's mark.
fn lt(al: &Alphabet, x: usize, y: usize) -> Dfa {
    // 0: seen neither; 1: seen x only; 2: seen both in order; 3: dead.
    build(al, 4, 0, &[2], |state, letter| {
        let bx = bit(letter, x);
        let by = bit(letter, y);
        match state {
            0 => match (bx, by) {
                (false, false) => 0,
                (true, false) => 1,
                _ => 3, // y first (or same position)
            },
            1 => match (bx, by) {
                (false, false) => 1,
                (false, true) => 2,
                _ => 3,
            },
            2 => match (bx, by) {
                (false, false) => 2,
                _ => 3,
            },
            _ => 3,
        }
    })
}

/// Wherever x's bit is 1, w's bit is 1 (with singleton x: `x ∈ W`).
fn is_in(al: &Alphabet, x: usize, w: usize) -> Dfa {
    build(al, 2, 0, &[0], |state, letter| {
        if state == 0 && (!bit(letter, x) || bit(letter, w)) {
            0
        } else {
            1
        }
    })
}

/// x's mark is at the first position.
fn is_first(al: &Alphabet, x: usize) -> Dfa {
    // 0: at first position; 1: x seen at position 0, rest must be clear;
    // 2: past first without x (dead unless x never appears? no — x must
    // be at 0) → dead; 3: dead.
    build(al, 4, 0, &[1], |state, letter| {
        let bx = bit(letter, x);
        match state {
            0 => {
                if bx {
                    1
                } else {
                    2
                }
            }
            1 => {
                if bx {
                    3
                } else {
                    1
                }
            }
            _ => {
                // x appearing later violates "first"; x not appearing at
                // all violates the singleton handled elsewhere — either
                // way stay dead.
                3
            }
        }
    })
}

/// x's mark is at the last position.
fn is_last(al: &Alphabet, x: usize) -> Dfa {
    // 0: not yet seen; 1: seen at the previous position (accepting only
    // if the word ends here); 2: dead.
    build(al, 3, 0, &[1], |state, letter| {
        let bx = bit(letter, x);
        match state {
            0 => {
                if bx {
                    1
                } else {
                    0
                }
            }
            _ => 2,
        }
    })
}

/// Small helper: builds a total DFA from a transition function.
fn build(
    al: &Alphabet,
    num_states: usize,
    start: usize,
    accepting: &[usize],
    step: impl Fn(usize, Symbol) -> usize,
) -> Dfa {
    let transitions: Vec<Vec<usize>> = (0..num_states)
        .map(|q| al.symbols().map(|a| step(q, a)).collect())
        .collect();
    let acc: Vec<bool> = (0..num_states).map(|q| accepting.contains(&q)).collect();
    Dfa::from_parts(al.clone(), transitions, start, acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::VarAllocator;

    /// Evaluates a formula on an explicit word by brute force (ground
    /// truth for the compiler).
    fn eval(f: &Formula, word: &[u32]) -> bool {
        // word[i] = bitmask of tracks at position i
        match f {
            Formula::True => true,
            Formula::False => false,
            Formula::Eq(x, y) => pos_of(word, x.0) == pos_of(word, y.0),
            Formula::Succ(x, y) => match (pos_of(word, x.0), pos_of(word, y.0)) {
                (Some(i), Some(j)) => j == i + 1,
                _ => false,
            },
            Formula::Lt(x, y) => match (pos_of(word, x.0), pos_of(word, y.0)) {
                (Some(i), Some(j)) => i < j,
                _ => false,
            },
            Formula::In(x, w) => match pos_of(word, x.0) {
                Some(i) => word[i] & (1 << w.0) != 0,
                None => false,
            },
            Formula::IsFirst(x) => pos_of(word, x.0) == Some(0),
            Formula::IsLast(x) => {
                !word.is_empty() && pos_of(word, x.0) == Some(word.len() - 1)
            }
            Formula::Not(g) => !eval(g, word),
            Formula::And(a, b) => eval(a, word) && eval(b, word),
            Formula::Or(a, b) => eval(a, word) || eval(b, word),
            Formula::Implies(a, b) => !eval(a, word) || eval(b, word),
            Formula::ExistsFo(v, g) => (0..word.len()).any(|i| {
                let w2 = with_singleton(word, v.0, i);
                eval(g, &w2)
            }),
            Formula::ForallFo(v, g) => (0..word.len()).all(|i| {
                let w2 = with_singleton(word, v.0, i);
                eval(g, &w2)
            }),
            Formula::ExistsSo(v, g) => subsets(word.len()).any(|s| {
                let w2 = with_set(word, v.0, s);
                eval(g, &w2)
            }),
            Formula::ForallSo(v, g) => subsets(word.len()).all(|s| {
                let w2 = with_set(word, v.0, s);
                eval(g, &w2)
            }),
        }
    }

    fn pos_of(word: &[u32], track: usize) -> Option<usize> {
        let hits: Vec<usize> = (0..word.len())
            .filter(|&i| word[i] & (1 << track) != 0)
            .collect();
        if hits.len() == 1 {
            Some(hits[0])
        } else {
            None
        }
    }

    fn with_singleton(word: &[u32], track: usize, pos: usize) -> Vec<u32> {
        let mut w: Vec<u32> = word.iter().map(|&l| l & !(1 << track)).collect();
        w[pos] |= 1 << track;
        w
    }

    fn with_set(word: &[u32], track: usize, set: u32) -> Vec<u32> {
        (0..word.len())
            .map(|i| {
                let cleared = word[i] & !(1 << track);
                if set & (1 << i) != 0 {
                    cleared | (1 << track)
                } else {
                    cleared
                }
            })
            .collect()
    }

    fn subsets(len: usize) -> impl Iterator<Item = u32> {
        0..(1u32 << len)
    }

    /// All words of length ≤ max over `m` tracks, with bits confined to
    /// `free_mask` (the compiler normalizes quantified tracks to zero, so
    /// only assignments of the free variables are meaningful inputs).
    fn words(m: usize, free_mask: u32, max: usize) -> Vec<Vec<u32>> {
        let letters: Vec<u32> = (0..(1u32 << m)).filter(|l| l & !free_mask == 0).collect();
        let mut out: Vec<Vec<u32>> = vec![vec![]];
        let mut frontier: Vec<Vec<u32>> = vec![vec![]];
        for _ in 0..max {
            let mut next = Vec::new();
            for w in &frontier {
                for &l in &letters {
                    let mut w2 = w.clone();
                    w2.push(l);
                    next.push(w2);
                }
            }
            out.extend(next.iter().cloned());
            frontier = next;
        }
        out
    }

    fn check(f: &Formula, m: usize, free_mask: u32, max_len: usize) {
        let compiled = compile(f, m, &[]);
        for w in words(m, free_mask, max_len) {
            let symbols: Vec<Symbol> = w.iter().map(|&l| Symbol(l)).collect();
            assert_eq!(
                compiled.dfa.accepts_word(&symbols),
                eval(f, &w),
                "mismatch on {w:?} for {f}"
            );
        }
    }

    #[test]
    fn exists_membership() {
        // ∃x (x ∈ W0): W0 nonempty
        let mut va = VarAllocator::new();
        let w = va.fresh("W");
        let x = va.fresh("x");
        let f = Formula::exists_fo(x, Formula::In(x, w));
        check(&f, 2, 0b01, 4);
    }

    #[test]
    fn forall_membership() {
        // ∀x (x ∈ W0): W0 is the whole word
        let mut va = VarAllocator::new();
        let w = va.fresh("W");
        let x = va.fresh("x");
        let f = Formula::forall_fo(x, Formula::In(x, w));
        check(&f, 2, 0b01, 4);
    }

    #[test]
    fn successor_and_order() {
        let mut va = VarAllocator::new();
        let w = va.fresh("W");
        let x = va.fresh("x");
        let y = va.fresh("y");
        // ∃x∃y (succ(x,y) ∧ x ∈ W ∧ ¬(y ∈ W))
        let f = Formula::exists_fo(
            x,
            Formula::exists_fo(
                y,
                Formula::all([
                    Formula::Succ(x, y),
                    Formula::In(x, w),
                    Formula::not(Formula::In(y, w)),
                ]),
            ),
        );
        check(&f, 3, 0b001, 4);
    }

    #[test]
    fn less_than() {
        let mut va = VarAllocator::new();
        let w = va.fresh("W");
        let v = va.fresh("V");
        let x = va.fresh("x");
        let y = va.fresh("y");
        // every W-element is before every V-element
        let f = Formula::forall_fo(
            x,
            Formula::forall_fo(
                y,
                Formula::implies(
                    Formula::and(Formula::In(x, w), Formula::In(y, v)),
                    Formula::Lt(x, y),
                ),
            ),
        );
        check(&f, 4, 0b0011, 3);
    }

    #[test]
    fn first_and_last() {
        let mut va = VarAllocator::new();
        let w = va.fresh("W");
        let x = va.fresh("x");
        // the first position is in W
        let f = Formula::exists_fo(x, Formula::and(Formula::IsFirst(x), Formula::In(x, w)));
        check(&f, 2, 0b01, 4);
        let y = va.fresh("y");
        let g = Formula::exists_fo(y, Formula::and(Formula::IsLast(y), Formula::In(y, w)));
        check(&g, 3, 0b001, 4);
    }

    #[test]
    fn second_order_exists() {
        // ∃W ∀x (x ∈ W): trivially true for nonempty words (take W = all),
        // and for the empty word ∀x ... is vacuously true too.
        let mut va = VarAllocator::new();
        let w = va.fresh("W");
        let x = va.fresh("x");
        let f = Formula::exists_so(w, Formula::forall_fo(x, Formula::In(x, w)));
        check(&f, 2, 0b00, 3);
    }

    #[test]
    fn second_order_forall() {
        // ∀W ∃x (x ∈ W): false (take W = ∅)
        let mut va = VarAllocator::new();
        let w = va.fresh("W");
        let x = va.fresh("x");
        let f = Formula::forall_so(w, Formula::exists_fo(x, Formula::In(x, w)));
        check(&f, 2, 0b00, 3);
    }

    #[test]
    fn even_positions_definable() {
        // W = set of even positions: first ∈ W, and membership alternates
        // with succ. Check the induced language over track-0 projections
        // is (10)*1? — here just brute-force agreement.
        let mut va = VarAllocator::new();
        let w = va.fresh("W");
        let x = va.fresh("x");
        let y = va.fresh("y");
        let alternates = Formula::forall_fo(
            x,
            Formula::forall_fo(
                y,
                Formula::implies(
                    Formula::Succ(x, y),
                    Formula::iff(Formula::In(x, w), Formula::not(Formula::In(y, w))),
                ),
            ),
        );
        let starts = Formula::forall_fo(
            x,
            Formula::implies(Formula::IsFirst(x), Formula::In(x, w)),
        );
        let f = Formula::and(alternates, starts);
        check(&f, 3, 0b001, 4);
    }
}
