//! Mechanization of the Lemma 5.1 encoding: a **monadic Datalog program**
//! becomes a WS1S formula whose models, read through the EDB partition
//! tracks, form a regular language.
//!
//! The paper's construction (Section 5): replace each EDB occurrence
//! `b_i(X, Y)` by `w_{i+m}(X) ∧ next(X, Y)`, view the rules as universally
//! quantified Horn clauses (φ4/φ5), constrain `w_{1+m}, ..., w_{k+m}` to
//! partition a complete initial segment (φ1–φ3), and close with a prefix
//! of *universal* weak second-order quantifiers over the IDB predicates
//! (φ6):
//!
//! ```text
//! φ = ∀w ∀w1 ... ∀wm (φ5 ⇒ w(0)) ∧ φ3
//! ```
//!
//! In the finite-word semantics of this crate the "complete initial
//! segment" is the word itself, so φ3 reduces to the partition constraint,
//! and `next` is `succ`. One presentational deviation (documented in
//! DESIGN.md): the paper uses goal `p(c, c)` on a *cycle*; we mechanize
//! the `p(c, Y)` line variant — the database is the path `0 → 1 → ... →
//! n-1` with edge `(i, i+1)` labeled by position `i`'s partition block,
//! and the goal asks whether the **last** node is derived. Then
//! `Models(φ)`, with the meaningless last-position label stripped, is
//! exactly `L(H)` — the same conclusion Lemma 5.2 draws, with cleaner
//! bookkeeping (a path winds exactly once; a cycle can wind many times).
//!
//! The punchline is Lemma 5.3 made executable: [`extract_language`]
//! returns a DFA, so *whatever monadic program you feed in, the language
//! it defines on labeled lines is regular* — the heart of the Theorem
//! 3.3(1) "only if" direction.

use selprop_automata::alphabet::{Alphabet, Symbol};
use selprop_automata::dfa::Dfa;
use selprop_automata::minimize::minimize;
use selprop_automata::nfa::Nfa;
use selprop_automata::ops;
use selprop_datalog::ast::{Pred, Program, Term};

use crate::compile::{compile, CompiledFormula};
use crate::syntax::{Formula, VarId};

/// The result of encoding a monadic program.
#[derive(Clone, Debug)]
pub struct ChainEncoding {
    /// The WS1S formula (free variables: the EDB partition tracks).
    pub formula: Formula,
    /// Total number of tracks.
    pub num_tracks: usize,
    /// `(EDB predicate, track)` pairs, in track order `0..k`.
    pub edb_tracks: Vec<(Pred, usize)>,
    /// The target string alphabet (one symbol per EDB, named after it).
    pub alphabet: Alphabet,
}

/// Builds the Lemma 5.1 formula for a monadic program `h` whose EDBs are
/// binary and whose only constant is `origin` (the paper's `c`,
/// interpreted as position 0). The goal must be unary (`g(Y)`: answer at
/// the last node) or ground (`g(c)`: answer at the origin).
pub fn encode_monadic_program(h: &Program, origin: &str) -> Result<ChainEncoding, String> {
    h.validate()?;
    if !h.is_monadic() {
        return Err("Lemma 5.1 encoding requires a monadic program".to_owned());
    }
    let idbs = h.idb_predicates();
    let edbs = h.edb_predicates();
    if edbs.is_empty() {
        return Err("program has no EDB predicates".to_owned());
    }
    let origin_const = h.symbols.get_constant(origin);

    // Track layout: EDB partition tracks 0..k, then IDB tracks, then a
    // per-rule pool of first-order tracks (reused across rules — each is
    // quantified within its own rule's subformula).
    let k = edbs.len();
    let m = idbs.len();
    let edb_track = |p: Pred| -> usize { edbs.iter().position(|&q| q == p).expect("edb") };
    let idb_track = |p: Pred| -> usize { k + idbs.iter().position(|&q| q == p).expect("idb") };
    let fo_base = k + m;

    // φ_partition: every position is in exactly one EDB block.
    let x = VarId(fo_base);
    let partition = Formula::forall_fo(
        x,
        Formula::any((0..k).map(|i| {
            Formula::all(
                std::iter::once(Formula::In(x, VarId(i))).chain((0..k).filter(|&j| j != i).map(
                    |j| Formula::not(Formula::In(x, VarId(j))),
                )),
            )
        })),
    );

    // Per-rule Horn clause, universally closed.
    let mut rules_formula = Formula::True;
    for rule in &h.rules {
        // map the rule's variables to FO tracks fo_base.., plus one extra
        // track for the origin constant if it occurs.
        let vars = rule.all_vars();
        let var_track = |v: selprop_datalog::ast::Var| -> VarId {
            VarId(fo_base + vars.iter().position(|&w| w == v).expect("rule var"))
        };
        let origin_track = VarId(fo_base + vars.len());
        let mut uses_origin = false;
        let term_var = |t: &Term, uses_origin: &mut bool| -> Result<VarId, String> {
            match t {
                Term::Var(v) => Ok(var_track(*v)),
                Term::Const(c) => {
                    if Some(*c) == origin_const {
                        *uses_origin = true;
                        Ok(origin_track)
                    } else {
                        Err(format!(
                            "constant {} is not the origin '{origin}'",
                            h.symbols.const_name(*c)
                        ))
                    }
                }
            }
        };

        let mut body = Formula::True;
        for atom in &rule.body {
            let f = if idbs.contains(&atom.pred) {
                if atom.arity() != 1 {
                    return Err("IDB atoms must be unary".to_owned());
                }
                let t = term_var(&atom.args[0], &mut uses_origin)?;
                Formula::In(t, VarId(idb_track(atom.pred)))
            } else {
                if atom.arity() != 2 {
                    return Err(format!(
                        "EDB {} must be binary (chain form)",
                        h.symbols.pred_name(atom.pred)
                    ));
                }
                let tx = term_var(&atom.args[0], &mut uses_origin)?;
                let ty = term_var(&atom.args[1], &mut uses_origin)?;
                Formula::and(
                    Formula::In(tx, VarId(edb_track(atom.pred))),
                    Formula::Succ(tx, ty),
                )
            };
            body = Formula::and(body, f);
        }
        if rule.head.arity() != 1 {
            return Err("IDB heads must be unary".to_owned());
        }
        let head_t = term_var(&rule.head.args[0], &mut uses_origin)?;
        let head = Formula::In(head_t, VarId(idb_track(rule.head.pred)));

        let mut clause = Formula::implies(body, head);
        // close over the origin marker, guarded by IsFirst
        if uses_origin {
            clause = Formula::forall_fo(
                origin_track,
                Formula::implies(Formula::IsFirst(origin_track), clause),
            );
        }
        for &v in vars.iter().rev() {
            clause = Formula::forall_fo(var_track(v), clause);
        }
        rules_formula = Formula::and(rules_formula, clause);
    }

    // Goal: g(Y) → last node derived; g(c) → origin derived.
    let goal_track = VarId(idb_track(h.goal.pred));
    let y = VarId(fo_base);
    let goal_formula = match h.goal.args.as_slice() {
        [Term::Var(_)] => Formula::exists_fo(
            y,
            Formula::and(Formula::IsLast(y), Formula::In(y, goal_track)),
        ),
        [Term::Const(c)] if Some(*c) == origin_const => Formula::exists_fo(
            y,
            Formula::and(Formula::IsFirst(y), Formula::In(y, goal_track)),
        ),
        _ => return Err("goal must be g(Y) or g(origin)".to_owned()),
    };

    // φ6: ∀W_idb1 ... ∀W_idbm (rules ⇒ goal) ∧ partition
    let mut phi = Formula::implies(rules_formula, goal_formula);
    for &p in idbs.iter().rev() {
        phi = Formula::forall_so(VarId(idb_track(p)), phi);
    }
    let formula = Formula::and(partition, phi);

    // count FO tracks actually used
    let max_rule_vars = h
        .rules
        .iter()
        .map(|r| r.all_vars().len() + 1)
        .max()
        .unwrap_or(1)
        .max(1);
    let num_tracks = fo_base + max_rule_vars;

    let alphabet = Alphabet::from_names(edbs.iter().map(|&p| h.symbols.pred_name(p)));
    Ok(ChainEncoding {
        formula,
        num_tracks,
        edb_tracks: edbs.iter().enumerate().map(|(i, &p)| (p, i)).collect(),
        alphabet,
    })
}

/// Compiles the encoding to its track DFA.
pub fn compile_encoding(enc: &ChainEncoding) -> CompiledFormula {
    compile(&enc.formula, enc.num_tracks, &[])
}

/// Extracts the regular language over the EDB alphabet: maps one-hot
/// partition letters to EDB symbols and strips the meaningless label of
/// the final node (a line with `n` nodes has `n-1` edges).
pub fn extract_language(enc: &ChainEncoding) -> Dfa {
    let compiled = compile_encoding(enc);
    let track_dfa = &compiled.dfa;
    let k = enc.edb_tracks.len();

    let mut nfa = Nfa::new(enc.alphabet.clone());
    for _ in 0..track_dfa.num_states() {
        nfa.add_state();
    }
    if track_dfa.num_states() > 0 {
        nfa.set_start(track_dfa.start());
    }
    for q in 0..track_dfa.num_states() {
        if track_dfa.is_accept(q) {
            nfa.set_accept(q);
        }
        for letter in track_dfa.alphabet.symbols() {
            // keep only letters that are one-hot on the EDB tracks and
            // zero on every other track
            let mask = letter.0;
            if mask.count_ones() != 1 {
                continue;
            }
            let t = mask.trailing_zeros() as usize;
            if t >= k {
                continue;
            }
            nfa.add_transition(q, Symbol(t as u32), track_dfa.step(q, letter));
        }
    }
    let mapped = minimize(&Dfa::from_nfa(&nfa));
    // strip the final node's label: L = mapped / Σ
    let sigma_once = {
        let mut n = Nfa::new(enc.alphabet.clone());
        let a = n.add_state();
        let b = n.add_state();
        n.set_start(a);
        n.set_accept(b);
        for s in enc.alphabet.symbols().collect::<Vec<_>>() {
            n.add_transition(a, s, b);
        }
        Dfa::from_nfa(&n)
    };
    minimize(&ops::right_quotient(&mapped, &sigma_once))
}

#[cfg(test)]
mod tests {
    use super::*;
    use selprop_automata::equiv::equivalent;
    use selprop_automata::regex::Regex;
    use selprop_datalog::parser::parse_program;

    fn regex_dfa(al: &Alphabet, text: &str) -> Dfa {
        let mut al = al.clone();
        Regex::parse(text, &mut al).unwrap().to_dfa(&al)
    }

    #[test]
    fn program_d_defines_par_plus() {
        // Example 1.1 Program D — the monadic rewrite of ancestors. Its
        // language on labeled lines is par⁺ = L(H) for the ancestor chain
        // program.
        let h = parse_program(
            "?- ancjohn(Y).\n\
             ancjohn(Y) :- par(john, Y).\n\
             ancjohn(Y) :- ancjohn(Z), par(Z, Y).",
        )
        .unwrap();
        let enc = encode_monadic_program(&h, "john").unwrap();
        let lang = extract_language(&enc);
        let expected = regex_dfa(&enc.alphabet, "par par*");
        assert!(
            equivalent(&lang, &expected),
            "Program D's WS1S language must be par+"
        );
    }

    #[test]
    fn two_edb_left_linear() {
        // L = b1 b2*: p(Y) :- b1(c, Y); p(Y) :- p(Z), b2(Z, Y).
        let h = parse_program(
            "?- p(Y).\n\
             p(Y) :- b1(c, Y).\n\
             p(Y) :- p(Z), b2(Z, Y).",
        )
        .unwrap();
        let enc = encode_monadic_program(&h, "c").unwrap();
        let lang = extract_language(&enc);
        let expected = regex_dfa(&enc.alphabet, "b1 b2*");
        assert!(equivalent(&lang, &expected));
    }

    #[test]
    fn alternation_language() {
        // L = (b1 b2)+ via two monadic IDBs.
        let h = parse_program(
            "?- q2(Y).\n\
             q1(Y) :- b1(c, Y).\n\
             q1(Y) :- q2(Z), b1(Z, Y).\n\
             q2(Y) :- q1(Z), b2(Z, Y).",
        )
        .unwrap();
        let enc = encode_monadic_program(&h, "c").unwrap();
        let lang = extract_language(&enc);
        let expected = regex_dfa(&enc.alphabet, "(b1 b2)(b1 b2)*");
        assert!(equivalent(&lang, &expected));
    }

    #[test]
    fn rejects_binary_idb() {
        let h = parse_program(
            "?- p(c, Y).\n\
             p(X, Y) :- b(X, Y).\n\
             p(X, Y) :- p(X, Z), b(Z, Y).",
        )
        .unwrap();
        assert!(encode_monadic_program(&h, "c").is_err());
    }

    #[test]
    fn rejects_foreign_constants() {
        let h = parse_program(
            "?- p(Y).\n\
             p(Y) :- b(other, Y).",
        )
        .unwrap();
        assert!(encode_monadic_program(&h, "c").is_err());
    }

    #[test]
    fn empty_language_program() {
        // A program that can never reach the goal: the goal predicate has
        // an unsatisfiable guard (q never derived).
        let h = parse_program(
            "?- p(Y).\n\
             p(Y) :- q(Z), b(Z, Y).\n\
             q(Y) :- p(Z), b(Z, Y).",
        )
        .unwrap();
        let enc = encode_monadic_program(&h, "c").unwrap();
        let lang = extract_language(&enc);
        assert!(lang.is_empty(), "unreachable goal means empty language");
    }
}
