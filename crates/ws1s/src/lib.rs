//! # selprop-ws1s
//!
//! Weak monadic second-order logic of one successor (WS1S) on finite
//! words, for the reproduction of *Beeri, Kanellakis, Bancilhon,
//! Ramakrishnan — "Bounds on the Propagation of Selection into Logic
//! Programs"* (PODS 1987 / JCSS 1990).
//!
//! Section 5 of the paper proves the hard direction of Theorem 3.3(1) by
//! translating a hypothetical monadic Datalog program into a WS1S formula
//! and invoking Büchi–Elgot regularity. This crate makes that argument
//! executable:
//!
//! - [`syntax`] — WS1S formulas (first-order position variables, weak
//!   second-order set variables, `succ`, order, membership);
//! - [`compile`](mod@compile) — the Büchi–Elgot–Trakhtenbrot decision procedure:
//!   formulas compile to DFAs over bit-vector track alphabets, so
//!   `Language(φ)` is regular *constructively*;
//! - [`encode`] — the Lemma 5.1 construction: a monadic Datalog program
//!   over binary (chain) EDBs becomes a formula whose models, read
//!   through the EDB partition tracks, are exactly the language the
//!   program defines on labeled line databases.

#![warn(missing_docs)]

pub mod compile;
pub mod encode;
pub mod syntax;

pub use compile::{compile, CompiledFormula};
pub use encode::{encode_monadic_program, extract_language, ChainEncoding};
pub use syntax::{Formula, VarAllocator, VarId};
