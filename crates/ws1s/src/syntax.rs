//! Formulas of weak monadic second-order logic of one successor (WS1S),
//! interpreted over finite words.
//!
//! The paper's Section 5 works in WS1S over the nonnegative integers with
//! finite-set (weak) second-order quantification [9, 15, 26]; its models
//! `Models(φ)` are encoded as strings and the key fact is that
//! `Language(φ)` is regular. We implement the equivalent *finite-word*
//! presentation (Thatcher–Wright, ref.\[26\]): a model is a finite word, a
//! first-order variable denotes a position, a second-order variable a set
//! of positions. The paper's "complete initial segment of the integers"
//! (Lemma 5.1, formula φ3) *is* a finite word, so nothing is lost for the
//! Lemma 5.1 mechanization — see `DESIGN.md`'s substitution table.

use std::fmt;

/// A variable index (a *track* of the compiled automaton's bit-vector
/// alphabet). Whether it is first- or second-order is determined by how
/// it is used/quantified, and enforced by the compiler.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// A WS1S formula over finite words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Formula {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// `x = y` (positions).
    Eq(VarId, VarId),
    /// `succ(x, y)`: `y` is the position after `x`.
    Succ(VarId, VarId),
    /// `x < y` (position order).
    Lt(VarId, VarId),
    /// `x ∈ W`.
    In(VarId, VarId),
    /// `x` is the first position (`0` in the paper's integer reading).
    IsFirst(VarId),
    /// `x` is the last position of the word.
    IsLast(VarId),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// First-order existential: `∃x φ` (over positions).
    ExistsFo(VarId, Box<Formula>),
    /// First-order universal: `∀x φ`.
    ForallFo(VarId, Box<Formula>),
    /// Weak second-order existential: `∃W φ` (over finite sets ≡ sets of
    /// word positions).
    ExistsSo(VarId, Box<Formula>),
    /// Weak second-order universal: `∀W φ` — the only second-order
    /// quantifier Lemma 5.1 needs ("a prefix of universal weak
    /// second-order monadic quantifiers").
    ForallSo(VarId, Box<Formula>),
}

impl Formula {
    /// `¬φ`.
    // A DSL constructor taking the operand by value, not an `ops::Not`
    // impl (which would force `!f` syntax on boxed formulas).
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }
    /// `φ ∧ ψ` (with unit simplification).
    pub fn and(a: Formula, b: Formula) -> Formula {
        match (a, b) {
            (Formula::True, x) | (x, Formula::True) => x,
            (Formula::False, _) | (_, Formula::False) => Formula::False,
            (a, b) => Formula::And(Box::new(a), Box::new(b)),
        }
    }
    /// `φ ∨ ψ` (with unit simplification).
    pub fn or(a: Formula, b: Formula) -> Formula {
        match (a, b) {
            (Formula::False, x) | (x, Formula::False) => x,
            (Formula::True, _) | (_, Formula::True) => Formula::True,
            (a, b) => Formula::Or(Box::new(a), Box::new(b)),
        }
    }
    /// `φ ⇒ ψ`.
    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::Implies(Box::new(a), Box::new(b))
    }
    /// `φ ⇔ ψ`.
    pub fn iff(a: Formula, b: Formula) -> Formula {
        Formula::and(
            Formula::implies(a.clone(), b.clone()),
            Formula::implies(b, a),
        )
    }
    /// Conjunction of many.
    pub fn all(fs: impl IntoIterator<Item = Formula>) -> Formula {
        fs.into_iter().fold(Formula::True, Formula::and)
    }
    /// Disjunction of many.
    pub fn any(fs: impl IntoIterator<Item = Formula>) -> Formula {
        fs.into_iter().fold(Formula::False, Formula::or)
    }
    /// `∃x φ`.
    pub fn exists_fo(x: VarId, f: Formula) -> Formula {
        Formula::ExistsFo(x, Box::new(f))
    }
    /// `∀x φ`.
    pub fn forall_fo(x: VarId, f: Formula) -> Formula {
        Formula::ForallFo(x, Box::new(f))
    }
    /// `∃W φ`.
    pub fn exists_so(w: VarId, f: Formula) -> Formula {
        Formula::ExistsSo(w, Box::new(f))
    }
    /// `∀W φ`.
    pub fn forall_so(w: VarId, f: Formula) -> Formula {
        Formula::ForallSo(w, Box::new(f))
    }

    /// The largest variable index mentioned (used to size the track
    /// alphabet).
    pub fn max_var(&self) -> Option<usize> {
        match self {
            Formula::True | Formula::False => None,
            Formula::Eq(a, b) | Formula::Succ(a, b) | Formula::Lt(a, b) | Formula::In(a, b) => {
                Some(a.0.max(b.0))
            }
            Formula::IsFirst(a) | Formula::IsLast(a) => Some(a.0),
            Formula::Not(f) => f.max_var(),
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                match (a.max_var(), b.max_var()) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (x, None) => x,
                    (None, y) => y,
                }
            }
            Formula::ExistsFo(v, f)
            | Formula::ForallFo(v, f)
            | Formula::ExistsSo(v, f)
            | Formula::ForallSo(v, f) => Some(f.max_var().map_or(v.0, |m| m.max(v.0))),
        }
    }
}

/// A small helper for allocating variables with readable names.
#[derive(Clone, Debug, Default)]
pub struct VarAllocator {
    names: Vec<String>,
}

impl VarAllocator {
    /// Creates an empty allocator.
    pub fn new() -> Self {
        Self::default()
    }
    /// Allocates a fresh variable.
    pub fn fresh(&mut self, name: &str) -> VarId {
        self.names.push(name.to_owned());
        VarId(self.names.len() - 1)
    }
    /// The name of a variable.
    pub fn name(&self, v: VarId) -> &str {
        &self.names[v.0]
    }
    /// Number of variables allocated.
    pub fn len(&self) -> usize {
        self.names.len()
    }
    /// Whether no variables were allocated.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "⊤"),
            Formula::False => write!(f, "⊥"),
            Formula::Eq(a, b) => write!(f, "x{} = x{}", a.0, b.0),
            Formula::Succ(a, b) => write!(f, "succ(x{}, x{})", a.0, b.0),
            Formula::Lt(a, b) => write!(f, "x{} < x{}", a.0, b.0),
            Formula::In(a, b) => write!(f, "x{} ∈ W{}", a.0, b.0),
            Formula::IsFirst(a) => write!(f, "first(x{})", a.0),
            Formula::IsLast(a) => write!(f, "last(x{})", a.0),
            Formula::Not(g) => write!(f, "¬({g})"),
            Formula::And(a, b) => write!(f, "({a} ∧ {b})"),
            Formula::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Formula::Implies(a, b) => write!(f, "({a} ⇒ {b})"),
            Formula::ExistsFo(v, g) => write!(f, "∃x{} ({g})", v.0),
            Formula::ForallFo(v, g) => write!(f, "∀x{} ({g})", v.0),
            Formula::ExistsSo(v, g) => write!(f, "∃W{} ({g})", v.0),
            Formula::ForallSo(v, g) => write!(f, "∀W{} ({g})", v.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_simplify_units() {
        let x = VarId(0);
        let w = VarId(1);
        let f = Formula::and(Formula::True, Formula::In(x, w));
        assert_eq!(f, Formula::In(x, w));
        let g = Formula::or(Formula::In(x, w), Formula::False);
        assert_eq!(g, Formula::In(x, w));
        assert_eq!(Formula::and(Formula::False, g.clone()), Formula::False);
        let _ = g;
    }

    #[test]
    fn max_var_tracks_quantifiers() {
        let mut va = VarAllocator::new();
        let x = va.fresh("x");
        let w = va.fresh("w");
        let f = Formula::exists_fo(x, Formula::In(x, w));
        assert_eq!(f.max_var(), Some(1));
        assert_eq!(va.name(w), "w");
    }

    #[test]
    fn display_renders() {
        let f = Formula::forall_so(
            VarId(2),
            Formula::implies(Formula::In(VarId(0), VarId(2)), Formula::True),
        );
        let s = format!("{f}");
        assert!(s.contains("∀W2"));
    }
}
