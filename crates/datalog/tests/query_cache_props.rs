//! Property tests for the magic-set query cache ([`selprop_datalog::cache`]):
//! random interleavings of EDB inserts, retracts and bound queries
//! against a live [`QueryCache`] must agree, at every step, with a
//! from-scratch magic transform of the *current* EDB — across the
//! sequential and parallel evaluation strategies — and eviction
//! pressure must never change an answer, only the cost of producing it.

use proptest::prelude::*;
use selprop_datalog::ast::{Atom, Const, Program, Term, Var};
use selprop_datalog::db::{Database, Tuple};
use selprop_datalog::eval::{answer, Strategy as EvalStrategy};
use selprop_datalog::magic::magic_transform;
use selprop_datalog::materialize::Materialization;
use selprop_datalog::parser::parse_program;
use selprop_datalog::{CacheConfig, QueryCache};

/// The recursive ancestor variants of Example 1.1 plus same-generation
/// — linear, right-linear and nonlinear recursion shapes.
fn program(idx: usize) -> Program {
    let sources = [
        "?- anc(c0, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
        "?- anc(c0, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y).",
        "?- sg(c0, Y).\nsg(X, Y) :- par(X, Y).\nsg(X, Y) :- par(X, U), sg(U, V), par(V, Y).",
    ];
    parse_program(sources[idx]).unwrap()
}

fn strategy(threads: usize) -> EvalStrategy {
    if threads <= 1 {
        EvalStrategy::SemiNaive
    } else {
        EvalStrategy::SemiNaiveParallel { threads }
    }
}

/// The from-scratch reference: bake the concrete goal into the program,
/// magic-transform, and batch-evaluate over the current EDB.
fn oracle(p: &Program, goal: &Atom, edb: &Database) -> Vec<Tuple> {
    let mut pg = p.clone();
    pg.goal = goal.clone();
    let m = magic_transform(&pg).expect("transformable goal");
    let (ans, _) = answer(&m.program, edb, EvalStrategy::SemiNaive);
    ans.sorted()
}

/// Interns the node constants and the query variable up front so every
/// later `Const`/`Var` id is stable across program clones.
fn setup(p: &mut Program, n: usize) -> (Vec<Const>, Var) {
    let nodes = (0..n)
        .map(|i| p.symbols.constant(&format!("c{i}")))
        .collect();
    let qy = p.symbols.variable("QY");
    (nodes, qy)
}

/// Deduplicated random edge pool over `nodes` (one mirror slot per
/// distinct edge, so the present/absent bookkeeping stays exact).
fn dedup_pool(nodes: &[Const], raw: &[(u8, u8)]) -> Vec<(Const, Const)> {
    let mut pool: Vec<(Const, Const)> = raw
        .iter()
        .map(|&(a, b)| (nodes[a as usize % nodes.len()], nodes[b as usize % nodes.len()]))
        .collect();
    pool.sort();
    pool.dedup();
    pool
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole property: however inserts, retracts and bound
    /// queries interleave — and whatever strategy maintains the base —
    /// every cached answer is bit-identical to rebuilding the magic
    /// program from scratch on the current EDB.
    #[test]
    fn interleaved_churn_matches_scratch_oracle(
        idx in 0usize..3,
        tsel in 0usize..3,
        raw_pool in proptest::collection::vec((0u8..6, 0u8..6), 4..16),
        ops in proptest::collection::vec((0u8..3, 0u8..16, 0u8..6), 1..20),
    ) {
        let threads = [1usize, 2, 4][tsel];
        let mut p = program(idx);
        let (nodes, qy) = setup(&mut p, 6);
        let par = p.symbols.get_predicate("par").unwrap();
        let goal_pred = p.goal.pred;
        let pool = dedup_pool(&nodes, &raw_pool);

        let mut present = vec![false; pool.len()];
        let mut edb = Database::new();
        let mut base = Materialization::from_database(&p, &edb, strategy(threads));
        let mut cache = QueryCache::new(&p);

        for (kind, ei, node) in ops {
            let ei = ei as usize % pool.len();
            let edge: Tuple = vec![pool[ei].0, pool[ei].1];
            match kind {
                0 => {
                    if !present[ei] {
                        present[ei] = true;
                        base.insert_facts(par, std::slice::from_ref(&edge));
                        edb.insert(par, edge);
                    }
                }
                1 => {
                    if present[ei] {
                        present[ei] = false;
                        base.retract_facts(par, std::slice::from_ref(&edge));
                        edb.remove(par, &edge);
                    }
                }
                _ => {
                    let c = nodes[node as usize];
                    let goal = Atom::new(goal_pred, vec![Term::Const(c), Term::Var(qy)]);
                    prop_assert_eq!(
                        cache.query(&mut base, &goal).sorted(),
                        oracle(&p, &goal, &edb)
                    );
                }
            }
        }

        // Final sweep: every binding constant, plus the all-free goal
        // (routed direct — must equal the full model's projection).
        for &c in &nodes {
            let goal = Atom::new(goal_pred, vec![Term::Const(c), Term::Var(qy)]);
            prop_assert_eq!(
                cache.query(&mut base, &goal).sorted(),
                oracle(&p, &goal, &edb)
            );
        }
        let qx = p.symbols.variable("QX");
        let free = Atom::new(goal_pred, vec![Term::Var(qx), Term::Var(qy)]);
        prop_assert_eq!(
            cache.query(&mut base, &free).sorted(),
            oracle(&p, &free, &edb)
        );
    }

    /// Eviction-then-requery equivalence: a cache squeezed to a single
    /// view slot thrashes across six keys and still answers every query
    /// exactly like the from-scratch transform.
    #[test]
    fn eviction_never_changes_answers(
        idx in 0usize..3,
        raw_pool in proptest::collection::vec((0u8..6, 0u8..6), 6..18),
        rounds in 1usize..4,
    ) {
        let mut p = program(idx);
        let (nodes, qy) = setup(&mut p, 6);
        let par = p.symbols.get_predicate("par").unwrap();
        let goal_pred = p.goal.pred;
        let pool = dedup_pool(&nodes, &raw_pool);

        let mut edb = Database::new();
        for &(a, b) in &pool {
            edb.insert(par, vec![a, b]);
        }
        let mut base = Materialization::from_database(&p, &edb, EvalStrategy::SemiNaive);
        let mut cache =
            QueryCache::with_config(&p, CacheConfig { max_views: 1, max_rows: 1 << 20 });

        for _ in 0..rounds {
            for &c in &nodes {
                let goal = Atom::new(goal_pred, vec![Term::Const(c), Term::Var(qy)]);
                prop_assert_eq!(
                    cache.query(&mut base, &goal).sorted(),
                    oracle(&p, &goal, &edb)
                );
            }
        }
        let s = cache.stats();
        prop_assert!(s.evictions > 0, "six keys through one slot must evict");
        prop_assert!(s.views <= 1);
    }
}
