//! Property tests for the cache-conscious storage layer: under random
//! interleaved insert/retract/compact/query churn on the gallery and
//! magic-set programs, the segmented posting layout
//! ([`PlannerConfig::default`]) and the chains-only baseline
//! (`segmented: false`) must be **observationally identical** — sorted
//! models, every interleaved query read-out, `EvalStats`, and the full
//! provenance (row ids and justifications, compared bit for bit via
//! `Provenance`'s `PartialEq`) — at every strategy × thread count.
//!
//! The layouts share one enumeration contract (strictly descending row
//! ids per posting), so a divergence anywhere in this suite means the
//! segment fold, the single-key table, or the batched merge changed
//! *what* the engine computes instead of only where rows live.

use proptest::prelude::*;
use selprop_datalog::ast::{Pred, Program};
use selprop_datalog::db::{Database, Tuple};
use selprop_datalog::eval::Strategy as EvalStrategy;
use selprop_datalog::magic::magic_transform;
use selprop_datalog::parser::parse_program;
use selprop_datalog::{EvalStats, Materialization, PlannerConfig, Provenance, UpdateRound};

/// One churn step: op kind (insert / retract / compact / query) plus an
/// edge for the insert/retract kinds.
type Op = (u8, u8, u8);

fn arb_script(n: usize, max_ops: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..4, 0..n as u8, 0..n as u8), 0..max_ops)
}

fn arb_edges(n: usize, max_edges: usize) -> impl Strategy<Value = Vec<(u8, u8)>> {
    proptest::collection::vec((0..n as u8, 0..n as u8), 0..max_edges)
}

/// The same gallery the planner property suite uses: the binary
/// recursive ancestor variants plus same-generation.
fn program(idx: usize) -> Program {
    let sources = [
        "?- anc(c0, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
        "?- anc(c0, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y).",
        "?- anc(c0, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), anc(Z, Y).",
        "?- sg(c0, Y).\nsg(X, Y) :- par(X, Y).\nsg(X, Y) :- par(X, U), sg(U, V), par(V, Y).",
    ];
    parse_program(sources[idx]).unwrap()
}

fn build_db(p: &mut Program, edges: &[(u8, u8)]) -> Database {
    let par = p.symbols.get_predicate("par").unwrap();
    let mut db = Database::new();
    for &(a, b) in edges {
        let ca = p.symbols.constant(&format!("c{a}"));
        let cb = p.symbols.constant(&format!("c{b}"));
        db.insert(par, vec![ca, cb]);
    }
    db
}

/// Everything observable about one churned store: the lifetime
/// counters, the interleaved query read-outs, the final model, and the
/// final provenance (row ids + justifications, bit for bit).
struct Observed {
    stats: EvalStats,
    queries: Vec<usize>,
    model: Vec<(Pred, Vec<Tuple>)>,
    prov: Provenance,
    compactions: u64,
}

/// Runs the churn script against a live materialization of `p` under
/// the given strategy and planner config. Compaction runs on demand
/// (op 2) rather than by policy, so both layouts compact at the same
/// script positions.
fn churn(p: &Program, db: &Database, strategy: EvalStrategy, cfg: PlannerConfig, script: &[Op]) -> Observed {
    let mut m = Materialization::from_database_with(p, db, strategy, cfg);
    m.set_compaction_policy(None);
    let par = p.symbols.get_predicate("par").unwrap();
    let mut queries = Vec::new();
    for &(kind, a, b) in script {
        let ca = p.symbols.get_constant(&format!("c{a}")).unwrap();
        let cb = p.symbols.get_constant(&format!("c{b}")).unwrap();
        match kind {
            0 => {
                m.apply(&UpdateRound::new().insert(par, vec![ca, cb]));
            }
            1 => {
                m.apply(&UpdateRound::new().retract(par, vec![ca, cb]));
            }
            2 => {
                m.compact();
            }
            _ => {
                queries.push(
                    m.idb_database()
                        .sorted_models()
                        .iter()
                        .map(|(_, rows)| rows.len())
                        .sum(),
                );
            }
        }
    }
    Observed {
        stats: m.stats(),
        queries,
        model: m.idb_database().sorted_models(),
        prov: m.provenance(),
        compactions: m.compactions(),
    }
}

/// Asserts two layouts observed the same world.
fn assert_identical(label: &str, seg: &Observed, chains: &Observed) -> Result<(), TestCaseError> {
    prop_assert_eq!(seg.stats, chains.stats, "{}: EvalStats drift", label);
    prop_assert_eq!(&seg.queries, &chains.queries, "{}: query read-out drift", label);
    prop_assert_eq!(&seg.model, &chains.model, "{}: model drift", label);
    prop_assert_eq!(
        seg.prov == chains.prov,
        true,
        "{}: row-id/justification drift between layouts",
        label
    );
    prop_assert_eq!(seg.compactions, chains.compactions, "{}: compaction drift", label);
    Ok(())
}

fn chains_cfg() -> PlannerConfig {
    PlannerConfig {
        segmented: false,
        ..PlannerConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Gallery programs under churn: both layouts, every strategy ×
    /// thread count, one observation contract.
    #[test]
    fn layouts_agree_under_churn(
        idx in 0usize..4,
        edges in arb_edges(6, 12),
        script in arb_script(6, 14),
    ) {
        let mut p = program(idx);
        let db = build_db(&mut p, &edges);
        // Intern every constant the script can touch (retracts of
        // never-inserted edges must resolve, as no-ops).
        for k in 0..6u8 {
            p.symbols.constant(&format!("c{k}"));
        }
        let mut baseline: Option<Observed> = None;
        for threads in [1usize, 2, 4] {
            let strategy = if threads == 1 {
                EvalStrategy::SemiNaive
            } else {
                EvalStrategy::SemiNaiveParallel { threads }
            };
            let seg = churn(&p, &db, strategy, PlannerConfig::default(), &script);
            let chains = churn(&p, &db, strategy, chains_cfg(), &script);
            seg.prov.check(&p).map_err(TestCaseError::fail)?;
            assert_identical(&format!("threads={threads}"), &seg, &chains)?;
            // The layouts are also thread-count independent: every run
            // observes exactly what the sequential one did.
            if let Some(base) = &baseline {
                assert_identical(&format!("threads={threads} vs sequential"), &seg, base)?;
            } else {
                baseline = Some(seg);
            }
        }
    }

    /// Magic-set rewritten programs (guard-heavy rules, the shapes the
    /// planner rewrites hardest) under the same churn contract.
    #[test]
    fn magic_layouts_agree_under_churn(
        idx in 0usize..4,
        edges in arb_edges(5, 10),
        script in arb_script(5, 10),
    ) {
        let mut p = program(idx);
        let db = build_db(&mut p, &edges);
        let magic = magic_transform(&p).unwrap();
        let mut mp = magic.program;
        for k in 0..5u8 {
            mp.symbols.constant(&format!("c{k}"));
        }
        for threads in [1usize, 2, 4] {
            let strategy = if threads == 1 {
                EvalStrategy::SemiNaive
            } else {
                EvalStrategy::SemiNaiveParallel { threads }
            };
            let seg = churn(&mp, &db, strategy, PlannerConfig::default(), &script);
            let chains = churn(&mp, &db, strategy, chains_cfg(), &script);
            seg.prov.check(&mp).map_err(TestCaseError::fail)?;
            assert_identical(&format!("magic threads={threads}"), &seg, &chains)?;
        }
    }
}
