//! Property tests for the Datalog engine: strategy agreement, magic-set
//! equivalence, and goal-application laws on randomized programs and
//! databases.

use proptest::prelude::*;
use selprop_datalog::ast::{Const, Program};
use selprop_datalog::db::Database;
use selprop_datalog::eval::{answer, apply_goal, evaluate, Strategy as EvalStrategy};
use selprop_datalog::magic::magic_transform;
use selprop_datalog::parser::parse_program;

/// Random edge lists over `n` nodes.
fn arb_edges(n: usize, max_edges: usize) -> impl Strategy<Value = Vec<(u8, u8)>> {
    proptest::collection::vec((0..n as u8, 0..n as u8), 0..max_edges)
}

/// The three binary recursive ancestor variants from Example 1.1, plus
/// same-generation, keyed by index.
fn program(idx: usize) -> Program {
    let sources = [
        "?- anc(c0, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
        "?- anc(c0, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y).",
        "?- anc(c0, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), anc(Z, Y).",
        "?- sg(c0, Y).\nsg(X, Y) :- par(X, Y).\nsg(X, Y) :- par(X, U), sg(U, V), par(V, Y).",
    ];
    parse_program(sources[idx]).unwrap()
}

fn build_db(p: &mut Program, edges: &[(u8, u8)]) -> Database {
    let par = p.symbols.get_predicate("par").unwrap();
    let mut db = Database::new();
    for &(a, b) in edges {
        let ca = p.symbols.constant(&format!("c{a}"));
        let cb = p.symbols.constant(&format!("c{b}"));
        db.insert(par, vec![ca, cb]);
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn naive_equals_seminaive(idx in 0usize..4, edges in arb_edges(6, 14)) {
        let mut p = program(idx);
        let db = build_db(&mut p, &edges);
        let (a1, _) = answer(&p, &db, EvalStrategy::Naive);
        let (a2, _) = answer(&p, &db, EvalStrategy::SemiNaive);
        prop_assert_eq!(a1.sorted(), a2.sorted());
    }

    #[test]
    fn example_11_variants_agree(edges in arb_edges(6, 14)) {
        // Programs A, B, C are finite-query equivalent (Example 1.1).
        let mut answers = Vec::new();
        for idx in 0..3 {
            let mut p = program(idx);
            let db = build_db(&mut p, &edges);
            let (a, _) = answer(&p, &db, EvalStrategy::SemiNaive);
            answers.push(a.sorted());
        }
        prop_assert_eq!(&answers[0], &answers[1]);
        prop_assert_eq!(&answers[1], &answers[2]);
    }

    #[test]
    fn magic_preserves_answers(idx in 0usize..4, edges in arb_edges(6, 14)) {
        let mut p = program(idx);
        let db = build_db(&mut p, &edges);
        let (want, _) = answer(&p, &db, EvalStrategy::SemiNaive);
        let magic = magic_transform(&p).unwrap();
        let (got, _) = answer(&magic.program, &db, EvalStrategy::SemiNaive);
        prop_assert_eq!(got.sorted(), want.sorted());
    }

    #[test]
    fn magic_never_does_more_deriving(edges in arb_edges(7, 16)) {
        // Magic may add magic-predicate tuples, but IDB tuples of the
        // adorned goal predicate are a subset of the original relation.
        let mut p = program(0);
        let db = build_db(&mut p, &edges);
        let orig = evaluate(&p, &db, EvalStrategy::SemiNaive);
        let magic = magic_transform(&p).unwrap();
        let m = evaluate(&magic.program, &db, EvalStrategy::SemiNaive);
        let anc = p.symbols.get_predicate("anc").unwrap();
        let key = (anc, "bf".to_owned());
        let adorned = magic.adorned[&key];
        let orig_rel = orig.idb.relation(anc);
        if let Some(m_rel) = m.idb.relation(adorned) {
            for t in m_rel.iter() {
                prop_assert!(
                    orig_rel.map(|r| r.contains(t)).unwrap_or(false),
                    "magic derived a tuple the original did not"
                );
            }
        }
    }

    #[test]
    fn goal_application_is_idempotent_on_output(idx in 0usize..3, edges in arb_edges(5, 10)) {
        let mut p = program(idx);
        let db = build_db(&mut p, &edges);
        let (ans, _) = answer(&p, &db, EvalStrategy::SemiNaive);
        // answers are unary: every tuple matches a fresh all-free goal
        prop_assert!(ans.iter().all(|t| t.len() == 1));
    }

    #[test]
    fn monotonicity(edges in arb_edges(5, 10), extra in arb_edges(5, 4)) {
        // Datalog is monotone: adding facts never removes answers.
        let mut p = program(0);
        let db = build_db(&mut p, &edges);
        let (small, _) = answer(&p, &db, EvalStrategy::SemiNaive);
        let mut all_edges = edges.clone();
        all_edges.extend_from_slice(&extra);
        let mut p2 = program(0);
        let db2 = build_db(&mut p2, &all_edges);
        let (big, _) = answer(&p2, &db2, EvalStrategy::SemiNaive);
        for t in small.iter() {
            prop_assert!(big.contains(t), "monotonicity violated");
        }
    }
}

#[test]
fn apply_goal_repeated_vars_and_constants() {
    let mut p = parse_program("?- q(X).\nq(X) :- e(X).").unwrap();
    let e2 = p.symbols.predicate("pair");
    let x = p.symbols.variable("X");
    let c = p.symbols.constant("k");
    let mut rel = selprop_datalog::Relation::new(2);
    let c0 = Const(100);
    let c1 = Const(101);
    rel.insert(vec![c0, c0]);
    rel.insert(vec![c0, c1]);
    rel.insert(vec![c, c]);
    // goal pair(X, X): diagonal only
    let goal = selprop_datalog::Atom::new(
        e2,
        vec![
            selprop_datalog::Term::Var(x),
            selprop_datalog::Term::Var(x),
        ],
    );
    let out = apply_goal(&goal, &rel);
    assert_eq!(out.len(), 2);
    // goal pair(k, X): selection on first column
    let goal2 = selprop_datalog::Atom::new(
        e2,
        vec![
            selprop_datalog::Term::Const(c),
            selprop_datalog::Term::Var(x),
        ],
    );
    let out2 = apply_goal(&goal2, &rel);
    assert_eq!(out2.len(), 1);
}
