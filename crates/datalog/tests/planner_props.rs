//! Property tests for the cost-based join planner: on randomized
//! gallery and magic-set programs, **every body order computes the same
//! model** — the planner's selectivity-chosen order, the legacy textual
//! order, and adversarial forced-random orders ([`OrderMode::Shuffled`])
//! — and recorded provenance stays valid ([`Provenance::check`]) and
//! thread-count independent under each of them.
//!
//! The reference evaluator is run *under the same planner config* as
//! the engine, so the counter parity contract (`EvalStats` bit-for-bit)
//! is exercised per order, not just for the default plan.

use proptest::prelude::*;
use selprop_datalog::ast::Program;
use selprop_datalog::db::Database;
use selprop_datalog::eval::{
    evaluate_cfg, evaluate_with_provenance_cfg, Strategy as EvalStrategy,
};
use selprop_datalog::magic::magic_transform;
use selprop_datalog::parser::parse_program;
use selprop_datalog::{reference, OrderMode, PlannerConfig};

/// Random edge lists over `n` nodes.
fn arb_edges(n: usize, max_edges: usize) -> impl Strategy<Value = Vec<(u8, u8)>> {
    proptest::collection::vec((0..n as u8, 0..n as u8), 0..max_edges)
}

/// The binary recursive ancestor variants from Example 1.1 plus
/// same-generation — the gallery the planner's shape analysis and
/// ordering decisions must never change semantics on.
fn program(idx: usize) -> Program {
    let sources = [
        "?- anc(c0, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
        "?- anc(c0, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y).",
        "?- anc(c0, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), anc(Z, Y).",
        "?- sg(c0, Y).\nsg(X, Y) :- par(X, Y).\nsg(X, Y) :- par(X, U), sg(U, V), par(V, Y).",
    ];
    parse_program(sources[idx]).unwrap()
}

fn build_db(p: &mut Program, edges: &[(u8, u8)]) -> Database {
    let par = p.symbols.get_predicate("par").unwrap();
    let mut db = Database::new();
    for &(a, b) in edges {
        let ca = p.symbols.constant(&format!("c{a}"));
        let cb = p.symbols.constant(&format!("c{b}"));
        db.insert(par, vec![ca, cb]);
    }
    db
}

/// The three order strategies under test: the pre-planner engine, the
/// full planner, and a forced-random order with every other planner
/// feature left on (the adversarial case for the staged-head pruning
/// and provenance permutations).
fn configs(seed: u64) -> [PlannerConfig; 3] {
    [
        PlannerConfig::legacy(),
        PlannerConfig::default(),
        PlannerConfig {
            order: OrderMode::Shuffled(seed),
            ..PlannerConfig::default()
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Engine vs reference under each order strategy: bit-identical
    /// counters and equal models — and the models agree **across**
    /// order strategies.
    #[test]
    fn every_body_order_computes_the_same_model(
        idx in 0usize..4,
        edges in arb_edges(6, 14),
        seed in 0u64..u64::MAX,
    ) {
        let mut p = program(idx);
        let db = build_db(&mut p, &edges);
        let mut models = Vec::new();
        for cfg in configs(seed) {
            let got = evaluate_cfg(&p, &db, EvalStrategy::SemiNaive, cfg);
            let spec = reference::evaluate_cfg(&p, &db, EvalStrategy::SemiNaive, cfg);
            prop_assert_eq!(got.stats, spec.stats);
            prop_assert_eq!(got.idb.sorted_models(), spec.idb.sorted_models());
            models.push(got.idb.sorted_models());
        }
        prop_assert_eq!(&models[0], &models[1]);
        prop_assert_eq!(&models[1], &models[2]);
    }

    /// Magic-set rewritten programs (whose rules carry magic guards in
    /// front — the order the planner most aggressively rewrites) keep
    /// their answers under every order strategy.
    #[test]
    fn magic_programs_survive_every_body_order(
        idx in 0usize..4,
        edges in arb_edges(6, 14),
        seed in 0u64..u64::MAX,
    ) {
        let mut p = program(idx);
        let db = build_db(&mut p, &edges);
        let magic = magic_transform(&p).unwrap();
        let want = evaluate_cfg(&magic.program, &db, EvalStrategy::SemiNaive, PlannerConfig::legacy())
            .idb
            .sorted_models();
        for cfg in configs(seed) {
            let got = evaluate_cfg(&magic.program, &db, EvalStrategy::SemiNaive, cfg);
            let spec = reference::evaluate_cfg(&magic.program, &db, EvalStrategy::SemiNaive, cfg);
            prop_assert_eq!(got.stats, spec.stats);
            prop_assert_eq!(&got.idb.sorted_models(), &want);
            prop_assert_eq!(&spec.idb.sorted_models(), &want);
        }
    }

    /// Provenance stays valid, thread-count independent, and
    /// model-complete under every order strategy × threads {1, 2, 4}.
    /// Justifications are stored in original-body order regardless of
    /// the join order that found them — `Provenance::check` replays
    /// them against the rule text, so a permutation bug cannot pass.
    #[test]
    fn provenance_is_valid_under_every_order_and_thread_count(
        idx in 0usize..4,
        edges in arb_edges(5, 10),
        seed in 0u64..u64::MAX,
    ) {
        let mut p = program(idx);
        let db = build_db(&mut p, &edges);
        for cfg in configs(seed) {
            let baseline =
                evaluate_with_provenance_cfg(&p, &db, EvalStrategy::SemiNaive, cfg);
            baseline.provenance.check(&p).map_err(TestCaseError::fail)?;
            let want = baseline.provenance.idb_database().sorted_models();
            let spec = reference::evaluate_cfg(&p, &db, EvalStrategy::SemiNaive, cfg);
            prop_assert_eq!(&want, &spec.idb.sorted_models());
            for threads in [2usize, 4] {
                let par = evaluate_with_provenance_cfg(
                    &p,
                    &db,
                    EvalStrategy::SemiNaiveParallel { threads },
                    cfg,
                );
                prop_assert_eq!(par.stats, baseline.stats);
                par.provenance.check(&p).map_err(TestCaseError::fail)?;
                prop_assert_eq!(&par.provenance.idb_database().sorted_models(), &want);
            }
        }
    }
}
