//! Datalog abstract syntax: terms, atoms, rules, programs, goals.
//!
//! The syntax follows Section 2.1 of the paper exactly: three disjoint
//! interned symbol spaces (constants, variables, predicates), atoms
//! `r(u)` over them, rules `r(u) :- r1(u1), ..., rn(un)`, and a program
//! as a finite set of rules plus a distinguished **goal** atom whose
//! predicate heads some rule.

use std::collections::HashMap;
use std::fmt;

/// An interned constant (`c, c1, ...` in the paper; `john` in Example 1.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Const(pub u32);

/// An interned variable (`X, Y, Z, X1, ...`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

/// An interned predicate symbol (`p, p1, b, b1, ...`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pred(pub u32);

impl fmt::Debug for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}
impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.0)
    }
}
impl fmt::Debug for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Interning table for one symbol space.
#[derive(Clone, Debug, Default)]
struct Space {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl Space {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = u32::try_from(self.names.len()).expect("symbol space overflow");
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), i);
        i
    }
    fn get(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }
    fn name(&self, i: u32) -> &str {
        &self.names[i as usize]
    }
}

/// The three disjoint symbol spaces of a program and its databases.
#[derive(Clone, Debug, Default)]
pub struct Symbols {
    consts: Space,
    vars: Space,
    preds: Space,
}

impl Symbols {
    /// Creates empty symbol spaces.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a constant name.
    pub fn constant(&mut self, name: &str) -> Const {
        Const(self.consts.intern(name))
    }
    /// Interns a variable name.
    pub fn variable(&mut self, name: &str) -> Var {
        Var(self.vars.intern(name))
    }
    /// Interns a predicate name.
    pub fn predicate(&mut self, name: &str) -> Pred {
        Pred(self.preds.intern(name))
    }

    /// Looks up a constant without interning.
    pub fn get_constant(&self, name: &str) -> Option<Const> {
        self.consts.get(name).map(Const)
    }
    /// Looks up a predicate without interning.
    pub fn get_predicate(&self, name: &str) -> Option<Pred> {
        self.preds.get(name).map(Pred)
    }
    /// Looks up a variable without interning.
    pub fn get_variable(&self, name: &str) -> Option<Var> {
        self.vars.get(name).map(Var)
    }

    /// The name of a constant.
    pub fn const_name(&self, c: Const) -> &str {
        self.consts.name(c.0)
    }
    /// The name of a variable.
    pub fn var_name(&self, v: Var) -> &str {
        self.vars.name(v.0)
    }
    /// The name of a predicate.
    pub fn pred_name(&self, p: Pred) -> &str {
        self.preds.name(p.0)
    }

    /// Number of interned constants.
    pub fn num_constants(&self) -> usize {
        self.consts.names.len()
    }

    /// Number of interned predicates.
    pub fn num_predicates(&self) -> usize {
        self.preds.names.len()
    }

    /// Makes a fresh constant that does not collide with existing names.
    pub fn fresh_constant(&mut self, hint: &str) -> Const {
        let mut name = hint.to_owned();
        let mut i = 0;
        while self.consts.get(&name).is_some() {
            name = format!("{hint}_{i}");
            i += 1;
        }
        self.constant(&name)
    }

    /// Makes a fresh predicate that does not collide with existing names.
    pub fn fresh_predicate(&mut self, hint: &str) -> Pred {
        let mut name = hint.to_owned();
        let mut i = 0;
        while self.preds.get(&name).is_some() {
            name = format!("{hint}_{i}");
            i += 1;
        }
        self.predicate(&name)
    }

    /// Makes a fresh variable that does not collide with existing names.
    pub fn fresh_variable(&mut self, hint: &str) -> Var {
        let mut name = hint.to_owned();
        let mut i = 0;
        while self.vars.get(&name).is_some() {
            name = format!("{hint}_{i}");
            i += 1;
        }
        self.variable(&name)
    }
}

/// A term: variable or constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A constant.
    Const(Const),
}

impl Term {
    /// The variable inside, if any.
    pub fn as_var(self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

/// An atom `r(t1, ..., ta)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// The predicate.
    pub pred: Pred,
    /// The argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Builds an atom.
    pub fn new(pred: Pred, args: Vec<Term>) -> Self {
        Self { pred, args }
    }

    /// Arity.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Iterates over the variables, in argument order (with repeats).
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.args.iter().filter_map(|t| t.as_var())
    }

    /// Whether the atom has no variables.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| matches!(t, Term::Const(_)))
    }
}

/// A rule `head :- body`. An empty body makes the rule a fact schema
/// (the head must then be ground for the program to be safe).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// Head atom.
    pub head: Atom,
    /// Body atoms.
    pub body: Vec<Atom>,
}

impl Rule {
    /// Builds a rule.
    pub fn new(head: Atom, body: Vec<Atom>) -> Self {
        Self { head, body }
    }

    /// All variables of the rule (head and body), deduplicated in first
    /// occurrence order.
    pub fn all_vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        let mut push = |v: Var| {
            if !out.contains(&v) {
                out.push(v);
            }
        };
        for t in &self.head.args {
            if let Term::Var(v) = t {
                push(*v);
            }
        }
        for a in &self.body {
            for t in &a.args {
                if let Term::Var(v) = t {
                    push(*v);
                }
            }
        }
        out
    }

    /// Safety (range restriction): every head variable occurs in the body.
    pub fn is_safe(&self) -> bool {
        self.head
            .vars()
            .all(|v| self.body.iter().any(|a| a.vars().any(|w| w == v)))
    }
}

/// A Datalog program: rules plus a goal atom.
#[derive(Clone, Debug)]
pub struct Program {
    /// The rules.
    pub rules: Vec<Rule>,
    /// The goal atom; its predicate must head some rule.
    pub goal: Atom,
    /// The symbol spaces this program's ids refer to.
    pub symbols: Symbols,
}

impl Program {
    /// Predicates that appear in some rule head (IDBs).
    pub fn idb_predicates(&self) -> Vec<Pred> {
        let mut out = Vec::new();
        for r in &self.rules {
            if !out.contains(&r.head.pred) {
                out.push(r.head.pred);
            }
        }
        out
    }

    /// Predicates that appear only in rule bodies (EDBs).
    pub fn edb_predicates(&self) -> Vec<Pred> {
        let idbs = self.idb_predicates();
        let mut out = Vec::new();
        for r in &self.rules {
            for a in &r.body {
                if !idbs.contains(&a.pred) && !out.contains(&a.pred) {
                    out.push(a.pred);
                }
            }
        }
        out
    }

    /// Whether `p` is an IDB of this program.
    pub fn is_idb(&self, p: Pred) -> bool {
        self.rules.iter().any(|r| r.head.pred == p)
    }

    /// Validation: every rule safe; goal predicate is an IDB; arities
    /// consistent per predicate.
    pub fn validate(&self) -> Result<(), String> {
        let mut arities: HashMap<Pred, usize> = HashMap::new();
        let mut check = |a: &Atom, symbols: &Symbols| -> Result<(), String> {
            match arities.get(&a.pred) {
                Some(&ar) if ar != a.arity() => Err(format!(
                    "predicate {} used with arities {} and {}",
                    symbols.pred_name(a.pred),
                    ar,
                    a.arity()
                )),
                _ => {
                    arities.insert(a.pred, a.arity());
                    Ok(())
                }
            }
        };
        for r in &self.rules {
            check(&r.head, &self.symbols)?;
            for a in &r.body {
                check(a, &self.symbols)?;
            }
            if !r.is_safe() {
                return Err(format!(
                    "unsafe rule: head variable not bound in body of {}",
                    self.render_rule(r)
                ));
            }
        }
        check(&self.goal, &self.symbols)?;
        if !self.is_idb(self.goal.pred) {
            return Err(format!(
                "goal predicate {} heads no rule",
                self.symbols.pred_name(self.goal.pred)
            ));
        }
        Ok(())
    }

    /// Maximum arity of any IDB predicate — the paper's measure of
    /// propagation success (monadic = all IDB arities ≤ 1).
    pub fn max_idb_arity(&self) -> usize {
        let idbs = self.idb_predicates();
        self.rules
            .iter()
            .flat_map(|r| {
                std::iter::once(&r.head)
                    .chain(r.body.iter())
                    .filter(|a| idbs.contains(&a.pred))
            })
            .map(Atom::arity)
            .max()
            .unwrap_or(0)
    }

    /// Whether the program is monadic: all IDB predicates of arity ≤ 1
    /// (Section 2.1, definition (2) — EDBs may have any arity and rules
    /// may contain constants).
    pub fn is_monadic(&self) -> bool {
        self.max_idb_arity() <= 1
    }

    /// Renders a term.
    pub fn render_term(&self, t: Term) -> String {
        match t {
            Term::Var(v) => self.symbols.var_name(v).to_owned(),
            Term::Const(c) => self.symbols.const_name(c).to_owned(),
        }
    }

    /// Renders an atom.
    pub fn render_atom(&self, a: &Atom) -> String {
        let args: Vec<String> = a.args.iter().map(|&t| self.render_term(t)).collect();
        if args.is_empty() {
            self.symbols.pred_name(a.pred).to_owned()
        } else {
            format!("{}({})", self.symbols.pred_name(a.pred), args.join(", "))
        }
    }

    /// Renders a rule.
    pub fn render_rule(&self, r: &Rule) -> String {
        if r.body.is_empty() {
            format!("{}.", self.render_atom(&r.head))
        } else {
            let body: Vec<String> = r.body.iter().map(|a| self.render_atom(a)).collect();
            format!("{} :- {}.", self.render_atom(&r.head), body.join(", "))
        }
    }

    /// Renders the whole program, goal first (paper style `?goal`).
    pub fn render(&self) -> String {
        let mut out = format!("?- {}.\n", self.render_atom(&self.goal));
        for r in &self.rules {
            out.push_str(&self.render_rule(r));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ancestor() -> Program {
        let mut sy = Symbols::new();
        let par = sy.predicate("par");
        let anc = sy.predicate("anc");
        let x = sy.variable("X");
        let y = sy.variable("Y");
        let z = sy.variable("Z");
        let john = sy.constant("john");
        let rules = vec![
            Rule::new(
                Atom::new(anc, vec![Term::Var(x), Term::Var(y)]),
                vec![Atom::new(par, vec![Term::Var(x), Term::Var(y)])],
            ),
            Rule::new(
                Atom::new(anc, vec![Term::Var(x), Term::Var(y)]),
                vec![
                    Atom::new(anc, vec![Term::Var(x), Term::Var(z)]),
                    Atom::new(par, vec![Term::Var(z), Term::Var(y)]),
                ],
            ),
        ];
        Program {
            rules,
            goal: Atom::new(anc, vec![Term::Const(john), Term::Var(y)]),
            symbols: sy,
        }
    }

    #[test]
    fn idb_edb_split() {
        let p = ancestor();
        let anc = p.symbols.get_predicate("anc").unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        assert_eq!(p.idb_predicates(), vec![anc]);
        assert_eq!(p.edb_predicates(), vec![par]);
    }

    #[test]
    fn validation_passes() {
        assert!(ancestor().validate().is_ok());
    }

    #[test]
    fn unsafe_rule_rejected() {
        let mut p = ancestor();
        let anc = p.symbols.get_predicate("anc").unwrap();
        let w = p.symbols.variable("W");
        let x = p.symbols.get_variable("X").unwrap();
        p.rules.push(Rule::new(
            Atom::new(anc, vec![Term::Var(x), Term::Var(w)]),
            vec![Atom::new(anc, vec![Term::Var(x), Term::Var(x)])],
        ));
        assert!(p.validate().is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut p = ancestor();
        let anc = p.symbols.get_predicate("anc").unwrap();
        let x = p.symbols.get_variable("X").unwrap();
        p.rules.push(Rule::new(
            Atom::new(anc, vec![Term::Var(x)]),
            vec![Atom::new(anc, vec![Term::Var(x), Term::Var(x)])],
        ));
        assert!(p.validate().is_err());
    }

    #[test]
    fn monadicity() {
        let p = ancestor();
        assert!(!p.is_monadic());
        assert_eq!(p.max_idb_arity(), 2);
    }

    #[test]
    fn render_roundtrip_shape() {
        let p = ancestor();
        let text = p.render();
        assert!(text.contains("?- anc(john, Y)."));
        assert!(text.contains("anc(X, Y) :- par(X, Y)."));
        assert!(text.contains("anc(X, Y) :- anc(X, Z), par(Z, Y)."));
    }

    #[test]
    fn fresh_symbols_do_not_collide() {
        let mut sy = Symbols::new();
        let a = sy.predicate("magic");
        let b = sy.fresh_predicate("magic");
        assert_ne!(a, b);
        assert_eq!(sy.pred_name(b), "magic_0");
    }
}
