//! # selprop-datalog
//!
//! A Datalog engine built as the substrate for the reproduction of
//! *Beeri, Kanellakis, Bancilhon, Ramakrishnan — "Bounds on the
//! Propagation of Selection into Logic Programs"* (PODS 1987 / JCSS 1990).
//!
//! The paper's Section 2.1 semantics are implemented exactly:
//!
//! - [`ast`] — the three disjoint symbol spaces (constants, variables,
//!   predicates), atoms, rules, programs with a distinguished goal;
//! - [`parser`] — the Prolog-like surface syntax of the paper's examples;
//! - [`db`] — databases as finite structures;
//! - [`materialize`] — the **persistent incremental materialization
//!   layer**: a [`materialize::Materialization`] keeps a program's
//!   minimum model at fixpoint across updates —
//!   [`materialize::Materialization::insert_facts`] resumes semi-naive
//!   evaluation with the new rows as the delta (no recompute), and
//!   [`materialize::Materialization::retract_facts`] removes facts by
//!   delete–rederive over the recorded justifications. The join
//!   machinery (flat columnar storage, watermark snapshots, compiled
//!   rule plans, depth-0-sharded parallel rounds over the in-tree
//!   [`pool`]) lives here;
//! - [`eval`] — minimum-model semantics via instrumented **naive**,
//!   **semi-naive**, and **parallel semi-naive** bottom-up fixpoints
//!   (work counters power the experiment harness). Batch evaluation is
//!   a special case of the incremental engine: the entry points are
//!   thin wrappers that build a materialization, run one fixpoint and
//!   read the result out, keeping [`eval::EvalStats`] bit-for-bit equal
//!   to the reference engine;
//! - [`plan`] — compiled join plans and the **cost-based join
//!   planner**: selectivity-aware body reordering from live relation
//!   cardinalities, staged-head existence pruning, and structural
//!   recognition of the transitive-closure shape for the specialized
//!   kernel. One planning entry point serves the engine, the magic-set
//!   views and rule hot-swap; [`plan::PlannerConfig::legacy`] restores
//!   the pre-planner behavior bit-for-bit;
//! - [`pool`] — a dependency-free scoped thread pool (persistent
//!   workers, borrowing jobs, panic propagation);
//! - [`storage`] — columnar relations (one flat `Vec<Const>` per
//!   predicate, rows deduplicated by an [`hash::FxHasher`] row table)
//!   and the incremental join indexes;
//! - [`mod@reference`] — the original tuple-at-a-time evaluator, kept as the
//!   executable specification: the storage engine must reproduce its
//!   [`eval::EvalStats`] bit-for-bit; also hosts the naive provenance
//!   fixpoint ([`reference::Provenance`]), the spec for the engine's
//!   recorded justifications;
//! - [`derivation`] — the operational semantics: derivation trees and
//!   convergence profiles (the executable form of boundedness,
//!   Section 8). [`eval::evaluate_with_provenance`] records one
//!   first-found justification (rule + body row ids) per derived row
//!   inside the columnar join — deterministic at every thread and shard
//!   count — and [`derivation::Provenance`] reconstructs trees and
//!   computes size/height **iteratively**, so the 10⁵-deep proofs of
//!   the chain workloads cannot overflow the stack;
//! - [`magic`] — adornments and the generalized magic-sets rewriting (ref.\[5\]),
//!   which Section 7 of the paper interprets as language quotients; a
//!   [`magic::MagicTemplate`] is the constant-free form compiled once
//!   per (predicate, binding pattern) and instantiated per constant
//!   vector through a seed predicate;
//! - [`cache`] — **selection propagation as a service**: a
//!   [`cache::QueryCache`] holds small magic-template materializations
//!   ("views") keyed by (predicate, binding pattern, bound constants)
//!   that share the base store's EDB rows and are kept at fixpoint
//!   incrementally as the base churns — so a bound query pays the
//!   magic-pruned cost once and near-zero afterwards;
//! - [`persist`] — **durability**: a versioned, length-prefixed,
//!   checksummed snapshot format (in-tree binary codec, FNV-1a 64) with
//!   atomic writes; [`materialize::Materialization::save`] /
//!   [`materialize::Materialization::restore`] round-trip the complete
//!   materialized state bit-for-bit, so a store (or a whole
//!   [`server::Server`]) comes back at its persisted fixpoint without
//!   re-evaluation, and truncated or corrupted snapshot files always
//!   fail cleanly ([`persist::PersistError`]) instead of restoring a
//!   wrong store. Bounded memory under churn comes from
//!   [`materialize::Materialization::compact`] (tombstone reclamation
//!   with dense row-id remapping, policy-triggered via
//!   [`materialize::CompactionPolicy`]);
//! - [`server`] — the **concurrent live materialization server**: a
//!   [`server::Server`] shares one materialization between many reader
//!   threads and a writer applying batched
//!   [`materialize::UpdateRound`]s (fact churn + rule hot-swap).
//!   Readers pin epoch-tagged snapshots ([`server::Snapshot`]) that
//!   keep serving their exact pinned fixpoint — never a stale mix,
//!   never a mid-round state — while unobservable epochs are reclaimed
//!   compaction-free.

#![warn(missing_docs)]

pub mod ast;
pub mod cache;
pub mod db;
pub mod derivation;
pub mod eval;
pub mod hash;
pub mod magic;
pub mod materialize;
pub mod parser;
pub mod persist;
pub mod plan;
pub mod pool;
pub mod reference;
pub mod server;
pub mod storage;

pub use ast::{Atom, Const, Pred, Program, Rule, Symbols, Term, Var};
pub use cache::{CacheConfig, CacheStats, QueryCache};
pub use db::{Database, Relation};
pub use derivation::{DerivationTree, GroundAtom, Provenance};
pub use eval::{
    answer, evaluate, evaluate_cfg, evaluate_with_provenance, evaluate_with_provenance_cfg,
    EvalStats, ProvenanceResult, Strategy,
};
pub use materialize::{
    CompactionPolicy, Materialization, MemStats, RoundReport, RuleId, UpdateRound,
};
pub use parser::parse_program;
pub use persist::PersistError;
pub use plan::{OrderMode, PlannerConfig};
pub use server::{Server, Snapshot};
