//! # selprop-datalog
//!
//! A Datalog engine built as the substrate for the reproduction of
//! *Beeri, Kanellakis, Bancilhon, Ramakrishnan — "Bounds on the
//! Propagation of Selection into Logic Programs"* (PODS 1987 / JCSS 1990).
//!
//! The paper's Section 2.1 semantics are implemented exactly:
//!
//! - [`ast`] — the three disjoint symbol spaces (constants, variables,
//!   predicates), atoms, rules, programs with a distinguished goal;
//! - [`parser`] — the Prolog-like surface syntax of the paper's examples;
//! - [`db`] — databases as finite structures;
//! - [`eval`] — minimum-model semantics via instrumented **naive**,
//!   **semi-naive**, and **parallel semi-naive** bottom-up fixpoints
//!   (work counters power the experiment harness), running on the flat
//!   columnar [`storage`] layer: watermark deltas instead of
//!   per-iteration clones, and persistent incremental
//!   `(relation, mask)` indexes; the parallel strategy range-shards
//!   each iteration's delta across the in-tree [`pool`] and merges
//!   deterministically, keeping [`eval::EvalStats`] bit-for-bit equal
//!   to the sequential engine;
//! - [`pool`] — a dependency-free scoped thread pool (persistent
//!   workers, borrowing jobs, panic propagation);
//! - [`storage`] — columnar relations (one flat `Vec<Const>` per
//!   predicate, rows deduplicated by an [`hash::FxHasher`] row table)
//!   and the incremental join indexes;
//! - [`mod@reference`] — the original tuple-at-a-time evaluator, kept as the
//!   executable specification: the storage engine must reproduce its
//!   [`eval::EvalStats`] bit-for-bit; also hosts the naive provenance
//!   fixpoint ([`reference::Provenance`]), the spec for the engine's
//!   recorded justifications;
//! - [`derivation`] — the operational semantics: derivation trees and
//!   convergence profiles (the executable form of boundedness,
//!   Section 8). [`eval::evaluate_with_provenance`] records one
//!   first-found justification (rule + body row ids) per derived row
//!   inside the columnar join — deterministic at every thread and shard
//!   count — and [`derivation::Provenance`] reconstructs trees and
//!   computes size/height **iteratively**, so the 10⁵-deep proofs of
//!   the chain workloads cannot overflow the stack;
//! - [`magic`] — adornments and the generalized magic-sets rewriting (ref.\[5\]),
//!   which Section 7 of the paper interprets as language quotients.

#![warn(missing_docs)]

pub mod ast;
pub mod db;
pub mod derivation;
pub mod eval;
pub mod hash;
pub mod magic;
pub mod parser;
pub mod pool;
pub mod reference;
pub mod storage;

pub use ast::{Atom, Const, Pred, Program, Rule, Symbols, Term, Var};
pub use db::{Database, Relation};
pub use derivation::{DerivationTree, GroundAtom, Provenance};
pub use eval::{answer, evaluate, evaluate_with_provenance, EvalStats, ProvenanceResult, Strategy};
pub use parser::parse_program;
