//! # selprop-datalog
//!
//! A Datalog engine built as the substrate for the reproduction of
//! *Beeri, Kanellakis, Bancilhon, Ramakrishnan — "Bounds on the
//! Propagation of Selection into Logic Programs"* (PODS 1987 / JCSS 1990).
//!
//! The paper's Section 2.1 semantics are implemented exactly:
//!
//! - [`ast`] — the three disjoint symbol spaces (constants, variables,
//!   predicates), atoms, rules, programs with a distinguished goal;
//! - [`parser`] — the Prolog-like surface syntax of the paper's examples;
//! - [`db`] — databases as finite structures;
//! - [`eval`] — minimum-model semantics via instrumented **naive** and
//!   **semi-naive** bottom-up fixpoints (work counters power the
//!   experiment harness);
//! - [`derivation`] — the operational semantics: derivation trees and
//!   convergence profiles (the executable form of boundedness,
//!   Section 8);
//! - [`magic`] — adornments and the generalized magic-sets rewriting (ref.\[5\]),
//!   which Section 7 of the paper interprets as language quotients.

#![warn(missing_docs)]

pub mod ast;
pub mod db;
pub mod derivation;
pub mod eval;
pub mod magic;
pub mod parser;

pub use ast::{Atom, Const, Pred, Program, Rule, Symbols, Term, Var};
pub use db::{Database, Relation};
pub use eval::{answer, evaluate, EvalStats, Strategy};
pub use parser::parse_program;
