//! The concurrent live materialization server.
//!
//! A [`Server`] wraps a [`Materialization`] for the many-readers /
//! one-round-at-a-time-writer pattern the paper's selection-propagation
//! machinery ultimately serves: readers keep querying the maintained
//! fixpoint while batched [`UpdateRound`]s — fact churn and rule
//! hot-swap — stream in. Three guarantees, proved adversarially by
//! `tests/server_stress.rs` and `tests/query_cache_props.rs`:
//!
//! - **No mid-round reads.** A round is applied under the store's write
//!   lock and its epoch is published only after the round reaches
//!   fixpoint, so every read observes the result of a whole *prefix* of
//!   the applied rounds — never a half-propagated state (linearizable
//!   at round granularity).
//! - **Epoch-pinned snapshot reads.** [`Server::snapshot`] pins the
//!   current epoch with a cheap handle: a per-relation live-row
//!   **frontier** (the append-only store's row counts) plus the pinned
//!   epoch number. Later rounds keep appending rows (above every
//!   pinned frontier) and tombstoning rows (tagged with the round's
//!   epoch — see [`crate::storage::ColumnarRelation::set_epoch`]), so a
//!   pinned [`Snapshot`] keeps reading its exact state-as-of-pin for as
//!   long as it lives, without cloning any data.
//! - **Coherent cached queries.** [`Server::query`] routes bound goals
//!   through a [`QueryCache`] of incrementally-maintained magic-set
//!   views (see [`crate::cache`]). Views are caught up *inside* the
//!   writer's round — after the base reaches its new fixpoint, before
//!   the round's epoch is published — so the base facts and every
//!   cached answer always come from the same fixpoint, and a pinned
//!   snapshot's [`Snapshot::query`] answers as of its pin (from the
//!   pinned view when it survives, by filtering the pinned base state
//!   otherwise — identical answers either way).
//!
//! Reclamation and compaction are **deferred maintenance**: when the
//! last reader below an epoch unpins, the new horizon is recorded in
//! the epoch table (`reclaim_to`) and applied by whoever holds — or
//! next takes — the store's write lock. The unpinning reader drains it
//! itself when the store is idle (`try_write` succeeds); under write
//! contention the horizon is *handed off*, never lost: every write-lock
//! holder drains the table inside the epochs critical section as its
//! very last act before releasing the store, so an unpin that loses the
//! `try_write` race has either already recorded its horizon (the holder
//! drains it) or is still blocked on the epochs lock and will retry the
//! idle store right after. Dead rows stay dead either way; pinned
//! frontiers/tags are the only per-epoch cost.
//!
//! [`Materialization::compact`] rides the same protocol: a
//! policy-triggered compaction (see
//! [`crate::materialize::CompactionPolicy`]) would clear the epoch tags
//! and remap the row ids pinned snapshots rely on, so while any pin
//! exists it is only *queued* (`compact_pending`) — the drain after the
//! last unpin runs it. A compaction also remaps the base row ids cached
//! views reference, so the cache drops its views at the next
//! validation and rebuilds on demand (templates survive).
//!
//! Lock order is `state → epochs` everywhere that takes both (the
//! unpinning path takes `epochs` first but only ever *tries* the state
//! lock, so it cannot deadlock). Durability: [`Server::save`] writes the
//! store's checksummed snapshot file at the published epoch, and
//! [`Server::restore`] resumes serving from it — same fixpoint, same
//! epoch counter, no re-evaluation. A restored server starts with a
//! **disabled** cache (the snapshot format persists the store, not the
//! source program); [`Server::enable_query_cache`] re-arms it.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock};

use crate::ast::{Atom, Pred, Program, Rule};
use crate::cache::{CacheConfig, CacheStats, QueryCache, ViewPin};
use crate::db::{Database, Relation, Tuple};
use crate::derivation::Provenance;
use crate::eval::{EvalStats, Strategy};
use crate::materialize::{
    CompactionPolicy, Materialization, MemStats, RoundReport, RuleId, UpdateRound,
};
use crate::persist::PersistError;

/// Everything guarded by the server's writer lock: the base store and
/// the query cache whose views must advance in lockstep with it.
struct ServerState {
    /// The maintained fixpoint.
    store: Materialization,
    /// The magic-set view cache over `store` (see [`crate::cache`]).
    cache: QueryCache,
}

/// The shared state behind one server and all of its snapshots.
struct Shared {
    /// The store + cache pair. Readers pin and query under the read
    /// lock; the writer applies whole rounds under the write lock.
    state: RwLock<ServerState>,
    /// The epoch table: the published epoch plus reader pin counts.
    epochs: Mutex<EpochTable>,
}

/// The published epoch, the readers pinned per epoch, and the deferred
/// maintenance ledger (see the module docs).
struct EpochTable {
    /// The epoch of the last published round (0 = the initial fixpoint).
    current: u64,
    /// Pin count per pinned epoch (absent = zero). A `BTreeMap` so the
    /// minimum pinned epoch — the reclamation horizon — is the first
    /// key.
    pins: BTreeMap<u64, usize>,
    /// Highest reclamation horizon recorded but possibly not yet applied
    /// to the store. An unpin that cannot take the write lock records
    /// its horizon here; the current (or next) write-lock holder drains
    /// it. Monotone.
    reclaim_to: u64,
    /// A policy-triggered compaction queued while snapshots were pinned
    /// (compaction clears epoch tags and remaps row ids, so it must
    /// wait for the last unpin).
    compact_pending: bool,
}

impl EpochTable {
    /// The reclamation horizon: every tombstone tag at or below this
    /// epoch is unobservable. With no pins that is the published epoch
    /// itself (tags are never issued above it).
    fn min_observable(&self) -> u64 {
        self.pins.keys().next().copied().unwrap_or(self.current)
    }

    fn new(current: u64) -> Self {
        EpochTable {
            current,
            pins: BTreeMap::new(),
            reclaim_to: current,
            compact_pending: false,
        }
    }

    /// Applies all deferred maintenance to a write-locked state:
    /// reclaims every unobservable tombstone tag (in the base store and
    /// every cached view) and runs (or queues) the policy-triggered
    /// compaction. Callers must hold the epochs lock for the
    /// *remainder* of their write-lock tenure — the state guard is
    /// dropped inside the critical section — so no horizon recorded by
    /// a contending unpin can slip between the drain and the release.
    fn drain(&mut self, state: &mut ServerState) {
        let horizon = self.reclaim_to.max(self.min_observable());
        self.reclaim_to = horizon;
        state.store.reclaim_epochs(horizon);
        state.cache.reclaim_epochs(horizon);
        if self.pins.is_empty() {
            if self.compact_pending || state.store.needs_compaction() {
                state.store.compact();
            }
            self.compact_pending = false;
        } else if state.store.needs_compaction() {
            self.compact_pending = true;
        }
    }
}

/// A concurrent handle on a live materialization: cheap to clone, safe
/// to share across threads. Any thread may take snapshots and read;
/// [`Server::apply`] serializes writers (rounds are atomic — see the
/// module docs).
#[derive(Clone)]
pub struct Server {
    shared: Arc<Shared>,
}

impl Server {
    /// Serves `program` materialized over an empty database.
    pub fn new(program: &Program, strategy: Strategy) -> Self {
        Self::from_database(program, &Database::new(), strategy)
    }

    /// Serves `program` materialized over `db`: runs the initial batch
    /// fixpoint (epoch 0), then stands ready for readers and rounds.
    /// The query cache is armed from the start.
    pub fn from_database(program: &Program, db: &Database, strategy: Strategy) -> Self {
        let store = Materialization::from_database(program, db, strategy);
        let cache = QueryCache::new(program);
        Self {
            shared: Arc::new(Shared {
                state: RwLock::new(ServerState { store, cache }),
                epochs: Mutex::new(EpochTable::new(0)),
            }),
        }
    }

    /// Saves the published fixpoint to a checksummed snapshot file (see
    /// [`Materialization::save`]). Runs under the read lock, so it
    /// captures a whole round boundary — never a mid-round state — and
    /// the atomic write leaves any previous snapshot at `path` intact if
    /// the save dies partway. Cached views are derived state and are
    /// not persisted; a restored server rebuilds them on demand.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), PersistError> {
        self.shared
            .state
            .read()
            .expect("state lock poisoned")
            .store
            .save(path)
    }

    /// Resumes serving from a snapshot file written by [`Server::save`]
    /// (or [`Materialization::save`]): the store comes back at its
    /// persisted fixpoint and the server republishes the persisted
    /// epoch, so rounds applied after the restart keep numbering where
    /// the saved process left off. No reader survives a restart, so
    /// every retained tombstone tag is reclaimed on the way in.
    ///
    /// The query cache comes back **disabled** — the snapshot persists
    /// the store, not the source program the magic transform needs — so
    /// every query filters the base model (correct, just uncached)
    /// until [`Server::enable_query_cache`] re-arms it.
    pub fn restore<P: AsRef<Path>>(path: P) -> Result<Self, PersistError> {
        let mut store = Materialization::restore(path)?;
        let epoch = store.epoch();
        store.reclaim_epochs(epoch);
        Ok(Self {
            shared: Arc::new(Shared {
                state: RwLock::new(ServerState {
                    store,
                    cache: QueryCache::disabled(),
                }),
                epochs: Mutex::new(EpochTable::new(epoch)),
            }),
        })
    }

    /// Arms (or re-arms) the query cache with the program the store
    /// materializes — the restore path's second half. Existing views
    /// are discarded. If `program`'s rules don't match the store's live
    /// rule slots (e.g. rules were hot-swapped before the save), the
    /// cache detects the mismatch on first use and stays in direct
    /// mode, so a wrong program can cost performance but never
    /// correctness.
    pub fn enable_query_cache(&self, program: &Program) {
        let mut state = self.shared.state.write().expect("state lock poisoned");
        state.cache = QueryCache::new(program);
    }

    /// Whether bound queries can currently be cached (`false` on a
    /// restored server before [`Server::enable_query_cache`], or after
    /// the cache detected an unannounced rule change).
    pub fn cache_enabled(&self) -> bool {
        self.shared
            .state
            .read()
            .expect("state lock poisoned")
            .cache
            .is_enabled()
    }

    /// The query cache's observability counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared
            .state
            .read()
            .expect("state lock poisoned")
            .cache
            .stats()
    }

    /// Replaces the cache's eviction limits (see [`CacheConfig`]).
    pub fn set_cache_config(&self, config: CacheConfig) {
        self.shared
            .state
            .write()
            .expect("state lock poisoned")
            .cache
            .set_config(config);
    }

    /// Total words resident in cached views (tuples, indexes,
    /// justifications). Base rows are shared with the store, not
    /// copied, so this is the cache's real marginal footprint.
    pub fn cache_view_words(&self) -> usize {
        self.shared
            .state
            .read()
            .expect("state lock poisoned")
            .cache
            .view_words()
    }

    /// Sets (or clears) the compaction policy of the underlying store.
    /// If the new policy already holds, the compaction runs right away
    /// when no snapshot is pinned, and is queued for the last unpin
    /// otherwise — exactly like a round-triggered compaction.
    pub fn set_compaction_policy(&self, policy: Option<CompactionPolicy>) {
        let mut state = self.shared.state.write().expect("state lock poisoned");
        state.store.set_compaction_policy(policy);
        let mut epochs = self.shared.epochs.lock().expect("epoch lock poisoned");
        epochs.drain(&mut state);
        drop(state);
    }

    /// Number of compactions the underlying store has run (policy- or
    /// drain-triggered).
    pub fn compactions(&self) -> u64 {
        self.shared
            .state
            .read()
            .expect("state lock poisoned")
            .store
            .compactions()
    }

    /// Memory footprint counters of the underlying store (see
    /// [`Materialization::mem_stats`]).
    pub fn mem_stats(&self) -> MemStats {
        self.shared
            .state
            .read()
            .expect("state lock poisoned")
            .store
            .mem_stats()
    }

    /// Applies one batched [`UpdateRound`] and publishes the resulting
    /// epoch. The round runs under the write lock — readers either see
    /// the epoch before it or the epoch after it, never the middle —
    /// and unobservable tombstone tags are reclaimed on the way out.
    /// Cached views are caught up before the epoch is published, so the
    /// new epoch's base facts and cached answers come from the same
    /// fixpoint.
    ///
    /// Writer calls are serialized by the write lock; each applied
    /// round increments the published epoch by one.
    pub fn apply(&self, round: &UpdateRound) -> RoundReport {
        let mut state = self.shared.state.write().expect("state lock poisoned");
        let next = {
            let epochs = self.shared.epochs.lock().expect("epoch lock poisoned");
            epochs.current + 1
        };
        let report = {
            let ServerState { store, cache } = &mut *state;
            // Tombstones of this round are tagged `next`: dead at
            // `next`, still visible to every reader pinned at `< next`.
            store.set_epoch(next);
            let report = store.apply(round);
            // Mirror the round's rule changes into the cache (its
            // templates are compiled against the rule set), then catch
            // every surviving view up with the new fixpoint.
            for rule in &round.rule_adds {
                cache.note_rule_added(rule);
            }
            for &id in &round.rule_drops {
                cache.note_rule_dropped(id);
            }
            cache.sync_all(store, next);
            report
        };
        // Publish, then drain deferred maintenance (tag reclamation and
        // any queued compaction). The state guard is released *inside*
        // the epochs critical section: an unpin that lost the
        // `try_write` race against this round has either recorded its
        // horizon already (we drain it here) or is still waiting on the
        // epochs lock and will retry the idle store right after.
        let mut epochs = self.shared.epochs.lock().expect("epoch lock poisoned");
        epochs.current = next;
        epochs.drain(&mut state);
        drop(state);
        report
    }

    /// Convenience single-phase rounds (each one applied round).
    pub fn insert_facts(&self, pred: Pred, rows: &[Tuple]) -> usize {
        self.apply(&UpdateRound::new().insert_all(pred, rows)).inserted
    }

    /// See [`Server::insert_facts`].
    pub fn retract_facts(&self, pred: Pred, rows: &[Tuple]) -> usize {
        self.apply(&UpdateRound::new().retract_all(pred, rows)).retracted
    }

    /// Adds one rule as a round of its own; returns its stable id.
    pub fn add_rule(&self, rule: Rule) -> RuleId {
        let id = {
            let state = self.shared.state.read().expect("state lock poisoned");
            RuleId(state.store.num_rule_slots() as u32)
        };
        self.apply(&UpdateRound::new().add_rule(rule));
        id
    }

    /// Drops one rule as a round of its own; returns whether it was
    /// active.
    pub fn drop_rule(&self, id: RuleId) -> bool {
        self.apply(&UpdateRound::new().drop_rule(id)).rules_dropped == 1
    }

    /// Answers an ad-hoc `goal` over the current model, through the
    /// magic-set view cache when the goal has usable bindings (see
    /// [`crate::cache`] for the routing rules) and by filtering the
    /// base model otherwise. Answers are always exact — the cache only
    /// changes cost.
    ///
    /// The fast path (an up-to-date view, or a direct route) runs under
    /// the read lock and blocks no readers. Only a query that must
    /// build or catch up a view takes the write lock.
    pub fn query(&self, goal: &Atom) -> Relation {
        {
            let state = self.shared.state.read().expect("state lock poisoned");
            if let Some(answer) = state.cache.lookup(&state.store, goal) {
                return answer;
            }
        }
        let mut state = self.shared.state.write().expect("state lock poisoned");
        let ServerState { store, cache } = &mut *state;
        cache.query(store, goal)
    }

    /// Pins the current epoch and returns a read handle on it: a
    /// per-relation frontier plus the epoch number — no data is cloned.
    /// The snapshot keeps serving its exact pinned state however many
    /// rounds the writer applies afterwards; dropping it unpins (and
    /// opportunistically reclaims).
    pub fn snapshot(&self) -> Snapshot {
        // Hold the read lock across the pin: the writer can neither be
        // mid-round (the frontier is a published fixpoint) nor publish
        // and reclaim between reading `current` and pinning it.
        let state = self.shared.state.read().expect("state lock poisoned");
        let epoch = {
            let mut epochs = self.shared.epochs.lock().expect("epoch lock poisoned");
            let current = epochs.current;
            *epochs.pins.entry(current).or_insert(0) += 1;
            current
        };
        let frontier = state.store.frontiers();
        let views = state.cache.view_pins();
        drop(state);
        Snapshot {
            shared: Arc::clone(&self.shared),
            epoch,
            frontier,
            views,
        }
    }

    /// The published epoch (= number of rounds applied so far).
    pub fn current_epoch(&self) -> u64 {
        self.shared.epochs.lock().expect("epoch lock poisoned").current
    }

    /// Work counters accumulated by the underlying materialization.
    pub fn stats(&self) -> EvalStats {
        self.shared
            .state
            .read()
            .expect("state lock poisoned")
            .store
            .stats()
    }

    /// The goal's answer over the **current** model (an unpinned read:
    /// equivalent to `snapshot().answer()` but cheaper).
    pub fn answer(&self) -> Relation {
        self.shared
            .state
            .read()
            .expect("state lock poisoned")
            .store
            .answer()
    }

    /// A provenance snapshot of the current model (O(store) clone; see
    /// [`Materialization::provenance`]).
    pub fn provenance(&self) -> Provenance {
        self.shared
            .state
            .read()
            .expect("state lock poisoned")
            .store
            .provenance()
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("epoch", &self.current_epoch())
            .finish_non_exhaustive()
    }
}

/// A pinned point-in-time view of a [`Server`]'s store: the state after
/// exactly the first `epoch` applied rounds. Reads take the store's
/// read lock briefly but never block on (or observe) the writer's
/// in-progress round. Dropping the snapshot unpins its epoch.
pub struct Snapshot {
    shared: Arc<Shared>,
    epoch: u64,
    /// Per-relation row counts at pin time: rows at or above the
    /// frontier (and whole relations interned later) are invisible.
    frontier: Vec<usize>,
    /// Cached-view pins: key, instance and row frontier per view live
    /// at pin time. [`Snapshot::query`] answers from a pinned view
    /// while it survives, and falls back to filtering the pinned base
    /// state when it doesn't — same fixpoint, identical answers.
    views: Vec<ViewPin>,
}

impl Snapshot {
    /// The pinned epoch (= how many applied rounds this view includes).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The goal's answer relation as of the pinned state.
    pub fn answer(&self) -> Relation {
        self.shared
            .state
            .read()
            .expect("state lock poisoned")
            .store
            .answer_at(&self.frontier, self.epoch)
    }

    /// Answers an ad-hoc `goal` as of the pinned state. Bound goals
    /// whose cached view was live at pin time are answered from the
    /// view at its pinned frontier; everything else filters the base
    /// store at the snapshot's own frontier. Both read the same pinned
    /// fixpoint, so the route never changes the answer.
    pub fn query(&self, goal: &Atom) -> Relation {
        let state = self.shared.state.read().expect("state lock poisoned");
        state
            .cache
            .answer_pinned(&state.store, goal, &self.views, &self.frontier, self.epoch)
    }

    /// The IDB model as of the pinned state.
    pub fn idb_database(&self) -> Database {
        self.shared
            .state
            .read()
            .expect("state lock poisoned")
            .store
            .idb_database_at(&self.frontier, self.epoch)
    }

    /// Every tracked relation (stored EDB facts and the IDB model) as of
    /// the pinned state.
    pub fn database(&self) -> Database {
        self.shared
            .state
            .read()
            .expect("state lock poisoned")
            .store
            .database_at(&self.frontier, self.epoch)
    }

    /// Number of facts stored for `pred` as of the pinned state.
    pub fn num_facts(&self, pred: Pred) -> usize {
        self.shared
            .state
            .read()
            .expect("state lock poisoned")
            .store
            .num_facts_at(pred, &self.frontier, self.epoch)
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        let mut epochs = self.shared.epochs.lock().expect("epoch lock poisoned");
        if let Some(n) = epochs.pins.get_mut(&self.epoch) {
            *n -= 1;
            if *n == 0 {
                epochs.pins.remove(&self.epoch);
            }
        }
        // Record the new horizon *before* trying the state lock: if the
        // store is busy, the ledger — not this thread — carries the
        // reclamation (and any queued compaction) to whoever holds or
        // next takes the write lock. Without the ledger, an unpin that
        // lost this race leaked its tags until some unrelated later
        // round.
        let horizon = epochs.min_observable();
        epochs.reclaim_to = epochs.reclaim_to.max(horizon);
        // Opportunistic drain while still inside the epochs critical
        // section, only if the store is idle right now (`try_write`
        // never blocks, so the epochs→state order here cannot deadlock
        // against the state→epochs order elsewhere: holders of both
        // only ever block on epochs, never on the state).
        if let Ok(mut state) = self.shared.state.try_write() {
            epochs.drain(&mut state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Term;
    use crate::parser::parse_program;

    const SRC: &str = "?- anc(john, Y).\n\
                       anc(X, Y) :- par(X, Y).\n\
                       anc(X, Y) :- anc(X, Z), par(Z, Y).";

    fn chain(p: &mut Program, n: usize) -> Vec<Tuple> {
        let mut prev = p.symbols.constant("john");
        (1..=n)
            .map(|i| {
                let c = p.symbols.constant(&format!("c{i}"));
                let t = vec![prev, c];
                prev = c;
                t
            })
            .collect()
    }

    #[test]
    fn snapshots_pin_their_epoch_across_churn() {
        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain(&mut p, 6);
        let server = Server::new(&p, Strategy::SemiNaive);

        assert_eq!(server.insert_facts(par, &edges[..3]), 3);
        assert_eq!(server.current_epoch(), 1);
        let pinned = server.snapshot();
        assert_eq!(pinned.epoch(), 1);
        assert_eq!(pinned.answer().len(), 3);

        // Churn after the pin: grow, then cut the chain at the root.
        server.insert_facts(par, &edges[3..]);
        server.retract_facts(par, &edges[..1]);
        assert_eq!(server.current_epoch(), 3);

        // The pinned snapshot still serves its exact state...
        assert_eq!(pinned.answer().len(), 3, "pinned reads don't move");
        assert_eq!(pinned.num_facts(par), 3);
        // ...while fresh snapshots see the current state.
        let fresh = server.snapshot();
        assert_eq!(fresh.epoch(), 3);
        assert_eq!(fresh.answer().len(), 0, "root edge retracted");
        assert_eq!(fresh.num_facts(par), 5);
        drop(pinned);

        // After the unpin the next round reclaims; the current state is
        // unaffected.
        server.insert_facts(par, &edges[..1]);
        assert_eq!(server.answer().len(), 6);
    }

    #[test]
    fn rounds_are_atomic_for_overlapping_snapshots() {
        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain(&mut p, 8);
        let mut db = Database::new();
        for e in &edges[..4] {
            db.insert(par, e.clone());
        }
        let server = Server::from_database(&p, &db, Strategy::SemiNaive);
        let before = server.snapshot();
        // One mixed round: retract the tail edge, insert the rest.
        server.apply(
            &UpdateRound::new()
                .retract(par, edges[3].clone())
                .insert_all(par, &edges[4..]),
        );
        let after = server.snapshot();
        assert_eq!(before.answer().len(), 4);
        assert_eq!(after.answer().len(), 3, "chain cut at edge 3");
        assert_eq!(after.epoch(), before.epoch() + 1);
        // Snapshot databases are exactly the two fixpoints.
        assert_eq!(
            before.database().sorted_models(),
            {
                let m = Materialization::from_database(&p, &db, Strategy::SemiNaive);
                m.database().sorted_models()
            },
            "pinned = the pre-round fixpoint"
        );
        let mut db2 = db.clone();
        db2.remove(par, &edges[3]);
        for e in &edges[4..] {
            db2.insert(par, e.clone());
        }
        assert_eq!(
            after.database().sorted_models(),
            {
                let m = Materialization::from_database(&p, &db2, Strategy::SemiNaive);
                m.database().sorted_models()
            },
            "published = the post-round fixpoint"
        );
    }

    #[test]
    fn rule_hot_swap_through_the_server() {
        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let anc = p.symbols.get_predicate("anc").unwrap();
        let edges = chain(&mut p, 4);
        let server = Server::new(&p, Strategy::SemiNaive);
        server.insert_facts(par, &edges);
        let pinned = server.snapshot();
        assert_eq!(pinned.num_facts(anc), 10, "4+3+2+1 ancestor pairs");

        // Drop the transitive rule: only direct parents remain.
        assert!(server.drop_rule(RuleId(1)));
        assert_eq!(server.snapshot().num_facts(anc), 4);
        assert_eq!(pinned.num_facts(anc), 10, "pinned view unaffected");

        // Re-add it (fresh slot) — the model is restored.
        let readd = p.rules[1].clone();
        let id = server.add_rule(readd);
        assert_eq!(id, RuleId(2));
        assert_eq!(server.snapshot().num_facts(anc), 10);
        assert_eq!(pinned.num_facts(anc), 10);
    }

    #[test]
    fn server_is_shareable_across_threads() {
        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain(&mut p, 32);
        let server = Server::new(&p, Strategy::SemiNaive);
        server.insert_facts(par, &edges[..1]);

        let readers: Vec<_> = (0..3)
            .map(|_| {
                let server = server.clone();
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut reads = 0usize;
                    while last < 8 {
                        let snap = server.snapshot();
                        // Answers are a function of the pinned epoch:
                        // epoch e = e edges inserted (one per round).
                        assert_eq!(snap.answer().len() as u64, snap.epoch());
                        assert!(snap.epoch() >= last, "epochs are monotone");
                        last = snap.epoch();
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();
        for e in &edges[1..8] {
            server.insert_facts(par, std::slice::from_ref(e));
        }
        for r in readers {
            assert!(r.join().expect("reader thread") > 0);
        }
    }

    /// Count of retained (pinned-reader) tombstone tags in the store.
    fn tags(server: &Server) -> usize {
        server
            .shared
            .state
            .read()
            .unwrap()
            .store
            .tagged_tombstones()
    }

    #[test]
    fn idle_unpin_reclaims_immediately_without_another_round() {
        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain(&mut p, 4);
        let server = Server::new(&p, Strategy::SemiNaive);
        server.insert_facts(par, &edges);
        let pinned = server.snapshot();
        server.retract_facts(par, &edges[..1]);
        assert!(tags(&server) > 0, "tags retained for the pinned reader");
        // The store is idle: the unpinning Drop reclaims on the spot —
        // no later round needed.
        drop(pinned);
        assert_eq!(tags(&server), 0, "last unpin reclaimed immediately");
    }

    #[test]
    fn unpin_under_write_contention_hands_off_reclamation() {
        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain(&mut p, 4);
        let server = Server::new(&p, Strategy::SemiNaive);
        server.insert_facts(par, &edges); // epoch 1
        let pinned = server.snapshot(); // pins epoch 1
        server.retract_facts(par, &edges[..1]); // epoch 2: tags kept for the pin
        assert!(tags(&server) > 0);

        // A writer holds the state's write lock while the last unpin
        // happens. `Drop`'s try_write must lose this race — but the
        // horizon is recorded in the ledger, not lost.
        let writer = server.shared.state.write().unwrap();
        drop(pinned);
        {
            let epochs = server.shared.epochs.lock().unwrap();
            assert!(epochs.pins.is_empty(), "unpinned despite the contention");
            assert_eq!(epochs.reclaim_to, 2, "horizon handed off via the ledger");
        }

        // The write-lock holder drains on its way out — the exact
        // sequence `Server::apply` runs after publishing.
        {
            let mut state = writer;
            let mut epochs = server.shared.epochs.lock().unwrap();
            epochs.drain(&mut state);
            drop(state);
        }
        assert_eq!(tags(&server), 0, "handed-off horizon was applied");
    }

    #[test]
    fn compaction_defers_until_the_last_unpin() {
        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain(&mut p, 16);
        let server = Server::new(&p, Strategy::SemiNaive);
        server.set_compaction_policy(Some(CompactionPolicy {
            min_dead_rows: 1,
            dead_percent: 1,
        }));
        server.insert_facts(par, &edges);
        let pinned = server.snapshot();
        let pinned_len = pinned.answer().len();

        // Heavy churn far past the policy bounds: compaction would clear
        // the tags and remap the rows the pin relies on, so it queues.
        server.retract_facts(par, &edges[8..]);
        assert_eq!(server.compactions(), 0, "compaction deferred under a pin");
        assert!(server.shared.epochs.lock().unwrap().compact_pending);
        assert_eq!(pinned.answer().len(), pinned_len, "pinned view intact");
        let live = server.answer().len();

        // Last unpin over an idle store: the queued compaction runs.
        drop(pinned);
        assert_eq!(server.compactions(), 1, "queued compaction ran at unpin");
        assert_eq!(tags(&server), 0);
        assert_eq!(server.answer().len(), live, "model unchanged by compaction");

        // The pin machinery still works over the rebuilt store.
        let snap = server.snapshot();
        server.insert_facts(par, &edges[8..10]);
        assert_eq!(snap.answer().len(), live);
        assert_eq!(server.answer().len(), live + 2);
    }

    #[test]
    fn server_restore_resumes_at_the_persisted_epoch() {
        let dir = std::env::temp_dir().join(format!("selprop-srv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("server.snap");

        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain(&mut p, 8);
        let server = Server::new(&p, Strategy::SemiNaive);
        server.insert_facts(par, &edges); // epoch 1
        server.retract_facts(par, &edges[4..5]); // epoch 2
        assert_eq!(server.current_epoch(), 2);
        server.save(&path).unwrap();

        let restored = Server::restore(&path).unwrap();
        assert_eq!(restored.current_epoch(), 2, "epoch counter survives restart");
        assert_eq!(
            restored.snapshot().database().sorted_models(),
            server.snapshot().database().sorted_models(),
            "restored fixpoint is the saved fixpoint"
        );
        assert_eq!(tags(&restored), 0, "no reader survives a restart");

        // Rounds keep numbering where the saved process left off, and
        // incremental maintenance picks up without re-evaluation.
        restored.insert_facts(par, &edges[4..5]);
        assert_eq!(restored.current_epoch(), 3);
        server.insert_facts(par, &edges[4..5]);
        assert_eq!(
            restored.snapshot().database().sorted_models(),
            server.snapshot().database().sorted_models(),
            "same round on both sides of the restart, same fixpoint"
        );

        std::fs::remove_dir_all(&dir).ok();
    }

    // ------------------------------------------------------------------
    // The magic-set query cache through the server
    // ------------------------------------------------------------------

    #[test]
    fn query_serves_bound_goals_through_views() {
        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let anc = p.symbols.get_predicate("anc").unwrap();
        let edges = chain(&mut p, 12);
        let server = Server::new(&p, Strategy::SemiNaive);
        server.insert_facts(par, &edges);

        // The program goal, asked ad hoc: the cached view must agree
        // with the store's own full-model answer.
        let goal = p.goal.clone(); // anc(john, Y)
        let full = server.answer().sorted();
        assert_eq!(server.query(&goal).sorted(), full);
        let s1 = server.cache_stats();
        assert_eq!((s1.misses, s1.template_compiles, s1.views), (1, 1, 1));

        // Same query again: pure read-path hit, no new view.
        assert_eq!(server.query(&goal).sorted(), full);
        let s2 = server.cache_stats();
        assert!(s2.hits >= 1);
        assert_eq!(s2.misses, 1);

        // A different constant under the same binding pattern reuses
        // the memoized template (one compile per pattern).
        let c3 = p.symbols.constant("c3");
        let y = p.symbols.variable("Y");
        let goal3 = Atom::new(anc, vec![Term::Const(c3), Term::Var(y)]);
        assert_eq!(server.query(&goal3).len(), edges.len() - 3, "c3's descendants");
        let s3 = server.cache_stats();
        assert_eq!((s3.misses, s3.template_compiles, s3.views), (2, 1, 2));

        // All-free goals route direct — exact, uncached.
        let x = p.symbols.variable("X");
        let free = Atom::new(anc, vec![Term::Var(x), Term::Var(y)]);
        let n = edges.len();
        assert_eq!(server.query(&free).len(), n * (n + 1) / 2);
        assert!(server.cache_stats().direct >= 1);

        // EDB goals route direct too.
        let bound_par = Atom::new(par, vec![Term::Const(c3), Term::Var(y)]);
        assert_eq!(server.query(&bound_par).len(), 1);
        assert_eq!(server.cache_stats().views, 2, "no view for an EDB goal");
    }

    #[test]
    fn cached_views_advance_inside_update_rounds() {
        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain(&mut p, 10);
        let server = Server::new(&p, Strategy::SemiNaive);
        server.insert_facts(par, &edges[..6]);

        let goal = p.goal.clone();
        assert_eq!(server.query(&goal).len(), 6);

        // Growth, then a cut, each a round of its own: the view is
        // caught up inside `apply`, so these are read-path hits.
        server.insert_facts(par, &edges[6..]);
        let hits_before = server.cache_stats().hits;
        assert_eq!(server.query(&goal).len(), 10);
        server.retract_facts(par, &edges[4..5]);
        assert_eq!(server.query(&goal).len(), 4, "chain cut at edge 4");
        let s = server.cache_stats();
        assert_eq!(s.misses, 1, "the view was built exactly once");
        assert!(s.syncs >= 2, "rounds advanced the live view");
        assert!(s.hits >= hits_before + 2, "post-round queries hit");

        // At every point the view agrees with the full-model filter.
        assert_eq!(server.query(&goal).sorted(), server.answer().sorted());
    }

    #[test]
    fn snapshot_queries_answer_as_of_their_pin() {
        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain(&mut p, 5);
        let server = Server::new(&p, Strategy::SemiNaive);
        server.insert_facts(par, &edges);

        let goal = p.goal.clone();
        // Pinned before any view exists: queries filter the pinned base.
        let early = server.snapshot();
        assert_eq!(server.query(&goal).len(), 5);
        // Pinned with the view live.
        let pinned = server.snapshot();

        server.retract_facts(par, &edges[..1]);
        assert_eq!(server.query(&goal).len(), 0, "current model: root cut");
        assert_eq!(early.query(&goal).len(), 5, "pre-view pin: base fallback");
        assert_eq!(pinned.query(&goal).len(), 5, "pinned view answer");
        assert_eq!(
            pinned.query(&goal).sorted(),
            pinned.answer().sorted(),
            "pinned view agrees with the pinned base filter"
        );
    }

    #[test]
    fn rule_changes_rebuild_cached_views() {
        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain(&mut p, 4);
        let server = Server::new(&p, Strategy::SemiNaive);
        server.insert_facts(par, &edges);

        let goal = p.goal.clone();
        assert_eq!(server.query(&goal).len(), 4);

        // Dropping the transitive rule invalidates the view; the next
        // query recompiles against the surviving rules.
        assert!(server.drop_rule(RuleId(1)));
        assert_eq!(server.query(&goal).len(), 1, "only the direct parent");

        // Re-adding it (fresh slot) recompiles again.
        let id = server.add_rule(p.rules[1].clone());
        assert_eq!(id, RuleId(2));
        assert_eq!(server.query(&goal).len(), 4, "closure restored");
        let s = server.cache_stats();
        assert!(s.invalidations >= 2);
        assert_eq!(s.template_compiles, 3, "one compile per rule-set era");
        assert!(server.cache_enabled(), "announced changes keep the cache on");
    }

    #[test]
    fn restored_server_reenables_caching_on_request() {
        let dir = std::env::temp_dir().join(format!("selprop-srvqc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("server.snap");

        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain(&mut p, 6);
        let server = Server::new(&p, Strategy::SemiNaive);
        server.insert_facts(par, &edges);
        let goal = p.goal.clone();
        assert_eq!(server.query(&goal).len(), 6, "views live before the save");
        server.save(&path).unwrap();

        // Restored: cache disabled, queries still exact (direct).
        let restored = Server::restore(&path).unwrap();
        assert!(!restored.cache_enabled());
        assert_eq!(restored.query(&goal).sorted(), restored.answer().sorted());
        let s = restored.cache_stats();
        assert!(s.direct >= 1);
        assert_eq!(s.views, 0, "no views while disabled");

        // Re-armed with the source program: views come back and stay
        // live through churn.
        restored.enable_query_cache(&p);
        assert!(restored.cache_enabled());
        assert_eq!(restored.query(&goal).len(), 6);
        assert_eq!(restored.cache_stats().views, 1);
        restored.retract_facts(par, &edges[2..3]);
        assert_eq!(restored.query(&goal).len(), 2, "chain cut at edge 2");
        assert_eq!(restored.query(&goal).sorted(), restored.answer().sorted());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_bound_queries_under_churn() {
        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain(&mut p, 16);
        let server = Server::new(&p, Strategy::SemiNaive);
        server.insert_facts(par, &edges[..1]);
        let goal = p.goal.clone();
        assert_eq!(server.query(&goal).len(), 1, "view built up front");

        let readers: Vec<_> = (0..2)
            .map(|_| {
                let server = server.clone();
                let goal = goal.clone();
                std::thread::spawn(move || {
                    let mut last = 0;
                    while last < 8 {
                        // Each query sees some whole round prefix; the
                        // writer only grows the chain, so lengths are
                        // monotone in real time.
                        let n = server.query(&goal).len();
                        assert!(n >= last, "query answers move forward only");
                        last = n;
                    }
                })
            })
            .collect();
        for e in &edges[1..8] {
            server.insert_facts(par, std::slice::from_ref(e));
        }
        for r in readers {
            r.join().expect("reader thread");
        }
        // All that concurrency built exactly one view.
        assert_eq!(server.cache_stats().misses, 1);
    }
}
