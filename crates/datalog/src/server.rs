//! The concurrent live materialization server.
//!
//! A [`Server`] wraps a [`Materialization`] for the many-readers /
//! one-round-at-a-time-writer pattern the paper's selection-propagation
//! machinery ultimately serves: readers keep querying the maintained
//! fixpoint while batched [`UpdateRound`]s — fact churn and rule
//! hot-swap — stream in. Two guarantees, proved adversarially by
//! `tests/server_stress.rs`:
//!
//! - **No mid-round reads.** A round is applied under the store's write
//!   lock and its epoch is published only after the round reaches
//!   fixpoint, so every read observes the result of a whole *prefix* of
//!   the applied rounds — never a half-propagated state (linearizable
//!   at round granularity).
//! - **Epoch-pinned snapshot reads.** [`Server::snapshot`] pins the
//!   current epoch with a cheap handle: a per-relation live-row
//!   **frontier** (the append-only store's row counts) plus the pinned
//!   epoch number. Later rounds keep appending rows (above every
//!   pinned frontier) and tombstoning rows (tagged with the round's
//!   epoch — see [`crate::storage::ColumnarRelation::set_epoch`]), so a
//!   pinned [`Snapshot`] keeps reading its exact state-as-of-pin for as
//!   long as it lives, without cloning any data.
//!
//! Reclamation is compaction-free: when the last reader below an epoch
//! unpins, the writer (or the unpinning reader itself, opportunistically)
//! drops the tombstone tags nothing can observe any more — dead rows
//! simply stay dead, and pinned frontiers/tags are the only per-epoch
//! cost.
//!
//! Lock order is `store → epochs` everywhere that takes both (the
//! unpinning path takes `epochs` first but only ever *tries* the store
//! lock, so it cannot deadlock).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, RwLock};

use crate::ast::{Pred, Program, Rule};
use crate::db::{Database, Relation, Tuple};
use crate::derivation::Provenance;
use crate::eval::{EvalStats, Strategy};
use crate::materialize::{Materialization, RoundReport, RuleId, UpdateRound};

/// The shared state behind one server and all of its snapshots.
struct Shared {
    /// The maintained fixpoint. Readers pin and query under the read
    /// lock; the writer applies whole rounds under the write lock.
    store: RwLock<Materialization>,
    /// The epoch table: the published epoch plus reader pin counts.
    epochs: Mutex<EpochTable>,
}

/// The published epoch and the readers pinned per epoch.
struct EpochTable {
    /// The epoch of the last published round (0 = the initial fixpoint).
    current: u64,
    /// Pin count per pinned epoch (absent = zero). A `BTreeMap` so the
    /// minimum pinned epoch — the reclamation horizon — is the first
    /// key.
    pins: BTreeMap<u64, usize>,
}

impl EpochTable {
    /// The reclamation horizon: every tombstone tag at or below this
    /// epoch is unobservable. With no pins that is the published epoch
    /// itself (tags are never issued above it).
    fn min_observable(&self) -> u64 {
        self.pins.keys().next().copied().unwrap_or(self.current)
    }
}

/// A concurrent handle on a live materialization: cheap to clone, safe
/// to share across threads. Any thread may take snapshots and read;
/// [`Server::apply`] serializes writers (rounds are atomic — see the
/// module docs).
#[derive(Clone)]
pub struct Server {
    shared: Arc<Shared>,
}

impl Server {
    /// Serves `program` materialized over an empty database.
    pub fn new(program: &Program, strategy: Strategy) -> Self {
        Self::from_database(program, &Database::new(), strategy)
    }

    /// Serves `program` materialized over `db`: runs the initial batch
    /// fixpoint (epoch 0), then stands ready for readers and rounds.
    pub fn from_database(program: &Program, db: &Database, strategy: Strategy) -> Self {
        let store = Materialization::from_database(program, db, strategy);
        Self {
            shared: Arc::new(Shared {
                store: RwLock::new(store),
                epochs: Mutex::new(EpochTable {
                    current: 0,
                    pins: BTreeMap::new(),
                }),
            }),
        }
    }

    /// Applies one batched [`UpdateRound`] and publishes the resulting
    /// epoch. The round runs under the write lock — readers either see
    /// the epoch before it or the epoch after it, never the middle —
    /// and unobservable tombstone tags are reclaimed on the way out.
    ///
    /// Writer calls are serialized by the write lock; each applied
    /// round increments the published epoch by one.
    pub fn apply(&self, round: &UpdateRound) -> RoundReport {
        let mut store = self.shared.store.write().expect("store lock poisoned");
        let next = {
            let epochs = self.shared.epochs.lock().expect("epoch lock poisoned");
            epochs.current + 1
        };
        // Tombstones of this round are tagged `next`: dead at `next`,
        // still visible to every reader pinned at `< next`.
        store.set_epoch(next);
        let report = store.apply(round);
        // Publish, then reclaim what no reader can observe any more.
        let horizon = {
            let mut epochs = self.shared.epochs.lock().expect("epoch lock poisoned");
            epochs.current = next;
            epochs.min_observable()
        };
        store.reclaim_epochs(horizon);
        report
    }

    /// Convenience single-phase rounds (each one applied round).
    pub fn insert_facts(&self, pred: Pred, rows: &[Tuple]) -> usize {
        self.apply(&UpdateRound::new().insert_all(pred, rows)).inserted
    }

    /// See [`Server::insert_facts`].
    pub fn retract_facts(&self, pred: Pred, rows: &[Tuple]) -> usize {
        self.apply(&UpdateRound::new().retract_all(pred, rows)).retracted
    }

    /// Adds one rule as a round of its own; returns its stable id.
    pub fn add_rule(&self, rule: Rule) -> RuleId {
        let id = {
            let store = self.shared.store.read().expect("store lock poisoned");
            RuleId(store.num_rule_slots() as u32)
        };
        self.apply(&UpdateRound::new().add_rule(rule));
        id
    }

    /// Drops one rule as a round of its own; returns whether it was
    /// active.
    pub fn drop_rule(&self, id: RuleId) -> bool {
        self.apply(&UpdateRound::new().drop_rule(id)).rules_dropped == 1
    }

    /// Pins the current epoch and returns a read handle on it: a
    /// per-relation frontier plus the epoch number — no data is cloned.
    /// The snapshot keeps serving its exact pinned state however many
    /// rounds the writer applies afterwards; dropping it unpins (and
    /// opportunistically reclaims).
    pub fn snapshot(&self) -> Snapshot {
        // Hold the read lock across the pin: the writer can neither be
        // mid-round (the frontier is a published fixpoint) nor publish
        // and reclaim between reading `current` and pinning it.
        let store = self.shared.store.read().expect("store lock poisoned");
        let epoch = {
            let mut epochs = self.shared.epochs.lock().expect("epoch lock poisoned");
            let current = epochs.current;
            *epochs.pins.entry(current).or_insert(0) += 1;
            current
        };
        let frontier = store.frontiers();
        drop(store);
        Snapshot {
            shared: Arc::clone(&self.shared),
            epoch,
            frontier,
        }
    }

    /// The published epoch (= number of rounds applied so far).
    pub fn current_epoch(&self) -> u64 {
        self.shared.epochs.lock().expect("epoch lock poisoned").current
    }

    /// Work counters accumulated by the underlying materialization.
    pub fn stats(&self) -> EvalStats {
        self.shared.store.read().expect("store lock poisoned").stats()
    }

    /// The goal's answer over the **current** model (an unpinned read:
    /// equivalent to `snapshot().answer()` but cheaper).
    pub fn answer(&self) -> Relation {
        self.shared.store.read().expect("store lock poisoned").answer()
    }

    /// A provenance snapshot of the current model (O(store) clone; see
    /// [`Materialization::provenance`]).
    pub fn provenance(&self) -> Provenance {
        self.shared
            .store
            .read()
            .expect("store lock poisoned")
            .provenance()
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("epoch", &self.current_epoch())
            .finish_non_exhaustive()
    }
}

/// A pinned point-in-time view of a [`Server`]'s store: the state after
/// exactly the first `epoch` applied rounds. Reads take the store's
/// read lock briefly but never block on (or observe) the writer's
/// in-progress round. Dropping the snapshot unpins its epoch.
pub struct Snapshot {
    shared: Arc<Shared>,
    epoch: u64,
    /// Per-relation row counts at pin time: rows at or above the
    /// frontier (and whole relations interned later) are invisible.
    frontier: Vec<usize>,
}

impl Snapshot {
    /// The pinned epoch (= how many applied rounds this view includes).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The goal's answer relation as of the pinned state.
    pub fn answer(&self) -> Relation {
        self.shared
            .store
            .read()
            .expect("store lock poisoned")
            .answer_at(&self.frontier, self.epoch)
    }

    /// The IDB model as of the pinned state.
    pub fn idb_database(&self) -> Database {
        self.shared
            .store
            .read()
            .expect("store lock poisoned")
            .idb_database_at(&self.frontier, self.epoch)
    }

    /// Every tracked relation (stored EDB facts and the IDB model) as of
    /// the pinned state.
    pub fn database(&self) -> Database {
        self.shared
            .store
            .read()
            .expect("store lock poisoned")
            .database_at(&self.frontier, self.epoch)
    }

    /// Number of facts stored for `pred` as of the pinned state.
    pub fn num_facts(&self, pred: Pred) -> usize {
        self.shared
            .store
            .read()
            .expect("store lock poisoned")
            .num_facts_at(pred, &self.frontier, self.epoch)
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        let horizon = {
            let mut epochs = self.shared.epochs.lock().expect("epoch lock poisoned");
            if let Some(n) = epochs.pins.get_mut(&self.epoch) {
                *n -= 1;
                if *n == 0 {
                    epochs.pins.remove(&self.epoch);
                }
            }
            epochs.min_observable()
        };
        // Opportunistic reclamation: only if the store is idle right now
        // (try_write never blocks, so the epochs→store order here cannot
        // deadlock against the store→epochs order elsewhere). If the
        // store is busy, the writer reclaims at its next round instead.
        if let Ok(mut store) = self.shared.store.try_write() {
            store.reclaim_epochs(horizon);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const SRC: &str = "?- anc(john, Y).\n\
                       anc(X, Y) :- par(X, Y).\n\
                       anc(X, Y) :- anc(X, Z), par(Z, Y).";

    fn chain(p: &mut Program, n: usize) -> Vec<Tuple> {
        let mut prev = p.symbols.constant("john");
        (1..=n)
            .map(|i| {
                let c = p.symbols.constant(&format!("c{i}"));
                let t = vec![prev, c];
                prev = c;
                t
            })
            .collect()
    }

    #[test]
    fn snapshots_pin_their_epoch_across_churn() {
        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain(&mut p, 6);
        let server = Server::new(&p, Strategy::SemiNaive);

        assert_eq!(server.insert_facts(par, &edges[..3]), 3);
        assert_eq!(server.current_epoch(), 1);
        let pinned = server.snapshot();
        assert_eq!(pinned.epoch(), 1);
        assert_eq!(pinned.answer().len(), 3);

        // Churn after the pin: grow, then cut the chain at the root.
        server.insert_facts(par, &edges[3..]);
        server.retract_facts(par, &edges[..1]);
        assert_eq!(server.current_epoch(), 3);

        // The pinned snapshot still serves its exact state...
        assert_eq!(pinned.answer().len(), 3, "pinned reads don't move");
        assert_eq!(pinned.num_facts(par), 3);
        // ...while fresh snapshots see the current state.
        let fresh = server.snapshot();
        assert_eq!(fresh.epoch(), 3);
        assert_eq!(fresh.answer().len(), 0, "root edge retracted");
        assert_eq!(fresh.num_facts(par), 5);
        drop(pinned);

        // After the unpin the next round reclaims; the current state is
        // unaffected.
        server.insert_facts(par, &edges[..1]);
        assert_eq!(server.answer().len(), 6);
    }

    #[test]
    fn rounds_are_atomic_for_overlapping_snapshots() {
        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain(&mut p, 8);
        let mut db = Database::new();
        for e in &edges[..4] {
            db.insert(par, e.clone());
        }
        let server = Server::from_database(&p, &db, Strategy::SemiNaive);
        let before = server.snapshot();
        // One mixed round: retract the tail edge, insert the rest.
        server.apply(
            &UpdateRound::new()
                .retract(par, edges[3].clone())
                .insert_all(par, &edges[4..]),
        );
        let after = server.snapshot();
        assert_eq!(before.answer().len(), 4);
        assert_eq!(after.answer().len(), 3, "chain cut at edge 3");
        assert_eq!(after.epoch(), before.epoch() + 1);
        // Snapshot databases are exactly the two fixpoints.
        assert_eq!(
            before.database().sorted_models(),
            {
                let m = Materialization::from_database(&p, &db, Strategy::SemiNaive);
                m.database().sorted_models()
            },
            "pinned = the pre-round fixpoint"
        );
        let mut db2 = db.clone();
        db2.remove(par, &edges[3]);
        for e in &edges[4..] {
            db2.insert(par, e.clone());
        }
        assert_eq!(
            after.database().sorted_models(),
            {
                let m = Materialization::from_database(&p, &db2, Strategy::SemiNaive);
                m.database().sorted_models()
            },
            "published = the post-round fixpoint"
        );
    }

    #[test]
    fn rule_hot_swap_through_the_server() {
        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let anc = p.symbols.get_predicate("anc").unwrap();
        let edges = chain(&mut p, 4);
        let server = Server::new(&p, Strategy::SemiNaive);
        server.insert_facts(par, &edges);
        let pinned = server.snapshot();
        assert_eq!(pinned.num_facts(anc), 10, "4+3+2+1 ancestor pairs");

        // Drop the transitive rule: only direct parents remain.
        assert!(server.drop_rule(RuleId(1)));
        assert_eq!(server.snapshot().num_facts(anc), 4);
        assert_eq!(pinned.num_facts(anc), 10, "pinned view unaffected");

        // Re-add it (fresh slot) — the model is restored.
        let readd = p.rules[1].clone();
        let id = server.add_rule(readd);
        assert_eq!(id, RuleId(2));
        assert_eq!(server.snapshot().num_facts(anc), 10);
        assert_eq!(pinned.num_facts(anc), 10);
    }

    #[test]
    fn server_is_shareable_across_threads() {
        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain(&mut p, 32);
        let server = Server::new(&p, Strategy::SemiNaive);
        server.insert_facts(par, &edges[..1]);

        let readers: Vec<_> = (0..3)
            .map(|_| {
                let server = server.clone();
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut reads = 0usize;
                    while last < 8 {
                        let snap = server.snapshot();
                        // Answers are a function of the pinned epoch:
                        // epoch e = e edges inserted (one per round).
                        assert_eq!(snap.answer().len() as u64, snap.epoch());
                        assert!(snap.epoch() >= last, "epochs are monotone");
                        last = snap.epoch();
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();
        for e in &edges[1..8] {
            server.insert_facts(par, std::slice::from_ref(e));
        }
        for r in readers {
            assert!(r.join().expect("reader thread") > 0);
        }
    }
}
