//! The original tuple-at-a-time evaluator, preserved as the executable
//! specification of the work counters.
//!
//! [`crate::eval`] reimplements the fixpoint on flat columnar storage for
//! speed; its contract is that [`EvalStats`] — iterations, rule firings,
//! derived tuples, join probes — stay **bit-for-bit identical** to this
//! module on every program and database, so the tables in EXPERIMENTS.md
//! remain valid across storage rewrites. The `engine_equiv` property
//! suite and `stats_match_reference_engine_exactly` enforce the contract.
//!
//! This engine allocates a `Vec<Const>` per tuple, clones `old` from
//! `full` each iteration, and rebuilds every hash index per iteration —
//! exactly the costs the storage engine removes. Do not use it for
//! anything but cross-checking.

use std::collections::{HashMap, HashSet};

use crate::ast::{Const, Pred, Program, Rule, Term, Var};
use crate::db::{Database, Tuple};
use crate::derivation::{DerivationTree, GroundAtom};
use crate::eval::{apply_goal, EvalResult, EvalStats, Strategy};
use crate::plan::{body_order, PlannerConfig};

/// Evaluates `program` on `db` with the reference engine under the
/// default planner configuration (the storage engine's default).
///
/// [`Strategy::SemiNaiveParallel`] is evaluated as sequential semi-naive
/// ([`Strategy::sequential_spec`]): the parallel engine's contract is to
/// match that specification's counters bit-for-bit, so the reference for
/// both is the same run.
pub fn evaluate(program: &Program, db: &Database, strategy: Strategy) -> EvalResult {
    evaluate_cfg(program, db, strategy, PlannerConfig::default())
}

/// Evaluates under an explicit planner configuration. The reference
/// mirrors every counter-visible planner decision — body order (from
/// database cardinalities, which equal the engine's live counts at
/// compile time), suffix pruning at the head-ready depth, and
/// merge-time productive firings — so [`EvalStats`] stay bit-for-bit
/// comparable to the storage engine under the same configuration.
pub fn evaluate_cfg(
    program: &Program,
    db: &Database,
    strategy: Strategy,
    cfg: PlannerConfig,
) -> EvalResult {
    Evaluator::new(program, db, cfg).run(strategy.sequential_spec())
}

/// Evaluates and applies the goal with the reference engine.
pub fn answer(
    program: &Program,
    db: &Database,
    strategy: Strategy,
) -> (crate::db::Relation, EvalStats) {
    let result = evaluate(program, db, strategy);
    let rel = result
        .idb
        .relation(program.goal.pred)
        .cloned()
        .unwrap_or_else(|| crate::db::Relation::new(program.goal.arity()));
    (apply_goal(&program.goal, &rel), result.stats)
}

/// A term pattern compiled to dense rule-local slots.
#[derive(Clone, Copy, Debug)]
enum Pat {
    /// A rule-local variable slot.
    Slot(usize),
    /// A constant that must match.
    Const(Const),
}

#[derive(Clone, Debug)]
struct CompiledAtom {
    pred: Pred,
    pattern: Vec<Pat>,
    /// Argument positions that are bound when this atom is evaluated
    /// left-to-right (constants, slots bound earlier, and repeats within
    /// this atom).
    bound_positions: Vec<usize>,
}

#[derive(Clone, Debug)]
struct CompiledRule {
    head_pred: Pred,
    head_pattern: Vec<Pat>,
    /// Body atoms in **planner order** (the evaluation order).
    body: Vec<CompiledAtom>,
    num_slots: usize,
    /// Body positions (in planner order) whose predicate is an IDB of
    /// the program.
    idb_positions: Vec<usize>,
    /// First body position at which every head slot is bound — the
    /// suffix-prune point, mirroring `RulePlan::head_ready_depth`.
    head_ready: usize,
}

fn compile_rule(rule: &Rule, idbs: &[Pred], order: &[usize]) -> CompiledRule {
    let mut slots: HashMap<Var, usize> = HashMap::new();
    let slot_of = |v: Var, slots: &mut HashMap<Var, usize>| {
        let next = slots.len();
        *slots.entry(v).or_insert(next)
    };
    let mut body = Vec::new();
    let mut bound_slots: Vec<bool> = Vec::new();
    for &ai in order {
        let atom = &rule.body[ai];
        let mut pattern = Vec::new();
        let mut bound_positions = Vec::new();
        let mut seen_here: Vec<usize> = Vec::new();
        for (i, t) in atom.args.iter().enumerate() {
            match t {
                Term::Const(c) => {
                    pattern.push(Pat::Const(*c));
                    bound_positions.push(i);
                }
                Term::Var(v) => {
                    let s = slot_of(*v, &mut slots);
                    if s >= bound_slots.len() {
                        bound_slots.resize(s + 1, false);
                    }
                    // Only slots bound by *earlier atoms* key the index;
                    // a repeat within this atom (e.g. `p(X, X)`) is a
                    // filter applied during tuple matching.
                    if bound_slots[s] {
                        bound_positions.push(i);
                    }
                    seen_here.push(s);
                    pattern.push(Pat::Slot(s));
                }
            }
        }
        for &s in &seen_here {
            bound_slots[s] = true;
        }
        body.push(CompiledAtom {
            pred: atom.pred,
            pattern,
            bound_positions,
        });
    }
    let head_pattern: Vec<Pat> = rule
        .head
        .args
        .iter()
        .map(|t| match t {
            Term::Const(c) => Pat::Const(*c),
            Term::Var(v) => Pat::Slot(*slots.get(v).expect("safe rule")),
        })
        .collect();
    let idb_positions = order
        .iter()
        .enumerate()
        .filter(|&(_, &ai)| idbs.contains(&rule.body[ai].pred))
        .map(|(d, _)| d)
        .collect();
    let head_ready = head_ready_depth(&head_pattern, &body, slots.len());
    CompiledRule {
        head_pred: rule.head.pred,
        head_pattern,
        body,
        num_slots: slots.len(),
        idb_positions,
        head_ready,
    }
}

/// First body-position prefix after which every head slot is bound —
/// the same computation as `plan::head_ready_depth`, over the pattern
/// vocabulary: 0 for all-constant heads, `body.len()` when a head slot
/// is bound only by the last atom.
fn head_ready_depth(head_pattern: &[Pat], body: &[CompiledAtom], num_slots: usize) -> usize {
    let need: Vec<usize> = head_pattern
        .iter()
        .filter_map(|p| match p {
            Pat::Slot(s) => Some(*s),
            Pat::Const(_) => None,
        })
        .collect();
    let mut bound = vec![false; num_slots];
    for (d, atom) in body.iter().enumerate() {
        if need.iter().all(|&s| bound[s]) {
            return d;
        }
        for p in &atom.pattern {
            if let Pat::Slot(s) = p {
                bound[*s] = true;
            }
        }
    }
    body.len()
}

/// Which snapshot a body atom reads from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Source {
    /// EDB relation from the input database.
    Edb,
    /// Current full IDB relation.
    Full,
    /// IDB relation as of the previous iteration.
    Old,
    /// Facts derived exactly in the previous iteration.
    Delta,
}

type Index = HashMap<Vec<Const>, Vec<u32>>;

struct Evaluator<'a> {
    program: &'a Program,
    rules: Vec<CompiledRule>,
    edb: HashMap<Pred, Vec<Tuple>>,
    arity: HashMap<Pred, usize>,
    stats: EvalStats,
    cfg: PlannerConfig,
}

impl<'a> Evaluator<'a> {
    fn new(program: &'a Program, db: &Database, cfg: PlannerConfig) -> Self {
        let idbs = program.idb_predicates();
        // Cardinalities at compile time: database sizes for EDB
        // predicates, 0 for IDBs — exactly the engine's live row counts
        // when it plans (EDB loaded, nothing derived yet), so both
        // sides compute the same body orders.
        let mut card = |p: Pred| {
            if idbs.contains(&p) {
                0
            } else {
                db.relation(p).map_or(0, |r| r.len() as u64)
            }
        };
        let rules = program
            .rules
            .iter()
            .enumerate()
            .map(|(i, r)| compile_rule(r, &idbs, &body_order(r, i, cfg.order, &mut card)))
            .collect();
        let mut edb: HashMap<Pred, Vec<Tuple>> = HashMap::new();
        let mut arity: HashMap<Pred, usize> = HashMap::new();
        for (p, r) in db.iter() {
            edb.insert(p, r.iter().cloned().collect());
            arity.insert(p, r.arity());
        }
        for r in &program.rules {
            arity.entry(r.head.pred).or_insert_with(|| r.head.arity());
            for a in &r.body {
                arity.entry(a.pred).or_insert_with(|| a.arity());
            }
        }
        Self {
            program,
            rules,
            edb,
            arity,
            stats: EvalStats::default(),
            cfg,
        }
    }

    fn run(mut self, strategy: Strategy) -> EvalResult {
        let idbs = self.program.idb_predicates();
        let mut full: HashMap<Pred, Vec<Tuple>> = idbs.iter().map(|&p| (p, Vec::new())).collect();
        let mut full_set: HashMap<Pred, std::collections::HashSet<Tuple>> =
            idbs.iter().map(|&p| (p, Default::default())).collect();
        let mut old: HashMap<Pred, Vec<Tuple>> = full.clone();
        let mut delta: HashMap<Pred, Vec<Tuple>> = full.clone();

        let mut first = true;
        loop {
            self.stats.iterations += 1;
            let mut new: HashMap<Pred, Vec<Tuple>> = HashMap::new();
            let mut indexes: HashMap<(Pred, Source, Vec<usize>), Index> = HashMap::new();

            let rules = std::mem::take(&mut self.rules);
            for rule in &rules {
                match strategy {
                    Strategy::Naive => {
                        self.eval_rule(
                            rule,
                            None,
                            &full,
                            &old,
                            &delta,
                            &full_set,
                            &mut indexes,
                            |pred, t| {
                                if !full_set[&pred].contains(&t) {
                                    new.entry(pred).or_default().push(t);
                                }
                            },
                        );
                    }
                    _ => {
                        if rule.idb_positions.is_empty() {
                            if first {
                                self.eval_rule(
                                    rule,
                                    None,
                                    &full,
                                    &old,
                                    &delta,
                                    &full_set,
                                    &mut indexes,
                                    |pred, t| {
                                        if !full_set[&pred].contains(&t) {
                                            new.entry(pred).or_default().push(t);
                                        }
                                    },
                                );
                            }
                        } else if !first {
                            for &d in &rule.idb_positions {
                                self.eval_rule(
                                    rule,
                                    Some(d),
                                    &full,
                                    &old,
                                    &delta,
                                    &full_set,
                                    &mut indexes,
                                    |pred, t| {
                                        if !full_set[&pred].contains(&t) {
                                            new.entry(pred).or_default().push(t);
                                        }
                                    },
                                );
                            }
                        }
                    }
                }
            }
            self.rules = rules;

            // merge: old ← full; delta ← new; full ← full ∪ new
            let mut any = false;
            for (&p, f) in &full {
                old.insert(p, f.clone());
            }
            for (p, tuples) in new {
                let set = full_set.get_mut(&p).expect("idb pred");
                let mut added = Vec::new();
                for t in tuples {
                    if set.insert(t.clone()) {
                        added.push(t);
                    }
                }
                self.stats.tuples_derived += added.len() as u64;
                // Productive firings are counted at the merge — the
                // tuples that actually entered the model — mirroring the
                // engine's merge-time accounting.
                if self.cfg.productive_firings {
                    self.stats.rule_firings += added.len() as u64;
                }
                if !added.is_empty() {
                    any = true;
                }
                full.get_mut(&p).expect("idb pred").extend(added.iter().cloned());
                delta.insert(p, added);
            }
            // clear deltas of predicates that derived nothing this round
            // (old holds the pre-merge sizes)
            for &p in &idbs {
                if old[&p].len() == full[&p].len() {
                    delta.insert(p, Vec::new());
                }
            }
            if !any {
                break;
            }
            first = false;
        }

        let mut idb_db = Database::new();
        for (&p, tuples) in &full {
            let ar = *self.arity.get(&p).unwrap_or(&0);
            let rel = idb_db.relation_mut(p, ar);
            for t in tuples {
                rel.insert(t.clone());
            }
        }
        EvalResult {
            idb: idb_db,
            stats: self.stats,
        }
    }

    /// Evaluates one rule with an optional delta position, feeding head
    /// tuples to `emit`.
    #[allow(clippy::too_many_arguments)]
    fn eval_rule(
        &mut self,
        rule: &CompiledRule,
        delta_pos: Option<usize>,
        full: &HashMap<Pred, Vec<Tuple>>,
        old: &HashMap<Pred, Vec<Tuple>>,
        delta: &HashMap<Pred, Vec<Tuple>>,
        full_set: &HashMap<Pred, HashSet<Tuple>>,
        indexes: &mut HashMap<(Pred, Source, Vec<usize>), Index>,
        mut emit: impl FnMut(Pred, Tuple),
    ) {
        let ctx = JoinCtx {
            edb: &self.edb,
            full,
            old,
            delta,
            full_set,
            delta_pos,
            cfg: self.cfg,
        };
        let mut env: Vec<Option<Const>> = vec![None; rule.num_slots];
        let mut probes = 0u64;
        let mut firings = 0u64;
        descend(
            rule, 0, &mut env, &ctx, indexes, &mut probes, &mut firings, &mut emit,
        );
        self.stats.join_probes += probes;
        self.stats.rule_firings += firings;
    }
}

/// Borrowed snapshots for one rule-evaluation pass.
struct JoinCtx<'b> {
    edb: &'b HashMap<Pred, Vec<Tuple>>,
    full: &'b HashMap<Pred, Vec<Tuple>>,
    old: &'b HashMap<Pred, Vec<Tuple>>,
    delta: &'b HashMap<Pred, Vec<Tuple>>,
    /// The frozen model, for the suffix-prune existence check.
    full_set: &'b HashMap<Pred, HashSet<Tuple>>,
    delta_pos: Option<usize>,
    cfg: PlannerConfig,
}

impl<'b> JoinCtx<'b> {
    fn source_of(&self, pos: usize, atom: &CompiledAtom) -> Source {
        if !self.full.contains_key(&atom.pred) {
            Source::Edb
        } else {
            // "last delta occurrence" convention: positions before the
            // delta read the up-to-date full relation, positions after it
            // read the previous iteration's relation.
            match self.delta_pos {
                None => Source::Full,
                Some(d) if pos == d => Source::Delta,
                Some(d) if pos < d => Source::Full,
                Some(_) => Source::Old,
            }
        }
    }

    fn tuples_of(&self, src: Source, pred: Pred) -> &'b [Tuple] {
        let map = match src {
            Source::Edb => self.edb,
            Source::Full => self.full,
            Source::Old => self.old,
            Source::Delta => self.delta,
        };
        map.get(&pred).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Recursive backtracking join over the body atoms.
#[allow(clippy::too_many_arguments)]
fn descend(
    rule: &CompiledRule,
    pos: usize,
    env: &mut Vec<Option<Const>>,
    ctx: &JoinCtx<'_>,
    indexes: &mut HashMap<(Pred, Source, Vec<usize>), Index>,
    probes: &mut u64,
    firings: &mut u64,
    emit: &mut dyn FnMut(Pred, Tuple),
) {
    if pos == rule.body.len() {
        let t: Tuple = rule
            .head_pattern
            .iter()
            .map(|p| match p {
                Pat::Const(c) => *c,
                Pat::Slot(s) => env[*s].expect("safe rule binds head slots"),
            })
            .collect();
        if !ctx.cfg.productive_firings {
            *firings += 1;
        }
        emit(rule.head_pred, t);
        return;
    }
    // Suffix pruning: the head is fully bound here; if it already
    // exists in the frozen model, the remaining joins can only
    // re-derive it. The check precedes this depth's probe, exactly
    // like the engine.
    if ctx.cfg.suffix_prune && pos == rule.head_ready {
        let t: Tuple = rule
            .head_pattern
            .iter()
            .map(|p| match p {
                Pat::Const(c) => *c,
                Pat::Slot(s) => env[*s].expect("head-ready depth binds head slots"),
            })
            .collect();
        if ctx.full_set.get(&rule.head_pred).is_some_and(|s| s.contains(&t)) {
            return;
        }
    }
    let atom = &rule.body[pos];
    let src = ctx.source_of(pos, atom);
    let tuples = ctx.tuples_of(src, atom.pred);
    // Build/fetch the hash index for this (pred, source, mask).
    let key = (atom.pred, src, atom.bound_positions.clone());
    let index = indexes.entry(key).or_insert_with(|| {
        let mut idx: Index = HashMap::new();
        for (ti, t) in tuples.iter().enumerate() {
            let k: Vec<Const> = atom.bound_positions.iter().map(|&i| t[i]).collect();
            idx.entry(k).or_default().push(ti as u32);
        }
        idx
    });
    let probe_key: Vec<Const> = atom
        .bound_positions
        .iter()
        .map(|&i| match atom.pattern[i] {
            Pat::Const(c) => c,
            Pat::Slot(s) => env[s].expect("bound slot"),
        })
        .collect();
    *probes += 1;
    let Some(matches) = index.get(&probe_key) else {
        return;
    };
    let matches = matches.clone();
    for ti in matches {
        let t = &tuples[ti as usize];
        // bind free slots; record which to unbind on backtrack
        let mut bound_here: Vec<usize> = Vec::new();
        let mut ok = true;
        for (i, pat) in atom.pattern.iter().enumerate() {
            match pat {
                Pat::Const(c) => {
                    if t[i] != *c {
                        ok = false;
                        break;
                    }
                }
                Pat::Slot(s) => match env[*s] {
                    Some(c) => {
                        if c != t[i] {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        env[*s] = Some(t[i]);
                        bound_here.push(*s);
                    }
                },
            }
        }
        if ok {
            descend(rule, pos + 1, env, ctx, indexes, probes, firings, emit);
        }
        for s in bound_here {
            env[s] = None;
        }
    }
}

// ---------------------------------------------------------------------
// Naive provenance — the executable specification
// ---------------------------------------------------------------------

/// Provenance-tracking evaluation by naive fixpoint: for every derived
/// IDB fact, one justification (rule index + body ground atoms).
///
/// This is the original tuple-at-a-time provenance from the derivation
/// module, preserved — like the evaluator above — as the executable
/// specification: a simple nested-loop re-matcher over cloned
/// [`GroundAtom`]s, quadratic and clarity-first. The production path is
/// [`crate::eval::evaluate_with_provenance`], which records row-id
/// justifications inside the columnar join; the `engine_equiv` property
/// suite validates both against [`Provenance::check`] /
/// [`crate::derivation::Provenance::check`] and asserts they derive the
/// same facts.
pub struct Provenance {
    just: HashMap<GroundAtom, (usize, Vec<GroundAtom>)>,
    edb_preds: Vec<Pred>,
}

impl Provenance {
    /// Runs a naive fixpoint recording first-found justifications.
    pub fn compute(program: &Program, db: &Database) -> Provenance {
        let mut just: HashMap<GroundAtom, (usize, Vec<GroundAtom>)> = HashMap::new();
        let mut model: Vec<GroundAtom> = Vec::new();
        let mut model_set: std::collections::HashSet<GroundAtom> = Default::default();
        let idbs = program.idb_predicates();
        for (p, rel) in db.iter() {
            // Database facts for IDB predicates are ignored, exactly as
            // in both evaluators (IDB relations start empty) — the spec
            // must derive the same facts the engines derive.
            if idbs.contains(&p) {
                continue;
            }
            for t in rel.iter() {
                let g = GroundAtom {
                    pred: p,
                    args: t.clone(),
                };
                if model_set.insert(g.clone()) {
                    model.push(g);
                }
            }
        }
        loop {
            let mut new: Vec<(GroundAtom, usize, Vec<GroundAtom>)> = Vec::new();
            // Within-round dedup: `model_set` is frozen for the round, so
            // without this set every rule (and every instantiation) that
            // re-derives a head already staged this round would push a
            // duplicate — quadratic memory on dense inputs, all dropped
            // at the merge anyway.
            let mut new_set: std::collections::HashSet<GroundAtom> = Default::default();
            for (ri, rule) in program.rules.iter().enumerate() {
                let mut env: HashMap<crate::ast::Var, Const> = HashMap::new();
                match_body(rule, 0, &model, &mut env, &mut |env| {
                    let head = GroundAtom {
                        pred: rule.head.pred,
                        args: rule
                            .head
                            .args
                            .iter()
                            .map(|t| match t {
                                Term::Const(c) => *c,
                                Term::Var(v) => env[v],
                            })
                            .collect(),
                    };
                    if !model_set.contains(&head) && !new_set.contains(&head) {
                        new_set.insert(head.clone());
                        let body = rule
                            .body
                            .iter()
                            .map(|a| GroundAtom {
                                pred: a.pred,
                                args: a
                                    .args
                                    .iter()
                                    .map(|t| match t {
                                        Term::Const(c) => *c,
                                        Term::Var(v) => env[v],
                                    })
                                    .collect(),
                            })
                            .collect();
                        new.push((head, ri, body));
                    }
                });
            }
            let mut any = false;
            for (head, ri, body) in new {
                if model_set.insert(head.clone()) {
                    model.push(head.clone());
                    just.insert(head, (ri, body));
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        Provenance {
            just,
            edb_preds: program.edb_predicates(),
        }
    }

    /// Builds the derivation tree of a ground atom, if it was derived (or
    /// is a database fact). Iterative, like the columnar engine's
    /// [`crate::derivation::Provenance::tree`]: the spec must also be
    /// callable on deep-chain proofs.
    pub fn tree(&self, atom: &GroundAtom) -> Option<DerivationTree> {
        if self.edb_preds.contains(&atom.pred) {
            return Some(DerivationTree {
                atom: atom.clone(),
                via: None,
            });
        }
        let (rule0, _) = self.just.get(atom)?;
        struct Frame<'a> {
            atom: &'a GroundAtom,
            rule: usize,
            kids: Vec<DerivationTree>,
        }
        let mut stack = vec![Frame {
            atom,
            rule: *rule0,
            kids: Vec::new(),
        }];
        loop {
            let (fatom, built) = {
                let f = stack.last().expect("non-empty until the root completes");
                (f.atom, f.kids.len())
            };
            let body = &self.just.get(fatom).expect("frames are derived atoms").1;
            if built < body.len() {
                let child = &body[built];
                if self.edb_preds.contains(&child.pred) {
                    stack.last_mut().expect("frame exists").kids.push(DerivationTree {
                        atom: child.clone(),
                        via: None,
                    });
                } else {
                    let (crule, _) = self.just.get(child)?;
                    stack.push(Frame {
                        atom: child,
                        rule: *crule,
                        kids: Vec::new(),
                    });
                }
            } else {
                let f = stack.pop().expect("frame exists");
                let node = DerivationTree {
                    atom: f.atom.clone(),
                    via: Some((f.rule, f.kids)),
                };
                match stack.last_mut() {
                    None => return Some(node),
                    Some(parent) => parent.kids.push(node),
                }
            }
        }
    }

    /// All derived IDB ground atoms.
    pub fn derived(&self) -> impl Iterator<Item = &GroundAtom> {
        self.just.keys()
    }

    /// The recorded justification of a derived atom.
    pub fn justification(&self, atom: &GroundAtom) -> Option<(usize, &[GroundAtom])> {
        self.just.get(atom).map(|(ri, body)| (*ri, body.as_slice()))
    }

    /// Validity check mirroring
    /// [`crate::derivation::Provenance::check`]: every justification is
    /// a genuine rule instantiation over facts of the model, and every
    /// chain bottoms out in EDB facts.
    pub fn check(&self, program: &Program) -> Result<(), String> {
        for (head, (ri, body)) in &self.just {
            let rule = program
                .rules
                .get(*ri)
                .ok_or_else(|| format!("{head:?}: rule {ri} out of range"))?;
            if rule.head.pred != head.pred || body.len() != rule.body.len() {
                return Err(format!("{head:?}: rule shape mismatch"));
            }
            let mut env: HashMap<Var, Const> = HashMap::new();
            let bind = |t: &Term, c: Const, env: &mut HashMap<Var, Const>| match t {
                Term::Const(k) => *k == c,
                Term::Var(v) => *env.entry(*v).or_insert(c) == c,
            };
            for (atom, fact) in rule.body.iter().zip(body) {
                if atom.pred != fact.pred
                    || atom.args.len() != fact.args.len()
                    || !atom
                        .args
                        .iter()
                        .zip(&fact.args)
                        .all(|(t, &c)| bind(t, c, &mut env))
                {
                    return Err(format!("{head:?}: body is not an instantiation"));
                }
                if !self.edb_preds.contains(&fact.pred) && !self.just.contains_key(fact) {
                    return Err(format!("{head:?}: body fact {fact:?} unjustified"));
                }
            }
            if head.args.len() != rule.head.args.len()
                || !rule
                    .head
                    .args
                    .iter()
                    .zip(&head.args)
                    .all(|(t, &c)| bind(t, c, &mut env))
            {
                return Err(format!("{head:?}: head is not the rule instantiation"));
            }
        }
        // Well-foundedness: every justification chain reaches EDB leaves.
        // Body facts strictly predate their head in the naive rounds, so
        // a DFS with an on-path set detects any (impossible) cycle.
        let mut done: std::collections::HashSet<&GroundAtom> = Default::default();
        for root in self.just.keys() {
            if done.contains(root) {
                continue;
            }
            let mut on_path: std::collections::HashSet<&GroundAtom> = Default::default();
            let mut stack: Vec<(&GroundAtom, bool)> = vec![(root, false)];
            while let Some((a, expanded)) = stack.pop() {
                if expanded {
                    on_path.remove(a);
                    done.insert(a);
                    continue;
                }
                if done.contains(a) || self.edb_preds.contains(&a.pred) {
                    continue;
                }
                if !on_path.insert(a) {
                    return Err(format!("{a:?}: cyclic justification"));
                }
                stack.push((a, true));
                let (_, body) = &self.just[a];
                for b in body {
                    stack.push((b, false));
                }
            }
        }
        Ok(())
    }
}

fn match_body(
    rule: &crate::ast::Rule,
    pos: usize,
    model: &[GroundAtom],
    env: &mut HashMap<crate::ast::Var, Const>,
    emit: &mut dyn FnMut(&HashMap<crate::ast::Var, Const>),
) {
    if pos == rule.body.len() {
        emit(env);
        return;
    }
    let atom = &rule.body[pos];
    for fact in model {
        if fact.pred != atom.pred || fact.args.len() != atom.args.len() {
            continue;
        }
        let mut bound: Vec<crate::ast::Var> = Vec::new();
        let mut ok = true;
        for (t, c) in atom.args.iter().zip(&fact.args) {
            match t {
                Term::Const(k) => {
                    if k != c {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match env.get(v) {
                    Some(&b) => {
                        if b != *c {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        env.insert(*v, *c);
                        bound.push(*v);
                    }
                },
            }
        }
        if ok {
            match_body(rule, pos + 1, model, env, emit);
        }
        for v in bound {
            env.remove(&v);
        }
    }
}

#[cfg(test)]
mod provenance_tests {
    use super::*;
    use crate::parser::parse_program;

    /// Satellite regression: two rules deriving the same fact in the
    /// same round must stage it once (the round-local dedup), and the
    /// recorded justification is the first rule's.
    #[test]
    fn duplicate_heads_within_a_round_are_deduped() {
        let mut p = parse_program(
            "?- p(Y).\n\
             p(X) :- e(X).\n\
             p(X) :- f(X).",
        )
        .unwrap();
        let e = p.symbols.get_predicate("e").unwrap();
        let f = p.symbols.get_predicate("f").unwrap();
        let a = p.symbols.constant("a");
        let mut db = Database::new();
        db.insert(e, vec![a]);
        db.insert(f, vec![a]);
        let prov = Provenance::compute(&p, &db);
        let pp = p.symbols.get_predicate("p").unwrap();
        let atom = GroundAtom {
            pred: pp,
            args: vec![a],
        };
        assert_eq!(prov.derived().count(), 1, "p(a) derived exactly once");
        let (rule, body) = prov.justification(&atom).expect("p(a) justified");
        assert_eq!(rule, 0, "first-found justification is the first rule");
        assert_eq!(body, &[GroundAtom { pred: e, args: vec![a] }]);
        prov.check(&p).expect("naive provenance is valid");
        // The columnar engine agrees on the derived set and the choice.
        let fast = crate::derivation::Provenance::compute(&p, &db);
        assert_eq!(fast.num_derived(), 1);
        assert_eq!(fast.justification(&atom).map(|(r, _)| r), Some(0));
    }

    /// Database facts under IDB predicates are ignored, exactly as both
    /// evaluators ignore them — the spec must not derive from phantom
    /// seeds the engines never see.
    #[test]
    fn idb_predicate_facts_in_the_database_are_ignored() {
        let mut p = parse_program(
            "?- anc(a, Y).\n\
             anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- anc(X, Z), par(Z, Y).",
        )
        .unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let anc = p.symbols.get_predicate("anc").unwrap();
        let a = p.symbols.constant("a");
        let b = p.symbols.constant("b");
        let c = p.symbols.constant("c");
        let mut db = Database::new();
        db.insert(par, vec![a, b]);
        db.insert(anc, vec![b, c]); // phantom IDB seed: must be ignored
        let spec = Provenance::compute(&p, &db);
        let mut spec_facts: Vec<_> = spec.derived().cloned().collect();
        spec_facts.sort();
        let engine = crate::derivation::Provenance::compute(&p, &db);
        let mut engine_facts: Vec<_> = engine.derived().collect();
        engine_facts.sort();
        assert_eq!(spec_facts, engine_facts, "spec and engine agree");
        assert_eq!(spec_facts.len(), 1, "only anc(a, b) is derivable");
        spec.check(&p).expect("valid");
    }

    /// The same head re-derived by *many* instantiations of one rule in
    /// one round stages once, not once per instantiation.
    #[test]
    fn duplicate_heads_across_instantiations_are_deduped() {
        let mut p = parse_program(
            "?- q(Y).\n\
             q(Y) :- e(X, Y).",
        )
        .unwrap();
        let e = p.symbols.get_predicate("e").unwrap();
        let b = p.symbols.constant("b");
        let mut db = Database::new();
        for i in 0..20 {
            let c = p.symbols.constant(&format!("s{i}"));
            db.insert(e, vec![c, b]);
        }
        let prov = Provenance::compute(&p, &db);
        assert_eq!(prov.derived().count(), 1);
        prov.check(&p).expect("valid");
    }
}
