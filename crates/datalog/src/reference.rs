//! The original tuple-at-a-time evaluator, preserved as the executable
//! specification of the work counters.
//!
//! [`crate::eval`] reimplements the fixpoint on flat columnar storage for
//! speed; its contract is that [`EvalStats`] — iterations, rule firings,
//! derived tuples, join probes — stay **bit-for-bit identical** to this
//! module on every program and database, so the tables in EXPERIMENTS.md
//! remain valid across storage rewrites. The `engine_equiv` property
//! suite and `stats_match_reference_engine_exactly` enforce the contract.
//!
//! This engine allocates a `Vec<Const>` per tuple, clones `old` from
//! `full` each iteration, and rebuilds every hash index per iteration —
//! exactly the costs the storage engine removes. Do not use it for
//! anything but cross-checking.

use std::collections::HashMap;

use crate::ast::{Const, Pred, Program, Rule, Term, Var};
use crate::db::{Database, Tuple};
use crate::eval::{apply_goal, EvalResult, EvalStats, Strategy};

/// Evaluates `program` on `db` with the reference engine.
///
/// [`Strategy::SemiNaiveParallel`] is evaluated as sequential semi-naive
/// ([`Strategy::sequential_spec`]): the parallel engine's contract is to
/// match that specification's counters bit-for-bit, so the reference for
/// both is the same run.
pub fn evaluate(program: &Program, db: &Database, strategy: Strategy) -> EvalResult {
    Evaluator::new(program, db).run(strategy.sequential_spec())
}

/// Evaluates and applies the goal with the reference engine.
pub fn answer(
    program: &Program,
    db: &Database,
    strategy: Strategy,
) -> (crate::db::Relation, EvalStats) {
    let result = evaluate(program, db, strategy);
    let rel = result
        .idb
        .relation(program.goal.pred)
        .cloned()
        .unwrap_or_else(|| crate::db::Relation::new(program.goal.arity()));
    (apply_goal(&program.goal, &rel), result.stats)
}

/// A term pattern compiled to dense rule-local slots.
#[derive(Clone, Copy, Debug)]
enum Pat {
    /// A rule-local variable slot.
    Slot(usize),
    /// A constant that must match.
    Const(Const),
}

#[derive(Clone, Debug)]
struct CompiledAtom {
    pred: Pred,
    pattern: Vec<Pat>,
    /// Argument positions that are bound when this atom is evaluated
    /// left-to-right (constants, slots bound earlier, and repeats within
    /// this atom).
    bound_positions: Vec<usize>,
}

#[derive(Clone, Debug)]
struct CompiledRule {
    head_pred: Pred,
    head_pattern: Vec<Pat>,
    body: Vec<CompiledAtom>,
    num_slots: usize,
    /// Body positions whose predicate is an IDB of the program.
    idb_positions: Vec<usize>,
}

fn compile_rule(rule: &Rule, idbs: &[Pred]) -> CompiledRule {
    let mut slots: HashMap<Var, usize> = HashMap::new();
    let slot_of = |v: Var, slots: &mut HashMap<Var, usize>| {
        let next = slots.len();
        *slots.entry(v).or_insert(next)
    };
    let mut body = Vec::new();
    let mut bound_slots: Vec<bool> = Vec::new();
    for atom in &rule.body {
        let mut pattern = Vec::new();
        let mut bound_positions = Vec::new();
        let mut seen_here: Vec<usize> = Vec::new();
        for (i, t) in atom.args.iter().enumerate() {
            match t {
                Term::Const(c) => {
                    pattern.push(Pat::Const(*c));
                    bound_positions.push(i);
                }
                Term::Var(v) => {
                    let s = slot_of(*v, &mut slots);
                    if s >= bound_slots.len() {
                        bound_slots.resize(s + 1, false);
                    }
                    // Only slots bound by *earlier atoms* key the index;
                    // a repeat within this atom (e.g. `p(X, X)`) is a
                    // filter applied during tuple matching.
                    if bound_slots[s] {
                        bound_positions.push(i);
                    }
                    seen_here.push(s);
                    pattern.push(Pat::Slot(s));
                }
            }
        }
        for &s in &seen_here {
            bound_slots[s] = true;
        }
        body.push(CompiledAtom {
            pred: atom.pred,
            pattern,
            bound_positions,
        });
    }
    let head_pattern = rule
        .head
        .args
        .iter()
        .map(|t| match t {
            Term::Const(c) => Pat::Const(*c),
            Term::Var(v) => Pat::Slot(*slots.get(v).expect("safe rule")),
        })
        .collect();
    let idb_positions = rule
        .body
        .iter()
        .enumerate()
        .filter(|(_, a)| idbs.contains(&a.pred))
        .map(|(i, _)| i)
        .collect();
    CompiledRule {
        head_pred: rule.head.pred,
        head_pattern,
        body,
        num_slots: slots.len(),
        idb_positions,
    }
}

/// Which snapshot a body atom reads from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Source {
    /// EDB relation from the input database.
    Edb,
    /// Current full IDB relation.
    Full,
    /// IDB relation as of the previous iteration.
    Old,
    /// Facts derived exactly in the previous iteration.
    Delta,
}

type Index = HashMap<Vec<Const>, Vec<u32>>;

struct Evaluator<'a> {
    program: &'a Program,
    rules: Vec<CompiledRule>,
    edb: HashMap<Pred, Vec<Tuple>>,
    arity: HashMap<Pred, usize>,
    stats: EvalStats,
}

impl<'a> Evaluator<'a> {
    fn new(program: &'a Program, db: &Database) -> Self {
        let idbs = program.idb_predicates();
        let rules = program.rules.iter().map(|r| compile_rule(r, &idbs)).collect();
        let mut edb: HashMap<Pred, Vec<Tuple>> = HashMap::new();
        let mut arity: HashMap<Pred, usize> = HashMap::new();
        for (p, r) in db.iter() {
            edb.insert(p, r.iter().cloned().collect());
            arity.insert(p, r.arity());
        }
        for r in &program.rules {
            arity.entry(r.head.pred).or_insert_with(|| r.head.arity());
            for a in &r.body {
                arity.entry(a.pred).or_insert_with(|| a.arity());
            }
        }
        Self {
            program,
            rules,
            edb,
            arity,
            stats: EvalStats::default(),
        }
    }

    fn run(mut self, strategy: Strategy) -> EvalResult {
        let idbs = self.program.idb_predicates();
        let mut full: HashMap<Pred, Vec<Tuple>> = idbs.iter().map(|&p| (p, Vec::new())).collect();
        let mut full_set: HashMap<Pred, std::collections::HashSet<Tuple>> =
            idbs.iter().map(|&p| (p, Default::default())).collect();
        let mut old: HashMap<Pred, Vec<Tuple>> = full.clone();
        let mut delta: HashMap<Pred, Vec<Tuple>> = full.clone();

        let mut first = true;
        loop {
            self.stats.iterations += 1;
            let mut new: HashMap<Pred, Vec<Tuple>> = HashMap::new();
            let mut indexes: HashMap<(Pred, Source, Vec<usize>), Index> = HashMap::new();

            let rules = std::mem::take(&mut self.rules);
            for rule in &rules {
                match strategy {
                    Strategy::Naive => {
                        self.eval_rule(rule, None, &full, &old, &delta, &mut indexes, |pred, t| {
                            if !full_set[&pred].contains(&t) {
                                new.entry(pred).or_default().push(t);
                            }
                        });
                    }
                    _ => {
                        if rule.idb_positions.is_empty() {
                            if first {
                                self.eval_rule(
                                    rule,
                                    None,
                                    &full,
                                    &old,
                                    &delta,
                                    &mut indexes,
                                    |pred, t| {
                                        if !full_set[&pred].contains(&t) {
                                            new.entry(pred).or_default().push(t);
                                        }
                                    },
                                );
                            }
                        } else if !first {
                            for &d in &rule.idb_positions {
                                self.eval_rule(
                                    rule,
                                    Some(d),
                                    &full,
                                    &old,
                                    &delta,
                                    &mut indexes,
                                    |pred, t| {
                                        if !full_set[&pred].contains(&t) {
                                            new.entry(pred).or_default().push(t);
                                        }
                                    },
                                );
                            }
                        }
                    }
                }
            }
            self.rules = rules;

            // merge: old ← full; delta ← new; full ← full ∪ new
            let mut any = false;
            for (&p, f) in &full {
                old.insert(p, f.clone());
            }
            for (p, tuples) in new {
                let set = full_set.get_mut(&p).expect("idb pred");
                let mut added = Vec::new();
                for t in tuples {
                    if set.insert(t.clone()) {
                        added.push(t);
                    }
                }
                self.stats.tuples_derived += added.len() as u64;
                if !added.is_empty() {
                    any = true;
                }
                full.get_mut(&p).expect("idb pred").extend(added.iter().cloned());
                delta.insert(p, added);
            }
            // clear deltas of predicates that derived nothing this round
            // (old holds the pre-merge sizes)
            for &p in &idbs {
                if old[&p].len() == full[&p].len() {
                    delta.insert(p, Vec::new());
                }
            }
            if !any {
                break;
            }
            first = false;
        }

        let mut idb_db = Database::new();
        for (&p, tuples) in &full {
            let ar = *self.arity.get(&p).unwrap_or(&0);
            let rel = idb_db.relation_mut(p, ar);
            for t in tuples {
                rel.insert(t.clone());
            }
        }
        EvalResult {
            idb: idb_db,
            stats: self.stats,
        }
    }

    /// Evaluates one rule with an optional delta position, feeding head
    /// tuples to `emit`.
    #[allow(clippy::too_many_arguments)]
    fn eval_rule(
        &mut self,
        rule: &CompiledRule,
        delta_pos: Option<usize>,
        full: &HashMap<Pred, Vec<Tuple>>,
        old: &HashMap<Pred, Vec<Tuple>>,
        delta: &HashMap<Pred, Vec<Tuple>>,
        indexes: &mut HashMap<(Pred, Source, Vec<usize>), Index>,
        mut emit: impl FnMut(Pred, Tuple),
    ) {
        let ctx = JoinCtx {
            edb: &self.edb,
            full,
            old,
            delta,
            delta_pos,
        };
        let mut env: Vec<Option<Const>> = vec![None; rule.num_slots];
        let mut probes = 0u64;
        let mut firings = 0u64;
        descend(
            rule, 0, &mut env, &ctx, indexes, &mut probes, &mut firings, &mut emit,
        );
        self.stats.join_probes += probes;
        self.stats.rule_firings += firings;
    }
}

/// Borrowed snapshots for one rule-evaluation pass.
struct JoinCtx<'b> {
    edb: &'b HashMap<Pred, Vec<Tuple>>,
    full: &'b HashMap<Pred, Vec<Tuple>>,
    old: &'b HashMap<Pred, Vec<Tuple>>,
    delta: &'b HashMap<Pred, Vec<Tuple>>,
    delta_pos: Option<usize>,
}

impl<'b> JoinCtx<'b> {
    fn source_of(&self, pos: usize, atom: &CompiledAtom) -> Source {
        if !self.full.contains_key(&atom.pred) {
            Source::Edb
        } else {
            // "last delta occurrence" convention: positions before the
            // delta read the up-to-date full relation, positions after it
            // read the previous iteration's relation.
            match self.delta_pos {
                None => Source::Full,
                Some(d) if pos == d => Source::Delta,
                Some(d) if pos < d => Source::Full,
                Some(_) => Source::Old,
            }
        }
    }

    fn tuples_of(&self, src: Source, pred: Pred) -> &'b [Tuple] {
        let map = match src {
            Source::Edb => self.edb,
            Source::Full => self.full,
            Source::Old => self.old,
            Source::Delta => self.delta,
        };
        map.get(&pred).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Recursive backtracking join over the body atoms.
#[allow(clippy::too_many_arguments)]
fn descend(
    rule: &CompiledRule,
    pos: usize,
    env: &mut Vec<Option<Const>>,
    ctx: &JoinCtx<'_>,
    indexes: &mut HashMap<(Pred, Source, Vec<usize>), Index>,
    probes: &mut u64,
    firings: &mut u64,
    emit: &mut dyn FnMut(Pred, Tuple),
) {
    if pos == rule.body.len() {
        let t: Tuple = rule
            .head_pattern
            .iter()
            .map(|p| match p {
                Pat::Const(c) => *c,
                Pat::Slot(s) => env[*s].expect("safe rule binds head slots"),
            })
            .collect();
        *firings += 1;
        emit(rule.head_pred, t);
        return;
    }
    let atom = &rule.body[pos];
    let src = ctx.source_of(pos, atom);
    let tuples = ctx.tuples_of(src, atom.pred);
    // Build/fetch the hash index for this (pred, source, mask).
    let key = (atom.pred, src, atom.bound_positions.clone());
    let index = indexes.entry(key).or_insert_with(|| {
        let mut idx: Index = HashMap::new();
        for (ti, t) in tuples.iter().enumerate() {
            let k: Vec<Const> = atom.bound_positions.iter().map(|&i| t[i]).collect();
            idx.entry(k).or_default().push(ti as u32);
        }
        idx
    });
    let probe_key: Vec<Const> = atom
        .bound_positions
        .iter()
        .map(|&i| match atom.pattern[i] {
            Pat::Const(c) => c,
            Pat::Slot(s) => env[s].expect("bound slot"),
        })
        .collect();
    *probes += 1;
    let Some(matches) = index.get(&probe_key) else {
        return;
    };
    let matches = matches.clone();
    for ti in matches {
        let t = &tuples[ti as usize];
        // bind free slots; record which to unbind on backtrack
        let mut bound_here: Vec<usize> = Vec::new();
        let mut ok = true;
        for (i, pat) in atom.pattern.iter().enumerate() {
            match pat {
                Pat::Const(c) => {
                    if t[i] != *c {
                        ok = false;
                        break;
                    }
                }
                Pat::Slot(s) => match env[*s] {
                    Some(c) => {
                        if c != t[i] {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        env[*s] = Some(t[i]);
                        bound_here.push(*s);
                    }
                },
            }
        }
        if ok {
            descend(rule, pos + 1, env, ctx, indexes, probes, firings, emit);
        }
        for s in bound_here {
            env[s] = None;
        }
    }
}
