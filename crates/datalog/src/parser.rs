//! Parser for the Prolog-like surface syntax used throughout the paper.
//!
//! ```text
//! ?- anc(john, Y).
//! anc(X, Y) :- par(X, Y).
//! anc(X, Y) :- anc(X, Z), par(Z, Y).
//! ```
//!
//! Conventions (Prolog / paper notation): identifiers starting with an
//! uppercase letter or `_` are variables; everything else (identifiers
//! starting lowercase or digits) are constants. The goal line starts with
//! `?-` or `?` and may appear anywhere (first, in the paper's examples).

use crate::ast::{Atom, Program, Rule, Symbols, Term};

/// Parses a full program (rules + goal).
///
/// ```
/// use selprop_datalog::{parse_program, Database, answer, Strategy};
/// let mut p = parse_program(
///     "?- anc(ann, Y).\n\
///      anc(X, Y) :- par(X, Y).\n\
///      anc(X, Y) :- anc(X, Z), par(Z, Y).",
/// ).unwrap();
/// let par = p.symbols.get_predicate("par").unwrap();
/// let ann = p.symbols.get_constant("ann").unwrap();
/// let bob = p.symbols.constant("bob");
/// let mut db = Database::new();
/// db.insert(par, vec![ann, bob]);
/// let (ans, _) = answer(&p, &db, Strategy::SemiNaive);
/// assert_eq!(ans.len(), 1);
/// ```
pub fn parse_program(text: &str) -> Result<Program, String> {
    let mut symbols = Symbols::new();
    let mut rules = Vec::new();
    let mut goal: Option<Atom> = None;
    let mut p = Tokens::new(text);
    while !p.eof() {
        if p.try_consume("?-") || p.try_consume("?") {
            let atom = parse_atom(&mut p, &mut symbols)?;
            p.try_consume(".");
            if goal.is_some() {
                return Err("multiple goals".to_owned());
            }
            goal = Some(atom);
            continue;
        }
        let head = parse_atom(&mut p, &mut symbols)?;
        let mut body = Vec::new();
        if p.try_consume(":-") {
            loop {
                body.push(parse_atom(&mut p, &mut symbols)?);
                if !p.try_consume(",") {
                    break;
                }
            }
        }
        if !p.try_consume(".") {
            return Err(format!("expected '.' near position {}", p.pos));
        }
        rules.push(Rule::new(head, body));
    }
    let goal = goal.ok_or_else(|| "missing goal (start a line with `?-`)".to_owned())?;
    let program = Program {
        rules,
        goal,
        symbols,
    };
    program.validate()?;
    Ok(program)
}

/// Parses a single atom against existing symbol spaces (used by tests and
/// the query API to build goals programmatically from text).
pub fn parse_atom_str(text: &str, symbols: &mut Symbols) -> Result<Atom, String> {
    let mut p = Tokens::new(text);
    let atom = parse_atom(&mut p, symbols)?;
    p.skip_ws();
    if !p.eof() {
        return Err("trailing input after atom".to_owned());
    }
    Ok(atom)
}

fn parse_atom(p: &mut Tokens, symbols: &mut Symbols) -> Result<Atom, String> {
    let name = p
        .ident()
        .ok_or_else(|| format!("expected predicate name at position {}", p.pos))?;
    let pred = symbols.predicate(&name);
    let mut args = Vec::new();
    if p.try_consume("(") {
        loop {
            let tok = p
                .ident()
                .ok_or_else(|| format!("expected term at position {}", p.pos))?;
            // `ident()` never returns an empty token, but arbitrary input
            // must go through `Err`, not a panicking `expect`.
            let first = tok
                .chars()
                .next()
                .ok_or_else(|| format!("empty term at position {}", p.pos))?;
            let term = if first.is_uppercase() || first == '_' {
                Term::Var(symbols.variable(&tok))
            } else {
                Term::Const(symbols.constant(&tok))
            };
            args.push(term);
            if !p.try_consume(",") {
                break;
            }
        }
        if !p.try_consume(")") {
            return Err(format!("expected ')' at position {}", p.pos));
        }
    }
    Ok(Atom::new(pred, args))
}

struct Tokens {
    chars: Vec<char>,
    pos: usize,
}

impl Tokens {
    fn new(text: &str) -> Self {
        Self {
            chars: text.chars().collect(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
                self.pos += 1;
            }
            // comments: % or # to end of line
            if self.pos < self.chars.len() && (self.chars[self.pos] == '%' || self.chars[self.pos] == '#')
            {
                while self.pos < self.chars.len() && self.chars[self.pos] != '\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn eof(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.chars.len()
    }

    fn try_consume(&mut self, what: &str) -> bool {
        self.skip_ws();
        let w: Vec<char> = what.chars().collect();
        // `get` instead of indexing: a slice `self.chars[self.pos..]`
        // would panic if `pos` ever passed the end, and this must hold
        // for arbitrary (fuzzed) input, not just for inputs that keep
        // today's position invariant.
        if self.chars.get(self.pos..).is_some_and(|rest| rest.starts_with(&w)) {
            // avoid matching "?" as prefix of "?-": handled by caller order;
            // avoid matching ":" alone etc. — fixed token set keeps it simple.
            self.pos += w.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.chars.len()
            && (self.chars[self.pos].is_alphanumeric() || self.chars[self.pos] == '_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            None
        } else {
            Some(self.chars[start..self.pos].iter().collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_program_a() {
        // Program A from Example 1.1.
        let p = parse_program(
            "?- anc(john, Y).\n\
             anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- anc(X, Z), par(Z, Y).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.symbols.pred_name(p.goal.pred), "anc");
        assert!(matches!(p.goal.args[0], Term::Const(_)));
        assert!(matches!(p.goal.args[1], Term::Var(_)));
    }

    #[test]
    fn parse_program_d_monadic() {
        // Program D: the monadic rewrite.
        let p = parse_program(
            "?- ancjohn(Y).\n\
             ancjohn(Y) :- par(john, Y).\n\
             ancjohn(Y) :- ancjohn(Z), par(Z, Y).",
        )
        .unwrap();
        assert!(p.is_monadic());
        assert_eq!(p.rules.len(), 2);
    }

    #[test]
    fn comments_and_whitespace() {
        let p = parse_program(
            "% the goal\n?- q(X).\n# a rule\nq(X) :- e(X, Y).  % trailing\n",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn zero_ary_predicates() {
        let p = parse_program("?- yes.\nyes :- e(X, X).").unwrap();
        assert_eq!(p.goal.arity(), 0);
        assert!(p.is_monadic());
    }

    #[test]
    fn facts_allowed_when_ground() {
        let p = parse_program("?- q(X).\nq(a).\nq(X) :- e(X).").unwrap();
        assert_eq!(p.rules.len(), 2);
        assert!(p.rules[0].body.is_empty());
    }

    #[test]
    fn missing_goal_rejected() {
        assert!(parse_program("q(X) :- e(X).").is_err());
    }

    #[test]
    fn goal_must_be_idb() {
        assert!(parse_program("?- e(X).\nq(X) :- e(X).").is_err());
    }

    #[test]
    fn unsafe_program_rejected() {
        assert!(parse_program("?- q(X).\nq(X) :- e(Y).").is_err());
    }

    #[test]
    fn underscore_vars() {
        let p = parse_program("?- q(X).\nq(X) :- e(X, _Y).").unwrap();
        let rule = &p.rules[0];
        assert_eq!(rule.body[0].vars().count(), 2);
    }

    #[test]
    fn parse_atom_helper() {
        let mut sy = Symbols::new();
        let a = parse_atom_str("anc(john, Y)", &mut sy).unwrap();
        assert_eq!(a.arity(), 2);
        assert!(parse_atom_str("anc(john", &mut sy).is_err());
    }

    mod fuzz {
        //! `parse_program` must return `Err`, never panic, on arbitrary
        //! input. Three generators: raw byte soup (lossily decoded, so
        //! invalid UTF-8 becomes replacement characters), soup built
        //! from the parser's own token vocabulary (reaches deep states
        //! that random bytes rarely hit), and mutated valid programs
        //! (near-misses around every position).

        use super::*;
        use proptest::prelude::*;

        /// Tokens of the surface syntax plus adversarial near-tokens.
        const TOKENS: &[&str] = &[
            "?-", "?", ":-", ":", "-", ".", ",", "(", ")", "anc", "par", "X", "Y", "_",
            "_Y", "john", "q", "e", "%", "# c\n", "\n", " ", "\t", "0", "12", "α", "Ω",
            "?.", "()", "((", "))", ".." ,
        ];

        /// A valid program that mutations start from.
        const SEED: &str = "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).";

        fn never_panics(text: &str) {
            // Both entry points: whole programs and single atoms.
            let _ = parse_program(text);
            let mut sy = Symbols::new();
            let _ = parse_atom_str(text, &mut sy);
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(500))]

            #[test]
            fn random_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..120)) {
                never_panics(&String::from_utf8_lossy(&bytes));
            }

            #[test]
            fn token_soup_never_panics(picks in proptest::collection::vec(0usize..TOKENS.len(), 0..60)) {
                let text: String = picks.iter().map(|&i| TOKENS[i]).collect();
                never_panics(&text);
            }

            #[test]
            fn mutated_valid_programs_never_panic(
                cut in 0usize..SEED.len(),
                insert in 0usize..TOKENS.len(),
                drop_len in 0usize..8,
            ) {
                // Splice a token into (or over) a char boundary of a valid
                // program: the classic near-miss neighborhood.
                let cut = (0..=cut).rev().find(|&i| SEED.is_char_boundary(i)).unwrap_or(0);
                let end = (cut + drop_len).min(SEED.len());
                let end = (end..=SEED.len()).find(|&i| SEED.is_char_boundary(i)).unwrap_or(SEED.len());
                let text = format!("{}{}{}", &SEED[..cut], TOKENS[insert], &SEED[end..]);
                never_panics(&text);
            }
        }
    }
}
