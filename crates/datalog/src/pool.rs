//! A small scoped thread pool for the parallel evaluator.
//!
//! No external dependencies (mirroring the vendored-stand-in discipline
//! of this workspace): workers are plain [`std::thread`]s, the injector
//! is a [`Mutex`]ed deque, and completion is signalled through a
//! [`Condvar`]. The pool is deliberately minimal — exactly the surface
//! the sharded semi-naive evaluator needs:
//!
//! - [`ThreadPool::new`] spawns `threads` long-lived workers once per
//!   evaluation (not per iteration, and not per rule);
//! - [`ThreadPool::scope`] submits **borrowing** jobs — closures that
//!   capture `&`/`&mut` references into the caller's stack — and blocks
//!   until every job submitted in the scope has finished, so the borrows
//!   are provably dead before the scope returns (the same guarantee as
//!   [`std::thread::scope`], amortized over a persistent pool);
//! - a job that panics is caught on the worker (the worker survives and
//!   keeps serving jobs); the panic is re-raised on the scope owner when
//!   the scope closes, so failures propagate to exactly one place.
//!
//! Dropping the pool shuts the workers down and joins them; a pool that
//! saw panicking jobs still drops cleanly (shutdown-on-panic).
//!
//! The pool is owned and driven by one thread (the evaluator's). Scopes
//! are sequential: concurrent `scope` calls from multiple threads on one
//! pool would wait on each other's jobs and are not supported.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A type-erased job. Jobs enter the queue with their true (scoped)
/// lifetime erased to `'static`; the scope protocol guarantees they run
/// and finish before the borrowed data goes away.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool owner and the workers.
struct Shared {
    state: Mutex<State>,
    /// Signalled when a job is queued or shutdown begins.
    job_ready: Condvar,
    /// Signalled when the pool drains (queue empty, nothing running).
    drained: Condvar,
}

struct State {
    queue: VecDeque<Job>,
    /// Jobs currently executing on workers.
    running: usize,
    /// The first panic payload caught since the last scope closed — kept
    /// whole so the scope re-raises the *original* panic (message, file,
    /// line), not a generic summary.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

impl Shared {
    /// Blocks until the queue is empty and no job is running; returns
    /// (and clears) the first caught panic payload, if any.
    fn wait_drained(&self) -> Option<Box<dyn std::any::Any + Send>> {
        let mut st = self.state.lock().unwrap();
        while !(st.queue.is_empty() && st.running == 0) {
            st = self.drained.wait(st).unwrap();
        }
        st.panic.take()
    }
}

/// A fixed-size pool of worker threads executing scoped jobs.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers (`threads >= 1`).
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a pool needs at least one worker");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                running: 0,
                panic: None,
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            drained: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("selprop-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs `f` with a [`Scope`] handle for submitting borrowing jobs,
    /// then blocks until every submitted job has completed. If any job
    /// panicked (or `f` itself did), the panic is re-raised here — after
    /// the drain, so borrowed data is never freed under a live job.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let scope = Scope {
            pool: self,
            _env: PhantomData,
        };
        // Drain even if `f` panics mid-submission: jobs it already queued
        // borrow from the caller's frame, which unwinding would free.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        let job_panic = self.shared.wait_drained();
        match (result, job_panic) {
            // The scope body's own panic wins (it came first).
            (Err(payload), _) => resume_unwind(payload),
            // Re-raise a job's panic with its original payload.
            (Ok(_), Some(payload)) => resume_unwind(payload),
            (Ok(r), None) => r,
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.job_ready.notify_all();
        for w in self.workers.drain(..) {
            // Workers catch job panics, so joins are clean even after a
            // panicking scope (shutdown-on-panic).
            let _ = w.join();
        }
    }
}

/// Job-submission handle passed to the closure of [`ThreadPool::scope`].
/// `'env` is the lifetime of the data jobs may borrow.
pub struct Scope<'pool, 'env> {
    pool: &'pool ThreadPool,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Queues a job. The job may borrow anything that outlives `'env`;
    /// the enclosing [`ThreadPool::scope`] call does not return until the
    /// job has finished.
    pub fn execute<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: `scope` drains the pool before returning (on both the
        // normal and the panic path), so this job — and the `'env`
        // borrows it captures — cannot outlive the data it points into.
        // The transmute only erases the lifetime bound of the trait
        // object; vtable and layout are unchanged.
        let job: Job = unsafe { std::mem::transmute(job) };
        {
            let mut st = self.pool.shared.state.lock().unwrap();
            st.queue.push_back(job);
        }
        self.pool.shared.job_ready.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    st.running += 1;
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = shared.job_ready.wait(st).unwrap();
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(job));
        let mut st = shared.state.lock().unwrap();
        st.running -= 1;
        if let Err(payload) = outcome {
            // Keep the first payload; later ones are dropped (one panic
            // per scope is re-raised, matching std::thread::scope).
            st.panic.get_or_insert(payload);
        }
        if st.queue.is_empty() && st.running == 0 {
            shared.drained.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_and_scope_waits() {
        let pool = ThreadPool::new(4);
        let sum = AtomicUsize::new(0);
        pool.scope(|s| {
            for i in 1..=100 {
                let sum = &sum;
                s.execute(move || {
                    sum.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        // scope returned => every job completed
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn jobs_borrow_disjoint_mutable_slices() {
        let pool = ThreadPool::new(3);
        let mut data = vec![0usize; 12];
        pool.scope(|s| {
            for (i, chunk) in data.chunks_mut(4).enumerate() {
                s.execute(move || {
                    for (j, x) in chunk.iter_mut().enumerate() {
                        *x = i * 4 + j;
                    }
                });
            }
        });
        assert_eq!(data, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn zero_work_scope_returns_immediately() {
        let pool = ThreadPool::new(2);
        // Many empty scopes: the per-iteration shape of a fixpoint whose
        // rules produced nothing — must not deadlock or leak.
        for _ in 0..100 {
            let r = pool.scope(|_| 42);
            assert_eq!(r, 42);
        }
    }

    #[test]
    fn single_thread_pool_executes_everything() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut results = vec![0u64; 8];
        pool.scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                s.execute(move || *slot = (i as u64) * 2);
            }
        });
        assert_eq!(results, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn panicking_job_propagates_to_scope_and_pool_survives() {
        let pool = ThreadPool::new(2);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.execute(|| panic!("job boom"));
                s.execute(|| { /* healthy job, must still run */ });
            });
        }));
        let payload = outcome.expect_err("scope must re-raise the job panic");
        // ...with the job's original payload, not a generic summary.
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"job boom"));
        // Workers caught the panic: the pool keeps serving jobs...
        let ok = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..10 {
                let ok = &ok;
                s.execute(move || {
                    ok.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(ok.load(Ordering::Relaxed), 10);
        // ...and Drop joins cleanly (shutdown-on-panic).
        drop(pool);
    }

    #[test]
    fn panic_in_scope_body_still_drains_queued_jobs() {
        let pool = ThreadPool::new(2);
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                let ran = Arc::clone(&ran2);
                s.execute(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
                panic!("scope body boom");
            });
        }));
        assert!(outcome.is_err());
        // The queued job borrowingly captured `ran`; scope drained it
        // before unwinding past the owning frame.
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn sequential_scopes_reuse_workers() {
        let pool = ThreadPool::new(2);
        for round in 0..50 {
            let count = AtomicUsize::new(0);
            pool.scope(|s| {
                for _ in 0..4 {
                    let count = &count;
                    s.execute(move || {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(count.load(Ordering::Relaxed), 4, "round {round}");
        }
    }
}
