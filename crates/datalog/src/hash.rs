//! A fast, non-cryptographic hasher for the evaluator's hot paths.
//!
//! The fixpoint engine hashes millions of tiny keys — single interned
//! `u32` ids and short id sequences — per evaluation. SipHash (the
//! `std` default) burns most of its time in per-key setup for inputs
//! this small, so the storage layer uses an FxHash-style multiply-xor
//! hasher instead (the scheme rustc itself uses for interned ids). The
//! build environment has no crates.io access, hence this in-tree copy.
//!
//! Not DoS-resistant — only ever fed interned ids, never untrusted
//! input.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from FxHash (a.k.a. FireflyHash): a random-ish odd
/// constant with good bit dispersion under wrapping multiplication.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style streaming hasher: `state = (state rotl 5 ^ word) * SEED`
/// per ingested word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    /// Folds one 64-bit word into the state.
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// Hashes a sequence of interned ids (the storage layer's row and key
/// hashing primitive).
#[inline]
pub fn hash_ids(ids: impl IntoIterator<Item = u32>) -> u64 {
    let mut h = FxHasher::default();
    let mut len = 0u64;
    for id in ids {
        h.write_u32(id);
        len += 1;
    }
    // Fold the length in: leading zero ids leave the state at 0, so
    // without it `[]`, `[0]`, `[0, 0]` would all collide.
    h.write_u64(len);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sensitive() {
        assert_eq!(hash_ids([1, 2, 3]), hash_ids([1, 2, 3]));
        assert_ne!(hash_ids([1, 2, 3]), hash_ids([3, 2, 1]));
        assert_ne!(hash_ids([0]), hash_ids([]));
        assert_ne!(hash_ids([1]), hash_ids([1, 1]));
    }

    #[test]
    fn map_alias_works() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
    }

    #[test]
    fn spreads_low_bits() {
        // Open-addressing tables index by the hash's low bits; sequential
        // ids must not collapse onto a few buckets.
        let mask = 0xff;
        let mut seen: std::collections::HashSet<u64> = Default::default();
        for i in 0..256u32 {
            seen.insert(hash_ids([i]) & mask);
        }
        assert!(seen.len() > 128, "only {} distinct low bytes", seen.len());
    }
}
