//! The magic-set query cache: selection propagation as a service.
//!
//! The paper's transformation (see [`crate::magic`]) makes a *bound*
//! query — `anc(john, Y)?` — cheap by deriving only goal-relevant
//! facts, but as a batch rewrite it pays a full evaluation per call.
//! This module keeps the transformed programs **live**: a
//! [`QueryCache`] holds small magic-template [`Materialization`]s
//! ("views"), keyed by `(predicate, binding pattern, bound constants)`,
//! that share the base store's EDB rows (see the shared-EDB section of
//! [`crate::materialize`]) and are caught up incrementally — magic and
//! adorned predicates are just more IDB relations, so the engine's
//! DRed + semi-naive resume propagates base churn into every view
//! unchanged.
//!
//! Routing: an all-free goal, a goal on an EDB (or untracked)
//! predicate, and a goal whose bound positions are repeated variables
//! (`p(X, X)`) go **direct** — filtered off the base store's full
//! model, which the base maintains anyway. Everything else gets a view.
//! Answers are therefore always exact; the cache only changes *cost*.
//!
//! Coherence: every [`Materialization::apply`] bumps the base's
//! update-round `version`. A view answers from cache only while its
//! synced version matches; otherwise the next query (or the serving
//! layer's write round) runs one catch-up sync. Base compactions and
//! restores remap or forget row ids that views' justifications and
//! index links reference, so they clear the views (templates survive a
//! compaction — they hold no row ids); an unannounced rule change
//! disables the cache entirely (every query then routes direct, which
//! is always correct).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::ast::{Atom, Const, Pred, Program, Rule, Term};
use crate::db::{Relation, Tuple};
use crate::hash::FxHashMap;
use crate::magic::{goal_adornment, magic_template, render_adornment, Adornment};
use crate::materialize::{ExtLinks, Materialization, RuleId};

/// Eviction configuration for [`QueryCache`].
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Maximum number of live views; least-recently-used views beyond
    /// this are dropped.
    pub max_views: usize,
    /// Maximum total stored rows across all views (each view's own
    /// derived + magic rows; shared base rows don't count). The
    /// most-recently-used view always survives, even alone over budget.
    pub max_rows: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            max_views: 64,
            max_rows: 1 << 22,
        }
    }
}

/// Observability counters for [`QueryCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from an up-to-date view with no work.
    pub hits: u64,
    /// Queries that built a new view.
    pub misses: u64,
    /// Queries that found their view but ran a catch-up sync first.
    pub syncs: u64,
    /// Queries routed to base-store filtering (all-free patterns, EDB
    /// predicates, repeated-variable bindings, or a disabled cache).
    pub direct: u64,
    /// Views dropped by LRU/size pressure or dead-row rebuilds.
    pub evictions: u64,
    /// Times base-store shape changes (compaction, restore, unannounced
    /// rule changes) cleared the live views.
    pub invalidations: u64,
    /// Magic templates compiled — one per (predicate, binding pattern),
    /// however many constant vectors instantiate it (the memoization
    /// guarantee).
    pub template_compiles: u64,
    /// Live views right now.
    pub views: usize,
}

/// A view key: predicate, rendered binding pattern, bound constants in
/// positional order.
pub(crate) type ViewKey = (Pred, String, Vec<Const>);

/// What a [`Snapshot`](crate::server::Snapshot) needs to keep answering
/// from a pinned view: its key, its instance (rebuilt views get a new
/// one, so stale pins fall back to base filtering), and its per-relation
/// row frontier at pin time.
pub(crate) type ViewPin = (ViewKey, u64, Vec<usize>);

/// A compiled magic template for one (predicate, binding pattern):
/// clone the prototype, insert one seed row, and you have a view.
struct Template {
    prototype: Materialization,
    links: ExtLinks,
    goal_pred: Pred,
    seed_pred: Pred,
}

/// One live view: a magic materialization at fixpoint for one concrete
/// bound query.
struct CachedView {
    mat: Materialization,
    links: ExtLinks,
    /// Monotone id; a rebuilt view under the same key gets a fresh one.
    instance: u64,
    /// `base.version()` this view last synced at.
    synced_version: u64,
    /// `base.edb_retracts()` at last sync — unchanged means the next
    /// sync can skip the delete-rederive scan.
    synced_retracts: u64,
    /// LRU stamp (atomic so read-path hits can touch it).
    last_used: AtomicU64,
}

enum Route {
    Direct,
    View(Pred, Adornment, Vec<Const>),
}

/// An incrementally-maintained magic-set query cache over one base
/// [`Materialization`]. See the module docs for semantics; see
/// [`crate::server::Server::query`] for the concurrent serving wrapper.
///
/// A cache is bound to the base store it first queried: using it
/// against a different store is a logic error (detected only when the
/// stores' shapes diverge).
pub struct QueryCache {
    /// The base store's program mirror (rules in slot order, dropped
    /// ones included). `None` = disabled: every query routes direct.
    program: Option<Program>,
    /// Mirror of the base's rule-slot activity, for detecting rule
    /// changes that didn't come through [`QueryCache::note_rule_added`] /
    /// [`QueryCache::note_rule_dropped`].
    active_mirror: Vec<bool>,
    /// One template per (predicate, rendered adornment); `None` caches
    /// "this pattern has no usable template" (e.g. transform failure).
    templates: FxHashMap<(Pred, String), Option<Template>>,
    views: FxHashMap<ViewKey, CachedView>,
    config: CacheConfig,
    seen_version: u64,
    seen_compactions: u64,
    next_instance: u64,
    clock: AtomicU64,
    hits: AtomicU64,
    direct: AtomicU64,
    misses: u64,
    syncs: u64,
    evictions: u64,
    invalidations: u64,
    template_compiles: u64,
}

impl QueryCache {
    /// A cache for a base store materializing `program`, with default
    /// eviction limits.
    pub fn new(program: &Program) -> Self {
        Self::with_config(program, CacheConfig::default())
    }

    /// A cache with explicit eviction limits.
    pub fn with_config(program: &Program, config: CacheConfig) -> Self {
        Self {
            active_mirror: vec![true; program.rules.len()],
            program: Some(program.clone()),
            templates: FxHashMap::default(),
            views: FxHashMap::default(),
            config,
            seen_version: 0,
            seen_compactions: 0,
            next_instance: 0,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            direct: AtomicU64::new(0),
            misses: 0,
            syncs: 0,
            evictions: 0,
            invalidations: 0,
            template_compiles: 0,
        }
    }

    /// A permanently-direct cache, for base stores whose program is not
    /// known (e.g. restored from a snapshot, which persists rules but
    /// not the full symbol table semantics the transform needs). Every
    /// query filters the base model — correct, never cached.
    pub fn disabled() -> Self {
        let empty = Program {
            rules: Vec::new(),
            goal: Atom::new(Pred(0), Vec::new()),
            symbols: crate::ast::Symbols::new(),
        };
        let mut c = Self::with_config(&empty, CacheConfig::default());
        c.program = None;
        c
    }

    /// Whether queries can be cached at all (`false` after
    /// [`QueryCache::disabled`] or an unannounced rule change).
    pub fn is_enabled(&self) -> bool {
        self.program.is_some()
    }

    /// Current counters (see [`CacheStats`]).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses,
            syncs: self.syncs,
            direct: self.direct.load(Ordering::Relaxed),
            evictions: self.evictions,
            invalidations: self.invalidations,
            template_compiles: self.template_compiles,
            views: self.views.len(),
        }
    }

    /// Replaces the eviction limits (enforced from the next query on).
    pub fn set_config(&mut self, config: CacheConfig) {
        self.config = config;
    }

    /// Total stored rows across all views — the resident footprint the
    /// `max_rows` limit bounds.
    pub fn view_rows(&self) -> usize {
        self.views.values().map(|v| v.mat.mem_stats().total_rows).sum()
    }

    /// Total words held by the views (tuples, indexes, justifications);
    /// base rows are shared, not copied, so this is the cache's real
    /// resident cost.
    pub fn view_words(&self) -> usize {
        self.views.values().map(|v| v.mat.mem_stats().total_words()).sum()
    }

    /// Answers `goal` against `base`, through a view when the goal has
    /// usable bindings (building or catching the view up as needed),
    /// directly off the base model otherwise.
    pub fn query(&mut self, base: &mut Materialization, goal: &Atom) -> Relation {
        self.validate(base);
        match self.route(goal) {
            Route::Direct => {
                self.direct.fetch_add(1, Ordering::Relaxed);
                base.answer_goal(goal)
            }
            Route::View(pred, adn, consts) => {
                let key: ViewKey = (pred, render_adornment(&adn), consts);
                if self.ensure_view(base, goal, &key, &adn).is_none() {
                    self.direct.fetch_add(1, Ordering::Relaxed);
                    return base.answer_goal(goal);
                }
                // Answer before evicting: under `max_views: 0` even the
                // view just built is dropped again.
                let answer = self.views[&key].mat.answer();
                self.evict();
                answer
            }
        }
    }

    /// The read-only fast path: answers without touching the base — a
    /// direct route, or a view that is already synced to the base's
    /// current version. Returns `None` when the slow path
    /// ([`QueryCache::query`], which may build or sync) is needed.
    pub fn lookup(&self, base: &Materialization, goal: &Atom) -> Option<Relation> {
        match self.route(goal) {
            Route::Direct => {
                self.direct.fetch_add(1, Ordering::Relaxed);
                Some(base.answer_goal(goal))
            }
            Route::View(pred, adn, consts) => {
                // A version that went backwards means a different store
                // (e.g. restored); hand off to the slow path's validate.
                if base.version() < self.seen_version {
                    return None;
                }
                let key: ViewKey = (pred, render_adornment(&adn), consts);
                let v = self.views.get(&key)?;
                if v.synced_version != base.version() {
                    return None;
                }
                v.last_used
                    .store(self.clock.fetch_add(1, Ordering::Relaxed) + 1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v.mat.answer())
            }
        }
    }

    /// Catches every live view up with the base — the serving layer
    /// calls this inside each write round (after the base reached its
    /// new fixpoint, before the round's epoch is published), so a pinned
    /// epoch always sees base facts and cached answers from the same
    /// fixpoint. `epoch` tags view tombstones for pinned readers (0 =
    /// epoch mode off). Dead-heavy views are dropped instead of synced
    /// (views never compact — their justifications hold base row ids —
    /// so a rebuild on next use is the bounded-memory path).
    pub(crate) fn sync_all(&mut self, base: &mut Materialization, epoch: u64) {
        self.validate(base);
        let keys: Vec<ViewKey> = self.views.keys().cloned().collect();
        for key in keys {
            let v = self.views.get_mut(&key).expect("just listed");
            let (live, total) = v.mat.own_rows();
            if total > 512 && live * 2 < total {
                self.views.remove(&key);
                self.evictions += 1;
                continue;
            }
            if epoch > 0 {
                v.mat.set_epoch(epoch);
            }
            if v.synced_version != base.version() {
                let check = v.synced_retracts != base.edb_retracts();
                v.mat.swap_external(base, &v.links);
                v.mat.sync_external(check);
                v.mat.swap_external(base, &v.links);
                v.synced_version = base.version();
                v.synced_retracts = base.edb_retracts();
                self.syncs += 1;
            }
        }
    }

    /// Forwards epoch reclamation to every view (the serving layer's
    /// last-unpin drain).
    pub(crate) fn reclaim_epochs(&mut self, min_epoch: u64) {
        for v in self.views.values_mut() {
            v.mat.reclaim_epochs(min_epoch);
        }
    }

    /// The pin set a snapshot captures: every live view's key, instance
    /// and row frontier.
    pub(crate) fn view_pins(&self) -> Vec<ViewPin> {
        self.views
            .iter()
            .map(|(k, v)| (k.clone(), v.instance, v.mat.frontiers()))
            .collect()
    }

    /// Answers `goal` as of a pinned snapshot: from the pinned view if
    /// it is still the same instance, else by filtering the base store
    /// at its pinned frontier (same fixpoint, so identical answers).
    pub(crate) fn answer_pinned(
        &self,
        base: &Materialization,
        goal: &Atom,
        pins: &[ViewPin],
        base_frontier: &[usize],
        epoch: u64,
    ) -> Relation {
        if let Route::View(pred, adn, consts) = self.route(goal) {
            let key: ViewKey = (pred, render_adornment(&adn), consts);
            if let Some((_, instance, frontier)) = pins.iter().find(|(k, _, _)| *k == key) {
                if let Some(v) = self.views.get(&key) {
                    if v.instance == *instance {
                        return v.mat.answer_at(frontier, epoch);
                    }
                }
            }
        }
        base.answer_goal_at(goal, base_frontier, epoch)
    }

    /// Tells the cache a rule was added to the base store. The mirror
    /// program grows so future templates see it; existing templates and
    /// views are built for the old program and are cleared.
    pub fn note_rule_added(&mut self, rule: &Rule) {
        let Some(p) = &mut self.program else {
            return;
        };
        // Pred ids in `rule` come from the caller's symbol table, which
        // extends the one the mirror was built with; pad the mirror's
        // table so rendering and adornment stay in range (the placeholder
        // names only show up in generated predicate names).
        let max_id = std::iter::once(rule.head.pred)
            .chain(rule.body.iter().map(|a| a.pred))
            .map(|p| p.0 as usize)
            .max()
            .unwrap_or(0);
        while p.symbols.num_predicates() <= max_id {
            p.symbols.fresh_predicate("q");
        }
        p.rules.push(rule.clone());
        self.active_mirror.push(true);
        self.clear_views(true);
    }

    /// Tells the cache a rule was dropped from the base store.
    pub fn note_rule_dropped(&mut self, id: RuleId) {
        if self.program.is_none() {
            return;
        }
        let i = id.0 as usize;
        if i < self.active_mirror.len() && self.active_mirror[i] {
            self.active_mirror[i] = false;
            self.clear_views(true);
        }
    }

    // -----------------------------------------------------------------
    // Internals
    // -----------------------------------------------------------------

    /// Reconciles cached state with the base store's observable shape.
    /// Tiers: an unannounced rule change disables the cache outright; a
    /// version that went *backwards* means a different (e.g. restored)
    /// store whose row ids and index slots we never saw — clear
    /// everything; a compaction remapped base row ids that view
    /// justifications and links reference — clear views, keep templates
    /// (prototypes are empty: no row ids, and the base index slots they
    /// link to survive compaction).
    fn validate(&mut self, base: &Materialization) {
        if self.program.is_some() {
            let slots = self.active_mirror.len();
            let slots_ok = base.num_rule_slots() == slots
                && (0..slots).all(|i| base.is_rule_active(RuleId(i as u32)) == self.active_mirror[i]);
            if !slots_ok {
                self.program = None;
                self.clear_views(true);
            } else if base.version() < self.seen_version {
                self.clear_views(true);
            } else if base.compactions() != self.seen_compactions {
                self.clear_views(false);
            }
        }
        self.seen_version = base.version();
        self.seen_compactions = base.compactions();
    }

    fn clear_views(&mut self, templates_too: bool) {
        if !self.views.is_empty() || (templates_too && !self.templates.is_empty()) {
            self.invalidations += 1;
        }
        self.views.clear();
        if templates_too {
            self.templates.clear();
        }
    }

    /// Classifies a goal. Only IDB goals with at least one bound
    /// position, all of whose bound positions are constants, get views;
    /// everything else — EDB/untracked predicates, all-free patterns,
    /// repeated-variable bindings (their seed would need domain
    /// enumeration), disabled cache — filters the base model directly.
    fn route(&self, goal: &Atom) -> Route {
        let Some(p) = &self.program else {
            return Route::Direct;
        };
        if !p.is_idb(goal.pred) {
            return Route::Direct;
        }
        let adn = goal_adornment(goal);
        if !adn.iter().any(|&b| b) {
            return Route::Direct;
        }
        let mut consts = Vec::new();
        for (i, t) in goal.args.iter().enumerate() {
            if adn[i] {
                match t {
                    Term::Const(c) => consts.push(*c),
                    Term::Var(_) => return Route::Direct,
                }
            }
        }
        Route::View(goal.pred, adn, consts)
    }

    /// Makes sure an up-to-date view exists under `key`; `None` means
    /// the pattern has no usable template and the caller must go direct.
    fn ensure_view(
        &mut self,
        base: &mut Materialization,
        goal: &Atom,
        key: &ViewKey,
        adn: &Adornment,
    ) -> Option<()> {
        if let Some(v) = self.views.get_mut(key) {
            if v.synced_version != base.version() {
                let check = v.synced_retracts != base.edb_retracts();
                v.mat.swap_external(base, &v.links);
                v.mat.sync_external(check);
                v.mat.swap_external(base, &v.links);
                v.synced_version = base.version();
                v.synced_retracts = base.edb_retracts();
                self.syncs += 1;
            } else {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
            v.last_used
                .store(self.clock.fetch_add(1, Ordering::Relaxed) + 1, Ordering::Relaxed);
            return Some(());
        }

        let tkey = (key.0, key.1.clone());
        if !self.templates.contains_key(&tkey) {
            let t = self.build_template(goal.pred, adn, base);
            if t.is_some() {
                self.template_compiles += 1;
            }
            self.templates.insert(tkey.clone(), t);
        }
        // Instantiate: clone the prototype, point its goal at the
        // concrete query, seed the bound constants, run to fixpoint with
        // the base swapped in.
        let t = self.templates.get(&tkey)?.as_ref()?;
        let mut mat = t.prototype.clone();
        mat.set_goal(Atom::new(t.goal_pred, goal.args.clone()));
        if base.epoch() > 0 {
            mat.set_epoch(base.epoch());
        }
        let seed: Tuple = key.2.clone();
        let links = t.links.clone();
        let seed_pred = t.seed_pred;
        mat.swap_external(base, &links);
        mat.insert_facts(seed_pred, std::slice::from_ref(&seed));
        mat.swap_external(base, &links);
        let view = CachedView {
            mat,
            links,
            instance: self.next_instance,
            synced_version: base.version(),
            synced_retracts: base.edb_retracts(),
            last_used: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed) + 1),
        };
        self.next_instance += 1;
        self.misses += 1;
        self.views.insert(key.clone(), view);
        Some(())
    }

    /// Compiles the magic template for one (predicate, adornment) — the
    /// memoized unit. The template program uses only the mirror's
    /// *active* rules, so dropped rules stop contributing the moment the
    /// drop is noted.
    fn build_template(
        &mut self,
        pred: Pred,
        adn: &Adornment,
        base: &mut Materialization,
    ) -> Option<Template> {
        let p = self.program.as_ref()?;
        let active = Program {
            rules: p
                .rules
                .iter()
                .enumerate()
                .filter(|&(i, _)| self.active_mirror.get(i).copied().unwrap_or(true))
                .map(|(_, r)| r.clone())
                .collect(),
            goal: p.goal.clone(),
            symbols: p.symbols.clone(),
        };
        let tpl = magic_template(&active, pred, adn).ok()?;
        let mut prototype = Materialization::new_view(&tpl.program, base.planner_config());
        let links = prototype.link_external(base).ok()?;
        Some(Template {
            prototype,
            links,
            goal_pred: tpl.goal_pred,
            seed_pred: tpl.seed_pred,
        })
    }

    /// LRU/size eviction; the most-recently-used view always survives.
    fn evict(&mut self) {
        while self.views.len() > 1
            && (self.views.len() > self.config.max_views || self.view_rows() > self.config.max_rows)
        {
            let key = self
                .views
                .iter()
                .min_by_key(|(_, v)| v.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
                .expect("non-empty");
            self.views.remove(&key);
            self.evictions += 1;
        }
        if self.views.len() > self.config.max_views {
            // max_views == 0: even the freshest view must go.
            self.views.clear();
            self.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Program;
    use crate::db::Database;
    use crate::eval::Strategy;
    use crate::magic::magic_transform;
    use crate::parser::parse_program;

    const SRC: &str = "?- anc(john, Y).\n\
                       anc(X, Y) :- par(X, Y).\n\
                       anc(X, Y) :- anc(X, Z), par(Z, Y).";

    fn chain(p: &mut Program, n: usize) -> Vec<Tuple> {
        let mut prev = p.symbols.constant("john");
        (1..=n)
            .map(|i| {
                let c = p.symbols.constant(&format!("c{i}"));
                let t = vec![prev, c];
                prev = c;
                t
            })
            .collect()
    }

    /// The from-scratch reference: magic-transform the concretely-bound
    /// goal against the current EDB and batch-evaluate.
    fn oracle(p: &Program, goal: &Atom, edb: &Database) -> Vec<Tuple> {
        let mut pg = p.clone();
        pg.goal = goal.clone();
        let m = magic_transform(&pg).expect("transformable");
        let (ans, _) = crate::eval::answer(&m.program, edb, Strategy::SemiNaive);
        ans.sorted()
    }

    #[test]
    fn cached_answers_match_the_batch_magic_oracle_through_churn() {
        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain(&mut p, 16);
        let mut edb = Database::new();
        let mut base = Materialization::from_database(&p, &edb, Strategy::SemiNaive);
        // No auto-compaction: this test asserts the view is *maintained*
        // across every step, never cleared and rebuilt.
        base.set_compaction_policy(None);
        let mut cache = QueryCache::new(&p);
        let goal = p.goal.clone();

        // Interleave inserts, retracts and queries; at every query the
        // live view must agree with a from-scratch transform of the
        // current EDB (and the read path must agree with the write
        // path).
        let script: &[(&str, std::ops::Range<usize>)] = &[
            ("ins", 0..6),
            ("q", 0..0),
            ("ins", 6..12),
            ("q", 0..0),
            ("ret", 3..4),
            ("q", 0..0),
            ("ins", 3..4),
            ("ret", 0..2),
            ("q", 0..0),
            ("ins", 0..2),
            ("ins", 12..16),
            ("ret", 8..10),
            ("q", 0..0),
        ];
        for (op, r) in script {
            match *op {
                "ins" => {
                    base.insert_facts(par, &edges[r.clone()]);
                    for e in &edges[r.clone()] {
                        edb.insert(par, e.clone());
                    }
                }
                "ret" => {
                    base.retract_facts(par, &edges[r.clone()]);
                    for e in &edges[r.clone()] {
                        edb.remove(par, e);
                    }
                }
                _ => {
                    let got = cache.query(&mut base, &goal).sorted();
                    assert_eq!(got, oracle(&p, &goal, &edb));
                    assert_eq!(
                        cache.lookup(&base, &goal).expect("synced").sorted(),
                        got,
                        "read path agrees with write path"
                    );
                }
            }
        }
        let s = cache.stats();
        assert_eq!(s.misses, 1, "one view, maintained — never rebuilt");
        assert!(s.syncs >= 3, "queries after churn caught the view up");
        assert_eq!(s.invalidations, 0);
    }

    #[test]
    fn one_template_compile_per_binding_pattern() {
        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let anc = p.symbols.get_predicate("anc").unwrap();
        let edges = chain(&mut p, 8);
        let y = p.symbols.variable("Y");
        let x = p.symbols.variable("X");
        let mut edb = Database::new();
        for e in &edges {
            edb.insert(par, e.clone());
        }
        let mut base = Materialization::from_database(&p, &edb, Strategy::SemiNaive);
        let mut cache = QueryCache::new(&p);

        // Five constant vectors under the bf pattern: one compile.
        for name in ["john", "c1", "c2", "c3", "c4"] {
            let c = p.symbols.constant(name);
            let goal = Atom::new(anc, vec![Term::Const(c), Term::Var(y)]);
            assert_eq!(
                cache.query(&mut base, &goal).sorted(),
                oracle(&p, &goal, &edb)
            );
        }
        let s = cache.stats();
        assert_eq!(s.template_compiles, 1, "bf compiled exactly once");
        assert_eq!((s.misses, s.views), (5, 5));

        // A second pattern (fb) compiles its own template, once.
        for name in ["c5", "c6"] {
            let c = p.symbols.constant(name);
            let goal = Atom::new(anc, vec![Term::Var(x), Term::Const(c)]);
            assert_eq!(
                cache.query(&mut base, &goal).sorted(),
                oracle(&p, &goal, &edb)
            );
        }
        assert_eq!(cache.stats().template_compiles, 2);
    }

    #[test]
    fn routing_sends_unusable_goals_direct() {
        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let anc = p.symbols.get_predicate("anc").unwrap();
        let edges = chain(&mut p, 6);
        let x = p.symbols.variable("X");
        let y = p.symbols.variable("Y");
        let mut edb = Database::new();
        for e in &edges {
            edb.insert(par, e.clone());
        }
        let mut base = Materialization::from_database(&p, &edb, Strategy::SemiNaive);
        let mut cache = QueryCache::new(&p);

        // All-free: the full model, no view.
        let free = Atom::new(anc, vec![Term::Var(x), Term::Var(y)]);
        assert_eq!(cache.query(&mut base, &free).len(), 6 * 7 / 2);
        // EDB predicate: filtered base facts, no view.
        let c2 = p.symbols.constant("c2");
        let bound_par = Atom::new(par, vec![Term::Const(c2), Term::Var(y)]);
        assert_eq!(cache.query(&mut base, &bound_par).len(), 1);
        // Repeated variable in a bound position: no cycle in a chain.
        let diag = Atom::new(anc, vec![Term::Var(x), Term::Var(x)]);
        assert_eq!(cache.query(&mut base, &diag).len(), 0);
        let s = cache.stats();
        assert_eq!(s.direct, 3);
        assert_eq!((s.misses, s.views, s.template_compiles), (0, 0, 0));
    }

    #[test]
    fn lru_eviction_and_requery_equivalence() {
        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let anc = p.symbols.get_predicate("anc").unwrap();
        let edges = chain(&mut p, 8);
        let y = p.symbols.variable("Y");
        let mut edb = Database::new();
        for e in &edges {
            edb.insert(par, e.clone());
        }
        let mut base = Materialization::from_database(&p, &edb, Strategy::SemiNaive);
        let mut cache =
            QueryCache::with_config(&p, CacheConfig { max_views: 2, max_rows: 1 << 22 });

        let goal_for = |p: &mut Program, name: &str| {
            let c = p.symbols.constant(name);
            Atom::new(anc, vec![Term::Const(c), Term::Var(y)])
        };
        let g_john = goal_for(&mut p, "john");
        let g_c1 = goal_for(&mut p, "c1");
        let g_c2 = goal_for(&mut p, "c2");
        let baseline = cache.query(&mut base, &g_john).sorted();
        cache.query(&mut base, &g_c1);
        cache.query(&mut base, &g_c2); // evicts john (LRU)
        let s = cache.stats();
        assert_eq!(s.views, 2);
        assert!(s.evictions >= 1);

        // Requery after eviction: rebuilt, identical answers.
        assert_eq!(cache.query(&mut base, &g_john).sorted(), baseline);
        assert_eq!(cache.query(&mut base, &g_john).sorted(), oracle(&p, &g_john, &edb));
        assert_eq!(cache.stats().template_compiles, 1, "template survived eviction");

        // max_views = 0 keeps nothing but still answers exactly.
        cache.set_config(CacheConfig { max_views: 0, max_rows: 1 << 22 });
        assert_eq!(cache.query(&mut base, &g_c1).sorted(), oracle(&p, &g_c1, &edb));
        assert_eq!(cache.stats().views, 0);
    }

    #[test]
    fn unannounced_rule_change_disables_the_cache() {
        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain(&mut p, 5);
        let mut edb = Database::new();
        for e in &edges {
            edb.insert(par, e.clone());
        }
        let mut base = Materialization::from_database(&p, &edb, Strategy::SemiNaive);
        let mut cache = QueryCache::new(&p);
        let goal = p.goal.clone();
        assert_eq!(cache.query(&mut base, &goal).len(), 5);
        assert!(cache.is_enabled());

        // A rule added behind the cache's back (not via note_rule_added):
        // the slot mirror no longer matches, so the cache shuts off —
        // and keeps answering exactly, just uncached.
        base.add_rule(p.rules[0].clone());
        assert_eq!(
            cache.query(&mut base, &goal).sorted(),
            base.answer().sorted()
        );
        assert!(!cache.is_enabled());
        assert_eq!(cache.stats().views, 0);
        assert!(cache.stats().invalidations >= 1);
    }

    #[test]
    fn compaction_clears_views_but_keeps_templates() {
        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain(&mut p, 12);
        let mut edb = Database::new();
        for e in &edges {
            edb.insert(par, e.clone());
        }
        let mut base = Materialization::from_database(&p, &edb, Strategy::SemiNaive);
        base.set_compaction_policy(Some(crate::materialize::CompactionPolicy {
            min_dead_rows: 1,
            dead_percent: 1,
        }));
        let mut cache = QueryCache::new(&p);
        let goal = p.goal.clone();
        assert_eq!(cache.query(&mut base, &goal).len(), 12);

        // Heavy retraction triggers a base compaction, which remaps the
        // row ids the view's justifications reference.
        base.retract_facts(par, &edges[6..]);
        for e in &edges[6..] {
            edb.remove(par, e);
        }
        assert!(base.compactions() > 0, "policy fired");
        assert_eq!(cache.query(&mut base, &goal).sorted(), oracle(&p, &goal, &edb));
        let s = cache.stats();
        assert!(s.invalidations >= 1, "compaction cleared the views");
        assert_eq!(s.misses, 2, "view rebuilt once");
        assert_eq!(s.template_compiles, 1, "template has no row ids — kept");
    }

    #[test]
    fn views_stay_small_relative_to_the_base() {
        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain(&mut p, 64);
        let mut edb = Database::new();
        for e in &edges {
            edb.insert(par, e.clone());
        }
        // Base holds the full quadratic closure (64·65/2 anc rows); the
        // view holds only anc(john, ·) — linear — plus a one-row magic
        // set, sharing the base's par rows in place.
        let mut base = Materialization::from_database(&p, &edb, Strategy::SemiNaive);
        let mut cache = QueryCache::new(&p);
        let goal = p.goal.clone();
        assert_eq!(cache.query(&mut base, &goal).len(), 64);
        let base_words = base.mem_stats().total_words();
        let view_words = cache.view_words();
        assert!(
            view_words * 4 < base_words,
            "view footprint {view_words} should be well under base {base_words}"
        );
    }

    #[test]
    fn disabled_cache_is_permanently_direct() {
        let mut p = parse_program(SRC).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain(&mut p, 4);
        let mut edb = Database::new();
        for e in &edges {
            edb.insert(par, e.clone());
        }
        let mut base = Materialization::from_database(&p, &edb, Strategy::SemiNaive);
        let mut cache = QueryCache::disabled();
        let goal = p.goal.clone();
        assert!(!cache.is_enabled());
        assert_eq!(
            cache.query(&mut base, &goal).sorted(),
            base.answer().sorted()
        );
        assert_eq!(
            cache.lookup(&base, &goal).expect("direct is always ready").sorted(),
            base.answer().sorted()
        );
        assert_eq!(cache.stats().views, 0);
        assert!(cache.stats().direct >= 2);
    }
}
