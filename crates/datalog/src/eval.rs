//! Batch evaluation entry points: naive, semi-naive and parallel
//! semi-naive fixpoints with instrumented statistics.
//!
//! Minimum-model semantics per Section 2.1 of the paper: the output of a
//! program on a database is the least set of ground atoms containing the
//! database and closed under the rules; the goal then applies a
//! selection/projection. The evaluator reports *work counters*
//! ([`EvalStats`]) — rule firings, join probes, derived tuples — because
//! the paper's performance claims (Example 1.1: Program D ≪ Programs A–C;
//! Section 7: magic pruning) are about work, not wall-clock on any
//! particular machine.
//!
//! # Engine architecture
//!
//! Since the incremental-materialization refactor, **batch evaluation is
//! a special case of the persistent engine**: [`evaluate`], [`answer`]
//! and [`evaluate_with_provenance`] are thin wrappers that build a
//! [`crate::materialize::Materialization`], bulk-load the database, run
//! one fixpoint and read the result out. The join machinery — flat
//! columnar [`crate::storage`], watermark snapshots, compiled rule
//! plans, depth-0-sharded parallel rounds — lives in
//! [`crate::materialize`]; what this module owns is the strategy/stat
//! vocabulary and the goal selection/projection.
//!
//! The original tuple-at-a-time evaluator is preserved verbatim in
//! [`crate::reference`] as the executable specification; the
//! `engine_equiv` property suite asserts both produce identical models
//! *and identical counters*, so every number in EXPERIMENTS.md is stable
//! across engine rewrites.

use crate::ast::{Atom, Const, Program, Term, Var};
use crate::db::{Database, Relation};
use crate::derivation::Provenance;
use crate::materialize::Materialization;
use crate::plan::PlannerConfig;

/// First-join-step shards per worker thread in
/// [`Strategy::SemiNaiveParallel`] (`shards = OVERSHARD × threads`):
/// each `(rule, delta step)` work item partitions its first body atom's
/// row range into this many contiguous slices per thread. Oversharding
/// keeps the pool busy when per-shard work is skewed: a worker that
/// finishes a cheap shard pulls the next one instead of idling until
/// the slowest shard finishes. The deterministic `(rule, delta, shard)`
/// merge order and the lead-shard depth-0 probe accounting are
/// shard-count-independent, so [`EvalStats`] stays bit-for-bit
/// identical at any factor. [`Strategy::SemiNaiveSharded`] pins an
/// explicit shard count instead.
pub const OVERSHARD: usize = 4;

/// Evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Recompute every rule on the full relations each iteration.
    Naive,
    /// Delta-driven evaluation (each derivation uses at least one
    /// last-iteration fact).
    SemiNaive,
    /// Semi-naive evaluation with each `(rule, delta step)`'s **first
    /// join step** range-sharded across a scoped thread pool
    /// ([`crate::pool`]). Counter-identical to [`Strategy::SemiNaive`]
    /// by construction — and, because top-down shards of the first
    /// step's descending enumeration concatenate back into exactly the
    /// sequential staging order, row-id- and justification-identical
    /// too. The range is oversharded ([`OVERSHARD`]` × threads` shards)
    /// for load balance. `threads <= 1` degenerates to the sequential
    /// code path.
    SemiNaiveParallel {
        /// Worker-thread count (`0` and `1` both mean sequential).
        threads: usize,
    },
    /// [`Strategy::SemiNaiveParallel`] with an explicit shard count
    /// instead of the default [`OVERSHARD`]` × threads`. Used by the
    /// shard-sweep benchmarks and the equivalence suite; the merge
    /// order `(rule, delta, shard)` stays deterministic for any
    /// `(threads, shards)` pair. `threads <= 1 && shards <= 1`
    /// degenerates to the sequential code path.
    SemiNaiveSharded {
        /// Worker-thread count.
        threads: usize,
        /// Number of contiguous first-step subranges per
        /// `(rule, delta)` work item.
        shards: usize,
    },
}

impl Strategy {
    /// The sequential strategy that defines this strategy's semantics
    /// and work counters: parallel semi-naive is specified — and tested
    /// — to produce [`EvalStats`] bit-for-bit identical to sequential
    /// semi-naive, so the reference engine evaluates it as such.
    pub fn sequential_spec(self) -> Strategy {
        match self {
            Strategy::SemiNaiveParallel { .. } | Strategy::SemiNaiveSharded { .. } => {
                Strategy::SemiNaive
            }
            s => s,
        }
    }
}

/// Work counters accumulated during evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of fixpoint iterations until convergence.
    pub iterations: usize,
    /// Successful rule-head instantiations (including rederivations).
    pub rule_firings: u64,
    /// Distinct new tuples added to IDB relations.
    pub tuples_derived: u64,
    /// Index probes performed by the join machinery.
    pub join_probes: u64,
}

impl EvalStats {
    /// Total work proxy used by the experiment harness (firings + probes).
    pub fn work(&self) -> u64 {
        self.rule_firings + self.join_probes
    }
}

/// The result of a fixpoint evaluation.
#[derive(Clone, Debug)]
pub struct EvalResult {
    /// Database containing the computed IDB relations.
    pub idb: Database,
    /// Work counters.
    pub stats: EvalStats,
}

/// Evaluates `program` on `db` to the minimum model, returning the IDB
/// relations and statistics.
///
/// A thin wrapper over the persistent engine: build a
/// [`Materialization`], run the batch fixpoint, read the model out. Use
/// [`Materialization::from_database`] directly to keep the state and
/// absorb updates instead of recomputing.
pub fn evaluate(program: &Program, db: &Database, strategy: Strategy) -> EvalResult {
    Materialization::batch(program, db, strategy, false).into_result()
}

/// [`evaluate`] under an explicit [`PlannerConfig`] — the hook the
/// planner property suites and the A/B benchmarks use to force body
/// orders ([`crate::plan::OrderMode::Shuffled`]) or restore the legacy
/// engine ([`PlannerConfig::legacy`]).
pub fn evaluate_cfg(
    program: &Program,
    db: &Database,
    strategy: Strategy,
    cfg: PlannerConfig,
) -> EvalResult {
    Materialization::batch_with(program, db, strategy, false, cfg).into_result()
}

/// Evaluates and applies the goal: the answer relation (arity = number of
/// distinct goal variables) plus statistics.
///
/// Unlike [`evaluate`], this never materializes the full IDB model as a
/// [`Database`]: the goal's selection/projection runs directly over the
/// columnar rows of the goal predicate.
pub fn answer(program: &Program, db: &Database, strategy: Strategy) -> (Relation, EvalStats) {
    let m = Materialization::batch(program, db, strategy, false);
    (m.goal_answer(&program.goal), m.stats())
}

/// [`answer`] under an explicit [`PlannerConfig`]: the storage-layout
/// A/B benchmark times this — the fixpoint proper, without the
/// O(model) [`Database`] conversion of [`evaluate_cfg`], so a
/// constant-factor storage win is not diluted by an identical
/// conversion cost on both sides.
pub fn answer_cfg(
    program: &Program,
    db: &Database,
    strategy: Strategy,
    cfg: PlannerConfig,
) -> (Relation, EvalStats) {
    let m = Materialization::batch_with(program, db, strategy, false, cfg);
    (m.goal_answer(&program.goal), m.stats())
}

/// The result of a provenance-recording fixpoint evaluation.
///
/// The IDB model is not eagerly materialized: the provenance owns the
/// columnar rows, and [`Provenance::idb_database`] converts on demand —
/// provenance-only consumers (tree metrics, boundedness measurements)
/// skip that O(model) copy entirely.
#[derive(Clone, Debug)]
pub struct ProvenanceResult {
    /// Work counters — bit-for-bit identical to a plain [`evaluate`]
    /// with the same strategy (recording adds no probes or firings).
    pub stats: EvalStats,
    /// One justification per derived row, over the columnar row ids.
    pub provenance: Provenance,
}

/// Evaluates `program` on `db` while recording **one first-found
/// justification per derived row**: the rule index and the body row ids
/// that instantiated it, captured at staging time inside the join.
///
/// Justifications are deterministic and **thread-count independent**:
/// the sequential engine's staging order is the lexicographic-descending
/// order of the per-step row coordinates, and the parallel engine's
/// shards partition the first step's row range top-down, so
/// concatenating their staged rows in `(rule, delta, shard)` order *is*
/// that sequential order. Any [`Strategy`] therefore yields the same
/// row ids, the same justifications, and the same [`EvalStats`] as
/// sequential semi-naive — except [`Strategy::Naive`], whose iteration
/// structure (and hence first-found choice) is its own, but is equally
/// deterministic.
pub fn evaluate_with_provenance(
    program: &Program,
    db: &Database,
    strategy: Strategy,
) -> ProvenanceResult {
    Materialization::batch(program, db, strategy, true).into_provenance_result()
}

/// [`evaluate_with_provenance`] under an explicit [`PlannerConfig`]:
/// whatever the body order, the recorded justifications stay positional
/// instantiations of the rule text (the staging permutes matched rows
/// back to rule-body order), so [`Provenance::check`] must pass for
/// every configuration.
pub fn evaluate_with_provenance_cfg(
    program: &Program,
    db: &Database,
    strategy: Strategy,
    cfg: PlannerConfig,
) -> ProvenanceResult {
    Materialization::batch_with(program, db, strategy, true, cfg).into_provenance_result()
}

// ---------------------------------------------------------------------
// Goal application
// ---------------------------------------------------------------------

/// One compiled goal position.
#[derive(Clone, Copy, Debug)]
pub(crate) enum GoalOp {
    /// The tuple value must equal this constant.
    Const(Const),
    /// First occurrence of the k-th distinct variable: bind it.
    First(usize),
    /// Repeated occurrence of the k-th distinct variable: must match.
    Repeat(usize),
}

/// Compiles a goal atom to per-position ops plus the distinct-variable
/// count. Distinct variables are numbered in first-occurrence order, so
/// the binding array *is* the projected output tuple.
pub(crate) fn goal_plan(goal: &Atom) -> (Vec<GoalOp>, usize) {
    let mut vars: Vec<Var> = Vec::new();
    let ops = goal
        .args
        .iter()
        .map(|t| match t {
            Term::Const(c) => GoalOp::Const(*c),
            Term::Var(v) => match vars.iter().position(|w| w == v) {
                Some(k) => GoalOp::Repeat(k),
                None => {
                    vars.push(*v);
                    GoalOp::First(vars.len() - 1)
                }
            },
        })
        .collect();
    (ops, vars.len())
}

/// Runs a compiled goal over any tuple stream: selection by constants and
/// repeated variables, projection onto the distinct variables in
/// first-occurrence order (the binding array *is* the output tuple).
pub(crate) fn select_project<'a>(
    ops: &[GoalOp],
    nvars: usize,
    rows: impl Iterator<Item = &'a [Const]>,
) -> Relation {
    let mut out = Relation::new(nvars);
    // fixed-size binding array, reused across tuples (no per-tuple map)
    let mut bind = vec![Const(0); nvars];
    'rows: for row in rows {
        debug_assert_eq!(row.len(), ops.len());
        for (i, op) in ops.iter().enumerate() {
            match *op {
                GoalOp::Const(c) => {
                    if row[i] != c {
                        continue 'rows;
                    }
                }
                GoalOp::First(k) => bind[k] = row[i],
                GoalOp::Repeat(k) => {
                    if bind[k] != row[i] {
                        continue 'rows;
                    }
                }
            }
        }
        out.insert(bind.clone());
    }
    out
}

/// Applies a goal atom as a selection + projection: keeps tuples matching
/// the goal's constants and repeated variables, projected onto the
/// distinct variables in first-occurrence order.
pub fn apply_goal(goal: &Atom, rel: &Relation) -> Relation {
    let (ops, nvars) = goal_plan(goal);
    select_project(&ops, nvars, rel.iter().map(Vec::as_slice))
}

/// Semi-naive convergence profile: new facts per productive iteration
/// (the executable form of Section 8's boundedness measure). Stage-exact:
/// iteration `k` derives precisely the facts first derivable at stage `k`
/// of the immediate-consequence operator, so this equals the naive
/// round-by-round count at a fraction of the cost. Accepts any
/// semi-naive-family strategy; the parallel engine produces the same
/// per-stage deltas as the sequential one.
pub(crate) fn seminaive_profile(program: &Program, db: &Database, strategy: Strategy) -> Vec<u64> {
    let strategy = match strategy {
        Strategy::Naive => Strategy::SemiNaive,
        s => s,
    };
    Materialization::batch(program, db, strategy, false)
        .profile()
        .to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn chain_db(program: &mut Program, n: usize) -> Database {
        // par chain: c0 -> c1 -> ... -> cn, with john = c0
        let par = program.symbols.get_predicate("par").unwrap();
        let mut db = Database::new();
        let mut prev = program.symbols.constant("john");
        for i in 1..=n {
            let c = program.symbols.constant(&format!("c{i}"));
            db.insert(par, vec![prev, c]);
            prev = c;
        }
        db
    }

    fn program_a() -> Program {
        parse_program(
            "?- anc(john, Y).\n\
             anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- anc(X, Z), par(Z, Y).",
        )
        .unwrap()
    }

    #[test]
    fn ancestor_chain_naive() {
        let mut p = program_a();
        let db = chain_db(&mut p, 5);
        let (ans, stats) = answer(&p, &db, Strategy::Naive);
        assert_eq!(ans.len(), 5);
        assert!(stats.iterations >= 5);
    }

    #[test]
    fn ancestor_chain_seminaive_matches_naive() {
        let mut p = program_a();
        let db = chain_db(&mut p, 8);
        let (a1, s1) = answer(&p, &db, Strategy::Naive);
        let (a2, s2) = answer(&p, &db, Strategy::SemiNaive);
        assert_eq!(a1.sorted(), a2.sorted());
        // Semi-naive does strictly less join work on a chain. (Firings
        // are productive by default — tuples actually added — so both
        // strategies fire identically; probes measure the revisits.)
        assert!(s2.join_probes < s1.join_probes, "{s2:?} vs {s1:?}");
    }

    #[test]
    fn segmented_and_chain_layouts_are_observationally_identical() {
        // The storage-layout A/B contract at the eval surface: the
        // segmented layer (frozen postings, raw-key tables, batched
        // merge) and the chains-only baseline compute the same answers,
        // the same counters and bit-for-bit identical provenance (row
        // ids + justifications) under every strategy.
        let chains = PlannerConfig {
            segmented: false,
            ..PlannerConfig::default()
        };
        for strategy in [
            Strategy::SemiNaive,
            Strategy::SemiNaiveParallel { threads: 2 },
            Strategy::SemiNaiveParallel { threads: 4 },
        ] {
            let mut p = program_a();
            let db = chain_db(&mut p, 70); // deep enough to freeze segments
            let (a_seg, s_seg) = answer_cfg(&p, &db, strategy, PlannerConfig::default());
            let (a_chn, s_chn) = answer_cfg(&p, &db, strategy, chains);
            assert_eq!(a_seg.sorted(), a_chn.sorted(), "{strategy:?}: answer drift");
            assert_eq!(s_seg, s_chn, "{strategy:?}: EvalStats drift");
            let p_seg = evaluate_with_provenance_cfg(&p, &db, strategy, PlannerConfig::default());
            let p_chn = evaluate_with_provenance_cfg(&p, &db, strategy, chains);
            assert_eq!(p_seg.stats, p_chn.stats, "{strategy:?}: recorded-stats drift");
            assert!(
                p_seg.provenance == p_chn.provenance,
                "{strategy:?}: row-id/justification drift between layouts"
            );
            p_seg.provenance.check(&p).expect("segmented provenance valid");
        }
    }

    #[test]
    fn program_b_right_linear_same_answers() {
        let mut pb = parse_program(
            "?- anc(john, Y).\n\
             anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- par(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let db = chain_db(&mut pb, 6);
        let (ans, _) = answer(&pb, &db, Strategy::SemiNaive);
        assert_eq!(ans.len(), 6);
    }

    #[test]
    fn program_c_nonlinear_same_answers() {
        let mut pc = parse_program(
            "?- anc(john, Y).\n\
             anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- anc(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let db = chain_db(&mut pc, 6);
        let (ans, _) = answer(&pc, &db, Strategy::SemiNaive);
        assert_eq!(ans.len(), 6);
    }

    #[test]
    fn program_d_monadic_same_answers() {
        let mut pd = parse_program(
            "?- ancjohn(Y).\n\
             ancjohn(Y) :- par(john, Y).\n\
             ancjohn(Y) :- ancjohn(Z), par(Z, Y).",
        )
        .unwrap();
        let db = chain_db(&mut pd, 6);
        let (ans, _) = answer(&pd, &db, Strategy::SemiNaive);
        assert_eq!(ans.len(), 6);
    }

    #[test]
    fn example_1_1_all_four_programs_agree() {
        // The paper's semantic-equivalence claim, checked on a branching DB.
        let sources = [
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y).",
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), anc(Z, Y).",
            "?- ancjohn(Y).\nancjohn(Y) :- par(john, Y).\nancjohn(Y) :- ancjohn(Z), par(Z, Y).",
        ];
        let mut answers = Vec::new();
        for src in sources {
            let mut p = parse_program(src).unwrap();
            let par = p.symbols.get_predicate("par").unwrap();
            let mut db = Database::new();
            let names = ["john", "a", "b", "c", "d", "e"];
            let cs: Vec<Const> = names.iter().map(|n| p.symbols.constant(n)).collect();
            // tree: john->a, john->b, a->c, b->d, d->e, plus an unrelated edge e->john? no: keep acyclic
            for (i, j) in [(0, 1), (0, 2), (1, 3), (2, 4), (4, 5)] {
                db.insert(par, vec![cs[i], cs[j]]);
            }
            let (ans, _) = answer(&p, &db, Strategy::SemiNaive);
            answers.push(ans.sorted());
        }
        for w in answers.windows(2) {
            assert_eq!(w[0], w[1], "Example 1.1 programs must be equivalent");
        }
        assert_eq!(answers[0].len(), 5);
    }

    #[test]
    fn goal_selection_with_repeated_vars() {
        // cycle program: p(X, X) finds nodes on cycles
        let mut p = parse_program(
            "?- p(X, X).\n\
             p(X, Y) :- b(X, Y).\n\
             p(X, Y) :- p(X, Z), b(Z, Y).",
        )
        .unwrap();
        let b = p.symbols.get_predicate("b").unwrap();
        let mut db = Database::new();
        let c: Vec<Const> = (0..5).map(|i| p.symbols.constant(&format!("n{i}"))).collect();
        // cycle n0->n1->n2->n0 and tail n3->n4
        for (i, j) in [(0, 1), (1, 2), (2, 0), (3, 4)] {
            db.insert(b, vec![c[i], c[j]]);
        }
        let (ans, _) = answer(&p, &db, Strategy::SemiNaive);
        assert_eq!(ans.len(), 3); // exactly the cycle nodes
        assert!(ans.contains(&[c[0]]));
        assert!(!ans.contains(&[c[3]]));
    }

    #[test]
    fn boolean_goal() {
        let p = parse_program(
            "?- p(a, b).\n\
             p(X, Y) :- b(X, Y).\n\
             p(X, Y) :- p(X, Z), b(Z, Y).",
        )
        .unwrap();
        let b = p.symbols.get_predicate("b").unwrap();
        let ca = p.symbols.get_constant("a").unwrap();
        let cb = p.symbols.get_constant("b").unwrap();
        let mut db = Database::new();
        db.insert(b, vec![ca, cb]);
        let (ans, _) = answer(&p, &db, Strategy::SemiNaive);
        assert_eq!(ans.arity(), 0);
        assert_eq!(ans.len(), 1); // true

        let mut db2 = Database::new();
        db2.insert(b, vec![cb, ca]);
        let (ans2, _) = answer(&p, &db2, Strategy::SemiNaive);
        assert_eq!(ans2.len(), 0); // false
    }

    #[test]
    fn constants_in_rule_bodies() {
        let mut p = parse_program(
            "?- reach(Y).\n\
             reach(Y) :- e(root, Y).\n\
             reach(Y) :- reach(X), e(X, Y).",
        )
        .unwrap();
        let e = p.symbols.get_predicate("e").unwrap();
        let root = p.symbols.get_constant("root").unwrap();
        let c: Vec<Const> = (0..4).map(|i| p.symbols.constant(&format!("m{i}"))).collect();
        let mut db = Database::new();
        db.insert(e, vec![root, c[0]]);
        db.insert(e, vec![c[0], c[1]]);
        db.insert(e, vec![c[2], c[3]]); // unreachable from root
        let (ans, _) = answer(&p, &db, Strategy::SemiNaive);
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn empty_database_converges() {
        let p = program_a();
        let db = Database::new();
        let (ans, stats) = answer(&p, &db, Strategy::SemiNaive);
        assert_eq!(ans.len(), 0);
        assert!(stats.iterations <= 2);
        let (ans2, _) = answer(&p, &db, Strategy::Naive);
        assert_eq!(ans2.len(), 0);
    }

    #[test]
    fn same_generation_nonlinear() {
        let mut p = parse_program(
            "?- sg(a, Y).\n\
             sg(X, Y) :- flat(X, Y).\n\
             sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).",
        )
        .unwrap();
        let up = p.symbols.get_predicate("up").unwrap();
        let flat = p.symbols.get_predicate("flat").unwrap();
        let down = p.symbols.get_predicate("down").unwrap();
        let names = ["a", "b", "p1", "p2", "q1", "q2"];
        let cs: Vec<Const> = names.iter().map(|n| p.symbols.constant(n)).collect();
        let mut db = Database::new();
        // a up p1, b up p2, p1 flat p2, p2 down b... build so sg(a,b) holds
        db.insert(up, vec![cs[0], cs[2]]);
        db.insert(flat, vec![cs[2], cs[3]]);
        db.insert(down, vec![cs[3], cs[1]]);
        let (ans, _) = answer(&p, &db, Strategy::SemiNaive);
        assert!(ans.contains(&[cs[1]]));
    }

    #[test]
    fn naive_and_seminaive_agree_on_idb_model() {
        let mut p = program_a();
        let db = chain_db(&mut p, 7);
        let r1 = evaluate(&p, &db, Strategy::Naive);
        let r2 = evaluate(&p, &db, Strategy::SemiNaive);
        let anc = p.symbols.get_predicate("anc").unwrap();
        assert_eq!(
            r1.idb.relation(anc).unwrap().sorted(),
            r2.idb.relation(anc).unwrap().sorted()
        );
    }

    #[test]
    fn stats_match_reference_engine_exactly() {
        // The storage engine's contract: work counters identical to the
        // preserved tuple-at-a-time evaluator, both strategies.
        let sources = [
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), anc(Z, Y).",
            "?- p(X, X).\np(X, Y) :- par(X, Y).\np(X, Y) :- p(X, Z), par(Z, Y).",
        ];
        for src in sources {
            for strategy in [Strategy::Naive, Strategy::SemiNaive] {
                let mut p = parse_program(src).unwrap();
                let db = chain_db(&mut p, 9);
                let new = evaluate(&p, &db, strategy);
                let old = crate::reference::evaluate(&p, &db, strategy);
                assert_eq!(new.stats, old.stats, "{src} {strategy:?}");
                for (pred, rel) in old.idb.iter() {
                    assert_eq!(
                        new.idb.relation(pred).map(|r| r.sorted()),
                        Some(rel.sorted()),
                        "{src} {strategy:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn answer_skips_database_materialization_but_agrees() {
        let mut p = program_a();
        let db = chain_db(&mut p, 7);
        let (fast, s1) = answer(&p, &db, Strategy::SemiNaive);
        let result = evaluate(&p, &db, Strategy::SemiNaive);
        let anc = p.symbols.get_predicate("anc").unwrap();
        let slow = apply_goal(&p.goal, result.idb.relation(anc).unwrap());
        assert_eq!(fast.sorted(), slow.sorted());
        assert_eq!(s1, result.stats);
    }

    /// Unsorted per-predicate rows: observes insertion (row-id) order.
    fn raw_model(result: &EvalResult) -> Vec<(u32, Vec<Vec<Const>>)> {
        let mut v: Vec<(u32, Vec<Vec<Const>>)> = result
            .idb
            .iter()
            .map(|(p, r)| (p.0, r.iter().cloned().collect()))
            .collect();
        v.sort_by_key(|(p, _)| *p);
        v
    }

    #[test]
    fn parallel_matches_sequential_stats_and_model() {
        let sources = [
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y).",
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), anc(Z, Y).",
            "?- p(X, X).\np(X, Y) :- par(X, Y).\np(X, Y) :- p(X, Z), par(Z, Y).",
        ];
        for src in sources {
            let mut p = parse_program(src).unwrap();
            let db = chain_db(&mut p, 9);
            let seq = evaluate(&p, &db, Strategy::SemiNaive);
            for threads in [2, 3, 8] {
                let par = evaluate(&p, &db, Strategy::SemiNaiveParallel { threads });
                assert_eq!(par.stats, seq.stats, "{src} threads={threads}");
                let mut a = raw_model(&par);
                let mut b = raw_model(&seq);
                for (_, rows) in a.iter_mut().chain(b.iter_mut()) {
                    rows.sort();
                }
                assert_eq!(a, b, "{src} threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_one_thread_is_the_sequential_path_byte_for_byte() {
        // `threads <= 1` routes through the sequential code path, so even
        // the row ids (insertion order) are identical.
        let mut p = program_a();
        let db = chain_db(&mut p, 8);
        let seq = evaluate(&p, &db, Strategy::SemiNaive);
        for threads in [0, 1] {
            let par = evaluate(&p, &db, Strategy::SemiNaiveParallel { threads });
            assert_eq!(par.stats, seq.stats);
            assert_eq!(raw_model(&par), raw_model(&seq), "insertion order must match");
        }
    }

    #[test]
    fn parallel_is_deterministic_per_thread_count() {
        // Same thread count => identical row ids across runs (the merge
        // applies staged buffers in (rule, delta, shard) order).
        let mut p = parse_program(
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let db = chain_db(&mut p, 10);
        let first = evaluate(&p, &db, Strategy::SemiNaiveParallel { threads: 4 });
        for _ in 0..3 {
            let again = evaluate(&p, &db, Strategy::SemiNaiveParallel { threads: 4 });
            assert_eq!(again.stats, first.stats);
            assert_eq!(raw_model(&again), raw_model(&first));
        }
    }

    #[test]
    fn parallel_matches_sequential_row_order_exactly() {
        // Depth-0 sharding: shards are top-down subranges of the first
        // step's descending enumeration, so the merged insertion order
        // reproduces the sequential engine's row ids for EVERY rule
        // shape — delta at the front (Program A), mid-body delta
        // (Program B / E5's shape), and nonlinear (Program C).
        let sources = [
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y).",
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), anc(Z, Y).",
        ];
        for src in sources {
            let mut p = parse_program(src).unwrap();
            let db = chain_db(&mut p, 12);
            let seq = evaluate(&p, &db, Strategy::SemiNaive);
            for threads in [2, 4] {
                let par = evaluate(&p, &db, Strategy::SemiNaiveParallel { threads });
                assert_eq!(par.stats, seq.stats, "{src} threads={threads}");
                assert_eq!(raw_model(&par), raw_model(&seq), "{src} threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_answer_and_profile_agree() {
        let mut p = program_a();
        let db = chain_db(&mut p, 7);
        let (seq_ans, seq_stats) = answer(&p, &db, Strategy::SemiNaive);
        let (par_ans, par_stats) = answer(&p, &db, Strategy::SemiNaiveParallel { threads: 3 });
        assert_eq!(par_ans.sorted(), seq_ans.sorted());
        assert_eq!(par_stats, seq_stats);
        assert_eq!(
            seminaive_profile(&p, &db, Strategy::SemiNaive),
            seminaive_profile(&p, &db, Strategy::SemiNaiveParallel { threads: 3 }),
        );
    }

    #[test]
    fn parallel_empty_database_converges() {
        let p = program_a();
        let db = Database::new();
        let (ans, stats) = answer(&p, &db, Strategy::SemiNaiveParallel { threads: 4 });
        assert_eq!(ans.len(), 0);
        assert!(stats.iterations <= 2);
    }

    #[test]
    fn parallel_more_threads_than_delta_rows() {
        // Shards beyond the first step's size are empty and skipped; the
        // lead shard still accounts the sequential probe counts.
        let mut p = program_a();
        let db = chain_db(&mut p, 2);
        let seq = evaluate(&p, &db, Strategy::SemiNaive);
        let par = evaluate(&p, &db, Strategy::SemiNaiveParallel { threads: 16 });
        assert_eq!(par.stats, seq.stats);
    }

    #[test]
    fn apply_goal_repeated_vars_and_constants() {
        let mut sy = crate::ast::Symbols::new();
        let p = sy.predicate("p");
        let a = sy.constant("a");
        let b = sy.constant("b");
        let x = sy.variable("X");
        // goal p(a, X, X): select first = a, positions 2 = 3, project X
        let goal = Atom::new(p, vec![Term::Const(a), Term::Var(x), Term::Var(x)]);
        let rel: Relation = [vec![a, b, b], vec![a, a, b], vec![b, b, b], vec![a, a, a]]
            .into_iter()
            .collect();
        let out = apply_goal(&goal, &rel);
        assert_eq!(out.arity(), 1);
        assert_eq!(out.sorted(), vec![vec![a], vec![b]]);
    }
}
