//! Bottom-up evaluation: naive and semi-naive fixpoints with instrumented
//! statistics, on flat columnar storage.
//!
//! Minimum-model semantics per Section 2.1 of the paper: the output of a
//! program on a database is the least set of ground atoms containing the
//! database and closed under the rules; the goal then applies a
//! selection/projection. The evaluator reports *work counters*
//! ([`EvalStats`]) — rule firings, join probes, derived tuples — because
//! the paper's performance claims (Example 1.1: Program D ≪ Programs A–C;
//! Section 7: magic pruning) are about work, not wall-clock on any
//! particular machine.
//!
//! # Engine architecture
//!
//! The work counters define *what* is computed; this module makes the
//! computing fast. Relations live in [`crate::storage`]: each predicate
//! is one flat [`ColumnarRelation`] (tuples are slices, not per-tuple
//! `Vec`s), and semi-naive's `old`/`delta`/`full` snapshots are **row
//! ranges** over the same append-only store (`old = [0, old_hi)`,
//! `delta = [old_hi, len)`), so no iteration ever clones a relation.
//! Per `(relation, mask)` there is one persistent [`IncrementalIndex`],
//! built once and extended with only the delta rows each iteration; its
//! newest-first chains let a single index serve all three snapshots.
//! Each rule is compiled to a `RulePlan` — atom order, index ids, key
//! ops and bind/check actions resolved to dense arrays — so the join is
//! a flat loop with no hashing of `Vec` keys, no per-probe allocation,
//! and no re-checking of positions the index probe already guaranteed.
//!
//! The original tuple-at-a-time evaluator is preserved verbatim in
//! [`crate::reference`] as the executable specification; the
//! `engine_equiv` property suite asserts both produce identical models
//! *and identical counters*, so every number in EXPERIMENTS.md is stable
//! across the storage rewrite.

use crate::ast::{Atom, Const, Pred, Program, Rule, Term, Var};
use crate::db::{Database, Relation};
use crate::derivation::Provenance;
use crate::hash::FxHashMap;
use crate::pool::ThreadPool;
use crate::storage::{shard_ranges, ColumnarRelation, IncrementalIndex, NO_ROW};

/// Delta shards per worker thread in [`Strategy::SemiNaiveParallel`]
/// (`shards = OVERSHARD × threads`). Oversharding keeps the pool busy
/// when per-shard work is skewed: a worker that finishes a cheap shard
/// pulls the next one instead of idling until the slowest shard
/// finishes. The deterministic `(rule, delta, shard)` merge order and
/// the lead-shard probe accounting are shard-count-independent, so
/// [`EvalStats`] stays bit-for-bit identical at any factor.
/// [`Strategy::SemiNaiveSharded`] pins an explicit shard count instead.
pub const OVERSHARD: usize = 4;

/// Evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Recompute every rule on the full relations each iteration.
    Naive,
    /// Delta-driven evaluation (each derivation uses at least one
    /// last-iteration fact).
    SemiNaive,
    /// Semi-naive evaluation with the per-iteration delta range-sharded
    /// across a scoped thread pool ([`crate::pool`]). Counter-identical
    /// to [`Strategy::SemiNaive`] by construction: each worker joins one
    /// slice of the delta row range against the shared read-only
    /// indexes, staging results thread-locally, and the merge applies
    /// the staged rows in deterministic `(rule, delta, shard)` order.
    /// The delta is oversharded ([`OVERSHARD`]` × threads` shards) for
    /// load balance. `threads <= 1` degenerates to the sequential code
    /// path.
    SemiNaiveParallel {
        /// Worker-thread count (`0` and `1` both mean sequential).
        threads: usize,
    },
    /// [`Strategy::SemiNaiveParallel`] with an explicit delta shard
    /// count instead of the default [`OVERSHARD`]` × threads`. Used by
    /// the shard-sweep benchmarks and the equivalence suite; the merge
    /// order `(rule, delta, shard)` stays deterministic for any
    /// `(threads, shards)` pair. `threads <= 1 && shards <= 1`
    /// degenerates to the sequential code path.
    SemiNaiveSharded {
        /// Worker-thread count.
        threads: usize,
        /// Number of contiguous delta subranges per `(rule, delta)`
        /// work item.
        shards: usize,
    },
}

impl Strategy {
    /// The sequential strategy that defines this strategy's semantics
    /// and work counters: parallel semi-naive is specified — and tested
    /// — to produce [`EvalStats`] bit-for-bit identical to sequential
    /// semi-naive, so the reference engine evaluates it as such.
    pub fn sequential_spec(self) -> Strategy {
        match self {
            Strategy::SemiNaiveParallel { .. } | Strategy::SemiNaiveSharded { .. } => {
                Strategy::SemiNaive
            }
            s => s,
        }
    }
}

/// Work counters accumulated during evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of fixpoint iterations until convergence.
    pub iterations: usize,
    /// Successful rule-head instantiations (including rederivations).
    pub rule_firings: u64,
    /// Distinct new tuples added to IDB relations.
    pub tuples_derived: u64,
    /// Index probes performed by the join machinery.
    pub join_probes: u64,
}

impl EvalStats {
    /// Total work proxy used by the experiment harness (firings + probes).
    pub fn work(&self) -> u64 {
        self.rule_firings + self.join_probes
    }
}

/// The result of a fixpoint evaluation.
#[derive(Clone, Debug)]
pub struct EvalResult {
    /// Database containing the computed IDB relations.
    pub idb: Database,
    /// Work counters.
    pub stats: EvalStats,
}

/// Evaluates `program` on `db` to the minimum model, returning the IDB
/// relations and statistics.
pub fn evaluate(program: &Program, db: &Database, strategy: Strategy) -> EvalResult {
    let mut engine = Engine::new(program, db, false);
    engine.run(strategy);
    engine.into_result()
}

/// Evaluates and applies the goal: the answer relation (arity = number of
/// distinct goal variables) plus statistics.
///
/// Unlike [`evaluate`], this never materializes the full IDB model as a
/// [`Database`]: the goal's selection/projection runs directly over the
/// columnar rows of the goal predicate.
pub fn answer(program: &Program, db: &Database, strategy: Strategy) -> (Relation, EvalStats) {
    let mut engine = Engine::new(program, db, false);
    engine.run(strategy);
    let rel = engine.goal_answer(&program.goal);
    (rel, engine.stats)
}

/// The result of a provenance-recording fixpoint evaluation.
///
/// The IDB model is not eagerly materialized: the provenance owns the
/// columnar rows, and [`Provenance::idb_database`] converts on demand —
/// provenance-only consumers (tree metrics, boundedness measurements)
/// skip that O(model) copy entirely.
#[derive(Clone, Debug)]
pub struct ProvenanceResult {
    /// Work counters — bit-for-bit identical to a plain [`evaluate`]
    /// with the same strategy (recording adds no probes or firings).
    pub stats: EvalStats,
    /// One justification per derived row, over the columnar row ids.
    pub provenance: Provenance,
}

/// Evaluates `program` on `db` while recording **one first-found
/// justification per derived row**: the rule index and the body row ids
/// that instantiated it, captured at staging time inside the join.
///
/// Justifications are deterministic and **thread-count independent**:
/// the sequential engine's staging order is the lexicographic-descending
/// order of the per-step row coordinates, and in the parallel engine
/// every `(rule, delta step)` group merges its shards' staged rows back
/// into exactly that order (the coordinates are the justification body,
/// so the comparison is free). Any [`Strategy`] therefore yields the
/// same row ids, the same justifications, and the same [`EvalStats`] as
/// sequential semi-naive — except [`Strategy::Naive`], whose iteration
/// structure (and hence first-found choice) is its own, but is equally
/// deterministic.
pub fn evaluate_with_provenance(
    program: &Program,
    db: &Database,
    strategy: Strategy,
) -> ProvenanceResult {
    let mut engine = Engine::new(program, db, true);
    engine.run(strategy);
    engine.into_provenance_result()
}

// ---------------------------------------------------------------------
// Goal application
// ---------------------------------------------------------------------

/// One compiled goal position.
#[derive(Clone, Copy, Debug)]
enum GoalOp {
    /// The tuple value must equal this constant.
    Const(Const),
    /// First occurrence of the k-th distinct variable: bind it.
    First(usize),
    /// Repeated occurrence of the k-th distinct variable: must match.
    Repeat(usize),
}

/// Compiles a goal atom to per-position ops plus the distinct-variable
/// count. Distinct variables are numbered in first-occurrence order, so
/// the binding array *is* the projected output tuple.
fn goal_plan(goal: &Atom) -> (Vec<GoalOp>, usize) {
    let mut vars: Vec<Var> = Vec::new();
    let ops = goal
        .args
        .iter()
        .map(|t| match t {
            Term::Const(c) => GoalOp::Const(*c),
            Term::Var(v) => match vars.iter().position(|w| w == v) {
                Some(k) => GoalOp::Repeat(k),
                None => {
                    vars.push(*v);
                    GoalOp::First(vars.len() - 1)
                }
            },
        })
        .collect();
    (ops, vars.len())
}

/// Runs a compiled goal over any tuple stream: selection by constants and
/// repeated variables, projection onto the distinct variables in
/// first-occurrence order (the binding array *is* the output tuple).
fn select_project<'a>(ops: &[GoalOp], nvars: usize, rows: impl Iterator<Item = &'a [Const]>) -> Relation {
    let mut out = Relation::new(nvars);
    // fixed-size binding array, reused across tuples (no per-tuple map)
    let mut bind = vec![Const(0); nvars];
    'rows: for row in rows {
        debug_assert_eq!(row.len(), ops.len());
        for (i, op) in ops.iter().enumerate() {
            match *op {
                GoalOp::Const(c) => {
                    if row[i] != c {
                        continue 'rows;
                    }
                }
                GoalOp::First(k) => bind[k] = row[i],
                GoalOp::Repeat(k) => {
                    if bind[k] != row[i] {
                        continue 'rows;
                    }
                }
            }
        }
        out.insert(bind.clone());
    }
    out
}

/// Applies a goal atom as a selection + projection: keeps tuples matching
/// the goal's constants and repeated variables, projected onto the
/// distinct variables in first-occurrence order.
pub fn apply_goal(goal: &Atom, rel: &Relation) -> Relation {
    let (ops, nvars) = goal_plan(goal);
    select_project(&ops, nvars, rel.iter().map(Vec::as_slice))
}

// ---------------------------------------------------------------------
// Rule plans
// ---------------------------------------------------------------------

/// Sentinel index id for unkeyed (empty-mask) steps: they scan rows
/// directly, so no [`IncrementalIndex`] exists for them.
const NO_INDEX: usize = usize::MAX;

/// A key component of a join step: where the bound value comes from.
#[derive(Clone, Copy, Debug)]
enum KeyOp {
    /// A constant from the rule text.
    Const(Const),
    /// A rule-local slot bound by an earlier step.
    Slot(usize),
}

/// What to do with one *unguaranteed* argument position of a matched row.
/// Positions covered by the index mask are skipped entirely: the probe
/// already guaranteed them.
#[derive(Clone, Copy, Debug)]
enum Action {
    /// First occurrence of a free slot in this atom: bind it.
    Bind { pos: usize, slot: usize },
    /// Repeated occurrence within this atom: must equal the bound value.
    Check { pos: usize, slot: usize },
}

/// Where a head position comes from.
#[derive(Clone, Copy, Debug)]
enum Out {
    /// A constant from the rule text.
    Const(Const),
    /// A bound slot.
    Slot(usize),
}

/// One body atom, compiled: which relation/index to probe, how to build
/// the probe key, and how to bind/check the remaining positions.
#[derive(Clone, Debug)]
struct Step {
    rel: usize,
    /// Index id, or [`NO_INDEX`] for unkeyed steps (empty mask): those
    /// scan their row range directly and register no index at all.
    idx: usize,
    /// Whether the predicate is an IDB of the program (reads snapshots).
    idb: bool,
    key: Box<[KeyOp]>,
    actions: Box<[Action]>,
}

/// A rule compiled to a flat join plan.
#[derive(Clone, Debug)]
struct RulePlan {
    head_rel: usize,
    head: Box<[Out]>,
    steps: Box<[Step]>,
    num_slots: usize,
    /// Step positions whose predicate is an IDB (delta candidates).
    idb_steps: Box<[usize]>,
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

/// Reusable scratch buffers for one evaluation (no per-tuple allocation).
#[derive(Default)]
struct Scratch {
    /// Rule-local slot environment. Values are garbage until a `Bind` or
    /// key-op write at the plan-determined depth; the plan guarantees
    /// every read happens after the corresponding write.
    env: Vec<Const>,
    /// Probe-key buffer, refilled before every index probe.
    key: Vec<Const>,
    /// Head-tuple buffer.
    head: Vec<Const>,
    /// Row id matched at each join depth — the derivation coordinates.
    /// Maintained unconditionally (one word store per matched row); read
    /// only when provenance recording is on.
    rows: Vec<u32>,
}

/// Tuples derived during one iteration, buffered flat until the merge
/// (rules within an iteration must not see each other's output).
///
/// When provenance recording is on, every staged tuple also stages its
/// justification: the rule index and the body row ids (one per plan
/// step, in body-atom order). The merge keeps only the justification of
/// the staged copy that actually inserts the row — the first found in
/// the deterministic merge order.
#[derive(Default)]
struct PendingTuples {
    data: Vec<Const>,
    rels: Vec<u32>,
    /// Rule index per staged tuple (empty when recording is off).
    just_rule: Vec<u32>,
    /// Flat body row ids; tuple `i`'s slice length is the body length of
    /// `just_rule[i]` (empty when recording is off).
    just_rows: Vec<u32>,
}

/// Per-relation justification store: parallel to the relation's row ids.
/// EDB relations keep empty vectors (their rows are leaves).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct RelJust {
    /// Rule that first derived each row.
    pub(crate) rule: Vec<u32>,
    /// Offset of each row's body slice in `bodies`.
    pub(crate) body_off: Vec<u32>,
    /// Flat body row ids, in body-atom order per justification.
    pub(crate) bodies: Vec<u32>,
}

impl RelJust {
    fn push(&mut self, rule: u32, body: &[u32]) {
        self.rule.push(rule);
        self.body_off
            .push(u32::try_from(self.bodies.len()).expect("justification store overflow"));
        self.bodies.extend_from_slice(body);
    }
}

/// Work counters for one rule-evaluation pass, with probes split at the
/// delta step. `pre` counts probes at depths up to and including the
/// delta step — work every parallel shard repeats identically, so only
/// the lead shard's `pre` enters [`EvalStats`]. `post` counts probes
/// strictly below the delta step — work partitioned by the delta rows,
/// summed across shards. With no delta step, everything is `pre`.
#[derive(Clone, Copy, Debug, Default)]
struct Counters {
    pre: u64,
    post: u64,
    firings: u64,
}

/// One parallel work item: rule `plan_i` with the delta step `delta_pos`
/// restricted to the delta-row subrange `range`, staging into its own
/// buffer. `lead` marks the shard whose `pre` probe count is accounted
/// (shard 0 — every shard performs identical pre-delta work). Tasks are
/// recycled across iterations so the staging and scratch buffers keep
/// their grown capacity instead of reallocating every iteration.
#[derive(Default)]
struct ShardTask {
    plan_i: usize,
    delta_pos: usize,
    range: (usize, usize),
    lead: bool,
    counters: Counters,
    pending: PendingTuples,
    scratch: Scratch,
}

struct Engine {
    rels: Vec<ColumnarRelation>,
    idxs: Vec<IncrementalIndex>,
    plans: Vec<RulePlan>,
    /// Dense relation ids of the program's IDB predicates.
    idb_rels: Vec<usize>,
    pred_of_rel: Vec<Pred>,
    rel_of_pred: FxHashMap<Pred, usize>,
    /// Per relation: the semi-naive watermark — rows `[0, old_hi)` are the
    /// previous iteration's `old` snapshot, `[old_hi, len)` the delta.
    old_hi: Vec<usize>,
    /// New facts appended per productive iteration (convergence profile).
    profile: Vec<u64>,
    /// Per-relation justification stores when provenance recording is
    /// on (`Some` even if a relation never derives — empty is fine).
    prov: Option<Vec<RelJust>>,
    stats: EvalStats,
}

impl Engine {
    fn new(program: &Program, db: &Database, record: bool) -> Self {
        let idbs = program.idb_predicates();

        // Arity resolution mirrors the reference evaluator: database
        // relations first, then rule heads, then body atoms.
        let mut arity: FxHashMap<Pred, usize> = FxHashMap::default();
        for (p, r) in db.iter() {
            arity.insert(p, r.arity());
        }
        for r in &program.rules {
            arity.entry(r.head.pred).or_insert_with(|| r.head.arity());
            for a in &r.body {
                arity.entry(a.pred).or_insert_with(|| a.arity());
            }
        }

        // Dense relation ids: IDB predicates first, then every EDB
        // predicate referenced by a rule body.
        let mut rels: Vec<ColumnarRelation> = Vec::new();
        let mut pred_of_rel: Vec<Pred> = Vec::new();
        let mut rel_of_pred: FxHashMap<Pred, usize> = FxHashMap::default();
        let intern_rel = |p: Pred,
                              rels: &mut Vec<ColumnarRelation>,
                              pred_of_rel: &mut Vec<Pred>,
                              rel_of_pred: &mut FxHashMap<Pred, usize>|
         -> usize {
            *rel_of_pred.entry(p).or_insert_with(|| {
                let id = rels.len();
                rels.push(ColumnarRelation::new(*arity.get(&p).unwrap_or(&0)));
                pred_of_rel.push(p);
                id
            })
        };
        let mut idb_rels = Vec::new();
        for &p in &idbs {
            idb_rels.push(intern_rel(p, &mut rels, &mut pred_of_rel, &mut rel_of_pred));
        }
        for r in &program.rules {
            for a in &r.body {
                intern_rel(a.pred, &mut rels, &mut pred_of_rel, &mut rel_of_pred);
            }
        }

        // Load EDB facts. Facts the database holds for IDB predicates are
        // ignored, exactly as in the reference evaluator (IDB body atoms
        // only ever read the derived snapshots).
        for (p, r) in db.iter() {
            if idbs.contains(&p) {
                continue;
            }
            if let Some(&rid) = rel_of_pred.get(&p) {
                for t in r.iter() {
                    rels[rid].insert(t);
                }
            }
        }

        // Compile rules; register one index per (relation, mask).
        let mut idxs: Vec<IncrementalIndex> = Vec::new();
        let mut idx_of: FxHashMap<(usize, Vec<usize>), usize> = FxHashMap::default();
        let plans = program
            .rules
            .iter()
            .map(|r| compile_rule(r, &idbs, &rel_of_pred, &mut idxs, &mut idx_of))
            .collect();

        let old_hi = vec![0; rels.len()];
        let prov = record.then(|| vec![RelJust::default(); rels.len()]);
        Self {
            rels,
            idxs,
            plans,
            idb_rels,
            pred_of_rel,
            rel_of_pred,
            old_hi,
            profile: Vec::new(),
            prov,
            stats: EvalStats::default(),
        }
    }

    fn run(&mut self, strategy: Strategy) {
        match strategy {
            Strategy::SemiNaiveParallel { threads } if threads >= 2 => {
                self.run_parallel(threads, OVERSHARD * threads);
            }
            Strategy::SemiNaiveSharded { threads, shards } if threads >= 2 || shards >= 2 => {
                self.run_parallel(threads.max(1), shards.max(1));
            }
            // `threads <= 1` degenerates to the sequential code path,
            // byte-for-byte: same loop, same buffers, same row ids.
            _ => self.run_sequential(strategy.sequential_spec()),
        }
    }

    /// Extends the per-`(relation, mask)` indexes over the rows that
    /// became visible at the last merge (incremental: only the delta
    /// rows are hashed). Unkeyed steps have no index at all
    /// ([`NO_INDEX`]): the join scans their row range directly.
    fn extend_indexes(&mut self) {
        for idx in &mut self.idxs {
            idx.extend(&self.rels[idx.rel()]);
        }
    }

    /// Merges one staging buffer into the relations, deduplicating;
    /// returns how many rows were actually appended. With provenance
    /// recording on, the staged justification of each tuple that
    /// actually inserts (the first staged copy in merge order) is
    /// appended to the head relation's justification store.
    fn merge_pending(
        rels: &mut [ColumnarRelation],
        pending: &mut PendingTuples,
        prov: Option<&mut Vec<RelJust>>,
        plans: &[RulePlan],
    ) -> u64 {
        let mut appended = 0u64;
        let mut off = 0;
        match prov {
            None => {
                for &rid in &pending.rels {
                    let rel = &mut rels[rid as usize];
                    let ar = rel.arity();
                    if rel.insert(&pending.data[off..off + ar]) {
                        appended += 1;
                    }
                    off += ar;
                }
            }
            Some(prov) => {
                let mut joff = 0;
                for (i, &rid) in pending.rels.iter().enumerate() {
                    let rel = &mut rels[rid as usize];
                    let ar = rel.arity();
                    let rule = pending.just_rule[i];
                    let blen = plans[rule as usize].steps.len();
                    if rel.insert(&pending.data[off..off + ar]) {
                        appended += 1;
                        prov[rid as usize].push(rule, &pending.just_rows[joff..joff + blen]);
                    }
                    off += ar;
                    joff += blen;
                }
                pending.just_rule.clear();
                pending.just_rows.clear();
            }
        }
        pending.data.clear();
        pending.rels.clear();
        appended
    }

    fn run_sequential(&mut self, strategy: Strategy) {
        let mut scratch = Scratch::default();
        let mut pending = PendingTuples::default();
        let mut first = true;
        loop {
            self.stats.iterations += 1;
            self.extend_indexes();

            for pi in 0..self.plans.len() {
                let plan = &self.plans[pi];
                match strategy {
                    Strategy::Naive => {
                        self.eval_rule(pi, None, &mut scratch, &mut pending);
                    }
                    _ => {
                        if plan.idb_steps.is_empty() {
                            if first {
                                self.eval_rule(pi, None, &mut scratch, &mut pending);
                            }
                        } else if !first {
                            for di in 0..self.plans[pi].idb_steps.len() {
                                let d = self.plans[pi].idb_steps[di];
                                self.eval_rule(pi, Some(d), &mut scratch, &mut pending);
                            }
                        }
                    }
                }
            }

            // Merge: advance the old watermark to the current length, then
            // append this iteration's new tuples — they become the delta.
            for &r in &self.idb_rels {
                self.old_hi[r] = self.rels[r].num_rows();
            }
            let appended =
                Self::merge_pending(&mut self.rels, &mut pending, self.prov.as_mut(), &self.plans);
            self.stats.tuples_derived += appended;
            if appended == 0 {
                break;
            }
            self.profile.push(appended);
            first = false;
        }
    }

    /// The sharded semi-naive fixpoint. Per iteration: every
    /// `(rule, delta step)` pair is split into `shards` contiguous
    /// slices of the delta row range (`OVERSHARD × threads` by default,
    /// so a worker finishing a cheap shard pulls the next instead of
    /// idling); workers join their slice against the shared read-only
    /// relations and indexes, staging derived rows thread-locally; the
    /// merge then applies the staged buffers in `(rule, delta, shard)`
    /// order — deterministic for a fixed `(threads, shards)` pair, and
    /// counter-identical to the sequential engine for **any** pair
    /// (each shard's pre-delta join work is identical, so only the lead
    /// shard's `pre` probe count is accounted; post-delta work is
    /// partitioned by the delta rows and summed).
    ///
    /// With provenance recording on, each `(rule, delta step)` group
    /// instead merges its shards' staged rows in the sequential
    /// engine's staging order (see [`Engine::merge_group_recorded`]), so
    /// row ids and justifications are identical at every thread and
    /// shard count.
    fn run_parallel(&mut self, threads: usize, shards: usize) {
        // Spawned on the first delta iteration (a fixpoint that converges
        // on the seed rules never pays for threads) and dropped with this
        // call: the spawn cost amortizes over the iterations of one
        // evaluation. For sub-millisecond workloads the sequential
        // strategy is the right tool; the counters are identical.
        let mut pool: Option<ThreadPool> = None;
        let mut scratch = Scratch::default();
        let mut pending = PendingTuples::default();
        // Recycled task slots: merged-out staging buffers and scratch
        // space return here and are reused next iteration.
        let mut spare: Vec<ShardTask> = Vec::new();
        let mut first = true;
        loop {
            self.stats.iterations += 1;
            self.extend_indexes();

            let mut appended = 0u64;
            if first {
                // First iteration: only EDB-only rules fire (no deltas
                // exist yet); identical to the sequential engine.
                for pi in 0..self.plans.len() {
                    if self.plans[pi].idb_steps.is_empty() {
                        self.eval_rule(pi, None, &mut scratch, &mut pending);
                    }
                }
                for &r in &self.idb_rels {
                    self.old_hi[r] = self.rels[r].num_rows();
                }
                appended = Self::merge_pending(
                    &mut self.rels,
                    &mut pending,
                    self.prov.as_mut(),
                    &self.plans,
                );
            } else {
                let mut tasks: Vec<ShardTask> = Vec::new();
                for pi in 0..self.plans.len() {
                    for di in 0..self.plans[pi].idb_steps.len() {
                        let d = self.plans[pi].idb_steps[di];
                        let rel = self.plans[pi].steps[d].rel;
                        let (dlo, dhi) = (self.old_hi[rel], self.rels[rel].num_rows());
                        for (si, &(lo, hi)) in
                            shard_ranges(dlo, dhi, shards).iter().enumerate()
                        {
                            // The lead shard always runs (it accounts the
                            // pre-delta probes even over an empty delta,
                            // exactly like the sequential engine); empty
                            // trailing shards contribute nothing.
                            if si > 0 && lo == hi {
                                continue;
                            }
                            let mut t = spare.pop().unwrap_or_default();
                            t.plan_i = pi;
                            t.delta_pos = d;
                            t.range = (lo, hi);
                            t.lead = si == 0;
                            t.counters = Counters::default();
                            // t.pending was cleared by the last merge;
                            // t.scratch keeps its capacity.
                            tasks.push(t);
                        }
                    }
                }
                {
                    let plans = &self.plans;
                    let rels = &self.rels;
                    let idxs = &self.idxs;
                    let old_hi = &self.old_hi;
                    let record = self.prov.is_some();
                    let pool = pool.get_or_insert_with(|| ThreadPool::new(threads));
                    pool.scope(|s| {
                        for t in tasks.iter_mut() {
                            s.execute(move || {
                                let ShardTask {
                                    plan_i,
                                    delta_pos,
                                    range,
                                    scratch,
                                    pending,
                                    counters,
                                    ..
                                } = t;
                                eval_rule_shard(
                                    plans,
                                    rels,
                                    idxs,
                                    old_hi,
                                    *plan_i,
                                    Some(*delta_pos),
                                    *range,
                                    record,
                                    scratch,
                                    pending,
                                    counters,
                                );
                            });
                        }
                    });
                }
                for t in &tasks {
                    if t.lead {
                        self.stats.join_probes += t.counters.pre;
                    }
                    self.stats.join_probes += t.counters.post;
                    self.stats.rule_firings += t.counters.firings;
                }
                for &r in &self.idb_rels {
                    self.old_hi[r] = self.rels[r].num_rows();
                }
                match self.prov.as_mut() {
                    // Deterministic merge: staged buffers in task order =
                    // (rule, delta step, shard top-down).
                    None => {
                        for t in &mut tasks {
                            appended += Self::merge_pending(
                                &mut self.rels,
                                &mut t.pending,
                                None,
                                &self.plans,
                            );
                        }
                    }
                    // Provenance mode: each (rule, delta step) group
                    // merges in the sequential engine's staging order,
                    // so row ids and justifications are thread- and
                    // shard-count independent.
                    Some(prov) => {
                        let mut i = 0;
                        while i < tasks.len() {
                            let key = (tasks[i].plan_i, tasks[i].delta_pos);
                            let mut j = i + 1;
                            while j < tasks.len()
                                && (tasks[j].plan_i, tasks[j].delta_pos) == key
                            {
                                j += 1;
                            }
                            appended += Self::merge_group_recorded(
                                &mut self.rels,
                                prov,
                                &self.plans,
                                &mut tasks[i..j],
                            );
                            i = j;
                        }
                    }
                }
                spare.append(&mut tasks);
            }
            self.stats.tuples_derived += appended;
            if appended == 0 {
                break;
            }
            self.profile.push(appended);
            first = false;
        }
    }

    /// Merges the shards of one `(rule, delta step)` group in the
    /// sequential engine's staging order.
    ///
    /// The join enumerates combinations in **lexicographic-descending
    /// order of the per-step row coordinates** (every step — unkeyed
    /// scan or newest-first index chain — visits rows in strictly
    /// decreasing id order given the rows above it), and the shards
    /// partition the delta coordinate. Merging the shards' staged rows
    /// by largest-coordinates-first therefore reproduces exactly the
    /// order the sequential engine would have staged them in, which is
    /// what makes provenance thread- and shard-count independent. The
    /// coordinates *are* the staged justification bodies, so the
    /// comparison needs no extra bookkeeping.
    fn merge_group_recorded(
        rels: &mut [ColumnarRelation],
        prov: &mut [RelJust],
        plans: &[RulePlan],
        group: &mut [ShardTask],
    ) -> u64 {
        let plan_i = group[0].plan_i;
        let blen = plans[plan_i].steps.len();
        let head_rel = plans[plan_i].head_rel;
        let ar = rels[head_rel].arity();
        let mut cursors = vec![0usize; group.len()];
        let mut appended = 0u64;
        loop {
            let mut best: Option<(usize, &[u32])> = None;
            for (gi, t) in group.iter().enumerate() {
                let c = cursors[gi];
                if c == t.pending.rels.len() {
                    continue;
                }
                let coords = &t.pending.just_rows[c * blen..(c + 1) * blen];
                if !matches!(best, Some((_, b)) if b >= coords) {
                    best = Some((gi, coords));
                }
            }
            let Some((gi, coords)) = best else { break };
            let c = cursors[gi];
            cursors[gi] += 1;
            let tuple = &group[gi].pending.data[c * ar..(c + 1) * ar];
            if rels[head_rel].insert(tuple) {
                appended += 1;
                prov[head_rel].push(plan_i as u32, coords);
            }
        }
        for t in group.iter_mut() {
            t.pending.data.clear();
            t.pending.rels.clear();
            t.pending.just_rule.clear();
            t.pending.just_rows.clear();
        }
        appended
    }

    /// Evaluates one rule with an optional delta position over the full
    /// delta range (the sequential engine's unit of work).
    fn eval_rule(
        &mut self,
        plan_i: usize,
        delta_pos: Option<usize>,
        scratch: &mut Scratch,
        pending: &mut PendingTuples,
    ) {
        let range = match delta_pos {
            Some(d) => {
                let rel = self.plans[plan_i].steps[d].rel;
                (self.old_hi[rel], self.rels[rel].num_rows())
            }
            None => (0, 0),
        };
        let mut counters = Counters::default();
        eval_rule_shard(
            &self.plans,
            &self.rels,
            &self.idxs,
            &self.old_hi,
            plan_i,
            delta_pos,
            range,
            self.prov.is_some(),
            scratch,
            pending,
            &mut counters,
        );
        self.stats.join_probes += counters.pre + counters.post;
        self.stats.rule_firings += counters.firings;
    }

    /// Applies the goal directly over the columnar rows of the goal
    /// predicate (no intermediate `Database`).
    fn goal_answer(&self, goal: &Atom) -> Relation {
        let (ops, nvars) = goal_plan(goal);
        match self.rel_of_pred.get(&goal.pred) {
            Some(&rid) if self.idb_rels.contains(&rid) => {
                select_project(&ops, nvars, self.rels[rid].rows_iter())
            }
            _ => Relation::new(nvars),
        }
    }

    fn into_result(self) -> EvalResult {
        let mut idb_db = Database::new();
        for &r in &self.idb_rels {
            let rel = &self.rels[r];
            let out = idb_db.relation_mut(self.pred_of_rel[r], rel.arity());
            for row in rel.rows_iter() {
                out.insert(row.to_vec());
            }
        }
        EvalResult {
            idb: idb_db,
            stats: self.stats,
        }
    }

    fn into_provenance_result(self) -> ProvenanceResult {
        // Per rule: the dense relation id of each body atom (what the
        // justification body row ids index into).
        let body_rels = self
            .plans
            .iter()
            .map(|p| p.steps.iter().map(|s| s.rel as u32).collect())
            .collect();
        let provenance = Provenance::from_engine(
            self.rels,
            self.pred_of_rel,
            self.rel_of_pred,
            self.idb_rels,
            body_rels,
            self.prov.expect("provenance recording was on"),
        );
        ProvenanceResult {
            stats: self.stats,
            provenance,
        }
    }
}

/// Semi-naive convergence profile: new facts per productive iteration
/// (the executable form of Section 8's boundedness measure). Stage-exact:
/// iteration `k` derives precisely the facts first derivable at stage `k`
/// of the immediate-consequence operator, so this equals the naive
/// round-by-round count at a fraction of the cost. Accepts any
/// semi-naive-family strategy; the parallel engine produces the same
/// per-stage deltas as the sequential one.
pub(crate) fn seminaive_profile(program: &Program, db: &Database, strategy: Strategy) -> Vec<u64> {
    let mut engine = Engine::new(program, db, false);
    engine.run(match strategy {
        Strategy::Naive => Strategy::SemiNaive,
        s => s,
    });
    engine.profile
}

/// Compiles one rule against the dense relation table, registering the
/// `(relation, mask)` indexes it probes.
///
/// The slot numbering and mask (bound-position) computation mirror
/// [`crate::reference`] exactly — the index masks determine the
/// `join_probes` counter, which must stay bit-for-bit stable.
fn compile_rule(
    rule: &Rule,
    idbs: &[Pred],
    rel_of_pred: &FxHashMap<Pred, usize>,
    idxs: &mut Vec<IncrementalIndex>,
    idx_of: &mut FxHashMap<(usize, Vec<usize>), usize>,
) -> RulePlan {
    let mut slots: FxHashMap<Var, usize> = FxHashMap::default();
    let mut bound_slots: Vec<bool> = Vec::new();
    let mut steps = Vec::new();
    let mut idb_steps = Vec::new();
    for (ai, atom) in rule.body.iter().enumerate() {
        let rel = rel_of_pred[&atom.pred];
        let mut mask: Vec<usize> = Vec::new();
        let mut key: Vec<KeyOp> = Vec::new();
        let mut actions: Vec<Action> = Vec::new();
        let mut seen_here: Vec<usize> = Vec::new();
        for (i, t) in atom.args.iter().enumerate() {
            match t {
                Term::Const(c) => {
                    mask.push(i);
                    key.push(KeyOp::Const(*c));
                }
                Term::Var(v) => {
                    let next = slots.len();
                    let s = *slots.entry(*v).or_insert(next);
                    if s >= bound_slots.len() {
                        bound_slots.resize(s + 1, false);
                    }
                    if bound_slots[s] {
                        // Bound by an earlier atom: part of the index key;
                        // the probe guarantees equality, so no action.
                        mask.push(i);
                        key.push(KeyOp::Slot(s));
                    } else if seen_here.contains(&s) {
                        // Repeat within this atom: a filter, not a key
                        // component (mirrors the reference mask exactly).
                        actions.push(Action::Check { pos: i, slot: s });
                    } else {
                        seen_here.push(s);
                        actions.push(Action::Bind { pos: i, slot: s });
                    }
                }
            }
        }
        for &s in &seen_here {
            bound_slots[s] = true;
        }
        // Unkeyed steps scan their snapshot range directly — an
        // empty-mask index would never be extended or probed, so none
        // is registered.
        let idx = if mask.is_empty() {
            NO_INDEX
        } else {
            *idx_of.entry((rel, mask.clone())).or_insert_with(|| {
                idxs.push(IncrementalIndex::new(rel, mask));
                idxs.len() - 1
            })
        };
        let idb = idbs.contains(&atom.pred);
        if idb {
            idb_steps.push(ai);
        }
        steps.push(Step {
            rel,
            idx,
            idb,
            key: key.into_boxed_slice(),
            actions: actions.into_boxed_slice(),
        });
    }
    let head = rule
        .head
        .args
        .iter()
        .map(|t| match t {
            Term::Const(c) => Out::Const(*c),
            Term::Var(v) => Out::Slot(*slots.get(v).expect("safe rule binds head slots")),
        })
        .collect();
    RulePlan {
        head_rel: rel_of_pred[&rule.head.pred],
        head,
        steps: steps.into_boxed_slice(),
        num_slots: slots.len(),
        idb_steps: idb_steps.into_boxed_slice(),
    }
}

/// Evaluates one rule with an optional delta position, with the delta
/// step restricted to the row range `delta_range` (the full delta in
/// the sequential engine, one shard in the parallel engine). Shared
/// state is read-only, so any number of shards may run concurrently;
/// derived rows go to the caller's staging buffer and counters.
#[allow(clippy::too_many_arguments)]
fn eval_rule_shard(
    plans: &[RulePlan],
    rels: &[ColumnarRelation],
    idxs: &[IncrementalIndex],
    old_hi: &[usize],
    plan_i: usize,
    delta_pos: Option<usize>,
    delta_range: (usize, usize),
    record: bool,
    scratch: &mut Scratch,
    pending: &mut PendingTuples,
    counters: &mut Counters,
) {
    let plan = &plans[plan_i];
    scratch.env.resize(plan.num_slots, Const(0));
    scratch.rows.resize(plan.steps.len(), 0);
    let ctx = JoinCtx {
        rels,
        idxs,
        old_hi,
        delta_pos,
        delta_range,
        plan_i,
        record,
    };
    descend(plan, 0, &ctx, scratch, pending, counters);
}

/// Borrowed engine state for one rule-evaluation pass.
struct JoinCtx<'a> {
    rels: &'a [ColumnarRelation],
    idxs: &'a [IncrementalIndex],
    old_hi: &'a [usize],
    delta_pos: Option<usize>,
    /// Row range the delta step reads (`[old_hi, len)` sequentially; one
    /// shard of it in the parallel engine).
    delta_range: (usize, usize),
    /// Index of the plan being evaluated (= the rule index).
    plan_i: usize,
    /// Whether to stage justifications alongside derived tuples.
    record: bool,
}

/// Recursive backtracking join over the plan steps. Slots are bound by
/// overwriting (`Action::Bind`); no unbinding is needed on backtrack
/// because the plan guarantees every slot read happens at a depth after
/// its binding depth, and the next row at the binding depth overwrites.
fn descend(
    plan: &RulePlan,
    depth: usize,
    ctx: &JoinCtx<'_>,
    scratch: &mut Scratch,
    pending: &mut PendingTuples,
    counters: &mut Counters,
) {
    if depth == plan.steps.len() {
        counters.firings += 1;
        scratch.head.clear();
        for op in plan.head.iter() {
            scratch.head.push(match *op {
                Out::Const(c) => c,
                Out::Slot(s) => scratch.env[s],
            });
        }
        // Only buffer tuples not already in the relation (the merge
        // dedups again; this keeps the pending buffer small).
        if !ctx.rels[plan.head_rel].contains(&scratch.head) {
            pending.data.extend_from_slice(&scratch.head);
            pending.rels.push(plan.head_rel as u32);
            if ctx.record {
                // The justification: this rule, instantiated by the row
                // matched at each join depth (body-atom order).
                pending.just_rule.push(ctx.plan_i as u32);
                pending.just_rows.extend_from_slice(&scratch.rows[..plan.steps.len()]);
            }
        }
        return;
    }
    let step = &plan.steps[depth];
    let rel = &ctx.rels[step.rel];

    // Snapshot row range for this step ("last delta occurrence"
    // convention: steps before the delta read the full relation, the
    // delta step reads its delta range, steps after read [0, old_hi)).
    let (lo, hi) = if !step.idb {
        (0, rel.num_rows())
    } else {
        match ctx.delta_pos {
            None => (0, rel.num_rows()),
            Some(d) if depth == d => ctx.delta_range,
            Some(d) if depth < d => (0, rel.num_rows()),
            Some(_) => (0, ctx.old_hi[step.rel]),
        }
    };

    // Probes at or before the delta step are identical across shards
    // (`pre`, accounted once); probes after it are partitioned by the
    // delta rows (`post`, summed across shards).
    if ctx.delta_pos.is_none_or(|d| depth <= d) {
        counters.pre += 1;
    } else {
        counters.post += 1;
    }

    if step.key.is_empty() {
        // Unkeyed step: the empty-mask chain is exactly the rows in
        // descending id order, so scan the range directly — no index
        // traversal, and (for a sharded delta step) no walking through
        // other shards' rows to reach this shard's.
        for r in (lo..hi).rev() {
            match_row(plan, step, rel, r, depth, ctx, scratch, pending, counters);
        }
        return;
    }

    let idx = &ctx.idxs[step.idx];
    scratch.key.clear();
    for op in step.key.iter() {
        scratch.key.push(match *op {
            KeyOp::Const(c) => c,
            KeyOp::Slot(s) => scratch.env[s],
        });
    }
    let mut row = idx.probe(rel, &scratch.key);
    // Chains are newest-first (strictly decreasing row ids): skip rows
    // above the snapshot, stop below it.
    while row != NO_ROW && row as usize >= hi {
        row = idx.next_row(row);
    }
    while row != NO_ROW {
        let r = row as usize;
        if r < lo {
            break;
        }
        match_row(plan, step, rel, r, depth, ctx, scratch, pending, counters);
        row = idx.next_row(row);
    }
}

/// Applies one matched row's bind/check actions and, if they pass,
/// descends to the next step. Returns whether the actions passed.
#[allow(clippy::too_many_arguments)]
fn match_row(
    plan: &RulePlan,
    step: &Step,
    rel: &ColumnarRelation,
    r: usize,
    depth: usize,
    ctx: &JoinCtx<'_>,
    scratch: &mut Scratch,
    pending: &mut PendingTuples,
    counters: &mut Counters,
) -> bool {
    for a in step.actions.iter() {
        match *a {
            Action::Bind { pos, slot } => scratch.env[slot] = rel.value(r, pos),
            Action::Check { pos, slot } => {
                if scratch.env[slot] != rel.value(r, pos) {
                    return false;
                }
            }
        }
    }
    // Derivation coordinate for provenance staging (one word; cheaper
    // than branching on the recording flag here).
    scratch.rows[depth] = r as u32;
    descend(plan, depth + 1, ctx, scratch, pending, counters);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn chain_db(program: &mut Program, n: usize) -> Database {
        // par chain: c0 -> c1 -> ... -> cn, with john = c0
        let par = program.symbols.get_predicate("par").unwrap();
        let mut db = Database::new();
        let mut prev = program.symbols.constant("john");
        for i in 1..=n {
            let c = program.symbols.constant(&format!("c{i}"));
            db.insert(par, vec![prev, c]);
            prev = c;
        }
        db
    }

    fn program_a() -> Program {
        parse_program(
            "?- anc(john, Y).\n\
             anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- anc(X, Z), par(Z, Y).",
        )
        .unwrap()
    }

    #[test]
    fn ancestor_chain_naive() {
        let mut p = program_a();
        let db = chain_db(&mut p, 5);
        let (ans, stats) = answer(&p, &db, Strategy::Naive);
        assert_eq!(ans.len(), 5);
        assert!(stats.iterations >= 5);
    }

    #[test]
    fn ancestor_chain_seminaive_matches_naive() {
        let mut p = program_a();
        let db = chain_db(&mut p, 8);
        let (a1, s1) = answer(&p, &db, Strategy::Naive);
        let (a2, s2) = answer(&p, &db, Strategy::SemiNaive);
        assert_eq!(a1.sorted(), a2.sorted());
        // semi-naive does strictly fewer rule firings on a chain
        assert!(s2.rule_firings < s1.rule_firings, "{s2:?} vs {s1:?}");
    }

    #[test]
    fn program_b_right_linear_same_answers() {
        let mut pb = parse_program(
            "?- anc(john, Y).\n\
             anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- par(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let db = chain_db(&mut pb, 6);
        let (ans, _) = answer(&pb, &db, Strategy::SemiNaive);
        assert_eq!(ans.len(), 6);
    }

    #[test]
    fn program_c_nonlinear_same_answers() {
        let mut pc = parse_program(
            "?- anc(john, Y).\n\
             anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- anc(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let db = chain_db(&mut pc, 6);
        let (ans, _) = answer(&pc, &db, Strategy::SemiNaive);
        assert_eq!(ans.len(), 6);
    }

    #[test]
    fn program_d_monadic_same_answers() {
        let mut pd = parse_program(
            "?- ancjohn(Y).\n\
             ancjohn(Y) :- par(john, Y).\n\
             ancjohn(Y) :- ancjohn(Z), par(Z, Y).",
        )
        .unwrap();
        let db = chain_db(&mut pd, 6);
        let (ans, _) = answer(&pd, &db, Strategy::SemiNaive);
        assert_eq!(ans.len(), 6);
    }

    #[test]
    fn example_1_1_all_four_programs_agree() {
        // The paper's semantic-equivalence claim, checked on a branching DB.
        let sources = [
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y).",
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), anc(Z, Y).",
            "?- ancjohn(Y).\nancjohn(Y) :- par(john, Y).\nancjohn(Y) :- ancjohn(Z), par(Z, Y).",
        ];
        let mut answers = Vec::new();
        for src in sources {
            let mut p = parse_program(src).unwrap();
            let par = p.symbols.get_predicate("par").unwrap();
            let mut db = Database::new();
            let names = ["john", "a", "b", "c", "d", "e"];
            let cs: Vec<Const> = names.iter().map(|n| p.symbols.constant(n)).collect();
            // tree: john->a, john->b, a->c, b->d, d->e, plus an unrelated edge e->john? no: keep acyclic
            for (i, j) in [(0, 1), (0, 2), (1, 3), (2, 4), (4, 5)] {
                db.insert(par, vec![cs[i], cs[j]]);
            }
            let (ans, _) = answer(&p, &db, Strategy::SemiNaive);
            answers.push(ans.sorted());
        }
        for w in answers.windows(2) {
            assert_eq!(w[0], w[1], "Example 1.1 programs must be equivalent");
        }
        assert_eq!(answers[0].len(), 5);
    }

    #[test]
    fn goal_selection_with_repeated_vars() {
        // cycle program: p(X, X) finds nodes on cycles
        let mut p = parse_program(
            "?- p(X, X).\n\
             p(X, Y) :- b(X, Y).\n\
             p(X, Y) :- p(X, Z), b(Z, Y).",
        )
        .unwrap();
        let b = p.symbols.get_predicate("b").unwrap();
        let mut db = Database::new();
        let c: Vec<Const> = (0..5).map(|i| p.symbols.constant(&format!("n{i}"))).collect();
        // cycle n0->n1->n2->n0 and tail n3->n4
        for (i, j) in [(0, 1), (1, 2), (2, 0), (3, 4)] {
            db.insert(b, vec![c[i], c[j]]);
        }
        let (ans, _) = answer(&p, &db, Strategy::SemiNaive);
        assert_eq!(ans.len(), 3); // exactly the cycle nodes
        assert!(ans.contains(&[c[0]]));
        assert!(!ans.contains(&[c[3]]));
    }

    #[test]
    fn boolean_goal() {
        let p = parse_program(
            "?- p(a, b).\n\
             p(X, Y) :- b(X, Y).\n\
             p(X, Y) :- p(X, Z), b(Z, Y).",
        )
        .unwrap();
        let b = p.symbols.get_predicate("b").unwrap();
        let ca = p.symbols.get_constant("a").unwrap();
        let cb = p.symbols.get_constant("b").unwrap();
        let mut db = Database::new();
        db.insert(b, vec![ca, cb]);
        let (ans, _) = answer(&p, &db, Strategy::SemiNaive);
        assert_eq!(ans.arity(), 0);
        assert_eq!(ans.len(), 1); // true

        let mut db2 = Database::new();
        db2.insert(b, vec![cb, ca]);
        let (ans2, _) = answer(&p, &db2, Strategy::SemiNaive);
        assert_eq!(ans2.len(), 0); // false
    }

    #[test]
    fn constants_in_rule_bodies() {
        let mut p = parse_program(
            "?- reach(Y).\n\
             reach(Y) :- e(root, Y).\n\
             reach(Y) :- reach(X), e(X, Y).",
        )
        .unwrap();
        let e = p.symbols.get_predicate("e").unwrap();
        let root = p.symbols.get_constant("root").unwrap();
        let c: Vec<Const> = (0..4).map(|i| p.symbols.constant(&format!("m{i}"))).collect();
        let mut db = Database::new();
        db.insert(e, vec![root, c[0]]);
        db.insert(e, vec![c[0], c[1]]);
        db.insert(e, vec![c[2], c[3]]); // unreachable from root
        let (ans, _) = answer(&p, &db, Strategy::SemiNaive);
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn empty_database_converges() {
        let p = program_a();
        let db = Database::new();
        let (ans, stats) = answer(&p, &db, Strategy::SemiNaive);
        assert_eq!(ans.len(), 0);
        assert!(stats.iterations <= 2);
        let (ans2, _) = answer(&p, &db, Strategy::Naive);
        assert_eq!(ans2.len(), 0);
    }

    #[test]
    fn same_generation_nonlinear() {
        let mut p = parse_program(
            "?- sg(a, Y).\n\
             sg(X, Y) :- flat(X, Y).\n\
             sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).",
        )
        .unwrap();
        let up = p.symbols.get_predicate("up").unwrap();
        let flat = p.symbols.get_predicate("flat").unwrap();
        let down = p.symbols.get_predicate("down").unwrap();
        let names = ["a", "b", "p1", "p2", "q1", "q2"];
        let cs: Vec<Const> = names.iter().map(|n| p.symbols.constant(n)).collect();
        let mut db = Database::new();
        // a up p1, b up p2, p1 flat p2, p2 down b... build so sg(a,b) holds
        db.insert(up, vec![cs[0], cs[2]]);
        db.insert(flat, vec![cs[2], cs[3]]);
        db.insert(down, vec![cs[3], cs[1]]);
        let (ans, _) = answer(&p, &db, Strategy::SemiNaive);
        assert!(ans.contains(&[cs[1]]));
    }

    #[test]
    fn naive_and_seminaive_agree_on_idb_model() {
        let mut p = program_a();
        let db = chain_db(&mut p, 7);
        let r1 = evaluate(&p, &db, Strategy::Naive);
        let r2 = evaluate(&p, &db, Strategy::SemiNaive);
        let anc = p.symbols.get_predicate("anc").unwrap();
        assert_eq!(
            r1.idb.relation(anc).unwrap().sorted(),
            r2.idb.relation(anc).unwrap().sorted()
        );
    }

    #[test]
    fn stats_match_reference_engine_exactly() {
        // The storage engine's contract: work counters identical to the
        // preserved tuple-at-a-time evaluator, both strategies.
        let sources = [
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), anc(Z, Y).",
            "?- p(X, X).\np(X, Y) :- par(X, Y).\np(X, Y) :- p(X, Z), par(Z, Y).",
        ];
        for src in sources {
            for strategy in [Strategy::Naive, Strategy::SemiNaive] {
                let mut p = parse_program(src).unwrap();
                let db = chain_db(&mut p, 9);
                let new = evaluate(&p, &db, strategy);
                let old = crate::reference::evaluate(&p, &db, strategy);
                assert_eq!(new.stats, old.stats, "{src} {strategy:?}");
                for (pred, rel) in old.idb.iter() {
                    assert_eq!(
                        new.idb.relation(pred).map(|r| r.sorted()),
                        Some(rel.sorted()),
                        "{src} {strategy:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn answer_skips_database_materialization_but_agrees() {
        let mut p = program_a();
        let db = chain_db(&mut p, 7);
        let (fast, s1) = answer(&p, &db, Strategy::SemiNaive);
        let result = evaluate(&p, &db, Strategy::SemiNaive);
        let anc = p.symbols.get_predicate("anc").unwrap();
        let slow = apply_goal(&p.goal, result.idb.relation(anc).unwrap());
        assert_eq!(fast.sorted(), slow.sorted());
        assert_eq!(s1, result.stats);
    }

    /// Unsorted per-predicate rows: observes insertion (row-id) order.
    fn raw_model(result: &EvalResult) -> Vec<(u32, Vec<Vec<Const>>)> {
        let mut v: Vec<(u32, Vec<Vec<Const>>)> = result
            .idb
            .iter()
            .map(|(p, r)| (p.0, r.iter().cloned().collect()))
            .collect();
        v.sort_by_key(|(p, _)| *p);
        v
    }

    #[test]
    fn parallel_matches_sequential_stats_and_model() {
        let sources = [
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y).",
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), anc(Z, Y).",
            "?- p(X, X).\np(X, Y) :- par(X, Y).\np(X, Y) :- p(X, Z), par(Z, Y).",
        ];
        for src in sources {
            let mut p = parse_program(src).unwrap();
            let db = chain_db(&mut p, 9);
            let seq = evaluate(&p, &db, Strategy::SemiNaive);
            for threads in [2, 3, 8] {
                let par = evaluate(&p, &db, Strategy::SemiNaiveParallel { threads });
                assert_eq!(par.stats, seq.stats, "{src} threads={threads}");
                let mut a = raw_model(&par);
                let mut b = raw_model(&seq);
                for (_, rows) in a.iter_mut().chain(b.iter_mut()) {
                    rows.sort();
                }
                assert_eq!(a, b, "{src} threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_one_thread_is_the_sequential_path_byte_for_byte() {
        // `threads <= 1` routes through the sequential code path, so even
        // the row ids (insertion order) are identical.
        let mut p = program_a();
        let db = chain_db(&mut p, 8);
        let seq = evaluate(&p, &db, Strategy::SemiNaive);
        for threads in [0, 1] {
            let par = evaluate(&p, &db, Strategy::SemiNaiveParallel { threads });
            assert_eq!(par.stats, seq.stats);
            assert_eq!(raw_model(&par), raw_model(&seq), "insertion order must match");
        }
    }

    #[test]
    fn parallel_is_deterministic_per_thread_count() {
        // Same thread count => identical row ids across runs (the merge
        // applies staged buffers in (rule, delta, shard) order).
        let mut p = parse_program(
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let db = chain_db(&mut p, 10);
        let first = evaluate(&p, &db, Strategy::SemiNaiveParallel { threads: 4 });
        for _ in 0..3 {
            let again = evaluate(&p, &db, Strategy::SemiNaiveParallel { threads: 4 });
            assert_eq!(again.stats, first.stats);
            assert_eq!(raw_model(&again), raw_model(&first));
        }
    }

    #[test]
    fn parallel_delta_at_front_matches_sequential_row_order() {
        // When every recursive rule's delta step is its first body atom
        // (Program A's shape), top-down shard order reproduces the
        // sequential enumeration exactly, row ids included.
        let mut p = program_a();
        let db = chain_db(&mut p, 12);
        let seq = evaluate(&p, &db, Strategy::SemiNaive);
        let par = evaluate(&p, &db, Strategy::SemiNaiveParallel { threads: 4 });
        assert_eq!(par.stats, seq.stats);
        assert_eq!(raw_model(&par), raw_model(&seq));
    }

    #[test]
    fn parallel_answer_and_profile_agree() {
        let mut p = program_a();
        let db = chain_db(&mut p, 7);
        let (seq_ans, seq_stats) = answer(&p, &db, Strategy::SemiNaive);
        let (par_ans, par_stats) = answer(&p, &db, Strategy::SemiNaiveParallel { threads: 3 });
        assert_eq!(par_ans.sorted(), seq_ans.sorted());
        assert_eq!(par_stats, seq_stats);
        assert_eq!(
            seminaive_profile(&p, &db, Strategy::SemiNaive),
            seminaive_profile(&p, &db, Strategy::SemiNaiveParallel { threads: 3 }),
        );
    }

    #[test]
    fn parallel_empty_database_converges() {
        let p = program_a();
        let db = Database::new();
        let (ans, stats) = answer(&p, &db, Strategy::SemiNaiveParallel { threads: 4 });
        assert_eq!(ans.len(), 0);
        assert!(stats.iterations <= 2);
    }

    #[test]
    fn parallel_more_threads_than_delta_rows() {
        // Shards beyond the delta size are empty and skipped; the lead
        // shard still accounts the sequential probe counts.
        let mut p = program_a();
        let db = chain_db(&mut p, 2);
        let seq = evaluate(&p, &db, Strategy::SemiNaive);
        let par = evaluate(&p, &db, Strategy::SemiNaiveParallel { threads: 16 });
        assert_eq!(par.stats, seq.stats);
    }

    #[test]
    fn apply_goal_repeated_vars_and_constants() {
        let mut sy = crate::ast::Symbols::new();
        let p = sy.predicate("p");
        let a = sy.constant("a");
        let b = sy.constant("b");
        let x = sy.variable("X");
        // goal p(a, X, X): select first = a, positions 2 = 3, project X
        let goal = Atom::new(p, vec![Term::Const(a), Term::Var(x), Term::Var(x)]);
        let rel: Relation = [vec![a, b, b], vec![a, a, b], vec![b, b, b], vec![a, a, a]]
            .into_iter()
            .collect();
        let out = apply_goal(&goal, &rel);
        assert_eq!(out.arity(), 1);
        assert_eq!(out.sorted(), vec![vec![a], vec![b]]);
    }
}
