//! Bottom-up evaluation: naive and semi-naive fixpoints with instrumented
//! statistics.
//!
//! Minimum-model semantics per Section 2.1 of the paper: the output of a
//! program on a database is the least set of ground atoms containing the
//! database and closed under the rules; the goal then applies a
//! selection/projection. The evaluator reports *work counters*
//! ([`EvalStats`]) — rule firings, join probes, derived tuples — because
//! the paper's performance claims (Example 1.1: Program D ≪ Programs A–C;
//! Section 7: magic pruning) are about work, not wall-clock on any
//! particular machine.

use std::collections::HashMap;

use crate::ast::{Atom, Const, Pred, Program, Rule, Term, Var};
use crate::db::{Database, Relation, Tuple};

/// Evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Recompute every rule on the full relations each iteration.
    Naive,
    /// Delta-driven evaluation (each derivation uses at least one
    /// last-iteration fact).
    SemiNaive,
}

/// Work counters accumulated during evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of fixpoint iterations until convergence.
    pub iterations: usize,
    /// Successful rule-head instantiations (including rederivations).
    pub rule_firings: u64,
    /// Distinct new tuples added to IDB relations.
    pub tuples_derived: u64,
    /// Index probes performed by the join machinery.
    pub join_probes: u64,
}

impl EvalStats {
    /// Total work proxy used by the experiment harness (firings + probes).
    pub fn work(&self) -> u64 {
        self.rule_firings + self.join_probes
    }
}

/// The result of a fixpoint evaluation.
#[derive(Clone, Debug)]
pub struct EvalResult {
    /// Database containing the computed IDB relations.
    pub idb: Database,
    /// Work counters.
    pub stats: EvalStats,
}

/// Evaluates `program` on `db` to the minimum model, returning the IDB
/// relations and statistics.
pub fn evaluate(program: &Program, db: &Database, strategy: Strategy) -> EvalResult {
    Evaluator::new(program, db).run(strategy)
}

/// Evaluates and applies the goal: the answer relation (arity = number of
/// distinct goal variables) plus statistics.
pub fn answer(program: &Program, db: &Database, strategy: Strategy) -> (Relation, EvalStats) {
    let result = evaluate(program, db, strategy);
    let rel = result
        .idb
        .relation(program.goal.pred)
        .cloned()
        .unwrap_or_else(|| Relation::new(program.goal.arity()));
    (apply_goal(&program.goal, &rel), result.stats)
}

/// Applies a goal atom as a selection + projection: keeps tuples matching
/// the goal's constants and repeated variables, projected onto the
/// distinct variables in first-occurrence order.
pub fn apply_goal(goal: &Atom, rel: &Relation) -> Relation {
    // distinct variables in first-occurrence order, with their first position
    let mut var_positions: Vec<(Var, usize)> = Vec::new();
    for (i, t) in goal.args.iter().enumerate() {
        if let Term::Var(v) = t {
            if !var_positions.iter().any(|(w, _)| w == v) {
                var_positions.push((*v, i));
            }
        }
    }
    let mut out = Relation::new(var_positions.len());
    'tuples: for t in rel.iter() {
        debug_assert_eq!(t.len(), goal.arity());
        // check constants and repeated variables
        let mut bind: HashMap<Var, Const> = HashMap::new();
        for (i, arg) in goal.args.iter().enumerate() {
            match arg {
                Term::Const(c) => {
                    if t[i] != *c {
                        continue 'tuples;
                    }
                }
                Term::Var(v) => match bind.get(v) {
                    Some(&c) if c != t[i] => continue 'tuples,
                    Some(_) => {}
                    None => {
                        bind.insert(*v, t[i]);
                    }
                },
            }
        }
        out.insert(var_positions.iter().map(|&(_, i)| t[i]).collect());
    }
    out
}

/// A term pattern compiled to dense rule-local slots.
#[derive(Clone, Copy, Debug)]
enum Pat {
    /// A rule-local variable slot.
    Slot(usize),
    /// A constant that must match.
    Const(Const),
}

#[derive(Clone, Debug)]
struct CompiledAtom {
    pred: Pred,
    pattern: Vec<Pat>,
    /// Argument positions that are bound when this atom is evaluated
    /// left-to-right (constants, slots bound earlier, and repeats within
    /// this atom).
    bound_positions: Vec<usize>,
}

#[derive(Clone, Debug)]
struct CompiledRule {
    head_pred: Pred,
    head_pattern: Vec<Pat>,
    body: Vec<CompiledAtom>,
    num_slots: usize,
    /// Body positions whose predicate is an IDB of the program.
    idb_positions: Vec<usize>,
}

fn compile_rule(rule: &Rule, idbs: &[Pred]) -> CompiledRule {
    let mut slots: HashMap<Var, usize> = HashMap::new();
    let slot_of = |v: Var, slots: &mut HashMap<Var, usize>| {
        let next = slots.len();
        *slots.entry(v).or_insert(next)
    };
    let mut body = Vec::new();
    let mut bound_slots: Vec<bool> = Vec::new();
    for atom in &rule.body {
        let mut pattern = Vec::new();
        let mut bound_positions = Vec::new();
        let mut seen_here: Vec<usize> = Vec::new();
        for (i, t) in atom.args.iter().enumerate() {
            match t {
                Term::Const(c) => {
                    pattern.push(Pat::Const(*c));
                    bound_positions.push(i);
                }
                Term::Var(v) => {
                    let s = slot_of(*v, &mut slots);
                    if s >= bound_slots.len() {
                        bound_slots.resize(s + 1, false);
                    }
                    // Only slots bound by *earlier atoms* key the index;
                    // a repeat within this atom (e.g. `p(X, X)`) is a
                    // filter applied during tuple matching.
                    if bound_slots[s] {
                        bound_positions.push(i);
                    }
                    seen_here.push(s);
                    pattern.push(Pat::Slot(s));
                }
            }
        }
        for &s in &seen_here {
            bound_slots[s] = true;
        }
        body.push(CompiledAtom {
            pred: atom.pred,
            pattern,
            bound_positions,
        });
    }
    let head_pattern = rule
        .head
        .args
        .iter()
        .map(|t| match t {
            Term::Const(c) => Pat::Const(*c),
            Term::Var(v) => Pat::Slot(*slots.get(v).expect("safe rule")),
        })
        .collect();
    let idb_positions = rule
        .body
        .iter()
        .enumerate()
        .filter(|(_, a)| idbs.contains(&a.pred))
        .map(|(i, _)| i)
        .collect();
    CompiledRule {
        head_pred: rule.head.pred,
        head_pattern,
        body,
        num_slots: slots.len(),
        idb_positions,
    }
}

/// Which snapshot a body atom reads from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Source {
    /// EDB relation from the input database.
    Edb,
    /// Current full IDB relation.
    Full,
    /// IDB relation as of the previous iteration.
    Old,
    /// Facts derived exactly in the previous iteration.
    Delta,
}

type Index = HashMap<Vec<Const>, Vec<u32>>;

struct Evaluator<'a> {
    program: &'a Program,
    rules: Vec<CompiledRule>,
    edb: HashMap<Pred, Vec<Tuple>>,
    arity: HashMap<Pred, usize>,
    stats: EvalStats,
}

impl<'a> Evaluator<'a> {
    fn new(program: &'a Program, db: &Database) -> Self {
        let idbs = program.idb_predicates();
        let rules = program.rules.iter().map(|r| compile_rule(r, &idbs)).collect();
        let mut edb: HashMap<Pred, Vec<Tuple>> = HashMap::new();
        let mut arity: HashMap<Pred, usize> = HashMap::new();
        for (p, r) in db.iter() {
            edb.insert(p, r.iter().cloned().collect());
            arity.insert(p, r.arity());
        }
        for r in &program.rules {
            arity.entry(r.head.pred).or_insert_with(|| r.head.arity());
            for a in &r.body {
                arity.entry(a.pred).or_insert_with(|| a.arity());
            }
        }
        Self {
            program,
            rules,
            edb,
            arity,
            stats: EvalStats::default(),
        }
    }

    fn run(mut self, strategy: Strategy) -> EvalResult {
        let idbs = self.program.idb_predicates();
        let mut full: HashMap<Pred, Vec<Tuple>> = idbs.iter().map(|&p| (p, Vec::new())).collect();
        let mut full_set: HashMap<Pred, std::collections::HashSet<Tuple>> =
            idbs.iter().map(|&p| (p, Default::default())).collect();
        let mut old: HashMap<Pred, Vec<Tuple>> = full.clone();
        let mut delta: HashMap<Pred, Vec<Tuple>> = full.clone();

        let mut first = true;
        loop {
            self.stats.iterations += 1;
            let mut new: HashMap<Pred, Vec<Tuple>> = HashMap::new();
            let mut indexes: HashMap<(Pred, Source, Vec<usize>), Index> = HashMap::new();

            let rules = std::mem::take(&mut self.rules);
            for rule in &rules {
                match strategy {
                    Strategy::Naive => {
                        self.eval_rule(rule, None, &full, &old, &delta, &mut indexes, |pred, t| {
                            if !full_set[&pred].contains(&t) {
                                new.entry(pred).or_default().push(t);
                            }
                        });
                    }
                    Strategy::SemiNaive => {
                        if rule.idb_positions.is_empty() {
                            if first {
                                self.eval_rule(
                                    rule,
                                    None,
                                    &full,
                                    &old,
                                    &delta,
                                    &mut indexes,
                                    |pred, t| {
                                        if !full_set[&pred].contains(&t) {
                                            new.entry(pred).or_default().push(t);
                                        }
                                    },
                                );
                            }
                        } else if !first {
                            for &d in &rule.idb_positions {
                                self.eval_rule(
                                    rule,
                                    Some(d),
                                    &full,
                                    &old,
                                    &delta,
                                    &mut indexes,
                                    |pred, t| {
                                        if !full_set[&pred].contains(&t) {
                                            new.entry(pred).or_default().push(t);
                                        }
                                    },
                                );
                            }
                        }
                    }
                }
            }
            self.rules = rules;

            // merge: old ← full; delta ← new; full ← full ∪ new
            let mut any = false;
            for (&p, f) in &full {
                old.insert(p, f.clone());
            }
            for (p, tuples) in new {
                let set = full_set.get_mut(&p).expect("idb pred");
                let mut added = Vec::new();
                for t in tuples {
                    if set.insert(t.clone()) {
                        added.push(t);
                    }
                }
                self.stats.tuples_derived += added.len() as u64;
                if !added.is_empty() {
                    any = true;
                }
                full.get_mut(&p).expect("idb pred").extend(added.iter().cloned());
                delta.insert(p, added);
            }
            // clear deltas of predicates that derived nothing this round
            // (old holds the pre-merge sizes)
            for &p in &idbs {
                if old[&p].len() == full[&p].len() {
                    delta.insert(p, Vec::new());
                }
            }
            if !any {
                break;
            }
            first = false;
        }

        let mut idb_db = Database::new();
        for (&p, tuples) in &full {
            let ar = *self.arity.get(&p).unwrap_or(&0);
            let rel = idb_db.relation_mut(p, ar);
            for t in tuples {
                rel.insert(t.clone());
            }
        }
        EvalResult {
            idb: idb_db,
            stats: self.stats,
        }
    }

    /// Evaluates one rule with an optional delta position, feeding head
    /// tuples to `emit`.
    fn eval_rule(
        &mut self,
        rule: &CompiledRule,
        delta_pos: Option<usize>,
        full: &HashMap<Pred, Vec<Tuple>>,
        old: &HashMap<Pred, Vec<Tuple>>,
        delta: &HashMap<Pred, Vec<Tuple>>,
        indexes: &mut HashMap<(Pred, Source, Vec<usize>), Index>,
        mut emit: impl FnMut(Pred, Tuple),
    ) {
        let ctx = JoinCtx {
            edb: &self.edb,
            full,
            old,
            delta,
            delta_pos,
        };
        let mut env: Vec<Option<Const>> = vec![None; rule.num_slots];
        let mut probes = 0u64;
        let mut firings = 0u64;
        descend(
            rule, 0, &mut env, &ctx, indexes, &mut probes, &mut firings, &mut emit,
        );
        self.stats.join_probes += probes;
        self.stats.rule_firings += firings;
    }
}

/// Borrowed snapshots for one rule-evaluation pass.
struct JoinCtx<'b> {
    edb: &'b HashMap<Pred, Vec<Tuple>>,
    full: &'b HashMap<Pred, Vec<Tuple>>,
    old: &'b HashMap<Pred, Vec<Tuple>>,
    delta: &'b HashMap<Pred, Vec<Tuple>>,
    delta_pos: Option<usize>,
}

impl<'b> JoinCtx<'b> {
    fn source_of(&self, pos: usize, atom: &CompiledAtom) -> Source {
        if !self.full.contains_key(&atom.pred) {
            Source::Edb
        } else {
            // "last delta occurrence" convention: positions before the
            // delta read the up-to-date full relation, positions after it
            // read the previous iteration's relation.
            match self.delta_pos {
                None => Source::Full,
                Some(d) if pos == d => Source::Delta,
                Some(d) if pos < d => Source::Full,
                Some(_) => Source::Old,
            }
        }
    }

    fn tuples_of(&self, src: Source, pred: Pred) -> &'b [Tuple] {
        let map = match src {
            Source::Edb => self.edb,
            Source::Full => self.full,
            Source::Old => self.old,
            Source::Delta => self.delta,
        };
        map.get(&pred).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Recursive backtracking join over the body atoms.
#[allow(clippy::too_many_arguments)]
fn descend(
    rule: &CompiledRule,
    pos: usize,
    env: &mut Vec<Option<Const>>,
    ctx: &JoinCtx<'_>,
    indexes: &mut HashMap<(Pred, Source, Vec<usize>), Index>,
    probes: &mut u64,
    firings: &mut u64,
    emit: &mut dyn FnMut(Pred, Tuple),
) {
    if pos == rule.body.len() {
        let t: Tuple = rule
            .head_pattern
            .iter()
            .map(|p| match p {
                Pat::Const(c) => *c,
                Pat::Slot(s) => env[*s].expect("safe rule binds head slots"),
            })
            .collect();
        *firings += 1;
        emit(rule.head_pred, t);
        return;
    }
    let atom = &rule.body[pos];
    let src = ctx.source_of(pos, atom);
    let tuples = ctx.tuples_of(src, atom.pred);
    // Build/fetch the hash index for this (pred, source, mask).
    let key = (atom.pred, src, atom.bound_positions.clone());
    let index = indexes.entry(key).or_insert_with(|| {
        let mut idx: Index = HashMap::new();
        for (ti, t) in tuples.iter().enumerate() {
            let k: Vec<Const> = atom.bound_positions.iter().map(|&i| t[i]).collect();
            idx.entry(k).or_default().push(ti as u32);
        }
        idx
    });
    let probe_key: Vec<Const> = atom
        .bound_positions
        .iter()
        .map(|&i| match atom.pattern[i] {
            Pat::Const(c) => c,
            Pat::Slot(s) => env[s].expect("bound slot"),
        })
        .collect();
    *probes += 1;
    let Some(matches) = index.get(&probe_key) else {
        return;
    };
    let matches = matches.clone();
    for ti in matches {
        let t = &tuples[ti as usize];
        // bind free slots; record which to unbind on backtrack
        let mut bound_here: Vec<usize> = Vec::new();
        let mut ok = true;
        for (i, pat) in atom.pattern.iter().enumerate() {
            match pat {
                Pat::Const(c) => {
                    if t[i] != *c {
                        ok = false;
                        break;
                    }
                }
                Pat::Slot(s) => match env[*s] {
                    Some(c) => {
                        if c != t[i] {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        env[*s] = Some(t[i]);
                        bound_here.push(*s);
                    }
                },
            }
        }
        if ok {
            descend(rule, pos + 1, env, ctx, indexes, probes, firings, emit);
        }
        for s in bound_here {
            env[s] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn chain_db(program: &mut Program, n: usize) -> Database {
        // par chain: c0 -> c1 -> ... -> cn, with john = c0
        let par = program.symbols.get_predicate("par").unwrap();
        let mut db = Database::new();
        let mut prev = program.symbols.constant("john");
        for i in 1..=n {
            let c = program.symbols.constant(&format!("c{i}"));
            db.insert(par, vec![prev, c]);
            prev = c;
        }
        db
    }

    fn program_a() -> Program {
        parse_program(
            "?- anc(john, Y).\n\
             anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- anc(X, Z), par(Z, Y).",
        )
        .unwrap()
    }

    #[test]
    fn ancestor_chain_naive() {
        let mut p = program_a();
        let db = chain_db(&mut p, 5);
        let (ans, stats) = answer(&p, &db, Strategy::Naive);
        assert_eq!(ans.len(), 5);
        assert!(stats.iterations >= 5);
    }

    #[test]
    fn ancestor_chain_seminaive_matches_naive() {
        let mut p = program_a();
        let db = chain_db(&mut p, 8);
        let (a1, s1) = answer(&p, &db, Strategy::Naive);
        let (a2, s2) = answer(&p, &db, Strategy::SemiNaive);
        assert_eq!(a1.sorted(), a2.sorted());
        // semi-naive does strictly fewer rule firings on a chain
        assert!(s2.rule_firings < s1.rule_firings, "{s2:?} vs {s1:?}");
    }

    #[test]
    fn program_b_right_linear_same_answers() {
        let mut pb = parse_program(
            "?- anc(john, Y).\n\
             anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- par(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let db = chain_db(&mut pb, 6);
        let (ans, _) = answer(&pb, &db, Strategy::SemiNaive);
        assert_eq!(ans.len(), 6);
    }

    #[test]
    fn program_c_nonlinear_same_answers() {
        let mut pc = parse_program(
            "?- anc(john, Y).\n\
             anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- anc(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let db = chain_db(&mut pc, 6);
        let (ans, _) = answer(&pc, &db, Strategy::SemiNaive);
        assert_eq!(ans.len(), 6);
    }

    #[test]
    fn program_d_monadic_same_answers() {
        let mut pd = parse_program(
            "?- ancjohn(Y).\n\
             ancjohn(Y) :- par(john, Y).\n\
             ancjohn(Y) :- ancjohn(Z), par(Z, Y).",
        )
        .unwrap();
        let db = chain_db(&mut pd, 6);
        let (ans, _) = answer(&pd, &db, Strategy::SemiNaive);
        assert_eq!(ans.len(), 6);
    }

    #[test]
    fn example_1_1_all_four_programs_agree() {
        // The paper's semantic-equivalence claim, checked on a branching DB.
        let sources = [
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y).",
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), anc(Z, Y).",
            "?- ancjohn(Y).\nancjohn(Y) :- par(john, Y).\nancjohn(Y) :- ancjohn(Z), par(Z, Y).",
        ];
        let mut answers = Vec::new();
        for src in sources {
            let mut p = parse_program(src).unwrap();
            let par = p.symbols.get_predicate("par").unwrap();
            let mut db = Database::new();
            let names = ["john", "a", "b", "c", "d", "e"];
            let cs: Vec<Const> = names.iter().map(|n| p.symbols.constant(n)).collect();
            // tree: john->a, john->b, a->c, b->d, d->e, plus an unrelated edge e->john? no: keep acyclic
            for (i, j) in [(0, 1), (0, 2), (1, 3), (2, 4), (4, 5)] {
                db.insert(par, vec![cs[i], cs[j]]);
            }
            let (ans, _) = answer(&p, &db, Strategy::SemiNaive);
            answers.push(ans.sorted());
        }
        for w in answers.windows(2) {
            assert_eq!(w[0], w[1], "Example 1.1 programs must be equivalent");
        }
        assert_eq!(answers[0].len(), 5);
    }

    #[test]
    fn goal_selection_with_repeated_vars() {
        // cycle program: p(X, X) finds nodes on cycles
        let mut p = parse_program(
            "?- p(X, X).\n\
             p(X, Y) :- b(X, Y).\n\
             p(X, Y) :- p(X, Z), b(Z, Y).",
        )
        .unwrap();
        let b = p.symbols.get_predicate("b").unwrap();
        let mut db = Database::new();
        let c: Vec<Const> = (0..5).map(|i| p.symbols.constant(&format!("n{i}"))).collect();
        // cycle n0->n1->n2->n0 and tail n3->n4
        for (i, j) in [(0, 1), (1, 2), (2, 0), (3, 4)] {
            db.insert(b, vec![c[i], c[j]]);
        }
        let (ans, _) = answer(&p, &db, Strategy::SemiNaive);
        assert_eq!(ans.len(), 3); // exactly the cycle nodes
        assert!(ans.contains(&[c[0]]));
        assert!(!ans.contains(&[c[3]]));
    }

    #[test]
    fn boolean_goal() {
        let p = parse_program(
            "?- p(a, b).\n\
             p(X, Y) :- b(X, Y).\n\
             p(X, Y) :- p(X, Z), b(Z, Y).",
        )
        .unwrap();
        let b = p.symbols.get_predicate("b").unwrap();
        let ca = p.symbols.get_constant("a").unwrap();
        let cb = p.symbols.get_constant("b").unwrap();
        let mut db = Database::new();
        db.insert(b, vec![ca, cb]);
        let (ans, _) = answer(&p, &db, Strategy::SemiNaive);
        assert_eq!(ans.arity(), 0);
        assert_eq!(ans.len(), 1); // true

        let mut db2 = Database::new();
        db2.insert(b, vec![cb, ca]);
        let (ans2, _) = answer(&p, &db2, Strategy::SemiNaive);
        assert_eq!(ans2.len(), 0); // false
    }

    #[test]
    fn constants_in_rule_bodies() {
        let mut p = parse_program(
            "?- reach(Y).\n\
             reach(Y) :- e(root, Y).\n\
             reach(Y) :- reach(X), e(X, Y).",
        )
        .unwrap();
        let e = p.symbols.get_predicate("e").unwrap();
        let root = p.symbols.get_constant("root").unwrap();
        let c: Vec<Const> = (0..4).map(|i| p.symbols.constant(&format!("m{i}"))).collect();
        let mut db = Database::new();
        db.insert(e, vec![root, c[0]]);
        db.insert(e, vec![c[0], c[1]]);
        db.insert(e, vec![c[2], c[3]]); // unreachable from root
        let (ans, _) = answer(&p, &db, Strategy::SemiNaive);
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn empty_database_converges() {
        let p = program_a();
        let db = Database::new();
        let (ans, stats) = answer(&p, &db, Strategy::SemiNaive);
        assert_eq!(ans.len(), 0);
        assert!(stats.iterations <= 2);
        let (ans2, _) = answer(&p, &db, Strategy::Naive);
        assert_eq!(ans2.len(), 0);
    }

    #[test]
    fn same_generation_nonlinear() {
        let mut p = parse_program(
            "?- sg(a, Y).\n\
             sg(X, Y) :- flat(X, Y).\n\
             sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).",
        )
        .unwrap();
        let up = p.symbols.get_predicate("up").unwrap();
        let flat = p.symbols.get_predicate("flat").unwrap();
        let down = p.symbols.get_predicate("down").unwrap();
        let names = ["a", "b", "p1", "p2", "q1", "q2"];
        let cs: Vec<Const> = names.iter().map(|n| p.symbols.constant(n)).collect();
        let mut db = Database::new();
        // a up p1, b up p2, p1 flat p2, p2 down b... build so sg(a,b) holds
        db.insert(up, vec![cs[0], cs[2]]);
        db.insert(flat, vec![cs[2], cs[3]]);
        db.insert(down, vec![cs[3], cs[1]]);
        let (ans, _) = answer(&p, &db, Strategy::SemiNaive);
        assert!(ans.contains(&[cs[1]]));
    }

    #[test]
    fn naive_and_seminaive_agree_on_idb_model() {
        let mut p = program_a();
        let db = chain_db(&mut p, 7);
        let r1 = evaluate(&p, &db, Strategy::Naive);
        let r2 = evaluate(&p, &db, Strategy::SemiNaive);
        let anc = p.symbols.get_predicate("anc").unwrap();
        assert_eq!(
            r1.idb.relation(anc).unwrap().sorted(),
            r2.idb.relation(anc).unwrap().sorted()
        );
    }
}
