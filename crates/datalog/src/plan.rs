//! Compiled join plans and the **cost-based join planner**.
//!
//! Extracted from `materialize.rs`: the plan vocabulary (`KeyOp`,
//! `Action`, `Out`, `Step`, `RulePlan`, `HeadOp`,
//! `RederivePlan`) and the compilers (`compile_rule`,
//! `compile_step`, `compile_rederive`) used to be private to the
//! materialization layer. They now live here, behind one planning entry
//! point (`plan_rule`) that every consumer — batch evaluation,
//! incremental rounds, magic-set views, rule hot-swap — compiles
//! through.
//!
//! What the planner adds on top of the mechanical compilation:
//!
//! - **Selectivity-aware body reordering** (`body_order`): join steps
//!   are ordered greedily, preferring atoms with the most bound
//!   positions (constants + variables bound by earlier steps), breaking
//!   ties toward the smaller live relation and then the original
//!   position. Cardinalities come from the live store
//!   ([`crate::storage::ColumnarRelation::num_live`]); the reference
//!   engine computes the same order from the input database, so work
//!   counters stay bit-for-bit comparable. Plans are immutable per
//!   round: the materialization re-plans only at update-round
//!   boundaries, when the cardinalities drift past a threshold — and a
//!   re-plan never touches existing rows or justifications.
//! - **Staged-head existence ordering**: `RulePlan::head_ready_depth`
//!   marks the first join depth at which every head position is bound;
//!   when that is before the last step, the join probes the head
//!   relation's dedup table there and prunes the entire remaining
//!   suffix for heads that already exist. A per-shard staged-head
//!   filter additionally suppresses re-staging duplicates within a
//!   round.
//! - **Transitive-closure kernel recognition** (`RulePlan::tc`): the
//!   binary-recursive shape `tc(x,z) :- tc(x,y), e(y,z)` (and its
//!   right-linear / nonlinear variants) is detected structurally so the
//!   join can run a specialized two-level loop instead of the general
//!   recursive descent. The kernel is enumeration-order- and
//!   counter-identical to the generic join — recognition changes speed,
//!   never results.
//!
//! Justifications are recorded in **original rule-body order**
//! whatever order the steps run in (`RulePlan::step_of_body` maps
//! body atom → step depth), so recorded provenance stays a positional
//! instantiation of the rule text and every existing decoder
//! (delete–rederive, compaction remap, persistence validation,
//! [`crate::derivation::Provenance::check`]) is order-independent.

use crate::ast::{Atom, Const, Pred, Rule, Term, Var};
use crate::hash::FxHashMap;
use crate::storage::IncrementalIndex;

/// Sentinel index id for unkeyed (empty-mask) steps: they scan rows
/// directly, so no [`IncrementalIndex`] exists for them.
pub(crate) const NO_INDEX: usize = usize::MAX;

/// How the planner orders rule bodies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderMode {
    /// Keep the textual body order (the pre-planner behavior).
    Original,
    /// Greedy selectivity-aware ordering (`body_order`).
    Planned,
    /// A deterministic pseudo-random permutation per rule, derived from
    /// the seed. Any order is semantically valid — this mode exists so
    /// property tests can drive the engine through adversarial orders
    /// and still compare models and provenance exactly.
    Shuffled(u64),
}

/// Planner configuration carried by a
/// [`crate::materialize::Materialization`] (and mirrored by the
/// reference evaluator): which optimizations are live. The default is
/// everything on; [`PlannerConfig::legacy`] reproduces the pre-planner
/// engine bit-for-bit, counters included.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannerConfig {
    /// Join-order strategy.
    pub order: OrderMode,
    /// Per-shard staged-head filter: within one `(rule, delta, shard)`
    /// evaluation, a head tuple is staged at most once. Pure
    /// deduplication — the merge would drop the copies anyway; this
    /// drops them before they are buffered.
    pub staged_filter: bool,
    /// Prune the join suffix at `RulePlan::head_ready_depth` when the
    /// fully-bound head already exists in the (frozen) head relation.
    pub suffix_prune: bool,
    /// Run recognized transitive-closure rules through the specialized
    /// kernel.
    pub tc_kernel: bool,
    /// Count `rule_firings` at merge time as **productive** firings
    /// (head tuples actually added), instead of once per completed body
    /// instantiation. With the planner killing redundant instantiations
    /// early, completed-instantiation counts are no longer the work
    /// measure; productive firings are shard- and order-invariant.
    pub productive_firings: bool,
    /// Cache-conscious storage layer: fold cold chain portions into
    /// frozen posting segments, key single-column index tables by the
    /// raw constant, and run the memoized-hash batched staged merge
    /// (`IncrementalIndex::set_segmented`). Enumeration order, row ids,
    /// counters and justifications are identical either way; `false`
    /// keeps the pre-change chains-only storage as the A/B baseline.
    pub segmented: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            order: OrderMode::Planned,
            staged_filter: true,
            suffix_prune: true,
            tc_kernel: true,
            productive_firings: true,
            segmented: true,
        }
    }
}

impl PlannerConfig {
    /// The pre-planner engine: textual body order, no staged filter, no
    /// suffix pruning, no kernel, firings counted per instantiation,
    /// chains-only index storage.
    pub fn legacy() -> Self {
        Self {
            order: OrderMode::Original,
            staged_filter: false,
            suffix_prune: false,
            tc_kernel: false,
            productive_firings: false,
            segmented: false,
        }
    }
}

/// A key component of a join step: where the bound value comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum KeyOp {
    /// A constant from the rule text.
    Const(Const),
    /// A rule-local slot bound by an earlier step.
    Slot(usize),
}

/// What to do with one *unguaranteed* argument position of a matched row.
/// Positions covered by the index mask are skipped entirely: the probe
/// already guaranteed them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Action {
    /// First occurrence of a free slot in this atom: bind it.
    Bind {
        /// Argument position within the atom.
        pos: usize,
        /// The rule-local slot to bind.
        slot: usize,
    },
    /// Repeated occurrence within this atom: must equal the bound value.
    Check {
        /// Argument position within the atom.
        pos: usize,
        /// The already-bound rule-local slot to compare against.
        slot: usize,
    },
}

/// Where a head position comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Out {
    /// A constant from the rule text.
    Const(Const),
    /// A bound slot.
    Slot(usize),
}

/// One body atom, compiled: which relation/index to probe, how to build
/// the probe key, and how to bind/check the remaining positions.
#[derive(Clone, Debug)]
pub(crate) struct Step {
    pub(crate) rel: usize,
    /// Index id, or [`NO_INDEX`] for unkeyed steps (empty mask): those
    /// scan their row range directly and register no index at all.
    pub(crate) idx: usize,
    /// Whether the predicate is an IDB of the program (reads snapshots).
    pub(crate) idb: bool,
    pub(crate) key: Box<[KeyOp]>,
    pub(crate) actions: Box<[Action]>,
}

/// A rule compiled to a flat join plan, steps in **planner order**.
#[derive(Clone, Debug)]
pub(crate) struct RulePlan {
    pub(crate) head_rel: usize,
    pub(crate) head: Box<[Out]>,
    pub(crate) steps: Box<[Step]>,
    pub(crate) num_slots: usize,
    /// Step positions whose predicate is an IDB (batch delta candidates).
    pub(crate) idb_steps: Box<[usize]>,
    /// Dense relation id of each **original** body atom — the decode
    /// order of recorded justifications, invariant under reordering.
    pub(crate) body_rels: Box<[usize]>,
    /// `step_of_body[k]` = the step depth that runs original body atom
    /// `k`. Staging permutes the per-depth matched rows through this
    /// map so justifications are always recorded in rule-text order.
    pub(crate) step_of_body: Box<[usize]>,
    /// First join depth at which every head position is bound (0 =
    /// before any step; `steps.len()` = only at full instantiation).
    pub(crate) head_ready_depth: usize,
    /// Whether this plan has the binary-recursive transitive-closure
    /// shape the specialized kernel handles.
    pub(crate) tc: bool,
}

/// One compiled head position of a re-derivation plan: how a candidate
/// tuple binds (or constrains) the rule-local slots before the body runs.
#[derive(Clone, Copy, Debug)]
pub(crate) enum HeadOp {
    /// The tuple value must equal this constant.
    Const(Const),
    /// First occurrence of a head variable: bind its slot.
    First(usize),
    /// Repeated head variable: must match the bound slot.
    Repeat(usize),
}

/// A rule compiled for goal-directed re-derivation checks (DRed rescue
/// phase): the head is *input*, so every head slot is bound from depth 0
/// and the body step masks include them. Body steps stay in **original
/// rule order** — with every head variable pre-bound the textual order
/// is already keyed, and the rescued rows double as the justification,
/// which must be positional. Compiled lazily on the first retraction;
/// the extra `(relation, mask)` indexes it registers are extended
/// incrementally like all others.
#[derive(Clone, Debug)]
pub(crate) struct RederivePlan {
    /// The rule index (recorded as the rescued row's justification).
    pub(crate) rule: u32,
    pub(crate) head_rel: usize,
    pub(crate) head: Box<[HeadOp]>,
    pub(crate) steps: Box<[Step]>,
    pub(crate) num_slots: usize,
}

// ---------------------------------------------------------------------
// Ordering
// ---------------------------------------------------------------------

/// Greedy selectivity-aware body order: repeatedly pick the unchosen
/// atom with the most bound argument positions (constants plus
/// variables bound by already-chosen atoms), breaking ties toward the
/// smaller relation cardinality and then the earlier textual position.
///
/// Pure and deterministic in `(rule, card)` — the engine calls it with
/// live row counts, the reference evaluator with database sizes, and
/// both get the same permutation because IDB relations count 0 at
/// compile time on both sides.
pub(crate) fn order_body(rule: &Rule, card: &mut dyn FnMut(Pred) -> u64) -> Vec<usize> {
    let n = rule.body.len();
    let mut chosen = vec![false; n];
    let mut bound: Vec<Var> = Vec::new();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best: Option<(usize, usize, u64)> = None;
        for (ai, atom) in rule.body.iter().enumerate() {
            if chosen[ai] {
                continue;
            }
            let b = atom
                .args
                .iter()
                .filter(|t| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(v),
                })
                .count();
            let c = card(atom.pred);
            // Strict comparisons: first-seen (lowest textual position)
            // wins ties.
            let better = match best {
                None => true,
                Some((_, bb, bc)) => b > bb || (b == bb && c < bc),
            };
            if better {
                best = Some((ai, b, c));
            }
        }
        let (ai, _, _) = best.expect("nonempty body");
        chosen[ai] = true;
        for t in &rule.body[ai].args {
            if let Term::Var(v) = t {
                if !bound.contains(v) {
                    bound.push(*v);
                }
            }
        }
        out.push(ai);
    }
    out
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// A deterministic Fisher–Yates permutation of `0..n` from
/// `(seed, rule_idx)` — the [`OrderMode::Shuffled`] order.
pub(crate) fn shuffled_order(n: usize, seed: u64, rule_idx: usize) -> Vec<usize> {
    let mut s = (seed ^ (rule_idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
    let mut v: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (xorshift(&mut s) % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    v
}

/// The body permutation for one rule under a planner configuration:
/// `order[d]` is the original body-atom index run at step depth `d`.
pub(crate) fn body_order(
    rule: &Rule,
    rule_idx: usize,
    mode: OrderMode,
    card: &mut dyn FnMut(Pred) -> u64,
) -> Vec<usize> {
    match mode {
        OrderMode::Original => (0..rule.body.len()).collect(),
        OrderMode::Planned => order_body(rule, card),
        OrderMode::Shuffled(seed) => shuffled_order(rule.body.len(), seed, rule_idx),
    }
}

// ---------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------

/// Compiles one body atom against the slot state: the index mask (bound
/// positions), probe key ops and bind/check actions, registering the
/// `(relation, mask)` index it probes. `bound_slots` is updated with the
/// slots this atom binds.
pub(crate) fn compile_step(
    atom: &Atom,
    rel: usize,
    slots: &mut FxHashMap<Var, usize>,
    bound_slots: &mut Vec<bool>,
    idb: bool,
    idxs: &mut Vec<IncrementalIndex>,
    idx_of: &mut FxHashMap<(usize, Vec<usize>), usize>,
) -> Step {
    let mut mask: Vec<usize> = Vec::new();
    let mut key: Vec<KeyOp> = Vec::new();
    let mut actions: Vec<Action> = Vec::new();
    let mut seen_here: Vec<usize> = Vec::new();
    for (i, t) in atom.args.iter().enumerate() {
        match t {
            Term::Const(c) => {
                mask.push(i);
                key.push(KeyOp::Const(*c));
            }
            Term::Var(v) => {
                let next = slots.len();
                let s = *slots.entry(*v).or_insert(next);
                if s >= bound_slots.len() {
                    bound_slots.resize(s + 1, false);
                }
                if bound_slots[s] {
                    // Bound by an earlier atom (or the re-derivation
                    // head): part of the index key; the probe guarantees
                    // equality, so no action.
                    mask.push(i);
                    key.push(KeyOp::Slot(s));
                } else if seen_here.contains(&s) {
                    // Repeat within this atom: a filter, not a key
                    // component (mirrors the reference mask exactly).
                    actions.push(Action::Check { pos: i, slot: s });
                } else {
                    seen_here.push(s);
                    actions.push(Action::Bind { pos: i, slot: s });
                }
            }
        }
    }
    for &s in &seen_here {
        bound_slots[s] = true;
    }
    // Unkeyed steps scan their snapshot range directly — an empty-mask
    // index would never be extended or probed, so none is registered.
    let idx = if mask.is_empty() {
        NO_INDEX
    } else {
        *idx_of.entry((rel, mask.clone())).or_insert_with(|| {
            idxs.push(IncrementalIndex::new(rel, mask));
            idxs.len() - 1
        })
    };
    Step {
        rel,
        idx,
        idb,
        key: key.into_boxed_slice(),
        actions: actions.into_boxed_slice(),
    }
}

/// First prefix length after which every head position is bound: 0 for
/// all-constant heads, `steps.len()` when a head slot is bound only by
/// the last step.
fn head_ready_depth(head: &[Out], steps: &[Step]) -> usize {
    let need: Vec<usize> = head
        .iter()
        .filter_map(|o| match o {
            Out::Slot(s) => Some(*s),
            Out::Const(_) => None,
        })
        .collect();
    let mut bound: Vec<usize> = Vec::new();
    for (d, step) in steps.iter().enumerate() {
        if need.iter().all(|s| bound.contains(s)) {
            return d;
        }
        for a in step.actions.iter() {
            if let Action::Bind { slot, .. } = a {
                bound.push(*slot);
            }
        }
    }
    steps.len()
}

/// Structural recognition of the binary-recursive transitive-closure
/// shape: an unkeyed first step binding both columns of a binary atom,
/// a second step over a binary relation keyed on exactly one of those
/// slots and binding the other column, and a head projecting two bound
/// slots. Covers the linear (`tc(x,z) :- tc(x,y), e(y,z)`),
/// right-linear and nonlinear variants in any planner order.
fn tc_shape(head: &[Out], steps: &[Step]) -> bool {
    if steps.len() != 2 || head.len() != 2 {
        return false;
    }
    let (s0, s1) = (&steps[0], &steps[1]);
    // First step: full scan of a binary atom, two fresh binds.
    if s0.idx != NO_INDEX || !s0.key.is_empty() || s0.actions.len() != 2 {
        return false;
    }
    let (a, b) = match (s0.actions[0], s0.actions[1]) {
        (Action::Bind { pos: 0, slot: a }, Action::Bind { pos: 1, slot: b }) if a != b => (a, b),
        _ => return false,
    };
    // Second step: keyed on exactly one column by one of those slots,
    // binding the other column to a fresh slot.
    if s1.idx == NO_INDEX || s1.key.len() != 1 || s1.actions.len() != 1 {
        return false;
    }
    if !matches!(s1.key[0], KeyOp::Slot(s) if s == a || s == b) {
        return false;
    }
    let c = match s1.actions[0] {
        Action::Bind { pos, slot } if pos < 2 && slot != a && slot != b => slot,
        _ => return false,
    };
    // Head: two bound slots (any combination of a, b, c).
    head.iter().all(|o| matches!(o, Out::Slot(s) if *s == a || *s == b || *s == c))
}

/// Compiles one rule against the dense relation table in the given body
/// `order`, registering the `(relation, mask)` indexes it probes.
///
/// The slot numbering and mask (bound-position) computation mirror
/// [`crate::reference`] exactly — the index masks determine the
/// `join_probes` counter, which must stay bit-for-bit comparable.
pub(crate) fn compile_rule(
    rule: &Rule,
    idbs: &[Pred],
    rel_of_pred: &FxHashMap<Pred, usize>,
    idxs: &mut Vec<IncrementalIndex>,
    idx_of: &mut FxHashMap<(usize, Vec<usize>), usize>,
    order: &[usize],
) -> RulePlan {
    debug_assert_eq!(order.len(), rule.body.len());
    let mut slots: FxHashMap<Var, usize> = FxHashMap::default();
    let mut bound_slots: Vec<bool> = Vec::new();
    let mut steps = Vec::new();
    let mut idb_steps = Vec::new();
    let mut step_of_body = vec![0usize; rule.body.len()];
    for (d, &ai) in order.iter().enumerate() {
        let atom = &rule.body[ai];
        let rel = rel_of_pred[&atom.pred];
        let idb = idbs.contains(&atom.pred);
        if idb {
            idb_steps.push(d);
        }
        step_of_body[ai] = d;
        steps.push(compile_step(
            atom,
            rel,
            &mut slots,
            &mut bound_slots,
            idb,
            idxs,
            idx_of,
        ));
    }
    let head: Box<[Out]> = rule
        .head
        .args
        .iter()
        .map(|t| match t {
            Term::Const(c) => Out::Const(*c),
            Term::Var(v) => Out::Slot(*slots.get(v).expect("safe rule binds head slots")),
        })
        .collect();
    let body_rels: Box<[usize]> = rule.body.iter().map(|a| rel_of_pred[&a.pred]).collect();
    let hrd = head_ready_depth(&head, &steps);
    let tc = tc_shape(&head, &steps);
    RulePlan {
        head_rel: rel_of_pred[&rule.head.pred],
        head,
        steps: steps.into_boxed_slice(),
        num_slots: slots.len(),
        idb_steps: idb_steps.into_boxed_slice(),
        body_rels,
        step_of_body: step_of_body.into_boxed_slice(),
        head_ready_depth: hrd,
        tc,
    }
}

/// Plans and compiles one rule: computes the body order for the
/// configuration (from the live cardinality function) and compiles the
/// steps in that order. The single entry point every consumer uses.
#[allow(clippy::too_many_arguments)]
pub(crate) fn plan_rule(
    rule: &Rule,
    rule_idx: usize,
    idbs: &[Pred],
    rel_of_pred: &FxHashMap<Pred, usize>,
    idxs: &mut Vec<IncrementalIndex>,
    idx_of: &mut FxHashMap<(usize, Vec<usize>), usize>,
    mode: OrderMode,
    card: &mut dyn FnMut(Pred) -> u64,
) -> RulePlan {
    let order = body_order(rule, rule_idx, mode, card);
    compile_rule(rule, idbs, rel_of_pred, idxs, idx_of, &order)
}

/// Compiles one rule for goal-directed re-derivation: head variables are
/// slots bound from depth 0 (the candidate tuple is the input), so the
/// body step masks include them and the join is keyed on the head.
pub(crate) fn compile_rederive(
    rule_i: usize,
    rule: &Rule,
    rel_of_pred: &FxHashMap<Pred, usize>,
    idxs: &mut Vec<IncrementalIndex>,
    idx_of: &mut FxHashMap<(usize, Vec<usize>), usize>,
) -> RederivePlan {
    let mut slots: FxHashMap<Var, usize> = FxHashMap::default();
    let mut bound_slots: Vec<bool> = Vec::new();
    let head = rule
        .head
        .args
        .iter()
        .map(|t| match t {
            Term::Const(c) => HeadOp::Const(*c),
            Term::Var(v) => {
                let next = slots.len();
                let s = *slots.entry(*v).or_insert(next);
                if s >= bound_slots.len() {
                    bound_slots.resize(s + 1, false);
                }
                if bound_slots[s] {
                    HeadOp::Repeat(s)
                } else {
                    bound_slots[s] = true;
                    HeadOp::First(s)
                }
            }
        })
        .collect();
    let steps = rule
        .body
        .iter()
        .map(|atom| {
            // `idb` is irrelevant here (re-derivation always reads the
            // full live store); pass false so snapshots never apply.
            compile_step(
                atom,
                rel_of_pred[&atom.pred],
                &mut slots,
                &mut bound_slots,
                false,
                idxs,
                idx_of,
            )
        })
        .collect();
    RederivePlan {
        rule: rule_i as u32,
        head_rel: rel_of_pred[&rule.head.pred],
        head,
        steps,
        num_slots: slots.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn rules(src: &str) -> Vec<Rule> {
        parse_program(src).unwrap().rules
    }

    /// Dense relation ids for every predicate appearing in the program.
    fn rel_table(p: &crate::ast::Program) -> FxHashMap<Pred, usize> {
        let mut rel_of: FxHashMap<Pred, usize> = FxHashMap::default();
        let intern = |pr: Pred, rel_of: &mut FxHashMap<Pred, usize>| {
            let next = rel_of.len();
            rel_of.entry(pr).or_insert(next);
        };
        for r in &p.rules {
            intern(r.head.pred, &mut rel_of);
            for a in &r.body {
                intern(a.pred, &mut rel_of);
            }
        }
        rel_of
    }

    #[test]
    fn planned_order_keeps_delta_first_on_tc() {
        // anc is IDB (card 0), par is EDB (card 100): the recursive atom
        // stays first — the standard semi-naive delta-front shape.
        let rs = rules(
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- anc(X, Z), par(Z, Y).",
        );
        let mut card = |p: Pred| if p.0 == rs[1].body[1].pred.0 { 100 } else { 0 };
        assert_eq!(order_body(&rs[1], &mut card), vec![0, 1]);
    }

    #[test]
    fn planned_order_moves_bound_atoms_forward() {
        // Right-linear: par(X, Z), anc(Z, Y) — the IDB atom (card 0)
        // moves first, then par is keyed on Z.
        let rs = rules(
            "?- anc(john, Y).\nanc(X, Y) :- par(X, Y).\nanc(X, Y) :- par(X, Z), anc(Z, Y).",
        );
        let par = rs[1].body[0].pred;
        let mut card = |p: Pred| if p == par { 100 } else { 0 };
        assert_eq!(order_body(&rs[1], &mut card), vec![1, 0]);
    }

    #[test]
    fn planned_order_prefers_constants() {
        // e(root, Y) has a bound (constant) position; reach(X) has none
        // once both cardinalities tie.
        let rs = rules(
            "?- out(Y).\nout(Y) :- reach(X), e(X, Y), e(root, Y).",
        );
        let mut card = |_: Pred| 10u64;
        let order = order_body(&rs[0], &mut card);
        assert_eq!(order[0], 2, "constant-bound atom first: {order:?}");
    }

    #[test]
    fn shuffled_order_is_a_deterministic_permutation() {
        for n in 1..6usize {
            for seed in [1u64, 7, 99] {
                let a = shuffled_order(n, seed, 3);
                let b = shuffled_order(n, seed, 3);
                assert_eq!(a, b, "deterministic");
                let mut s = a.clone();
                s.sort_unstable();
                assert_eq!(s, (0..n).collect::<Vec<_>>(), "a permutation");
            }
        }
    }

    #[test]
    fn tc_shape_recognized_for_linear_and_nonlinear_variants() {
        let sources = [
            "?- a(c, Y).\na(X, Y) :- e(X, Y).\na(X, Y) :- a(X, Z), e(Z, Y).",
            "?- a(c, Y).\na(X, Y) :- e(X, Y).\na(X, Y) :- e(X, Z), a(Z, Y).",
            "?- a(c, Y).\na(X, Y) :- e(X, Y).\na(X, Y) :- a(X, Z), a(Z, Y).",
        ];
        for src in sources {
            let p = parse_program(src).unwrap();
            let rel_of = rel_table(&p);
            let idbs = [p.rules[1].head.pred];
            let mut idxs = Vec::new();
            let mut idx_of = FxHashMap::default();
            let plan = plan_rule(
                &p.rules[1],
                1,
                &idbs,
                &rel_of,
                &mut idxs,
                &mut idx_of,
                OrderMode::Planned,
                &mut |_| 0,
            );
            assert!(plan.tc, "{src}");
            assert_eq!(plan.head_ready_depth, 2, "{src}");
            // The non-recursive base rule is a single step, never TC.
            let mut idxs2 = Vec::new();
            let mut idx_of2 = FxHashMap::default();
            let base = plan_rule(
                &p.rules[0],
                0,
                &idbs,
                &rel_of,
                &mut idxs2,
                &mut idx_of2,
                OrderMode::Planned,
                &mut |_| 0,
            );
            assert!(!base.tc, "{src}");
        }
    }

    #[test]
    fn justification_permutation_is_recorded() {
        // sg(X,Y) :- par(X,U), sg(U,V), par(V,Y): the IDB atom moves
        // first under Planned order; step_of_body inverts the move.
        let p = parse_program(
            "?- sg(c, Y).\nsg(X, Y) :- par(X, Y).\nsg(X, Y) :- par(X, U), sg(U, V), par(V, Y).",
        )
        .unwrap();
        let rel_of = rel_table(&p);
        let idbs = [p.rules[1].head.pred];
        let mut idxs = Vec::new();
        let mut idx_of = FxHashMap::default();
        let plan = plan_rule(
            &p.rules[1],
            1,
            &idbs,
            &rel_of,
            &mut idxs,
            &mut idx_of,
            OrderMode::Planned,
            &mut |pr: Pred| if idbs.contains(&pr) { 0 } else { 50 },
        );
        // body_rels is in rule-text order regardless of step order.
        let par_rel = rel_of[&p.rules[1].body[0].pred];
        let sg_rel = rel_of[&p.rules[1].body[1].pred];
        assert_eq!(&*plan.body_rels, &[par_rel, sg_rel, par_rel]);
        // step_of_body is the inverse permutation of the step order.
        let mut seen: Vec<usize> = plan.step_of_body.to_vec();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
        for (k, &d) in plan.step_of_body.iter().enumerate() {
            assert_eq!(plan.steps[d].rel, plan.body_rels[k]);
        }
    }
}
