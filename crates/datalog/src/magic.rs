//! Adornments and the generalized magic-sets transformation
//! (Bancilhon–Maier–Sagiv–Ullman, ref.\[5\], as discussed in Sections 1 and 7 of
//! the paper).
//!
//! The transformation rewrites a program + goal so that bottom-up
//! evaluation only derives facts *relevant* to the goal bindings: a
//! `magic` predicate per adorned IDB collects the bindings that can flow
//! from the goal (the paper's Section 7 reads these predicates, for chain
//! programs, as language quotients `L(H)/R_i`).

use crate::ast::{Atom, Pred, Program, Rule, Term, Var};
use crate::hash::{FxHashMap, FxHashSet};

/// A binding pattern: `true` = bound, `false` = free.
pub type Adornment = Vec<bool>;

/// Renders an adornment in the classical `bf` notation.
pub fn render_adornment(a: &Adornment) -> String {
    a.iter().map(|&b| if b { 'b' } else { 'f' }).collect()
}

/// The adornment induced by a goal atom: constants are bound, repeated
/// variable occurrences after the first are bound, first occurrences free.
pub fn goal_adornment(goal: &Atom) -> Adornment {
    let mut seen: Vec<Var> = Vec::new();
    goal.args
        .iter()
        .map(|t| match t {
            Term::Const(_) => true,
            Term::Var(v) => {
                if seen.contains(v) {
                    true
                } else {
                    seen.push(*v);
                    false
                }
            }
        })
        .collect()
}

/// The result of the magic transformation.
#[derive(Clone, Debug)]
pub struct MagicProgram {
    /// The transformed program (adorned rules + magic rules + seed).
    pub program: Program,
    /// Map from (original IDB, adornment) to the adorned predicate.
    /// Empty when the all-free goal short-circuited to the identity.
    pub adorned: FxHashMap<(Pred, String), Pred>,
    /// Map from (original IDB, adornment) to its magic predicate.
    /// Empty when the all-free goal short-circuited to the identity.
    pub magic: FxHashMap<(Pred, String), Pred>,
}

/// A constant-free magic program for one `(predicate, adornment)` pair.
///
/// Where [`magic_transform`] bakes the goal's bound constants into a
/// seed *fact*, the template routes them through a fresh EDB *seed
/// predicate*: `m_goal(B..) :- seed(B..)`. Compile the template once
/// per binding pattern, then instantiate it for any constant vector by
/// inserting a single `seed` row — the query cache's memoization unit.
#[derive(Clone, Debug)]
pub struct MagicTemplate {
    /// Adorned + magic rules plus the seed-forwarding rule; the goal is
    /// the adorned predicate over distinct fresh variables.
    pub program: Program,
    /// The adorned goal predicate (answers accumulate here).
    pub goal_pred: Pred,
    /// The fresh seed EDB predicate (arity = number of bound positions).
    pub seed_pred: Pred,
}

/// The adornment-driven rewrite shared by [`magic_transform`] and
/// [`magic_template`]: the reachable-adornment queue walk that emits
/// magic rules and guarded adorned rules, without any goal seed.
struct TransformCore {
    symbols: crate::ast::Symbols,
    rules: Vec<Rule>,
    adorned: FxHashMap<(Pred, String), Pred>,
    magic: FxHashMap<(Pred, String), Pred>,
}

/// Applies the generalized magic-sets transformation with a left-to-right
/// sideways-information-passing strategy.
///
/// A goal with no bound argument (all arguments distinct variables, or a
/// propositional goal) short-circuits to the identity: the magic set
/// would degenerate to a 0-ary "always true" guard, so the original
/// program is returned unchanged (with empty adornment maps).
pub fn magic_transform(original: &Program) -> Result<MagicProgram, String> {
    original.validate()?;
    let goal_adn = goal_adornment(&original.goal);
    if !goal_adn.iter().any(|&b| b) {
        return Ok(MagicProgram {
            program: original.clone(),
            adorned: FxHashMap::default(),
            magic: FxHashMap::default(),
        });
    }

    // The seed is only a fact when the bound arguments are constants
    // (true for goal forms with constants; for p(X,X) the second
    // occurrence is "bound by equality" and the seed must range over the
    // active domain — handled by leaving such goals to the caller).
    let seed_args: Vec<Term> = original
        .goal
        .args
        .iter()
        .enumerate()
        .filter(|(i, _)| goal_adn[*i])
        .map(|(_, &t)| t)
        .collect();
    if seed_args.iter().any(|t| matches!(t, Term::Var(_))) {
        return Err(
            "magic seed requires ground bindings (goal with repeated variables \
             needs domain enumeration; use the original program instead)"
                .to_owned(),
        );
    }

    let mut core = transform_core(original, original.goal.pred, &goal_adn);
    let goal_key = (original.goal.pred, render_adornment(&goal_adn));
    core.rules
        .push(Rule::new(Atom::new(core.magic[&goal_key], seed_args), Vec::new()));

    let new_goal = Atom::new(core.adorned[&goal_key], original.goal.args.clone());
    let program = Program {
        rules: core.rules,
        goal: new_goal,
        symbols: core.symbols,
    };
    program.validate()?;
    Ok(MagicProgram {
        program,
        adorned: core.adorned,
        magic: core.magic,
    })
}

/// Compiles the constant-free magic template for `pred` under binding
/// pattern `adn` (see [`MagicTemplate`]). The goal of `original` is
/// ignored — only its rules and symbols matter — so one template serves
/// every concrete goal with this pattern. Errs on an all-free pattern
/// (no magic set to build; evaluate the original program), an unknown
/// or non-IDB predicate, or an arity mismatch.
pub fn magic_template(
    original: &Program,
    pred: Pred,
    adn: &Adornment,
) -> Result<MagicTemplate, String> {
    if !adn.iter().any(|&b| b) {
        return Err("all-free adornment has no magic template; evaluate the original".to_owned());
    }
    let arity = original
        .rules
        .iter()
        .find(|r| r.head.pred == pred)
        .map(|r| r.head.arity())
        .ok_or_else(|| {
            format!(
                "magic template: predicate {} heads no rule",
                original.symbols.pred_name(pred)
            )
        })?;
    if adn.len() != arity {
        return Err(format!(
            "magic template: adornment length {} != arity {arity} of {}",
            adn.len(),
            original.symbols.pred_name(pred)
        ));
    }

    let mut core = transform_core(original, pred, adn);
    let goal_key = (pred, render_adornment(adn));
    let seed_name = format!("{}_{}_seed", core.symbols.pred_name(pred), render_adornment(adn));
    let seed_pred = core.symbols.fresh_predicate(&seed_name);
    let bound_vars: Vec<Term> = (0..adn.iter().filter(|&&b| b).count())
        .map(|i| Term::Var(core.symbols.fresh_variable(&format!("MB{i}"))))
        .collect();
    core.rules.push(Rule::new(
        Atom::new(core.magic[&goal_key], bound_vars.clone()),
        vec![Atom::new(seed_pred, bound_vars)],
    ));

    let goal_pred = core.adorned[&goal_key];
    let goal_args: Vec<Term> = (0..arity)
        .map(|i| Term::Var(core.symbols.fresh_variable(&format!("MQ{i}"))))
        .collect();
    let program = Program {
        rules: core.rules,
        goal: Atom::new(goal_pred, goal_args),
        symbols: core.symbols,
    };
    program.validate()?;
    Ok(MagicTemplate {
        program,
        goal_pred,
        seed_pred,
    })
}

fn transform_core(original: &Program, goal_pred: Pred, goal_adn: &Adornment) -> TransformCore {
    let mut symbols = original.symbols.clone();
    let idbs = original.idb_predicates();

    let mut adorned: FxHashMap<(Pred, String), Pred> = FxHashMap::default();
    let mut magic: FxHashMap<(Pred, String), Pred> = FxHashMap::default();
    let mut queue: Vec<(Pred, Adornment)> = vec![(goal_pred, goal_adn.clone())];
    let mut processed: FxHashSet<(Pred, String)> = FxHashSet::default();
    let mut rules: Vec<Rule> = Vec::new();

    // allocate adorned + magic predicate names up front for the queue seed
    let ensure_preds =
        |p: Pred,
         a: &Adornment,
         symbols: &mut crate::ast::Symbols,
         adorned: &mut FxHashMap<(Pred, String), Pred>,
         magic: &mut FxHashMap<(Pred, String), Pred>| {
            let key = (p, render_adornment(a));
            if !adorned.contains_key(&key) {
                let name = format!("{}_{}", symbols.pred_name(p), render_adornment(a));
                let ap = symbols.fresh_predicate(&name);
                adorned.insert(key.clone(), ap);
                let mname = format!("m_{}_{}", symbols.pred_name(p), render_adornment(a));
                let mp = symbols.fresh_predicate(&mname);
                magic.insert(key, mp);
            }
        };
    ensure_preds(goal_pred, goal_adn, &mut symbols, &mut adorned, &mut magic);

    while let Some((pred, adn)) = queue.pop() {
        let key = (pred, render_adornment(&adn));
        if !processed.insert(key.clone()) {
            continue;
        }
        let adorned_pred = adorned[&key];
        let magic_pred = magic[&key];

        for rule in original.rules.iter().filter(|r| r.head.pred == pred) {
            // bound variables: head args at bound positions
            let mut bound: Vec<Var> = Vec::new();
            for (i, t) in rule.head.args.iter().enumerate() {
                if adn[i] {
                    if let Term::Var(v) = t {
                        if !bound.contains(v) {
                            bound.push(*v);
                        }
                    }
                }
            }
            // magic guard atom: magic_p^a(bound head args)
            let magic_args: Vec<Term> = rule
                .head
                .args
                .iter()
                .enumerate()
                .filter(|(i, _)| adn[*i])
                .map(|(_, &t)| t)
                .collect();
            let guard = Atom::new(magic_pred, magic_args.clone());

            // walk the body left-to-right, adorning IDB atoms
            let mut new_body: Vec<Atom> = vec![guard.clone()];
            let mut prefix: Vec<Atom> = vec![guard];
            for batom in &rule.body {
                if idbs.contains(&batom.pred) {
                    // Adornment of this occurrence. Only variables bound
                    // by the prefix count as bound: a within-atom repeat
                    // (`r(X, X)` with `X` unbound) is a *filter* — its
                    // value is not available to the magic rule, and
                    // marking it bound would emit an unsafe magic rule
                    // (`m_r_fb(X) :- m_p_f`) and reject the whole
                    // program. Free is sound: less pruning, same model.
                    let sub_adn: Adornment = batom
                        .args
                        .iter()
                        .map(|t| match t {
                            Term::Const(_) => true,
                            Term::Var(v) => bound.contains(v),
                        })
                        .collect();
                    ensure_preds(batom.pred, &sub_adn, &mut symbols, &mut adorned, &mut magic);
                    let sub_key = (batom.pred, render_adornment(&sub_adn));
                    // magic rule: m_sub(bound args) :- prefix
                    let m_args: Vec<Term> = batom
                        .args
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| sub_adn[*i])
                        .map(|(_, &t)| t)
                        .collect();
                    rules.push(Rule::new(
                        Atom::new(magic[&sub_key], m_args),
                        prefix.clone(),
                    ));
                    if !processed.contains(&sub_key) {
                        queue.push((batom.pred, sub_adn.clone()));
                    }
                    let adorned_atom = Atom::new(adorned[&sub_key], batom.args.clone());
                    new_body.push(adorned_atom.clone());
                    prefix.push(adorned_atom);
                } else {
                    new_body.push(batom.clone());
                    prefix.push(batom.clone());
                }
                for v in batom.vars() {
                    if !bound.contains(&v) {
                        bound.push(v);
                    }
                }
            }
            rules.push(Rule::new(
                Atom::new(adorned_pred, rule.head.args.clone()),
                new_body,
            ));
        }
    }

    TransformCore {
        symbols,
        rules,
        adorned,
        magic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;
    use crate::eval::{answer, Strategy};
    use crate::parser::parse_program;

    fn chain_db(p: &mut Program, n: usize) -> Database {
        let par = p.symbols.get_predicate("par").unwrap();
        let mut db = Database::new();
        let mut prev = p.symbols.constant("john");
        for i in 1..=n {
            let c = p.symbols.constant(&format!("c{i}"));
            db.insert(par, vec![prev, c]);
            prev = c;
        }
        db
    }

    /// A "wide" database where most of the graph is irrelevant to john.
    fn wide_db(p: &mut Program, relevant: usize, irrelevant: usize) -> Database {
        let par = p.symbols.get_predicate("par").unwrap();
        let mut db = chain_db(p, relevant);
        let mut prev = p.symbols.constant("stranger");
        for i in 1..=irrelevant {
            let c = p.symbols.constant(&format!("x{i}"));
            db.insert(par, vec![prev, c]);
            prev = c;
        }
        db
    }

    #[test]
    fn adornment_of_goals() {
        let p = parse_program("?- anc(john, Y).\nanc(X, Y) :- par(X, Y).").unwrap();
        assert_eq!(render_adornment(&goal_adornment(&p.goal)), "bf");
        let p2 = parse_program("?- p(X, X).\np(X, Y) :- b(X, Y).").unwrap();
        assert_eq!(render_adornment(&goal_adornment(&p2.goal)), "fb");
        let p3 = parse_program("?- p(a, b).\np(X, Y) :- b(X, Y).").unwrap();
        assert_eq!(render_adornment(&goal_adornment(&p3.goal)), "bb");
    }

    #[test]
    fn magic_preserves_answers_program_a() {
        let src = "?- anc(john, Y).\n\
                   anc(X, Y) :- par(X, Y).\n\
                   anc(X, Y) :- anc(X, Z), par(Z, Y).";
        let mut orig = parse_program(src).unwrap();
        let db = wide_db(&mut orig, 5, 5);
        let (want, _) = answer(&orig, &db, Strategy::SemiNaive);
        let magic = magic_transform(&orig).unwrap();
        let (got, _) = answer(&magic.program, &db, Strategy::SemiNaive);
        assert_eq!(got.sorted(), want.sorted());
    }

    #[test]
    fn magic_preserves_answers_program_b() {
        let src = "?- anc(john, Y).\n\
                   anc(X, Y) :- par(X, Y).\n\
                   anc(X, Y) :- par(X, Z), anc(Z, Y).";
        let mut orig = parse_program(src).unwrap();
        let db = wide_db(&mut orig, 4, 6);
        let (want, _) = answer(&orig, &db, Strategy::SemiNaive);
        let magic = magic_transform(&orig).unwrap();
        let (got, _) = answer(&magic.program, &db, Strategy::SemiNaive);
        assert_eq!(got.sorted(), want.sorted());
    }

    #[test]
    fn magic_preserves_answers_program_c_nonlinear() {
        let src = "?- anc(john, Y).\n\
                   anc(X, Y) :- par(X, Y).\n\
                   anc(X, Y) :- anc(X, Z), anc(Z, Y).";
        let mut orig = parse_program(src).unwrap();
        let db = wide_db(&mut orig, 4, 4);
        let (want, _) = answer(&orig, &db, Strategy::SemiNaive);
        let magic = magic_transform(&orig).unwrap();
        let (got, _) = answer(&magic.program, &db, Strategy::SemiNaive);
        assert_eq!(got.sorted(), want.sorted());
    }

    #[test]
    fn magic_prunes_irrelevant_work() {
        // The headline property (paper Section 1/7): on a database where
        // most facts are irrelevant to the goal binding, the transformed
        // program derives far fewer tuples.
        let src = "?- anc(john, Y).\n\
                   anc(X, Y) :- par(X, Y).\n\
                   anc(X, Y) :- anc(X, Z), par(Z, Y).";
        let mut orig = parse_program(src).unwrap();
        let db = wide_db(&mut orig, 3, 40);
        let (_, stats_orig) = answer(&orig, &db, Strategy::SemiNaive);
        let magic = magic_transform(&orig).unwrap();
        let (_, stats_magic) = answer(&magic.program, &db, Strategy::SemiNaive);
        assert!(
            stats_magic.tuples_derived * 5 < stats_orig.tuples_derived,
            "magic should prune: {} vs {}",
            stats_magic.tuples_derived,
            stats_orig.tuples_derived
        );
    }

    #[test]
    fn magic_same_generation() {
        let src = "?- sg(a, Y).\n\
                   sg(X, Y) :- flat(X, Y).\n\
                   sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).";
        let mut orig = parse_program(src).unwrap();
        let up = orig.symbols.get_predicate("up").unwrap();
        let flat = orig.symbols.get_predicate("flat").unwrap();
        let down = orig.symbols.get_predicate("down").unwrap();
        let mut db = Database::new();
        let names = ["a", "b", "p1", "p2", "q1", "q2", "z"];
        let cs: Vec<_> = names.iter().map(|n| orig.symbols.constant(n)).collect();
        db.insert(up, vec![cs[0], cs[2]]);
        db.insert(up, vec![cs[1], cs[3]]);
        db.insert(flat, vec![cs[2], cs[3]]);
        db.insert(down, vec![cs[3], cs[1]]);
        db.insert(flat, vec![cs[4], cs[5]]); // irrelevant island
        db.insert(up, vec![cs[6], cs[4]]);
        let (want, _) = answer(&orig, &db, Strategy::SemiNaive);
        let magic = magic_transform(&orig).unwrap();
        let (got, _) = answer(&magic.program, &db, Strategy::SemiNaive);
        assert_eq!(got.sorted(), want.sorted());
    }

    /// Direct model + `apply_goal` vs magic-transformed model +
    /// `apply_goal`: the contract the all-free / 0-ary regressions
    /// assert (answers must agree tuple-for-tuple).
    fn assert_magic_model_matches(src: &str, db: &Database) {
        use crate::eval::{apply_goal, evaluate};
        let orig = parse_program(src).unwrap();
        let magic = magic_transform(&orig).expect("transform must succeed");
        let direct = evaluate(&orig, db, Strategy::SemiNaive);
        let direct_rel = direct
            .idb
            .relation(orig.goal.pred)
            .cloned()
            .unwrap_or_else(|| crate::db::Relation::new(orig.goal.arity()));
        let want = apply_goal(&orig.goal, &direct_rel);
        let transformed = evaluate(&magic.program, db, Strategy::SemiNaive);
        let magic_rel = transformed
            .idb
            .relation(magic.program.goal.pred)
            .cloned()
            .unwrap_or_else(|| crate::db::Relation::new(magic.program.goal.arity()));
        let got = apply_goal(&magic.program.goal, &magic_rel);
        assert_eq!(got.sorted(), want.sorted(), "{src}");
    }

    #[test]
    fn magic_all_free_goal_is_correct() {
        // No bound argument at all: the transform short-circuits to the
        // identity and must not lose (or invent) answers.
        let src = "?- anc(X, Y).\n\
                   anc(X, Y) :- par(X, Y).\n\
                   anc(X, Y) :- anc(X, Z), par(Z, Y).";
        let mut p = parse_program(src).unwrap();
        let db = wide_db(&mut p, 4, 3);
        assert_magic_model_matches(src, &db);
    }

    #[test]
    fn magic_all_free_nonlinear_goal_is_correct() {
        let src = "?- sg(X, Y).\n\
                   sg(X, Y) :- flat(X, Y).\n\
                   sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).";
        let mut p = parse_program(src).unwrap();
        let up = p.symbols.get_predicate("up").unwrap();
        let flat = p.symbols.get_predicate("flat").unwrap();
        let down = p.symbols.get_predicate("down").unwrap();
        let cs: Vec<_> = ["a", "b", "c", "d", "e"]
            .iter()
            .map(|n| p.symbols.constant(n))
            .collect();
        let mut db = Database::new();
        db.insert(up, vec![cs[0], cs[2]]);
        db.insert(up, vec![cs[1], cs[3]]);
        db.insert(flat, vec![cs[2], cs[3]]);
        db.insert(down, vec![cs[3], cs[4]]);
        assert_magic_model_matches(src, &db);
    }

    #[test]
    fn magic_propositional_goal_is_correct() {
        // 0-ary goal: empty adornment, 0-ary magic seed.
        let src = "?- yes.\nyes :- e(X, X).";
        let mut p = parse_program(src).unwrap();
        let e = p.symbols.get_predicate("e").unwrap();
        let a = p.symbols.constant("a");
        let b = p.symbols.constant("b");
        // true instance (a self-loop exists)
        let mut db_true = Database::new();
        db_true.insert(e, vec![a, b]);
        db_true.insert(e, vec![b, b]);
        assert_magic_model_matches(src, &db_true);
        // false instance (no self-loop): both models must be empty
        let mut db_false = Database::new();
        db_false.insert(e, vec![a, b]);
        assert_magic_model_matches(src, &db_false);
    }

    #[test]
    fn magic_propositional_recursive_goal_is_correct() {
        let src = "?- reach.\n\
                   reach :- hit(Y).\n\
                   hit(Y) :- e(root, Y).\n\
                   hit(Y) :- hit(X), e(X, Y).";
        let mut p = parse_program(src).unwrap();
        let e = p.symbols.get_predicate("e").unwrap();
        let root = p.symbols.constant("root");
        let cs: Vec<_> = (0..4)
            .map(|i| p.symbols.constant(&format!("v{i}")))
            .collect();
        let mut db = Database::new();
        db.insert(e, vec![root, cs[0]]);
        db.insert(e, vec![cs[0], cs[1]]);
        db.insert(e, vec![cs[2], cs[3]]); // unreachable island
        assert_magic_model_matches(src, &db);
    }

    #[test]
    fn magic_within_atom_repeat_under_free_goal_is_correct() {
        // r(X, X) with X unbound: the repeat is a filter, not a passable
        // binding — the transform must adorn it free (not emit an unsafe
        // magic rule and reject the program).
        let src = "?- p(X).\n\
                   p(X) :- r(X, X).\n\
                   r(X, Y) :- e(X, Y).\n\
                   r(X, Y) :- r(X, Z), e(Z, Y).";
        let mut p = parse_program(src).unwrap();
        let e = p.symbols.get_predicate("e").unwrap();
        let cs: Vec<_> = (0..4)
            .map(|i| p.symbols.constant(&format!("n{i}")))
            .collect();
        let mut db = Database::new();
        // cycle n0 -> n1 -> n0 plus a tail n2 -> n3
        db.insert(e, vec![cs[0], cs[1]]);
        db.insert(e, vec![cs[1], cs[0]]);
        db.insert(e, vec![cs[2], cs[3]]);
        assert_magic_model_matches(src, &db);
    }

    #[test]
    fn magic_rejects_pxx_goal() {
        let src = "?- p(X, X).\n\
                   p(X, Y) :- b(X, Y).\n\
                   p(X, Y) :- p(X, Z), b(Z, Y).";
        let orig = parse_program(src).unwrap();
        assert!(magic_transform(&orig).is_err());
    }

    #[test]
    fn magic_boolean_goal() {
        let src = "?- p(a, b).\n\
                   p(X, Y) :- e(X, Y).\n\
                   p(X, Y) :- p(X, Z), e(Z, Y).";
        let mut orig = parse_program(src).unwrap();
        let e = orig.symbols.get_predicate("e").unwrap();
        let ca = orig.symbols.get_constant("a").unwrap();
        let cb = orig.symbols.get_constant("b").unwrap();
        let cz = orig.symbols.constant("z");
        let mut db = Database::new();
        db.insert(e, vec![ca, cz]);
        db.insert(e, vec![cz, cb]);
        let (want, _) = answer(&orig, &db, Strategy::SemiNaive);
        let magic = magic_transform(&orig).unwrap();
        let (got, _) = answer(&magic.program, &db, Strategy::SemiNaive);
        assert_eq!(got.sorted(), want.sorted());
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn all_free_goal_short_circuits_to_identity() {
        // The regression the query cache relies on: an unbound goal must
        // not pay for (or be distorted by) a degenerate 0-ary magic
        // guard. The transform returns the original program verbatim.
        let src = "?- anc(X, Y).\n\
                   anc(X, Y) :- par(X, Y).\n\
                   anc(X, Y) :- anc(X, Z), par(Z, Y).";
        let mut p = parse_program(src).unwrap();
        let magic = magic_transform(&p).unwrap();
        assert_eq!(magic.program.rules.len(), p.rules.len());
        assert_eq!(magic.program.goal.pred, p.goal.pred);
        assert!(magic.adorned.is_empty() && magic.magic.is_empty());
        // and a 0-ary goal likewise
        let prop = parse_program("?- yes.\nyes :- e(X, X).").unwrap();
        let m2 = magic_transform(&prop).unwrap();
        assert_eq!(m2.program.goal.pred, prop.goal.pred);
        assert_eq!(m2.program.rules.len(), prop.rules.len());
        // model equivalence (apply_goal contract) on a concrete database
        let db = wide_db(&mut p, 4, 3);
        assert_magic_model_matches(src, &db);
    }

    #[test]
    fn template_matches_constant_seeded_transform() {
        use crate::eval::evaluate;
        let src = "?- p(c, Y).\n\
                   p(X, Y) :- b1(X, X1), b2(X1, Y).\n\
                   p(X, Y) :- b1(X, X1), p(X1, Y1), b2(Y1, Y).";
        let mut orig = parse_program(src).unwrap();
        let b1 = orig.symbols.get_predicate("b1").unwrap();
        let b2 = orig.symbols.get_predicate("b2").unwrap();
        let p = orig.symbols.get_predicate("p").unwrap();
        let cs: Vec<_> = ["c", "u", "v", "w", "z"]
            .iter()
            .map(|n| orig.symbols.constant(n))
            .collect();
        let mut db = Database::new();
        db.insert(b1, vec![cs[0], cs[1]]);
        db.insert(b1, vec![cs[1], cs[2]]);
        db.insert(b2, vec![cs[2], cs[3]]);
        db.insert(b2, vec![cs[1], cs[4]]);
        let (want, _) = answer(&magic_transform(&orig).unwrap().program, &db, Strategy::SemiNaive);

        // template: compiled without any constant, instantiated by a seed row
        let tpl = magic_template(&orig, p, &vec![true, false]).unwrap();
        let mut tdb = db.clone();
        tdb.insert(tpl.seed_pred, vec![cs[0]]);
        let result = evaluate(&tpl.program, &tdb, Strategy::SemiNaive);
        let rel = result
            .idb
            .relation(tpl.goal_pred)
            .cloned()
            .unwrap_or_else(|| crate::db::Relation::new(2));
        // select p(c, Y) out of the adorned relation
        let goal = Atom::new(
            tpl.goal_pred,
            vec![Term::Const(cs[0]), orig.goal.args[1]],
        );
        let got = crate::eval::apply_goal(&goal, &rel);
        assert_eq!(got.sorted(), want.sorted());
    }

    #[test]
    fn template_rejects_all_free_and_unknown_preds() {
        let src = "?- p(c, Y).\np(X, Y) :- b(X, Y).";
        let orig = parse_program(src).unwrap();
        let p = orig.symbols.get_predicate("p").unwrap();
        let b = orig.symbols.get_predicate("b").unwrap();
        assert!(magic_template(&orig, p, &vec![false, false]).is_err());
        assert!(magic_template(&orig, b, &vec![true, false]).is_err());
        assert!(magic_template(&orig, p, &vec![true]).is_err());
    }

    #[test]
    fn transformed_program_shape_matches_paper() {
        // Section 7 displays the transformed program for the b1/b2 chain:
        // magic(c); magic(Y) :- magic(X), b1(X, Y); plus guarded originals.
        let src = "?- p(c, Y).\n\
                   p(X, Y) :- b1(X, X1), b2(X1, Y).\n\
                   p(X, Y) :- b1(X, X1), p(X1, Y1), b2(Y1, Y).";
        let orig = parse_program(src).unwrap();
        let magic = magic_transform(&orig).unwrap();
        let text = magic.program.render();
        // a seed fact for the constant c
        assert!(text.contains("m_p_bf(c)."), "seed missing:\n{text}");
        // a magic rule passing the binding through b1
        assert!(
            text.contains("m_p_bf(X1) :- m_p_bf(X), b1(X, X1)."),
            "binding-passing rule missing:\n{text}"
        );
        // guarded original rules
        assert!(text.contains("p_bf(X, Y) :- m_p_bf(X), b1(X, X1), b2(X1, Y)."));
    }
}
