//! Databases: finite relations over interned constants.
//!
//! A database is a finite structure (Section 2.1): a vector of finite
//! relations, one per EDB predicate. Evaluation output adds IDB relations
//! to the same representation.

use crate::ast::{Const, Pred, Symbols};
use crate::hash::{FxHashMap, FxHashSet};

/// A tuple of constants.
pub type Tuple = Vec<Const>;

/// A finite relation of fixed arity.
///
/// Tuple storage is hash-set based and keyed with the in-tree
/// [`crate::hash::FxHasher`] — materializing a large evaluation result
/// is insert-bound, and SipHash dominated the profile before the swap.
/// (The evaluator itself works on [`crate::storage::ColumnarRelation`];
/// this type is the stable exchange format at API boundaries.)
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Relation {
    arity: usize,
    tuples: FxHashSet<Tuple>,
}

impl Relation {
    /// Creates an empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Self {
            arity,
            tuples: FxHashSet::default(),
        }
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Inserts a tuple; returns whether it was new.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(t.len(), self.arity, "tuple arity mismatch");
        self.tuples.insert(t)
    }

    /// Membership.
    pub fn contains(&self, t: &[Const]) -> bool {
        self.tuples.contains(t)
    }

    /// Removes a tuple; returns whether it was present. (The mirror
    /// operation of [`Relation::insert`], used by the incremental-
    /// maintenance harnesses to keep a from-scratch reference database
    /// in step with a `Materialization`.)
    pub fn remove(&mut self, t: &[Const]) -> bool {
        self.tuples.remove(t)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over the tuples (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// The tuples in sorted order (deterministic output for tests and
    /// experiment reports).
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.tuples.iter().cloned().collect();
        v.sort();
        v
    }
}

impl FromIterator<Tuple> for Relation {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        let mut tuples = FxHashSet::default();
        let mut arity = None;
        for t in iter {
            match arity {
                None => arity = Some(t.len()),
                Some(a) => assert_eq!(a, t.len(), "mixed arities"),
            }
            tuples.insert(t);
        }
        Relation {
            arity: arity.unwrap_or(0),
            tuples,
        }
    }
}

/// A database: a finite relation per predicate.
#[derive(Clone, Debug, Default)]
pub struct Database {
    relations: FxHashMap<Pred, Relation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a fact; creates the relation on first use.
    pub fn insert(&mut self, pred: Pred, tuple: Tuple) -> bool {
        let arity = tuple.len();
        self.relations
            .entry(pred)
            .or_insert_with(|| Relation::new(arity))
            .insert(tuple)
    }

    /// Removes a fact; returns whether it was present.
    pub fn remove(&mut self, pred: Pred, tuple: &[Const]) -> bool {
        self.relations
            .get_mut(&pred)
            .is_some_and(|r| r.remove(tuple))
    }

    /// The relation of a predicate, empty if absent.
    pub fn relation(&self, pred: Pred) -> Option<&Relation> {
        self.relations.get(&pred)
    }

    /// Mutable relation access, creating with the given arity if absent.
    pub fn relation_mut(&mut self, pred: Pred, arity: usize) -> &mut Relation {
        self.relations
            .entry(pred)
            .or_insert_with(|| Relation::new(arity))
    }

    /// Iterates over (predicate, relation) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Pred, &Relation)> {
        self.relations.iter().map(|(&p, r)| (p, r))
    }

    /// Total number of facts.
    pub fn num_facts(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Sorted `(pred, sorted tuples)` view of the whole database — the
    /// deterministic comparison currency of the equivalence suites and
    /// the incremental-maintenance cross-checks (row order and hash
    /// iteration order never leak into it).
    pub fn sorted_models(&self) -> Vec<(Pred, Vec<Tuple>)> {
        let mut v: Vec<(Pred, Vec<Tuple>)> = self
            .relations
            .iter()
            .map(|(&p, r)| (p, r.sorted()))
            .collect();
        v.sort_by_key(|&(p, _)| p);
        v
    }

    /// All constants mentioned in the database (the active domain).
    pub fn active_domain(&self) -> Vec<Const> {
        let mut set: FxHashSet<Const> = FxHashSet::default();
        for r in self.relations.values() {
            for t in r.iter() {
                set.extend(t.iter().copied());
            }
        }
        let mut v: Vec<Const> = set.into_iter().collect();
        v.sort();
        v
    }

    /// Parses facts in `pred(c1, c2).` form (constants only), interning
    /// into `symbols`.
    pub fn parse_facts(text: &str, symbols: &mut Symbols) -> Result<Database, String> {
        let mut db = Database::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim().trim_end_matches('.');
            if line.is_empty() || line.starts_with('%') || line.starts_with('#') {
                continue;
            }
            let (name, rest) = line
                .split_once('(')
                .ok_or_else(|| format!("line {}: expected fact", lineno + 1))?;
            let args = rest
                .strip_suffix(')')
                .ok_or_else(|| format!("line {}: missing ')'", lineno + 1))?;
            let pred = symbols.predicate(name.trim());
            let tuple: Tuple = args
                .split(',')
                .map(|c| symbols.constant(c.trim()))
                .collect();
            db.insert(pred, tuple);
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_basics() {
        let mut r = Relation::new(2);
        assert!(r.insert(vec![Const(0), Const(1)]));
        assert!(!r.insert(vec![Const(0), Const(1)]));
        assert!(r.contains(&[Const(0), Const(1)]));
        assert!(!r.contains(&[Const(1), Const(0)]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_enforced() {
        let mut r = Relation::new(2);
        r.insert(vec![Const(0)]);
    }

    #[test]
    fn database_facts_and_domain() {
        let mut sy = Symbols::new();
        let db = Database::parse_facts(
            "par(john, mary).\npar(mary, sue).\n% comment\n",
            &mut sy,
        )
        .unwrap();
        assert_eq!(db.num_facts(), 2);
        assert_eq!(db.active_domain().len(), 3);
        let par = sy.get_predicate("par").unwrap();
        let john = sy.get_constant("john").unwrap();
        let mary = sy.get_constant("mary").unwrap();
        assert!(db.relation(par).unwrap().contains(&[john, mary]));
    }

    #[test]
    fn sorted_is_deterministic() {
        let mut r = Relation::new(1);
        r.insert(vec![Const(5)]);
        r.insert(vec![Const(1)]);
        r.insert(vec![Const(3)]);
        assert_eq!(
            r.sorted(),
            vec![vec![Const(1)], vec![Const(3)], vec![Const(5)]]
        );
    }
}
