//! Derivation trees and convergence profiling.
//!
//! Section 2.1 of the paper gives the operational semantics of Datalog via
//! derivation trees: a ground atom is in the minimum model iff it has a
//! tree whose leaves are database facts and whose internal nodes are rule
//! instantiations. This module exposes one such tree per derived fact,
//! and measures the **convergence profile** (new facts per iteration)
//! used by the boundedness experiments: a program is bounded w.r.t. its
//! goal iff derivation-tree size — equivalently, iterations to fixpoint —
//! is bounded independently of the database (Section 8).
//!
//! # Provenance at scale
//!
//! [`Provenance`] is a view over the columnar engine's justification
//! store: [`crate::eval::evaluate_with_provenance`] records, at staging
//! time inside the join, one first-found justification per derived row —
//! the rule index plus the body **row ids** into the
//! [`crate::storage::ColumnarRelation`] store. No `GroundAtom` is ever
//! cloned during evaluation; atoms materialize lazily when a tree or a
//! justification is asked for. Justifications are deterministic and
//! identical at every thread and shard count of the parallel engine.
//!
//! Because the paper's own workloads produce proofs that are deep, not
//! just big (a chain program's derivation is as deep as the chain is
//! long), **every** tree operation here is iterative: reconstruction
//! ([`Provenance::tree`]), the metrics ([`DerivationTree::size`],
//! [`DerivationTree::height`], [`Provenance::tree_size`],
//! [`Provenance::tree_height`]), node iteration
//! ([`DerivationTree::nodes`]), and even `Drop` (the derive'd drop glue
//! would recurse through 10⁵ nested nodes and overflow the stack of a
//! default test thread).
//!
//! The original naive provenance fixpoint is preserved as
//! [`crate::reference::Provenance`] — the executable specification the
//! equivalence suite validates this module against.

use crate::ast::{Pred, Program};
use crate::db::{Database, Tuple};
use crate::hash::FxHashMap;
use crate::materialize::RelJust;
use crate::storage::{ColumnarRelation, NO_ROW};

/// A ground atom `pred(c1, ..., ck)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct GroundAtom {
    /// The predicate.
    pub pred: Pred,
    /// The constant arguments.
    pub args: Tuple,
}

/// A derivation tree for a ground atom.
///
/// All operations — size, height, node iteration, clone, equality, and
/// drop — are iterative, so trees hundreds of thousands of nodes deep
/// are safe on default-size thread stacks. (The one exception is the
/// derived `Debug` formatting, whose output is inherently nested — do
/// not debug-print ultra-deep trees.)
#[derive(Debug, Eq)]
pub struct DerivationTree {
    /// The derived ground atom at this node.
    pub atom: GroundAtom,
    /// `None` for database facts (leaves); otherwise the rule index used
    /// and the subtrees deriving the body atoms.
    pub via: Option<(usize, Vec<DerivationTree>)>,
}

impl DerivationTree {
    /// Number of nodes (iterative; deep chains do not overflow).
    pub fn size(&self) -> usize {
        self.nodes().count()
    }

    /// Height (a leaf has height 1; iterative).
    pub fn height(&self) -> usize {
        let mut max = 0usize;
        let mut stack: Vec<(&DerivationTree, usize)> = vec![(self, 1)];
        while let Some((t, h)) = stack.pop() {
            max = max.max(h);
            if let Some((_, kids)) = &t.via {
                stack.extend(kids.iter().map(|k| (k, h + 1)));
            }
        }
        max
    }

    /// Iterates over all nodes (pre-order, iterative).
    pub fn nodes(&self) -> impl Iterator<Item = &DerivationTree> {
        let mut stack = vec![self];
        std::iter::from_fn(move || {
            let t = stack.pop()?;
            if let Some((_, kids)) = &t.via {
                stack.extend(kids.iter());
            }
            Some(t)
        })
    }
}

impl Clone for DerivationTree {
    /// Iterative clone: the derived clone glue recurses per nested
    /// node, which overflows the stack on the ≥10⁵-deep proofs the
    /// chain workloads produce.
    fn clone(&self) -> Self {
        let Some((rule0, kids0)) = &self.via else {
            return DerivationTree {
                atom: self.atom.clone(),
                via: None,
            };
        };
        struct Frame<'a> {
            atom: &'a GroundAtom,
            rule: usize,
            src: &'a [DerivationTree],
            kids: Vec<DerivationTree>,
        }
        let mut stack = vec![Frame {
            atom: &self.atom,
            rule: *rule0,
            src: kids0,
            kids: Vec::with_capacity(kids0.len()),
        }];
        loop {
            let (src, built) = {
                let f = stack.last().expect("non-empty until the root completes");
                (f.src, f.kids.len())
            };
            if built < src.len() {
                let child = &src[built];
                match &child.via {
                    None => stack
                        .last_mut()
                        .expect("frame exists")
                        .kids
                        .push(DerivationTree {
                            atom: child.atom.clone(),
                            via: None,
                        }),
                    Some((crule, ckids)) => stack.push(Frame {
                        atom: &child.atom,
                        rule: *crule,
                        src: ckids,
                        kids: Vec::with_capacity(ckids.len()),
                    }),
                }
            } else {
                let f = stack.pop().expect("frame exists");
                let node = DerivationTree {
                    atom: f.atom.clone(),
                    via: Some((f.rule, f.kids)),
                };
                match stack.last_mut() {
                    None => return node,
                    Some(parent) => parent.kids.push(node),
                }
            }
        }
    }
}

impl PartialEq for DerivationTree {
    /// Iterative structural equality (the derived impl recurses).
    fn eq(&self, other: &Self) -> bool {
        let mut stack = vec![(self, other)];
        while let Some((a, b)) = stack.pop() {
            if a.atom != b.atom {
                return false;
            }
            match (&a.via, &b.via) {
                (None, None) => {}
                (Some((ra, ka)), Some((rb, kb))) => {
                    if ra != rb || ka.len() != kb.len() {
                        return false;
                    }
                    stack.extend(ka.iter().zip(kb.iter()));
                }
                _ => return false,
            }
        }
        true
    }
}

impl Drop for DerivationTree {
    /// Iterative drop: the derived drop glue recurses through nested
    /// nodes, which overflows the stack on the ≥10⁵-deep proofs the
    /// chain workloads produce.
    fn drop(&mut self) {
        if let Some((_, kids)) = self.via.take() {
            let mut stack = kids;
            while let Some(mut t) = stack.pop() {
                if let Some((_, mut k)) = t.via.take() {
                    stack.append(&mut k);
                    // `t` drops here with `via == None`: no recursion.
                }
            }
        }
    }
}

/// Sentinel metric values (also used as memo-table states).
const UNSET: u64 = u64::MAX;
const PENDING: u64 = u64::MAX - 1;
/// Metrics saturate here so they never collide with the sentinels.
const METRIC_CAP: u64 = u64::MAX - 2;

/// Row-id provenance recorded by the columnar engine: for every derived
/// IDB row, the rule index and the body row ids that first derived it.
///
/// Produced by [`crate::eval::evaluate_with_provenance`]. Equality is
/// bit-for-bit over the row stores and justification tables — what the
/// thread-determinism tests assert.
#[derive(Clone, Debug, PartialEq)]
pub struct Provenance {
    rels: Vec<ColumnarRelation>,
    pred_of_rel: Vec<Pred>,
    rel_of_pred: FxHashMap<Pred, usize>,
    /// Per relation: whether it is an IDB of the program (has
    /// justifications; EDB rows are leaves).
    idb: Vec<bool>,
    just: Vec<RelJust>,
    /// Per rule: the dense relation id of each body atom.
    body_rels: Vec<Vec<u32>>,
}

impl Provenance {
    pub(crate) fn from_engine(
        rels: Vec<ColumnarRelation>,
        pred_of_rel: Vec<Pred>,
        rel_of_pred: FxHashMap<Pred, usize>,
        idb_rels: Vec<usize>,
        body_rels: Vec<Vec<u32>>,
        just: Vec<RelJust>,
    ) -> Self {
        let mut idb = vec![false; rels.len()];
        for r in idb_rels {
            idb[r] = true;
        }
        debug_assert!(idb
            .iter()
            .zip(&rels)
            .zip(&just)
            .all(|((&i, r), j)| !i || j.len() == r.num_rows()));
        Self {
            rels,
            pred_of_rel,
            rel_of_pred,
            idb,
            just,
            body_rels,
        }
    }

    /// Evaluates `program` on `db` with the columnar engine, recording
    /// one first-found justification per derived fact (sequential
    /// semi-naive; use [`crate::eval::evaluate_with_provenance`] for an
    /// explicit strategy — the justifications are identical).
    pub fn compute(program: &Program, db: &Database) -> Provenance {
        crate::eval::evaluate_with_provenance(program, db, crate::eval::Strategy::SemiNaive)
            .provenance
    }

    /// Locates an atom in the row store.
    fn rel_row(&self, atom: &GroundAtom) -> Option<(usize, u32)> {
        let &rel = self.rel_of_pred.get(&atom.pred)?;
        if self.rels[rel].arity() != atom.args.len() {
            return None;
        }
        let row = self.rels[rel].find_row(&atom.args);
        (row != NO_ROW).then_some((rel, row))
    }

    /// The atom stored at `(rel, row)`.
    fn atom_at(&self, rel: usize, row: u32) -> GroundAtom {
        GroundAtom {
            pred: self.pred_of_rel[rel],
            args: self.rels[rel].row(row as usize).to_vec(),
        }
    }

    /// The recorded justification of a row: `None` for EDB rows
    /// (leaves), `Some((rule, body row ids))` for derived rows.
    fn just_of(&self, rel: usize, row: u32) -> Option<(u32, &[u32])> {
        if !self.idb[rel] {
            return None;
        }
        Some(self.just[rel].entry(row as usize))
    }

    /// The justification of a derived fact: the rule index and the body
    /// ground atoms of its first-found derivation. `None` if the atom is
    /// not a derived IDB fact in the model.
    pub fn justification(&self, atom: &GroundAtom) -> Option<(usize, Vec<GroundAtom>)> {
        let (rel, row) = self.rel_row(atom)?;
        let (rule, body) = self.just_of(rel, row)?;
        let atoms = body
            .iter()
            .enumerate()
            .map(|(k, &b)| self.atom_at(self.body_rels[rule as usize][k] as usize, b))
            .collect();
        Some((rule as usize, atoms))
    }

    /// All derived live IDB ground atoms, in derivation (row id) order
    /// per predicate (tombstoned rows — retracted by the incremental
    /// maintenance layer — are skipped).
    pub fn derived(&self) -> impl Iterator<Item = GroundAtom> + '_ {
        self.rels
            .iter()
            .enumerate()
            .filter(|&(r, _)| self.idb[r])
            .flat_map(move |(r, rel)| {
                (0..rel.num_rows())
                    .filter(move |&row| rel.is_live(row))
                    .map(move |row| self.atom_at(r, row as u32))
            })
    }

    /// Number of derived live IDB facts (= live rows, each of which
    /// carries a justification).
    pub fn num_derived(&self) -> usize {
        self.rels
            .iter()
            .enumerate()
            .filter(|&(r, _)| self.idb[r])
            .map(|(_, rel)| rel.num_live())
            .sum()
    }

    /// Materializes the IDB model as a [`Database`] (what a plain
    /// [`crate::eval::evaluate`] returns). O(model) — built on demand so
    /// provenance-only consumers (tree metrics, boundedness
    /// measurements) never pay for it.
    pub fn idb_database(&self) -> Database {
        let mut idb_db = Database::new();
        for (r, rel) in self.rels.iter().enumerate() {
            if !self.idb[r] {
                continue;
            }
            let out = idb_db.relation_mut(self.pred_of_rel[r], rel.arity());
            for row in rel.rows_iter() {
                out.insert(row.to_vec());
            }
        }
        idb_db
    }

    /// Builds the derivation tree of a ground atom, if it is in the
    /// model (a leaf for database facts). Iterative: proof depth is
    /// bounded by memory, not stack.
    pub fn tree(&self, atom: &GroundAtom) -> Option<DerivationTree> {
        let (rel0, row0) = self.rel_row(atom)?;
        let Some((rule0, _)) = self.just_of(rel0, row0) else {
            return Some(DerivationTree {
                atom: self.atom_at(rel0, row0),
                via: None,
            });
        };
        struct Frame {
            rel: usize,
            row: u32,
            rule: u32,
            kids: Vec<DerivationTree>,
        }
        let mut stack = vec![Frame {
            rel: rel0,
            row: row0,
            rule: rule0,
            kids: Vec::new(),
        }];
        loop {
            let (frel, frow, frule, built) = {
                let f = stack.last().expect("non-empty until the root completes");
                (f.rel, f.row, f.rule, f.kids.len())
            };
            let body = self.just_of(frel, frow).expect("frames are derived rows").1;
            if built < body.len() {
                let crel = self.body_rels[frule as usize][built] as usize;
                let crow = body[built];
                match self.just_of(crel, crow) {
                    None => stack
                        .last_mut()
                        .expect("frame exists")
                        .kids
                        .push(DerivationTree {
                            atom: self.atom_at(crel, crow),
                            via: None,
                        }),
                    Some((crule, _)) => stack.push(Frame {
                        rel: crel,
                        row: crow,
                        rule: crule,
                        kids: Vec::new(),
                    }),
                }
            } else {
                let f = stack.pop().expect("frame exists");
                let node = DerivationTree {
                    atom: self.atom_at(f.rel, f.row),
                    via: Some((f.rule as usize, f.kids)),
                };
                match stack.last_mut() {
                    None => return Some(node),
                    Some(parent) => parent.kids.push(node),
                }
            }
        }
    }

    /// Number of nodes of the atom's derivation tree, without
    /// materializing it: iterative memoized dynamic programming over the
    /// justification DAG (shared sub-derivations are counted once per
    /// occurrence, as the tree semantics demands; values saturate).
    pub fn tree_size(&self, atom: &GroundAtom) -> Option<u64> {
        let (rel, row) = self.rel_row(atom)?;
        let mut ctx = MetricCtx::new(self, false);
        Some(ctx.get(rel, row).expect("engine provenance is acyclic"))
    }

    /// Height of the atom's derivation tree (a leaf has height 1),
    /// without materializing it.
    pub fn tree_height(&self, atom: &GroundAtom) -> Option<u64> {
        let (rel, row) = self.rel_row(atom)?;
        let mut ctx = MetricCtx::new(self, true);
        Some(ctx.get(rel, row).expect("engine provenance is acyclic"))
    }

    /// Derivation-tree heights of every live row of `pred`, in row
    /// (first derivation) order; empty if the predicate derived nothing.
    pub fn heights(&self, pred: Pred) -> Vec<u64> {
        let Some(&rel) = self.rel_of_pred.get(&pred) else {
            return Vec::new();
        };
        let mut ctx = MetricCtx::new(self, true);
        (0..self.rels[rel].num_rows())
            .filter(|&row| self.rels[rel].is_live(row))
            .map(|row| {
                ctx.get(rel, row as u32)
                    .expect("engine provenance is acyclic")
            })
            .collect()
    }

    /// The maximum derivation-tree height over all derived live facts
    /// (0 if nothing was derived) — the executable form of the Section 8
    /// boundedness measure.
    pub fn max_height(&self) -> u64 {
        let mut ctx = MetricCtx::new(self, true);
        let mut max = 0;
        for (rel, cr) in self.rels.iter().enumerate() {
            if !self.idb[rel] {
                continue;
            }
            for row in 0..cr.num_rows() {
                if !cr.is_live(row) {
                    continue;
                }
                max = max.max(
                    ctx.get(rel, row as u32)
                        .expect("engine provenance is acyclic"),
                );
            }
        }
        max
    }

    /// Validity check: every recorded justification is a genuine
    /// instantiation of its rule (constants match, repeated variables
    /// bind consistently, the head instantiates to the derived row), all
    /// body row ids are real rows, and every justification chain is
    /// well-founded — it bottoms out in EDB rows. This is the bridge the
    /// equivalence suite uses between this engine-recorded provenance
    /// and the naive [`crate::reference::Provenance`] specification.
    pub fn check(&self, program: &Program) -> Result<(), String> {
        use crate::ast::Term;
        let edbs = program.edb_predicates();
        for (rel, cr) in self.rels.iter().enumerate() {
            if !self.idb[rel] {
                if cr.num_live() > 0 && !edbs.contains(&self.pred_of_rel[rel]) {
                    return Err(format!(
                        "leaf relation {rel} is not an EDB predicate of the program"
                    ));
                }
                continue;
            }
            for row in 0..cr.num_rows() {
                if !cr.is_live(row) {
                    continue; // retracted rows keep stale, unread entries
                }
                let (rule_i, body) = self
                    .just_of(rel, row as u32)
                    .expect("IDB rows carry justifications");
                let rule = program
                    .rules
                    .get(rule_i as usize)
                    .ok_or_else(|| format!("row {rel}/{row}: rule {rule_i} out of range"))?;
                if rule.head.pred != self.pred_of_rel[rel] {
                    return Err(format!("row {rel}/{row}: rule {rule_i} heads another predicate"));
                }
                if body.len() != rule.body.len() {
                    return Err(format!("row {rel}/{row}: body arity mismatch"));
                }
                let mut env: FxHashMap<crate::ast::Var, crate::ast::Const> = FxHashMap::default();
                let bind = |t: &Term, c: crate::ast::Const, env: &mut FxHashMap<_, _>| match t {
                    Term::Const(k) => *k == c,
                    Term::Var(v) => *env.entry(*v).or_insert(c) == c,
                };
                for (k, (atom, &brow)) in rule.body.iter().zip(body).enumerate() {
                    let brel = self.body_rels[rule_i as usize][k] as usize;
                    if self.pred_of_rel[brel] != atom.pred {
                        return Err(format!("row {rel}/{row}: body {k} wrong predicate"));
                    }
                    if brow as usize >= self.rels[brel].num_rows() {
                        return Err(format!("row {rel}/{row}: body {k} row {brow} out of range"));
                    }
                    if !self.rels[brel].is_live(brow as usize) {
                        return Err(format!(
                            "row {rel}/{row}: body {k} row {brow} was retracted"
                        ));
                    }
                    let tuple = self.rels[brel].row(brow as usize);
                    if atom.args.len() != tuple.len()
                        || !atom
                            .args
                            .iter()
                            .zip(tuple)
                            .all(|(t, &c)| bind(t, c, &mut env))
                    {
                        return Err(format!(
                            "row {rel}/{row}: body {k} is not an instantiation"
                        ));
                    }
                }
                let head_row = cr.row(row);
                if rule.head.args.len() != head_row.len()
                    || !rule
                        .head
                        .args
                        .iter()
                        .zip(head_row)
                        .all(|(t, &c)| bind(t, c, &mut env))
                {
                    return Err(format!("row {rel}/{row}: head is not the rule instantiation"));
                }
            }
        }
        // Well-foundedness: height computation visits every chain and
        // fails on a cycle (a cycle would mean a "justification" that
        // never reaches EDB leaves).
        let mut ctx = MetricCtx::new(self, true);
        for (rel, cr) in self.rels.iter().enumerate() {
            if self.idb[rel] {
                for row in 0..cr.num_rows() {
                    if cr.is_live(row) {
                        ctx.get(rel, row as u32)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Shared-memo iterative DP over the justification DAG: size or height
/// per row. Detects cycles (corrupt stores) instead of hanging.
struct MetricCtx<'a> {
    prov: &'a Provenance,
    memo: Vec<Vec<u64>>,
    height: bool,
}

impl<'a> MetricCtx<'a> {
    fn new(prov: &'a Provenance, height: bool) -> Self {
        Self {
            prov,
            memo: prov.rels.iter().map(|r| vec![UNSET; r.num_rows()]).collect(),
            height,
        }
    }

    fn get(&mut self, rel0: usize, row0: u32) -> Result<u64, String> {
        let mut stack: Vec<(usize, u32, bool)> = vec![(rel0, row0, false)];
        while let Some((rel, row, expanded)) = stack.pop() {
            let cur = self.memo[rel][row as usize];
            if cur != UNSET && cur != PENDING {
                continue;
            }
            let Some((rule, body)) = self.prov.just_of(rel, row) else {
                self.memo[rel][row as usize] = 1; // EDB leaf
                continue;
            };
            if expanded {
                let mut acc = 0u64;
                for (k, &b) in body.iter().enumerate() {
                    let brel = self.prov.body_rels[rule as usize][k] as usize;
                    let v = self.memo[brel][b as usize];
                    debug_assert!(v != UNSET && v != PENDING, "children computed first");
                    acc = if self.height {
                        acc.max(v)
                    } else {
                        acc.saturating_add(v)
                    };
                }
                self.memo[rel][row as usize] = acc.saturating_add(1).min(METRIC_CAP);
            } else {
                self.memo[rel][row as usize] = PENDING;
                stack.push((rel, row, true));
                for (k, &b) in body.iter().enumerate() {
                    let brel = self.prov.body_rels[rule as usize][k] as usize;
                    match self.memo[brel][b as usize] {
                        PENDING => {
                            return Err(format!(
                                "cycle in justification DAG at relation {brel} row {b}"
                            ))
                        }
                        UNSET => stack.push((brel, b, false)),
                        _ => {}
                    }
                }
            }
        }
        Ok(self.memo[rel0][row0 as usize])
    }
}

/// The convergence profile of a program on a database: `new_facts[i]` is
/// the number of facts first derived at iteration `i+1` of the semi-naive
/// fixpoint; `iterations` is its length. Prop. 8.2: for a chain program,
/// the profile length is bounded independently of the input iff `L(H)` is
/// finite.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConvergenceProfile {
    /// New facts per iteration.
    pub new_facts: Vec<u64>,
}

impl ConvergenceProfile {
    /// Measures the profile in one semi-naive run: the engine's watermark
    /// deltas *are* the per-stage new-fact counts. Semi-naive with the
    /// last-delta-occurrence convention is stage-exact — iteration `k`
    /// derives precisely the facts first derivable at stage `k` of the
    /// immediate-consequence operator — so this equals the naive
    /// round-by-round count without re-running rounds against snapshots.
    pub fn measure(program: &Program, db: &Database) -> ConvergenceProfile {
        Self::measure_with(program, db, crate::eval::Strategy::SemiNaive)
    }

    /// [`ConvergenceProfile::measure`] with an explicit strategy, so the
    /// thread count of [`crate::eval::Strategy::SemiNaiveParallel`] can
    /// flow through. The parallel engine's per-iteration deltas are
    /// identical to the sequential engine's, so the measured profile
    /// does not depend on the thread count (a [`Strategy::Naive`]
    /// argument is measured as semi-naive — the profile is defined by
    /// stages, not by the evaluation order).
    ///
    /// [`Strategy::Naive`]: crate::eval::Strategy::Naive
    pub fn measure_with(
        program: &Program,
        db: &Database,
        strategy: crate::eval::Strategy,
    ) -> ConvergenceProfile {
        ConvergenceProfile {
            new_facts: crate::eval::seminaive_profile(program, db, strategy),
        }
    }

    /// Number of iterations to fixpoint.
    pub fn iterations(&self) -> usize {
        self.new_facts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Const;
    use crate::eval::{evaluate_with_provenance, Strategy};
    use crate::parser::parse_program;

    fn setup(n: usize) -> (Program, Database) {
        let mut p = parse_program(
            "?- anc(john, Y).\n\
             anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- anc(X, Z), par(Z, Y).",
        )
        .unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let mut db = Database::new();
        let mut prev = p.symbols.constant("john");
        for i in 1..=n {
            let c = p.symbols.constant(&format!("c{i}"));
            db.insert(par, vec![prev, c]);
            prev = c;
        }
        (p, db)
    }

    #[test]
    fn derivation_tree_for_chain() {
        let (p, db) = setup(4);
        let prov = Provenance::compute(&p, &db);
        let anc = p.symbols.get_predicate("anc").unwrap();
        let john = p.symbols.get_constant("john").unwrap();
        let c4 = p.symbols.get_constant("c4").unwrap();
        let atom = GroundAtom {
            pred: anc,
            args: vec![john, c4],
        };
        let tree = prov.tree(&atom).expect("anc(john, c4) derivable");
        // Program A is left-linear: tree height grows with distance.
        assert_eq!(tree.height(), 5); // anc-anc-anc-anc chain + par leaf
        assert!(tree.size() >= 8);
        // The DAG metrics agree with the materialized tree.
        assert_eq!(prov.tree_height(&atom), Some(tree.height() as u64));
        assert_eq!(prov.tree_size(&atom), Some(tree.size() as u64));
        assert_eq!(tree.nodes().count(), tree.size());
    }

    #[test]
    fn leaves_are_database_facts() {
        let (p, db) = setup(2);
        let prov = Provenance::compute(&p, &db);
        let anc = p.symbols.get_predicate("anc").unwrap();
        let john = p.symbols.get_constant("john").unwrap();
        let c2 = p.symbols.get_constant("c2").unwrap();
        let tree = prov
            .tree(&GroundAtom {
                pred: anc,
                args: vec![john, c2],
            })
            .unwrap();
        let edbs = p.edb_predicates();
        assert!(tree
            .nodes()
            .filter(|t| t.via.is_none())
            .all(|t| edbs.contains(&t.atom.pred)));
        prov.check(&p).expect("engine provenance is valid");
    }

    #[test]
    fn underivable_atom_has_no_tree() {
        let (p, db) = setup(2);
        let prov = Provenance::compute(&p, &db);
        let anc = p.symbols.get_predicate("anc").unwrap();
        let c1 = p.symbols.get_constant("c1").unwrap();
        let john = p.symbols.get_constant("john").unwrap();
        let atom = GroundAtom {
            pred: anc,
            args: vec![c1, john], // backwards
        };
        assert!(prov.tree(&atom).is_none());
        assert!(prov.tree_height(&atom).is_none());
        assert!(prov.justification(&atom).is_none());
    }

    #[test]
    fn justifications_are_rule_instantiations() {
        let (p, db) = setup(3);
        let prov = Provenance::compute(&p, &db);
        let anc = p.symbols.get_predicate("anc").unwrap();
        let john = p.symbols.get_constant("john").unwrap();
        let c3 = p.symbols.get_constant("c3").unwrap();
        let (rule, body) = prov
            .justification(&GroundAtom {
                pred: anc,
                args: vec![john, c3],
            })
            .unwrap();
        // anc(john, c3) can only come from the recursive rule.
        assert_eq!(rule, 1);
        assert_eq!(body.len(), 2);
        assert_eq!(prov.num_derived(), 6); // all anc pairs on a 3-chain
        assert_eq!(prov.derived().count(), 6);
    }

    #[test]
    fn provenance_identical_across_thread_and_shard_counts() {
        let (p, db) = setup(9);
        let seq = evaluate_with_provenance(&p, &db, Strategy::SemiNaive);
        for strategy in [
            Strategy::SemiNaiveParallel { threads: 2 },
            Strategy::SemiNaiveParallel { threads: 4 },
            Strategy::SemiNaiveSharded { threads: 2, shards: 7 },
            Strategy::SemiNaiveSharded { threads: 1, shards: 5 },
        ] {
            let par = evaluate_with_provenance(&p, &db, strategy);
            assert_eq!(par.stats, seq.stats, "{strategy:?}");
            assert_eq!(par.provenance, seq.provenance, "{strategy:?}");
        }
    }

    /// Satellite regression: a ≥200k-deep manually-built chain tree.
    /// Must pass in the default (dev) test profile, where thread stacks
    /// are smallest — recursion in size/height/drop would overflow.
    #[test]
    fn deep_chain_tree_metrics_are_iterative_200k() {
        const DEPTH: usize = 200_000;
        let mut t = DerivationTree {
            atom: GroundAtom {
                pred: Pred(1),
                args: vec![Const(0), Const(1)],
            },
            via: None,
        };
        for i in 1..DEPTH {
            t = DerivationTree {
                atom: GroundAtom {
                    pred: Pred(0),
                    args: vec![Const(0), Const(i as u32 + 1)],
                },
                via: Some((0, vec![t])),
            };
        }
        assert_eq!(t.height(), DEPTH);
        assert_eq!(t.size(), DEPTH);
        assert_eq!(t.nodes().count(), DEPTH);
        // Clone and structural equality are iterative too.
        let c = t.clone();
        assert_eq!(c.height(), DEPTH);
        assert!(c == t, "iterative eq on the deep clone");
        // The implicit drops of `t` and `c` here complete the test:
        // derive'd drop glue would recurse 200k frames deep.
    }

    /// Satellite regression: a ≥200k-deep proof produced by the engine,
    /// reconstructed and measured through the columnar provenance. Uses
    /// the monadic Program D (linear model) so the fixpoint itself stays
    /// O(n).
    #[test]
    fn deep_chain_provenance_reconstruction_200k() {
        const N: usize = 200_000;
        let mut p = parse_program(
            "?- ancjohn(Y).\n\
             ancjohn(Y) :- par(john, Y).\n\
             ancjohn(Y) :- ancjohn(Z), par(Z, Y).",
        )
        .unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let mut db = Database::new();
        let mut prev = p.symbols.constant("john");
        let mut last = prev;
        for i in 1..=N {
            let c = p.symbols.constant(&format!("c{i}"));
            db.insert(par, vec![prev, c]);
            prev = c;
            last = c;
        }
        let prov = Provenance::compute(&p, &db);
        let ancjohn = p.symbols.get_predicate("ancjohn").unwrap();
        let deepest = GroundAtom {
            pred: ancjohn,
            args: vec![last],
        };
        // DAG metrics without materialization.
        assert_eq!(prov.tree_height(&deepest), Some(N as u64 + 1));
        assert_eq!(prov.tree_size(&deepest), Some(2 * N as u64));
        assert_eq!(prov.max_height(), N as u64 + 1);
        // Full iterative reconstruction of the 400k-node tree — and its
        // iterative drop at scope end.
        let tree = prov.tree(&deepest).expect("deepest fact derivable");
        assert_eq!(tree.height(), N + 1);
        assert_eq!(tree.size(), 2 * N);
    }

    #[test]
    fn convergence_profile_grows_with_chain() {
        let (p, db) = setup(6);
        let prof = ConvergenceProfile::measure(&p, &db);
        // transitive closure of a 6-chain: 6 rounds of new facts
        assert_eq!(prof.iterations(), 6);
        let total: u64 = prof.new_facts.iter().sum();
        // all anc pairs on a 6-chain: 6+5+4+3+2+1 = 21
        assert_eq!(total, 21);
    }

    #[test]
    fn bounded_program_profile_is_constant() {
        // grandparent: bounded (nonrecursive) — 1 iteration regardless of n
        let mut p = parse_program(
            "?- gp(john, Y).\n\
             gp(X, Y) :- par(X, Z), par(Z, Y).",
        )
        .unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        for n in [3usize, 10] {
            let mut db = Database::new();
            let mut prev = p.symbols.constant("john");
            for i in 1..=n {
                let c = p.symbols.constant(&format!("k{n}_{i}"));
                db.insert(par, vec![prev, c]);
                prev = c;
            }
            let prof = ConvergenceProfile::measure(&p, &db);
            assert_eq!(prof.iterations(), 1, "nonrecursive program is bounded");
        }
    }
}
