//! Derivation trees and convergence profiling.
//!
//! Section 2.1 of the paper gives the operational semantics of Datalog via
//! derivation trees: a ground atom is in the minimum model iff it has a
//! tree whose leaves are database facts and whose internal nodes are rule
//! instantiations. This module materializes one such tree per derived
//! fact, and measures the **convergence profile** (new facts per
//! iteration) used by the boundedness experiments: a program is bounded
//! w.r.t. its goal iff derivation-tree size — equivalently, iterations to
//! fixpoint — is bounded independently of the database (Section 8).

use std::collections::HashMap;

use crate::ast::{Const, Pred, Program, Term};
use crate::db::{Database, Tuple};

/// A ground atom `pred(c1, ..., ck)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct GroundAtom {
    /// The predicate.
    pub pred: Pred,
    /// The constant arguments.
    pub args: Tuple,
}

/// A derivation tree for a ground atom.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DerivationTree {
    /// The derived ground atom at this node.
    pub atom: GroundAtom,
    /// `None` for database facts (leaves); otherwise the rule index used
    /// and the subtrees deriving the body atoms.
    pub via: Option<(usize, Vec<DerivationTree>)>,
}

impl DerivationTree {
    /// Number of nodes.
    pub fn size(&self) -> usize {
        1 + self
            .via
            .iter()
            .flat_map(|(_, kids)| kids.iter())
            .map(DerivationTree::size)
            .sum::<usize>()
    }

    /// Height (a leaf has height 1).
    pub fn height(&self) -> usize {
        1 + self
            .via
            .iter()
            .flat_map(|(_, kids)| kids.iter())
            .map(DerivationTree::height)
            .max()
            .unwrap_or(0)
    }
}

/// Provenance-tracking evaluation: for every derived IDB fact, one
/// justification (rule index + body ground atoms).
pub struct Provenance {
    just: HashMap<GroundAtom, (usize, Vec<GroundAtom>)>,
    edb_preds: Vec<Pred>,
}

impl Provenance {
    /// Runs a naive fixpoint recording first-found justifications.
    pub fn compute(program: &Program, db: &Database) -> Provenance {
        let mut just: HashMap<GroundAtom, (usize, Vec<GroundAtom>)> = HashMap::new();
        // naive rounds with substitution enumeration via the existing
        // engine is not provenance-aware, so re-derive here with a simple
        // nested-loop matcher (clarity over speed; used on small inputs).
        let mut model: Vec<GroundAtom> = Vec::new();
        let mut model_set: std::collections::HashSet<GroundAtom> = Default::default();
        for (p, rel) in db.iter() {
            for t in rel.iter() {
                let g = GroundAtom {
                    pred: p,
                    args: t.clone(),
                };
                if model_set.insert(g.clone()) {
                    model.push(g);
                }
            }
        }
        loop {
            let mut new: Vec<(GroundAtom, usize, Vec<GroundAtom>)> = Vec::new();
            for (ri, rule) in program.rules.iter().enumerate() {
                let mut env: HashMap<crate::ast::Var, Const> = HashMap::new();
                match_body(rule, 0, &model, &mut env, &mut |env| {
                    let head = GroundAtom {
                        pred: rule.head.pred,
                        args: rule
                            .head
                            .args
                            .iter()
                            .map(|t| match t {
                                Term::Const(c) => *c,
                                Term::Var(v) => env[v],
                            })
                            .collect(),
                    };
                    if !model_set.contains(&head) {
                        let body = rule
                            .body
                            .iter()
                            .map(|a| GroundAtom {
                                pred: a.pred,
                                args: a
                                    .args
                                    .iter()
                                    .map(|t| match t {
                                        Term::Const(c) => *c,
                                        Term::Var(v) => env[v],
                                    })
                                    .collect(),
                            })
                            .collect();
                        new.push((head, ri, body));
                    }
                });
            }
            let mut any = false;
            for (head, ri, body) in new {
                if model_set.insert(head.clone()) {
                    model.push(head.clone());
                    just.insert(head, (ri, body));
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        Provenance {
            just,
            edb_preds: program.edb_predicates(),
        }
    }

    /// Builds the derivation tree of a ground atom, if it was derived (or
    /// is a database fact).
    pub fn tree(&self, atom: &GroundAtom) -> Option<DerivationTree> {
        if self.edb_preds.contains(&atom.pred) {
            return Some(DerivationTree {
                atom: atom.clone(),
                via: None,
            });
        }
        let (ri, body) = self.just.get(atom)?;
        let kids: Option<Vec<DerivationTree>> = body.iter().map(|b| self.tree(b)).collect();
        Some(DerivationTree {
            atom: atom.clone(),
            via: Some((*ri, kids?)),
        })
    }

    /// All derived IDB ground atoms.
    pub fn derived(&self) -> impl Iterator<Item = &GroundAtom> {
        self.just.keys()
    }
}

fn match_body(
    rule: &crate::ast::Rule,
    pos: usize,
    model: &[GroundAtom],
    env: &mut HashMap<crate::ast::Var, Const>,
    emit: &mut dyn FnMut(&HashMap<crate::ast::Var, Const>),
) {
    if pos == rule.body.len() {
        emit(env);
        return;
    }
    let atom = &rule.body[pos];
    for fact in model {
        if fact.pred != atom.pred || fact.args.len() != atom.args.len() {
            continue;
        }
        let mut bound: Vec<crate::ast::Var> = Vec::new();
        let mut ok = true;
        for (t, c) in atom.args.iter().zip(&fact.args) {
            match t {
                Term::Const(k) => {
                    if k != c {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match env.get(v) {
                    Some(&b) => {
                        if b != *c {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        env.insert(*v, *c);
                        bound.push(*v);
                    }
                },
            }
        }
        if ok {
            match_body(rule, pos + 1, model, env, emit);
        }
        for v in bound {
            env.remove(&v);
        }
    }
}

/// The convergence profile of a program on a database: `new_facts[i]` is
/// the number of facts first derived at iteration `i+1` of the semi-naive
/// fixpoint; `iterations` is its length. Prop. 8.2: for a chain program,
/// the profile length is bounded independently of the input iff `L(H)` is
/// finite.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConvergenceProfile {
    /// New facts per iteration.
    pub new_facts: Vec<u64>,
}

impl ConvergenceProfile {
    /// Measures the profile in one semi-naive run: the engine's watermark
    /// deltas *are* the per-stage new-fact counts. Semi-naive with the
    /// last-delta-occurrence convention is stage-exact — iteration `k`
    /// derives precisely the facts first derivable at stage `k` of the
    /// immediate-consequence operator — so this equals the naive
    /// round-by-round count without re-running rounds against snapshots.
    pub fn measure(program: &Program, db: &Database) -> ConvergenceProfile {
        Self::measure_with(program, db, crate::eval::Strategy::SemiNaive)
    }

    /// [`ConvergenceProfile::measure`] with an explicit strategy, so the
    /// thread count of [`crate::eval::Strategy::SemiNaiveParallel`] can
    /// flow through. The parallel engine's per-iteration deltas are
    /// identical to the sequential engine's, so the measured profile
    /// does not depend on the thread count (a [`Strategy::Naive`]
    /// argument is measured as semi-naive — the profile is defined by
    /// stages, not by the evaluation order).
    ///
    /// [`Strategy::Naive`]: crate::eval::Strategy::Naive
    pub fn measure_with(
        program: &Program,
        db: &Database,
        strategy: crate::eval::Strategy,
    ) -> ConvergenceProfile {
        ConvergenceProfile {
            new_facts: crate::eval::seminaive_profile(program, db, strategy),
        }
    }

    /// Number of iterations to fixpoint.
    pub fn iterations(&self) -> usize {
        self.new_facts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn setup(n: usize) -> (Program, Database) {
        let mut p = parse_program(
            "?- anc(john, Y).\n\
             anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- anc(X, Z), par(Z, Y).",
        )
        .unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let mut db = Database::new();
        let mut prev = p.symbols.constant("john");
        for i in 1..=n {
            let c = p.symbols.constant(&format!("c{i}"));
            db.insert(par, vec![prev, c]);
            prev = c;
        }
        (p, db)
    }

    #[test]
    fn derivation_tree_for_chain() {
        let (p, db) = setup(4);
        let prov = Provenance::compute(&p, &db);
        let anc = p.symbols.get_predicate("anc").unwrap();
        let john = p.symbols.get_constant("john").unwrap();
        let c4 = p.symbols.get_constant("c4").unwrap();
        let tree = prov
            .tree(&GroundAtom {
                pred: anc,
                args: vec![john, c4],
            })
            .expect("anc(john, c4) derivable");
        // Program A is left-linear: tree height grows with distance.
        assert_eq!(tree.height(), 5); // anc-anc-anc-anc chain + par leaf
        assert!(tree.size() >= 8);
    }

    #[test]
    fn leaves_are_database_facts() {
        let (p, db) = setup(2);
        let prov = Provenance::compute(&p, &db);
        let anc = p.symbols.get_predicate("anc").unwrap();
        let john = p.symbols.get_constant("john").unwrap();
        let c2 = p.symbols.get_constant("c2").unwrap();
        let tree = prov
            .tree(&GroundAtom {
                pred: anc,
                args: vec![john, c2],
            })
            .unwrap();
        fn check_leaves(t: &DerivationTree, p: &Program) -> bool {
            match &t.via {
                None => p.edb_predicates().contains(&t.atom.pred),
                Some((_, kids)) => kids.iter().all(|k| check_leaves(k, p)),
            }
        }
        assert!(check_leaves(&tree, &p));
    }

    #[test]
    fn underivable_atom_has_no_tree() {
        let (p, db) = setup(2);
        let prov = Provenance::compute(&p, &db);
        let anc = p.symbols.get_predicate("anc").unwrap();
        let c1 = p.symbols.get_constant("c1").unwrap();
        let john = p.symbols.get_constant("john").unwrap();
        assert!(prov
            .tree(&GroundAtom {
                pred: anc,
                args: vec![c1, john], // backwards
            })
            .is_none());
    }

    #[test]
    fn convergence_profile_grows_with_chain() {
        let (p, db) = setup(6);
        let prof = ConvergenceProfile::measure(&p, &db);
        // transitive closure of a 6-chain: 6 rounds of new facts
        assert_eq!(prof.iterations(), 6);
        let total: u64 = prof.new_facts.iter().sum();
        // all anc pairs on a 6-chain: 6+5+4+3+2+1 = 21
        assert_eq!(total, 21);
    }

    #[test]
    fn bounded_program_profile_is_constant() {
        // grandparent: bounded (nonrecursive) — 1 iteration regardless of n
        let mut p = parse_program(
            "?- gp(john, Y).\n\
             gp(X, Y) :- par(X, Z), par(Z, Y).",
        )
        .unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        for n in [3usize, 10] {
            let mut db = Database::new();
            let mut prev = p.symbols.constant("john");
            for i in 1..=n {
                let c = p.symbols.constant(&format!("k{n}_{i}"));
                db.insert(par, vec![prev, c]);
                prev = c;
            }
            let prof = ConvergenceProfile::measure(&p, &db);
            assert_eq!(prof.iterations(), 1, "nonrecursive program is bounded");
        }
    }
}
