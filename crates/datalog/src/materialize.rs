//! The persistent incremental materialization layer.
//!
//! Everything PRs 2–4 built — per-predicate [`ColumnarRelation`]s,
//! persistent [`IncrementalIndex`]es, compiled rule plans, semi-naive
//! watermarks, work counters — used to be transient locals of
//! `eval::evaluate`: one call, one fixpoint, state dropped. This module
//! makes that state a first-class value. A [`Materialization`] is a
//! program's minimum model **kept at fixpoint across updates**:
//!
//! - [`Materialization::insert_facts`] appends novel EDB rows and
//!   resumes semi-naive evaluation with those rows as the next delta —
//!   semi-naive *is* an incremental algorithm, so an update costs work
//!   proportional to the new derivations, not the whole closure. The
//!   first update round treats every body atom over a grown relation
//!   (EDB included) as a delta position, with the same
//!   "last delta occurrence" convention the batch engine uses.
//! - [`Materialization::retract_facts`] removes EDB rows by
//!   **delete–rederive** (DRed): tombstone the rows
//!   ([`ColumnarRelation::tombstone`]), over-delete every derived row
//!   whose recorded justification transitively uses a deleted row, then
//!   re-derive survivors from the remaining store (a goal-directed
//!   per-tuple check against lazily compiled re-derivation plans) and
//!   propagate the rescues through the normal insert machinery.
//! - [`Materialization::apply`] batches a whole mixed round — EDB
//!   inserts, retracts, **rule adds** and **rule drops** — into one
//!   DRed pass (a single walk of the persistent reverse-dependency
//!   index, however much the round mixes) plus one semi-naive resume. `insert_facts`,
//!   `retract_facts`, [`Materialization::add_rule`] and
//!   [`Materialization::drop_rule`] are thin single-phase wrappers.
//!   Rule hot-swap works at fixpoint: an added rule seeds its delta
//!   from the existing rows; a dropped rule's derivations are found by
//!   their recorded justification rule ids and over-deleted like any
//!   retraction. Rule ids ([`RuleId`]) are stable plan slots, never
//!   reused.
//! - Batch evaluation is now a *special case*: `eval::evaluate` builds a
//!   materialization, bulk-loads the database, runs to fixpoint once and
//!   reads the result out — same struct, same join code, same counters.
//!
//! A materialization always records justifications (one per derived
//! row, exactly as [`crate::eval::evaluate_with_provenance`] does);
//! that is what makes retraction possible, and it keeps
//! [`Materialization::provenance`] valid across updates. Updates work
//! unchanged under the parallel strategies: shards partition the first
//! join step's row range top-down, so the staged rows merge in exactly
//! the sequential engine's order and row ids, justifications and
//! [`EvalStats`] are identical at every thread and shard count.
//!
//! The executable specification of every update sequence is a naive
//! from-scratch re-evaluation ([`crate::reference`]) of the mirrored
//! database; `tests/engine_equiv.rs` proptests random interleaved
//! insert/retract/query sequences against it.

use crate::ast::{Atom, Const, Pred, Program, Rule, Term, Var};
use crate::db::{Database, Relation, Tuple};
use crate::derivation::Provenance;
use crate::eval::{self, EvalResult, EvalStats, ProvenanceResult, Strategy, OVERSHARD};
use crate::hash::{FxHashMap, FxHashSet};
use crate::persist::{self, Dec, Enc, PersistError};
use crate::plan::{
    compile_rederive, compile_rule, plan_rule, Action, HeadOp, KeyOp, Out, OrderMode,
    PlannerConfig, RederivePlan, RulePlan, Step,
};
use crate::pool::ThreadPool;
use crate::storage::{shard_ranges, ColumnarRelation, IncrementalIndex, NO_ROW};
use std::path::Path;

/// Sentinel edge id: end of a reverse-dependency chain.
const NO_EDGE: u32 = u32::MAX;

/// One reverse-dependency edge: a head row whose recorded justification
/// uses the body row owning the chain, plus the next edge of that chain.
#[derive(Clone, Copy, Debug)]
struct RevEdge {
    hrel: u32,
    hrow: u32,
    next: u32,
}

/// The **persistent reverse-dependency index** over the recorded
/// justifications: for every row, the chain of head rows whose
/// justification uses it as a body row. This is what makes DRed
/// over-deletion O(affected): a retraction walks the chains of the
/// seeds' closure instead of re-scanning every live justification.
///
/// Built lazily on the first over-deleting round (one full pass, counted
/// by [`Materialization::csr_builds`]), then maintained incrementally:
/// every merged or rescued row appends one edge per body position.
/// Edges are never removed — a chain may point at head rows that died
/// later; the traversal's `tombstone` call is a no-op on them, and
/// [`Materialization::compact`] rebuilds the index from the live
/// justifications.
#[derive(Clone, Debug, Default)]
struct RevIndex {
    /// Per relation, per row: the newest edge of the row's chain
    /// ([`NO_EDGE`] = no dependents recorded).
    head: Vec<Vec<u32>>,
    /// The flat edge pool all chains thread through.
    edges: Vec<RevEdge>,
}

impl RevIndex {
    /// Records that head row `(hrel, hrow)`'s justification uses body
    /// row `(brel, brow)`.
    fn add(&mut self, brel: usize, brow: u32, hrel: u32, hrow: u32) {
        if self.head.len() <= brel {
            self.head.resize(brel + 1, Vec::new());
        }
        let chain = &mut self.head[brel];
        if chain.len() <= brow as usize {
            chain.resize(brow as usize + 1, NO_EDGE);
        }
        let id = u32::try_from(self.edges.len()).expect("reverse-index edge overflow");
        self.edges.push(RevEdge {
            hrel,
            hrow,
            next: chain[brow as usize],
        });
        chain[brow as usize] = id;
    }

    /// The newest edge id of `(brel, brow)`'s chain.
    fn chain(&self, brel: usize, brow: u32) -> u32 {
        self.head
            .get(brel)
            .and_then(|c| c.get(brow as usize))
            .copied()
            .unwrap_or(NO_EDGE)
    }

    /// Words held (memory accounting).
    fn footprint_words(&self) -> usize {
        self.edges.len() * 3 + self.head.iter().map(Vec::len).sum::<usize>()
    }
}

/// When [`Materialization::apply`] triggers an automatic
/// [`Materialization::compact`]: any relation whose tombstoned-row count
/// reaches both bounds trips the whole-store pass. The serving layer
/// ([`crate::server`]) checks the same policy but defers the pass while
/// any epoch snapshot is pinned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Minimum tombstoned rows in one relation (keeps tiny stores from
    /// compacting on every round).
    pub min_dead_rows: usize,
    /// Tombstoned-row share of the relation, in percent: trigger when
    /// `dead * 100 >= dead_percent * rows`.
    pub dead_percent: u32,
}

impl Default for CompactionPolicy {
    /// Compact when a relation is at least half dead (and has at least
    /// 64 tombstones to show for it).
    fn default() -> Self {
        Self {
            min_dead_rows: 64,
            dead_percent: 50,
        }
    }
}

/// A memory snapshot of the store's row-addressed structures, in units
/// of one 32/64-bit word (not bytes: the point is growth *ratios* under
/// churn, which the churn benches gate on). See
/// [`Materialization::mem_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Live (non-tombstoned) rows across all relations.
    pub live_rows: usize,
    /// Total row slots ever allocated (live + tombstoned).
    pub total_rows: usize,
    /// Words of tuple data (`Σ rows × arity`).
    pub tuple_words: usize,
    /// Words held by the join indexes (chain + key tables + frozen
    /// posting pools — `seg_words` is included here, so the bounded-
    /// memory gates cover the segment storage too).
    pub index_words: usize,
    /// Words held by the frozen posting pools alone (a subset of
    /// `index_words`, reported separately so the storage benches can
    /// show the segment share).
    pub seg_words: usize,
    /// Words of packed justification entries (offsets + buffers).
    pub just_words: usize,
    /// Words held by the reverse-dependency index (0 until the first
    /// retraction builds it).
    pub rev_words: usize,
}

impl MemStats {
    /// The bounded-memory gate the churn benches compare: the sum of
    /// tuple, index and justification words — the row-addressed
    /// structures a fresh store also carries, so peak-vs-fresh ratios
    /// are meaningful. The reverse index is reported separately: it is
    /// rebuilt live-only at each compaction, so it is bounded by the
    /// same argument, but a freshly evaluated store does not carry one.
    pub fn row_words(&self) -> usize {
        self.tuple_words + self.index_words + self.just_words
    }

    /// Every word tracked, reverse index included.
    pub fn total_words(&self) -> usize {
        self.row_words() + self.rev_words
    }
}

/// Reusable scratch buffers for one evaluation (no per-tuple allocation).
#[derive(Default)]
struct Scratch {
    /// Rule-local slot environment. Values are garbage until a `Bind` or
    /// key-op write at the plan-determined depth; the plan guarantees
    /// every read happens after the corresponding write.
    env: Vec<Const>,
    /// Probe-key buffer, refilled before every index probe.
    key: Vec<Const>,
    /// Head-tuple buffer.
    head: Vec<Const>,
    /// Row id matched at each join depth — the derivation coordinates.
    /// Maintained unconditionally (one word store per matched row); read
    /// only when provenance recording is on.
    rows: Vec<u32>,
    /// Per-shard staged-head filter ([`PlannerConfig::staged_filter`]):
    /// head tuples already staged by this `(rule, delta, shard)`
    /// evaluation. Reset at every evaluation entry; purely suppresses
    /// duplicate staging, never affects counters or merge order.
    staged: StagedSet,
    /// The pre-change staged-head filter (an owning set, one clone per
    /// staged head), used instead of `staged` under the chains-only
    /// storage baseline (`PlannerConfig::segmented == false`).
    staged_legacy: FxHashSet<Vec<Const>>,
}

/// One slot of a [`StagedSet`]: live iff its generation matches the
/// set's, carrying the staged head's memoized hash and its offset into
/// the staging buffer (the set stores no tuple data of its own).
#[derive(Clone, Copy, Default)]
struct StagedSlot {
    gen: u32,
    hash: u64,
    off: u32,
}

/// The staged-head filter as an allocation-free open-addressing set.
/// Entries reference the head tuples already appended to the evaluation's
/// [`PendingTuples::data`] buffer by offset (one `(rule, delta, shard)`
/// evaluation stages heads of a single relation, so one arity governs
/// every entry) and carry the staged copy's memoized row hash — so the
/// filter re-hashes nothing and clones nothing, where the previous
/// `HashSet<Vec<Const>>` allocated one `Vec` per staged head.
/// Generation stamping makes the per-evaluation reset O(1).
#[derive(Default)]
struct StagedSet {
    slots: Vec<StagedSlot>,
    /// Live entries of the current generation (for the load factor).
    len: usize,
    /// Current generation; slots with a stale stamp are empty.
    gen: u32,
}

impl StagedSet {
    /// Starts a fresh evaluation: empties the set in O(1).
    fn begin(&mut self) {
        if self.gen == u32::MAX {
            // Generation wraparound: physically clear so stale stamps
            // can never alias the restarted counter.
            self.slots.iter_mut().for_each(|s| *s = StagedSlot::default());
            self.gen = 0;
        }
        self.gen += 1;
        self.len = 0;
    }

    /// Inserts `head` (with its memoized hash) unless an equal head was
    /// already staged this generation; returns whether it was new. The
    /// caller appends `head` at `data.len()` right after a successful
    /// insert — `data` is the staging buffer earlier entries point into.
    fn insert_if_new(&mut self, head: &[Const], hash: u64, data: &[Const]) -> bool {
        if (self.len + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let s = self.slots[i];
            if s.gen != self.gen {
                self.slots[i] = StagedSlot {
                    gen: self.gen,
                    hash,
                    off: u32::try_from(data.len()).expect("staging buffer overflow"),
                };
                self.len += 1;
                return true;
            }
            if s.hash == hash && &data[s.off as usize..s.off as usize + head.len()] == head {
                return false;
            }
            i = (i + 1) & mask;
        }
    }

    /// Doubles the table, re-seating the current generation's entries by
    /// their stored hashes (distinct by construction, so no equality
    /// checks are needed).
    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![StagedSlot::default(); cap]);
        let mask = cap - 1;
        for s in old {
            if s.gen != self.gen {
                continue;
            }
            let mut i = (s.hash as usize) & mask;
            while self.slots[i].gen == self.gen {
                i = (i + 1) & mask;
            }
            self.slots[i] = s;
        }
    }
}

/// Tuples derived during one iteration, buffered flat until the merge
/// (rules within an iteration must not see each other's output).
///
/// When provenance recording is on, every staged tuple also stages its
/// justification as one packed `[rule, body row ids...]` entry in `just`
/// (entry length = 1 + the rule's body length). The merge keeps only the
/// justification of the staged copy that actually inserts the row — the
/// first found in the deterministic merge order.
#[derive(Default)]
struct PendingTuples {
    data: Vec<Const>,
    rels: Vec<u32>,
    /// The staged tuple's dedup hash ([`ColumnarRelation::hash_row`]),
    /// memoized at staging time so the merge's insert probes without
    /// re-hashing (one hash per tuple instead of two).
    hash: Vec<u64>,
    /// Packed justifications, one `[rule, rows...]` entry per staged
    /// tuple (empty when recording is off).
    just: Vec<u32>,
}

/// Per-relation justification store: one packed `[rule, body row ids...]`
/// entry per row, parallel to the relation's row ids, in **one flat
/// buffer** (no per-row `Vec`s — the ROADMAP's recording-overhead item).
/// EDB relations keep empty stores (their rows are leaves). Entries of
/// tombstoned rows linger but are never read: every consumer skips dead
/// rows.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct RelJust {
    /// Entry start offset per row.
    off: Vec<u32>,
    /// Flat entries: `[rule, body row ids...]` per row.
    buf: Vec<u32>,
}

impl RelJust {
    fn push(&mut self, rule: u32, body: &[u32]) {
        self.off
            .push(u32::try_from(self.buf.len()).expect("justification store overflow"));
        self.buf.push(rule);
        self.buf.extend_from_slice(body);
    }

    /// The `(rule, body row ids)` entry of row `r`.
    pub(crate) fn entry(&self, r: usize) -> (u32, &[u32]) {
        let lo = self.off[r] as usize;
        let hi = self
            .off
            .get(r + 1)
            .map_or(self.buf.len(), |&o| o as usize);
        (self.buf[lo], &self.buf[lo + 1..hi])
    }

    /// Number of rows with entries (= the relation's row count for IDB
    /// relations under recording).
    pub(crate) fn len(&self) -> usize {
        self.off.len()
    }

    /// Words held (memory accounting).
    fn footprint_words(&self) -> usize {
        self.off.len() + self.buf.len()
    }

    /// The packed `(offsets, buffer)` pair (serialization).
    fn parts(&self) -> (&[u32], &[u32]) {
        (&self.off, &self.buf)
    }

    /// Reassembles a store from its serialized parts. The caller
    /// validates shape (monotone offsets, entry bounds) before use.
    fn from_parts(off: Vec<u32>, buf: Vec<u32>) -> Self {
        Self { off, buf }
    }
}

/// Work counters for one rule-evaluation pass, with probes split at the
/// sharded depth. `pre` counts the depth-0 probe — work every parallel
/// shard repeats identically (each shard probes or scans its own
/// subrange of the first step exactly once), so only the lead shard's
/// `pre` enters [`EvalStats`]. `post` counts probes at depth ≥ 1 — work
/// partitioned by the first step's rows, summed across shards.
#[derive(Clone, Copy, Debug, Default)]
struct Counters {
    pre: u64,
    post: u64,
    firings: u64,
    /// Transitive-closure kernel invocations (observability only; never
    /// part of [`EvalStats`]).
    tc_hits: u64,
    /// Full instantiations enumerated inside the kernel.
    tc_rows: u64,
}

/// One parallel work item: rule `plan_i` with delta step `delta_pos`,
/// the **first join step** restricted to the row subrange `range`,
/// staging into its own buffer. `lead` marks the shard whose `pre`
/// (depth-0) probe count is accounted. Tasks are recycled across
/// iterations so the staging and scratch buffers keep their grown
/// capacity instead of reallocating every iteration.
#[derive(Default)]
struct ShardTask {
    plan_i: usize,
    delta_pos: usize,
    range: (usize, usize),
    lead: bool,
    counters: Counters,
    pending: PendingTuples,
    scratch: Scratch,
}

/// Stable identifier of a rule inside a [`Materialization`]: the rule's
/// plan slot. Slots are assigned in program order at construction, then
/// in [`UpdateRound::add_rule`] order, and are **never reused** — a
/// dropped rule leaves its slot behind (recorded justifications index
/// rule slots, so reindexing would corrupt provenance).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(pub u32);

/// A batched update round: EDB inserts and retracts plus rule adds and
/// drops, applied by [`Materialization::apply`] as **one** mixed batch —
/// one over-deletion pass (a single walk of the persistent
/// reverse-dependency index for the whole round), one rescue pass, one
/// semi-naive resume to fixpoint.
///
/// Within a round the phases are ordered: rule drops, rule adds, EDB
/// retracts, EDB inserts, then propagation. In particular a tuple both
/// retracted and inserted in the same round ends up **present**.
#[derive(Clone, Debug, Default)]
pub struct UpdateRound {
    /// EDB facts to insert (applied after the retracts).
    pub inserts: Vec<(Pred, Tuple)>,
    /// EDB facts to retract (applied before the inserts).
    pub retracts: Vec<(Pred, Tuple)>,
    /// Rules to add at fixpoint: compiled to fresh [`RuleId`]s and
    /// delta-seeded from the existing rows.
    pub rule_adds: Vec<Rule>,
    /// Rules to drop at fixpoint: every row whose justification names a
    /// dropped rule is over-deleted and then eligible for rescue through
    /// the surviving rules.
    pub rule_drops: Vec<RuleId>,
}

impl UpdateRound {
    /// An empty round (applying it is a no-op).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one fact insertion.
    pub fn insert(mut self, pred: Pred, tuple: Tuple) -> Self {
        self.inserts.push((pred, tuple));
        self
    }

    /// Adds fact insertions.
    pub fn insert_all(mut self, pred: Pred, tuples: &[Tuple]) -> Self {
        self.inserts.extend(tuples.iter().map(|t| (pred, t.clone())));
        self
    }

    /// Adds one fact retraction.
    pub fn retract(mut self, pred: Pred, tuple: Tuple) -> Self {
        self.retracts.push((pred, tuple));
        self
    }

    /// Adds fact retractions.
    pub fn retract_all(mut self, pred: Pred, tuples: &[Tuple]) -> Self {
        self.retracts.extend(tuples.iter().map(|t| (pred, t.clone())));
        self
    }

    /// Adds a rule addition.
    pub fn add_rule(mut self, rule: Rule) -> Self {
        self.rule_adds.push(rule);
        self
    }

    /// Adds a rule drop.
    pub fn drop_rule(mut self, id: RuleId) -> Self {
        self.rule_drops.push(id);
        self
    }

    /// Whether the round contains no work at all.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty()
            && self.retracts.is_empty()
            && self.rule_adds.is_empty()
            && self.rule_drops.is_empty()
    }
}

/// What one [`Materialization::apply`] round actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundReport {
    /// Novel EDB rows stored (duplicates and untracked predicates skip).
    pub inserted: usize,
    /// EDB rows actually removed (absent tuples skip).
    pub retracted: usize,
    /// Rules compiled in (= `rule_adds.len()` unless a panic aborted).
    pub rules_added: usize,
    /// Rules deactivated (unknown or already-dropped ids skip).
    pub rules_dropped: usize,
}

/// Runtime planner observability (see
/// [`Materialization::planner_report`]): how often the specialized
/// transitive-closure kernel ran, how much work it absorbed, and how
/// often cardinality drift forced a re-plan. Runtime-only — reset by
/// restore, never part of [`EvalStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlannerReport {
    /// Kernel invocations (one per `(rule, delta, shard)` evaluation of
    /// a recognized transitive-closure plan — shard-count dependent).
    pub tc_hits: u64,
    /// Full body instantiations enumerated inside the kernel.
    pub tc_rows: u64,
    /// Cardinality-drift re-plans since construction (plans are
    /// recompiled only at update-round boundaries; row ids never move).
    pub replans: u64,
    /// Distinct keys across all join indexes
    /// ([`crate::storage::IncrementalIndex::num_keys`]).
    pub index_keys: u64,
    /// Indexed rows across all join indexes; `index_rows / index_keys`
    /// is the mean chain length a probe walks.
    pub index_rows: u64,
}

/// The slot pairing between a shared-EDB view and its base store,
/// computed once per magic template by
/// [`Materialization::link_external`] and replayed by every
/// [`Materialization::swap_external`] round trip.
#[derive(Clone, Debug, Default)]
pub(crate) struct ExtLinks {
    /// `(view rel id, base rel id)` per external relation.
    rels: Vec<(usize, usize)>,
    /// `(view idx slot, base idx slot, view rel id, base rel id)` per
    /// shared index over an external relation.
    idxs: Vec<(usize, usize, usize, usize)>,
}

/// A program materialized to its minimum model, kept at fixpoint across
/// EDB updates. See the module docs for the update algorithms; see
/// [`crate::eval`] for the batch entry points built on top of this, and
/// [`crate::server`] for the concurrent serving layer.
///
/// # Contract
///
/// - Only facts of **EDB predicates the program's rule bodies mention**
///   are stored; [`Materialization::insert_facts`] /
///   [`Materialization::retract_facts`] on any other predicate (unknown,
///   or an IDB of the program) are no-ops returning 0 — exactly as both
///   evaluators ignore database facts under IDB predicates.
/// - [`EvalStats`] accumulate over the materialization's lifetime (the
///   initial fixpoint plus every update), so the *difference* between
///   two [`Materialization::stats`] readings is the work an update cost.
/// - Update propagation is delta-driven (semi-naive) regardless of the
///   construction strategy; a [`Strategy::Naive`] materialization only
///   uses naive evaluation for its initial fixpoint.
#[derive(Clone, Debug)]
pub struct Materialization {
    rels: Vec<ColumnarRelation>,
    idxs: Vec<IncrementalIndex>,
    plans: Vec<RulePlan>,
    /// Dense relation ids of the program's IDB predicates.
    idb_rels: Vec<usize>,
    /// Per relation: whether it is an IDB of the program.
    idb_flag: Vec<bool>,
    pred_of_rel: Vec<Pred>,
    rel_of_pred: FxHashMap<Pred, usize>,
    /// Per relation: the semi-naive watermark — rows `[0, old_hi)` are the
    /// previous iteration's `old` snapshot, `[old_hi, len)` the delta.
    /// At fixpoint (between updates) `old_hi == num_rows` everywhere.
    old_hi: Vec<usize>,
    /// New facts appended per productive iteration (convergence profile).
    profile: Vec<u64>,
    /// Per-relation justification stores when provenance recording is
    /// on (`Some` even if a relation never derives — empty is fine).
    prov: Option<Vec<RelJust>>,
    stats: EvalStats,
    strategy: Strategy,
    /// The program's goal (for [`Materialization::answer`]).
    goal: Atom,
    /// The program's rules (for lazy re-derivation-plan compilation).
    rules: Vec<Rule>,
    /// The `(relation, mask) → index id` registry, persisted so the
    /// lazily compiled re-derivation plans share existing indexes.
    idx_of: FxHashMap<(usize, Vec<usize>), usize>,
    /// Goal-directed per-tuple derivability checkers, compiled on the
    /// first retraction.
    rederive: Option<Vec<RederivePlan>>,
    /// Per rule slot: whether the rule is active. Dropped rules keep
    /// their plan (justification rule ids index plan slots) but stop
    /// firing, rescuing and appearing in update items.
    rule_active: Vec<bool>,
    /// How many times the reverse-dependency index was built **from
    /// scratch** by an over-deleting round: once on the first round with
    /// over-deletion work, then zero — the index persists and is
    /// extended incrementally (the regression handle for O(affected)
    /// retracts). Compaction rebuilds are counted by
    /// [`Materialization::compactions`] instead.
    csr_builds: u64,
    /// The serving layer's epoch (0 = epoch mode off): forwarded to
    /// every relation so tombstones are tagged for snapshot readers.
    epoch: u64,
    /// The persistent reverse-dependency index (lazy; see [`RevIndex`]).
    rev: Option<RevIndex>,
    /// Automatic compaction policy (`None` = manual
    /// [`Materialization::compact`] only).
    policy: Option<CompactionPolicy>,
    /// How many compaction passes have run (automatic or manual).
    compactions: u64,
    /// Update-round counter: bumped once per [`Materialization::apply`].
    /// Runtime-only (not persisted), so a freshly restored store reads 0
    /// — which is exactly how the query cache detects that its row-level
    /// links into this store are stale.
    version: u64,
    /// Cumulative count of EDB rows actually retracted (runtime-only).
    /// Lets the query cache skip the delete-rederive scan on insert-only
    /// churn.
    edb_retracts: u64,
    /// Per relation: `true` if the relation is *external* — owned by a
    /// base store and only swapped in for maintenance rounds (see
    /// [`Materialization::link_external`]). Empty in ordinary stores.
    /// External rows are never recorded in the reverse-dependency index
    /// (their per-row edge chains would cost O(base) memory per view);
    /// deletion seeds for them come from the justification scan instead.
    ext_flag: Vec<bool>,
    /// The planner configuration plans were compiled under (fixed at
    /// construction; persisted).
    planner: PlannerConfig,
    /// Per relation: the live cardinality the current plans were
    /// computed from — the drift baseline for adaptive re-planning
    /// (persisted, so a restored store re-plans exactly when the live
    /// store would have).
    planned_card: Vec<u64>,
    /// Transitive-closure kernel invocations (runtime-only).
    tc_hits: u64,
    /// Instantiations enumerated inside the kernel (runtime-only).
    tc_rows: u64,
    /// Cardinality-drift re-plans (runtime-only).
    replans: u64,
}

impl Materialization {
    /// Materializes `program` over an empty database (seed rules fire;
    /// everything else waits for [`Materialization::insert_facts`]).
    /// Justifications are recorded, so retraction is available.
    pub fn new(program: &Program, strategy: Strategy) -> Self {
        Self::from_database(program, &Database::new(), strategy)
    }

    /// Materializes `program` over `db`: bulk-loads the EDB facts and
    /// runs the batch fixpoint once — the exact code path of
    /// [`crate::eval::evaluate`] — then stands ready to absorb updates.
    /// Justifications are recorded, so retraction is available.
    pub fn from_database(program: &Program, db: &Database, strategy: Strategy) -> Self {
        Self::batch(program, db, strategy, true)
    }

    /// [`Materialization::from_database`] under an explicit
    /// [`PlannerConfig`] — the A/B handle: [`PlannerConfig::legacy`]
    /// reproduces the pre-planner engine bit-for-bit, counters included.
    pub fn from_database_with(
        program: &Program,
        db: &Database,
        strategy: Strategy,
        planner: PlannerConfig,
    ) -> Self {
        Self::batch_with(program, db, strategy, true, planner)
    }

    /// The batch entry point the thin `eval` wrappers use: `record`
    /// selects justification recording (off for plain `evaluate`, whose
    /// callers immediately read the result out and drop the state).
    pub(crate) fn batch(
        program: &Program,
        db: &Database,
        strategy: Strategy,
        record: bool,
    ) -> Self {
        Self::batch_with(program, db, strategy, record, PlannerConfig::default())
    }

    pub(crate) fn batch_with(
        program: &Program,
        db: &Database,
        strategy: Strategy,
        record: bool,
        planner: PlannerConfig,
    ) -> Self {
        let mut m = Self::build(program, db, strategy, record, planner);
        m.run_batch();
        m
    }

    fn build(
        program: &Program,
        db: &Database,
        strategy: Strategy,
        record: bool,
        planner: PlannerConfig,
    ) -> Self {
        let idbs = program.idb_predicates();

        // Arity resolution mirrors the reference evaluator: database
        // relations first, then rule heads, then body atoms.
        let mut arity: FxHashMap<Pred, usize> = FxHashMap::default();
        for (p, r) in db.iter() {
            arity.insert(p, r.arity());
        }
        for r in &program.rules {
            arity.entry(r.head.pred).or_insert_with(|| r.head.arity());
            for a in &r.body {
                arity.entry(a.pred).or_insert_with(|| a.arity());
            }
        }

        // Dense relation ids: IDB predicates first, then every EDB
        // predicate referenced by a rule body.
        let mut rels: Vec<ColumnarRelation> = Vec::new();
        let mut pred_of_rel: Vec<Pred> = Vec::new();
        let mut rel_of_pred: FxHashMap<Pred, usize> = FxHashMap::default();
        let intern_rel = |p: Pred,
                              rels: &mut Vec<ColumnarRelation>,
                              pred_of_rel: &mut Vec<Pred>,
                              rel_of_pred: &mut FxHashMap<Pred, usize>|
         -> usize {
            *rel_of_pred.entry(p).or_insert_with(|| {
                let id = rels.len();
                rels.push(ColumnarRelation::new(*arity.get(&p).unwrap_or(&0)));
                pred_of_rel.push(p);
                id
            })
        };
        let mut idb_rels = Vec::new();
        for &p in &idbs {
            idb_rels.push(intern_rel(p, &mut rels, &mut pred_of_rel, &mut rel_of_pred));
        }
        for r in &program.rules {
            for a in &r.body {
                intern_rel(a.pred, &mut rels, &mut pred_of_rel, &mut rel_of_pred);
            }
        }

        // Load EDB facts. Facts the database holds for IDB predicates are
        // ignored, exactly as in the reference evaluator (IDB body atoms
        // only ever read the derived snapshots).
        for (p, r) in db.iter() {
            if idbs.contains(&p) {
                continue;
            }
            if let Some(&rid) = rel_of_pred.get(&p) {
                if planner.segmented {
                    // The input size is known up front: size the dedup
                    // table once instead of growing it through every
                    // doubling (the chains-only baseline keeps the
                    // pre-change incremental growth).
                    rels[rid].reserve_rows(r.len());
                }
                for t in r.iter() {
                    rels[rid].insert(t);
                }
            }
        }

        // Plan + compile rules; register one index per (relation, mask).
        // Cardinalities are the live row counts after the EDB load (IDB
        // relations are still empty) — the reference evaluator computes
        // the same orders from the input database.
        let mut idxs: Vec<IncrementalIndex> = Vec::new();
        let mut idx_of: FxHashMap<(usize, Vec<usize>), usize> = FxHashMap::default();
        let planned_card: Vec<u64> = rels.iter().map(|r| r.num_live() as u64).collect();
        let plans = {
            let rels = &rels;
            let rel_of_pred_ref = &rel_of_pred;
            let mut card =
                |p: Pred| rel_of_pred_ref.get(&p).map_or(0, |&r| rels[r].num_live() as u64);
            program
                .rules
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    plan_rule(
                        r,
                        i,
                        &idbs,
                        rel_of_pred_ref,
                        &mut idxs,
                        &mut idx_of,
                        planner.order,
                        &mut card,
                    )
                })
                .collect()
        };

        // Freshly registered indexes hold no rows yet: the planner's
        // storage layout applies cleanly.
        for idx in &mut idxs {
            idx.set_segmented(planner.segmented);
        }

        let mut idb_flag = vec![false; rels.len()];
        for &r in &idb_rels {
            idb_flag[r] = true;
        }
        let old_hi = vec![0; rels.len()];
        let prov = record.then(|| vec![RelJust::default(); rels.len()]);
        let rule_active = vec![true; program.rules.len()];
        Self {
            rels,
            idxs,
            plans,
            idb_rels,
            idb_flag,
            pred_of_rel,
            rel_of_pred,
            old_hi,
            profile: Vec::new(),
            prov,
            stats: EvalStats::default(),
            strategy,
            goal: program.goal.clone(),
            rules: program.rules.clone(),
            idx_of,
            rederive: None,
            rule_active,
            csr_builds: 0,
            epoch: 0,
            rev: None,
            policy: Some(CompactionPolicy::default()),
            compactions: 0,
            version: 0,
            edb_retracts: 0,
            ext_flag: Vec::new(),
            planner,
            planned_card,
            tc_hits: 0,
            tc_rows: 0,
            replans: 0,
        }
    }

    // -----------------------------------------------------------------
    // Public state of the materialization
    // -----------------------------------------------------------------

    /// Work counters accumulated since construction (initial fixpoint
    /// plus every update).
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// The strategy updates run under.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The planner configuration this store's plans were compiled under.
    pub fn planner_config(&self) -> PlannerConfig {
        self.planner
    }

    /// Runtime planner observability: kernel hit counts and re-plans.
    pub fn planner_report(&self) -> PlannerReport {
        PlannerReport {
            tc_hits: self.tc_hits,
            tc_rows: self.tc_rows,
            replans: self.replans,
            index_keys: self.idxs.iter().map(|i| i.num_keys() as u64).sum(),
            index_rows: self.idxs.iter().map(|i| i.watermark() as u64).sum(),
        }
    }

    /// The IDB model as a [`Database`] (live rows only). O(model).
    pub fn idb_database(&self) -> Database {
        let mut out = Database::new();
        for &r in &self.idb_rels {
            let rel = &self.rels[r];
            let dst = out.relation_mut(self.pred_of_rel[r], rel.arity());
            for row in rel.rows_iter() {
                dst.insert(row.to_vec());
            }
        }
        out
    }

    /// Every tracked relation — the stored EDB facts *and* the IDB model
    /// — as a [`Database`] (live rows only). This is the store the
    /// retract-restores-the-store tests compare bit-for-bit.
    pub fn database(&self) -> Database {
        let mut out = Database::new();
        for (r, rel) in self.rels.iter().enumerate() {
            let dst = out.relation_mut(self.pred_of_rel[r], rel.arity());
            for row in rel.rows_iter() {
                dst.insert(row.to_vec());
            }
        }
        out
    }

    /// The goal's answer relation over the current model: selection by
    /// the goal's constants and repeated variables, projection onto its
    /// distinct variables (no intermediate `Database`).
    pub fn answer(&self) -> Relation {
        self.goal_answer(&self.goal)
    }

    /// Number of live facts stored for `pred` (EDB or IDB), 0 if the
    /// predicate is not tracked.
    pub fn num_facts(&self, pred: Pred) -> usize {
        self.rel_of_pred
            .get(&pred)
            .map_or(0, |&r| self.rels[r].num_live())
    }

    /// A snapshot of the recorded provenance (one justification per
    /// derived live row), valid for the current state — justifications
    /// recorded before an update stay valid afterwards because row ids
    /// never move. O(store) clone.
    pub fn provenance(&self) -> Provenance {
        // Justifications are recorded in original rule-body order
        // whatever order the plan runs the steps in.
        let body_rels = self
            .plans
            .iter()
            .map(|p| p.body_rels.iter().map(|&r| r as u32).collect())
            .collect();
        Provenance::from_engine(
            self.rels.clone(),
            self.pred_of_rel.clone(),
            self.rel_of_pred.clone(),
            self.idb_rels.clone(),
            body_rels,
            self.prov
                .clone()
                .expect("Materialization always records justifications"),
        )
    }

    // -----------------------------------------------------------------
    // Updates
    // -----------------------------------------------------------------

    /// Inserts EDB facts and incrementally maintains the model: novel
    /// rows become the next semi-naive delta and evaluation resumes from
    /// the current fixpoint — no recompute. Returns the number of novel
    /// rows stored. No-op (0) for predicates the program's rule bodies
    /// do not mention, and for IDB predicates (both evaluators ignore
    /// database facts under IDB predicates). Panics on arity mismatch.
    ///
    /// A thin wrapper over [`Materialization::apply`] — one call is one
    /// single-phase round.
    pub fn insert_facts(&mut self, pred: Pred, rows: &[Tuple]) -> usize {
        self.apply(&UpdateRound::new().insert_all(pred, rows)).inserted
    }

    /// Retracts EDB facts by delete–rederive (DRed) and incrementally
    /// maintains the model. Returns the number of rows **actually
    /// removed**: retracting a fact that was never inserted, was already
    /// retracted (double-retract), or whose row was reclaimed by
    /// [`Materialization::compact`] is a guaranteed no-op — it
    /// contributes 0 to the count and leaves the store untouched.
    /// Likewise a no-op (0) for untracked or IDB predicates.
    ///
    /// A thin wrapper over [`Materialization::apply`] — one call is one
    /// single-phase round, O(affected rows) via the persistent
    /// reverse-dependency index (after a one-time lazy build on the
    /// first retract ever; batch mixed work into one [`UpdateRound`] to
    /// share the fixpoint resume).
    pub fn retract_facts(&mut self, pred: Pred, rows: &[Tuple]) -> usize {
        self.apply(&UpdateRound::new().retract_all(pred, rows)).retracted
    }

    /// Adds one rule at fixpoint and seeds its derivations from the
    /// existing rows; returns its stable [`RuleId`]. A thin wrapper over
    /// [`Materialization::apply`].
    ///
    /// # Panics
    ///
    /// If the rule's head predicate is a stored EDB relation of this
    /// materialization (the IDB/EDB partition is fixed at construction),
    /// or on an arity mismatch with an existing relation.
    pub fn add_rule(&mut self, rule: Rule) -> RuleId {
        let id = RuleId(self.plans.len() as u32);
        self.apply(&UpdateRound::new().add_rule(rule));
        id
    }

    /// Drops a rule at fixpoint: every row whose recorded justification
    /// names it is over-deleted and then re-derived through the
    /// surviving rules where possible. Returns whether `id` named an
    /// active rule. A thin wrapper over [`Materialization::apply`].
    pub fn drop_rule(&mut self, id: RuleId) -> bool {
        self.apply(&UpdateRound::new().drop_rule(id)).rules_dropped == 1
    }

    /// Applies one batched update round — EDB inserts and retracts plus
    /// rule adds and drops — as a single mixed batch: **one**
    /// over-deletion walk of the persistent reverse-dependency index,
    /// one rescue pass, one semi-naive resume to fixpoint. Equivalent to any
    /// sequential order of the corresponding single-item calls whenever
    /// the round's insert and retract sets don't overlap (a tuple both
    /// retracted and inserted in one round ends up present: retracts
    /// apply first).
    ///
    /// The phases, in order:
    ///
    /// 1. **Rule drops** deactivate their plan slots; live rows whose
    ///    recorded justification names a dropped rule become
    ///    over-deletion seeds *and* rescue candidates (another rule may
    ///    still derive them).
    /// 2. **Rule adds** compile to fresh plan slots (stable
    ///    [`RuleId`]s). A brand-new head predicate becomes a fresh IDB
    ///    relation; new body predicates become fresh (empty, trackable)
    ///    EDB relations.
    /// 3. **Retracts** tombstone their EDB rows; the over-deletion
    ///    closure for *all* seeds (drops + retracts) walks the
    ///    persistent reverse-dependency index — O(affected rows), with
    ///    one lazy index build on the first over-deleting round ever
    ///    ([`Materialization::csr_builds`]).
    /// 4. **Inserts** append novel EDB rows — into the delta range, the
    ///    watermarks still sit at the old fixpoint.
    /// 5. Added rules **seed** their deltas with one full-range
    ///    evaluation pass each over the settled store.
    /// 6. Over-deleted candidates are **rescued** by goal-directed
    ///    one-step re-derivation against the surviving active rules
    ///    (added rules participate, dropped rules don't).
    /// 7. One semi-naive resume propagates every delta — inserted,
    ///    seeded and rescued rows — to the new fixpoint.
    ///
    /// # Panics
    ///
    /// On tuple/relation arity mismatches, and if an added rule's head
    /// predicate is a stored EDB relation of this materialization.
    pub fn apply(&mut self, round: &UpdateRound) -> RoundReport {
        let mut report = RoundReport::default();

        // Restore fast path: a just-restored store defers the O(rows)
        // dedup-table rebuild to here, its first write — the staging
        // existence probes below consult those tables.
        self.ensure_dedup();

        // 0. Adaptive re-planning at the round boundary: if live
        // cardinalities drifted past the threshold since the plans were
        // computed, recompile them (future rounds only — existing rows,
        // row ids and justifications are untouched; see
        // [`Materialization::maybe_replan`]).
        self.maybe_replan();

        // 1. Rule drops: deactivate, then seed over-deletion with every
        // live row justified by a dropped rule. Unlike EDB retract seeds
        // these are rescue candidates — the tuples may well survive via
        // other rules.
        let mut dropped: Vec<u32> = Vec::new();
        for &RuleId(id) in &round.rule_drops {
            let i = id as usize;
            if i < self.plans.len() && self.rule_active[i] {
                self.rule_active[i] = false;
                dropped.push(id);
                report.rules_dropped += 1;
            }
        }

        // 2. Rule adds: compile to fresh stable slots. Seeding waits
        // until the round's EDB changes have settled (phase 5).
        let first_new_plan = self.plans.len();
        for rule in &round.rule_adds {
            self.compile_added_rule(rule);
            report.rules_added += 1;
        }

        let mut worklist: Vec<(u32, u32)> = Vec::new();
        let mut candidates: Vec<(u32, u32)> = Vec::new();
        if !dropped.is_empty() {
            let prov = self
                .prov
                .as_ref()
                .expect("Materialization always records justifications");
            let mut seeds: Vec<(u32, u32)> = Vec::new();
            for &hrel in &self.idb_rels {
                for hrow in 0..self.rels[hrel].num_rows() {
                    if self.rels[hrel].is_live(hrow)
                        && dropped.contains(&prov[hrel].entry(hrow).0)
                    {
                        seeds.push((hrel as u32, hrow as u32));
                    }
                }
            }
            for &(srel, srow) in &seeds {
                if self.rels[srel as usize].tombstone(srow as usize) {
                    worklist.push((srel, srow));
                    candidates.push((srel, srow));
                }
            }
        }

        // 3. EDB retract seeds (deliberate removals: not rescuable).
        for (pred, t) in &round.retracts {
            let Some(&rid) = self.rel_of_pred.get(pred) else {
                continue;
            };
            if self.idb_flag[rid] {
                continue;
            }
            assert_eq!(t.len(), self.rels[rid].arity(), "tuple arity mismatch");
            let r = self.rels[rid].find_row(t);
            if r != NO_ROW && self.rels[rid].tombstone(r as usize) {
                worklist.push((rid as u32, r));
                report.retracted += 1;
            }
        }

        // Over-delete: reverse-dependency closure over the recorded
        // justifications. The first over-deleting round builds the
        // persistent [`RevIndex`] (one full pass over the packed
        // justification buffers — counted by `csr_builds`); every later
        // round just walks the chains of the seeds' closure, so the
        // over-deletion cost is O(affected rows), not O(total rows).
        // Chains may hold stale edges to rows that died in earlier
        // rounds (or to rows whose head re-inserted at a fresh id);
        // `tombstone` of a dead row is a no-op, so they are skipped.
        if !worklist.is_empty() {
            self.ensure_rev_index();
            // Take the index out while tombstoning through `self.rels`
            // (no edges are added during over-deletion).
            let rev = self.rev.take().expect("just ensured");
            let mut i = 0;
            while i < worklist.len() {
                let (drel, drow) = worklist[i];
                i += 1;
                let mut e = rev.chain(drel as usize, drow);
                while e != NO_EDGE {
                    let RevEdge { hrel, hrow, next } = rev.edges[e as usize];
                    if self.rels[hrel as usize].tombstone(hrow as usize) {
                        worklist.push((hrel, hrow));
                        candidates.push((hrel, hrow));
                    }
                    e = next;
                }
            }
            self.rev = Some(rev);
        }

        // 4. EDB inserts: novel rows land above the watermarks (the
        // fixpoint's row counts), i.e. in the delta ranges.
        for (pred, t) in &round.inserts {
            let Some(&rid) = self.rel_of_pred.get(pred) else {
                continue;
            };
            if self.idb_flag[rid] {
                continue;
            }
            if self.rels[rid].insert(t) {
                report.inserted += 1;
            }
        }

        // 5. Seed added rules: one full-range pass each over the settled
        // store. The merged rows also land in the delta ranges, so the
        // final resume chains everything — a second added rule reading
        // the first one's head catches up there.
        if first_new_plan < self.plans.len() {
            self.extend_indexes();
            let mut scratch = Scratch::default();
            let mut pending = PendingTuples::default();
            for pi in first_new_plan..self.plans.len() {
                self.eval_rule(pi, None, false, &mut scratch, &mut pending);
            }
            let appended =
                Self::merge_pending(
                &mut self.rels,
                &mut pending,
                self.prov.as_mut(),
                self.rev.as_mut(),
                &self.plans,
                &self.ext_flag,
            );
            self.stats.tuples_derived += appended;
            if self.planner.productive_firings {
                self.stats.rule_firings += appended;
            }
        }

        // 6. Rescue: re-derive over-deleted survivors from the remaining
        // store (inserted and seeded rows included). The watermarks
        // still sit at the old fixpoint, so every rescued insert lands
        // in the delta range and phase 7 propagates it.
        if !candidates.is_empty() {
            self.ensure_rederive_plans();
            self.extend_indexes();
            let mut scratch = Scratch::default();
            for &(crel, crow) in &candidates {
                let tuple = self.rels[crel as usize].row(crow as usize).to_vec();
                let mut probes = 0u64;
                let found = self.rederive_row(crel as usize, &tuple, &mut scratch, &mut probes);
                self.stats.join_probes += probes;
                if let Some((rule, body_rows)) = found {
                    self.rels[crel as usize].insert(&tuple);
                    self.stats.rule_firings += 1;
                    self.stats.tuples_derived += 1;
                    self.prov.as_mut().expect("recording on")[crel as usize]
                        .push(rule, &body_rows);
                    if let Some(rev) = self.rev.as_mut() {
                        let hrow = (self.rels[crel as usize].num_rows() - 1) as u32;
                        for (k, &brow) in body_rows.iter().enumerate() {
                            let brel = self.plans[rule as usize].body_rels[k];
                            if self.ext_flag.get(brel).copied().unwrap_or(false) {
                                continue;
                            }
                            rev.add(brel, brow, crel, hrow);
                        }
                    }
                }
            }
        }

        // 7. Propagate every delta — inserted, seeded and rescued rows —
        // through the normal update machinery to the new fixpoint.
        self.run_update();

        // Plain (non-serving) stores compact themselves at fixpoint when
        // the policy trips. In epoch mode (`epoch > 0`) the server owns
        // the trigger — it must defer while snapshots are pinned.
        if self.epoch == 0 && self.needs_compaction() {
            self.compact();
        }
        self.version = self.version.wrapping_add(1);
        self.edb_retracts += report.retracted as u64;
        report
    }

    /// Compiles one added rule into a fresh plan slot, interning any
    /// brand-new predicates (head → fresh IDB relation, body → fresh
    /// EDB relations).
    fn compile_added_rule(&mut self, rule: &Rule) {
        match self.rel_of_pred.get(&rule.head.pred) {
            Some(&r) => {
                assert!(
                    self.idb_flag[r],
                    "added rule's head must not be a stored EDB relation \
                     (the IDB/EDB partition is fixed at construction)"
                );
                assert_eq!(self.rels[r].arity(), rule.head.arity(), "tuple arity mismatch");
            }
            None => {
                self.intern_new_rel(rule.head.pred, rule.head.arity(), true);
            }
        }
        for a in &rule.body {
            match self.rel_of_pred.get(&a.pred) {
                Some(&r) => {
                    assert_eq!(self.rels[r].arity(), a.arity(), "tuple arity mismatch");
                }
                None => {
                    self.intern_new_rel(a.pred, a.arity(), false);
                }
            }
        }
        let idbs: Vec<Pred> = self.idb_rels.iter().map(|&r| self.pred_of_rel[r]).collect();
        let slot = self.plans.len();
        let plan = {
            let rels = &self.rels;
            let rel_of_pred = &self.rel_of_pred;
            let mut card =
                |p: Pred| rel_of_pred.get(&p).map_or(0, |&r| rels[r].num_live() as u64);
            plan_rule(
                rule,
                slot,
                &idbs,
                rel_of_pred,
                &mut self.idxs,
                &mut self.idx_of,
                self.planner.order,
                &mut card,
            )
        };
        self.plans.push(plan);
        self.rules.push(rule.clone());
        self.rule_active.push(true);
        if let Some(rd) = &mut self.rederive {
            rd.push(compile_rederive(
                slot,
                rule,
                &self.rel_of_pred,
                &mut self.idxs,
                &mut self.idx_of,
            ));
        }
        self.apply_index_layout();
    }

    /// Interns a relation for a predicate first seen in an added rule.
    fn intern_new_rel(&mut self, pred: Pred, arity: usize, idb: bool) -> usize {
        let r = self.rels.len();
        let mut rel = ColumnarRelation::new(arity);
        if self.epoch > 0 {
            rel.set_epoch(self.epoch);
        }
        self.rels.push(rel);
        self.pred_of_rel.push(pred);
        self.rel_of_pred.insert(pred, r);
        self.idb_flag.push(idb);
        if idb {
            self.idb_rels.push(r);
        }
        self.old_hi.push(0);
        self.planned_card.push(0);
        if !self.ext_flag.is_empty() {
            self.ext_flag.push(false);
        }
        if let Some(prov) = &mut self.prov {
            prov.push(RelJust::default());
        }
        r
    }

    // -----------------------------------------------------------------
    // Adaptive re-planning
    // -----------------------------------------------------------------

    /// Re-plans at a round boundary if live cardinalities drifted past
    /// the threshold (2x either way, with an absolute slack of 16 rows
    /// so tiny relations never thrash). Views never re-plan: a fresh
    /// body order could demand a new index over an *external* relation,
    /// which must be registered through the base-store linking protocol
    /// — their plans are fixed at instantiation instead.
    fn maybe_replan(&mut self) {
        if self.planner.order != OrderMode::Planned || !self.ext_flag.is_empty() {
            return;
        }
        let drift = self.rels.iter().zip(&self.planned_card).any(|(rel, &old)| {
            let new = rel.num_live() as u64;
            new > 2 * old + 16 || old > 2 * new + 16
        });
        if drift {
            self.replan();
        }
    }

    /// Recompiles every rule plan from the current live cardinalities,
    /// reusing the shared `(relation, mask)` index registry (orders that
    /// need a new index register it; [`Materialization::extend_indexes`]
    /// fills it before the next evaluation). Rows, row ids and recorded
    /// justifications are untouched: justifications are stored in
    /// original rule-body order, which a plan change never alters.
    fn replan(&mut self) {
        let idbs: Vec<Pred> = self.idb_rels.iter().map(|&r| self.pred_of_rel[r]).collect();
        let plans: Vec<RulePlan> = {
            let rels = &self.rels;
            let rel_of_pred = &self.rel_of_pred;
            let idxs = &mut self.idxs;
            let idx_of = &mut self.idx_of;
            let order = self.planner.order;
            let mut card =
                |p: Pred| rel_of_pred.get(&p).map_or(0, |&r| rels[r].num_live() as u64);
            self.rules
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    plan_rule(r, i, &idbs, rel_of_pred, idxs, idx_of, order, &mut card)
                })
                .collect()
        };
        self.plans = plans;
        self.planned_card = self.rels.iter().map(|r| r.num_live() as u64).collect();
        self.replans += 1;
        self.apply_index_layout();
        self.extend_indexes();
    }

    // -----------------------------------------------------------------
    // Rule-slot and serving-layer state
    // -----------------------------------------------------------------

    /// The active rules, as `(id, rule)` in slot order. Slot order is
    /// program order at construction followed by add order, so a
    /// [`Program`] whose `rules` vector lists every rule ever held (in
    /// that order, dropped ones included) aligns with the recorded
    /// justifications for [`Provenance::check`].
    pub fn active_rules(&self) -> Vec<(RuleId, &Rule)> {
        self.rules
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.rule_active[i])
            .map(|(i, r)| (RuleId(i as u32), r))
            .collect()
    }

    /// Total number of rule slots ever allocated (dropped ones
    /// included); the next added rule gets this id.
    pub fn num_rule_slots(&self) -> usize {
        self.plans.len()
    }

    /// Whether `id` names an active rule.
    pub fn is_rule_active(&self, id: RuleId) -> bool {
        (id.0 as usize) < self.rule_active.len() && self.rule_active[id.0 as usize]
    }

    /// How many times the reverse-dependency index was built **from
    /// scratch** by an over-deleting round: exactly once — the first
    /// round with any over-deletion work — and zero afterwards, however
    /// many retracts follow (the index is maintained incrementally; the
    /// rebuild at each [`Materialization::compact`] is counted by
    /// [`Materialization::compactions`] instead).
    pub fn csr_builds(&self) -> u64 {
        self.csr_builds
    }

    /// Builds the reverse-dependency index from every live recorded
    /// justification: one full pass over the packed buffers.
    fn build_rev_index(&self) -> RevIndex {
        let prov = self
            .prov
            .as_ref()
            .expect("Materialization always records justifications");
        let mut rev = RevIndex {
            // External relations get no edge chains (their dense per-row
            // heads would cost O(base store) per view); deletion seeds
            // for external rows come from the justification scan.
            head: self
                .rels
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    if self.ext_flag.get(i).copied().unwrap_or(false) {
                        Vec::new()
                    } else {
                        vec![NO_EDGE; r.num_rows()]
                    }
                })
                .collect(),
            edges: Vec::new(),
        };
        for &hrel in &self.idb_rels {
            for hrow in 0..self.rels[hrel].num_rows() {
                if !self.rels[hrel].is_live(hrow) {
                    continue;
                }
                let (rule, body) = prov[hrel].entry(hrow);
                for (k, &brow) in body.iter().enumerate() {
                    let brel = self.plans[rule as usize].body_rels[k];
                    if self.ext_flag.get(brel).copied().unwrap_or(false) {
                        continue;
                    }
                    rev.add(brel, brow, hrel as u32, hrow as u32);
                }
            }
        }
        rev
    }

    /// Lazily builds the persistent reverse index (counted by
    /// [`Materialization::csr_builds`]); after this every merge and
    /// rescue appends its edges incrementally.
    fn ensure_rev_index(&mut self) {
        if self.rev.is_none() {
            self.csr_builds += 1;
            self.rev = Some(self.build_rev_index());
        }
    }

    // -----------------------------------------------------------------
    // Compaction (bounded memory under churn)
    // -----------------------------------------------------------------

    /// How many [`Materialization::compact`] passes have run (automatic
    /// and explicit).
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Replaces the automatic compaction policy (`None` disables
    /// automatic compaction; explicit [`Materialization::compact`] calls
    /// still work).
    pub fn set_compaction_policy(&mut self, policy: Option<CompactionPolicy>) {
        self.policy = policy;
    }

    /// The automatic-compaction policy currently in force.
    pub fn compaction_policy(&self) -> Option<CompactionPolicy> {
        self.policy
    }

    /// Whether the policy says a compaction pass is due: some relation's
    /// tombstone count reaches both policy bounds. The serving layer
    /// polls this and defers the pass while snapshots are pinned.
    pub fn needs_compaction(&self) -> bool {
        let Some(p) = self.policy else {
            return false;
        };
        self.rels.iter().any(|r| {
            let dead = r.num_dead();
            dead >= p.min_dead_rows && dead * 100 >= p.dead_percent as usize * r.num_rows()
        })
    }

    /// Rebuilds every relation that carries tombstones with live rows
    /// only — row store, dedup table, join-index chains, packed
    /// justification buffers, and the reverse-dependency index — and
    /// remaps row ids through dense old→new maps. Returns the number of
    /// dead rows reclaimed (0 = nothing to do, store untouched).
    ///
    /// Justifications make the remap purely mechanical: DRed guarantees a
    /// live row's recorded body rows are live, so no live entry can
    /// reference a reclaimed row. Watermarks are re-pinned at the (still
    /// current) fixpoint. Results, [`EvalStats`] and subsequent update
    /// behavior are unchanged; only row ids move.
    ///
    /// **Serving caveat:** compaction frees tombstoned rows regardless of
    /// their epoch tags, so it must not run while an epoch snapshot is
    /// pinned — [`crate::server::Server`] defers it until the last unpin.
    pub fn compact(&mut self) -> usize {
        // Rebuild every relation with any dead rows (not just the ones
        // over the policy threshold): afterwards the whole store is
        // tombstone-free, which keeps the remap invariant trivial.
        let mut remaps: Vec<Option<Vec<u32>>> = Vec::with_capacity(self.rels.len());
        let mut reclaimed = 0usize;
        for rel in &mut self.rels {
            if rel.num_dead() > 0 {
                reclaimed += rel.num_dead();
                remaps.push(Some(rel.compact()));
            } else {
                remaps.push(None);
            }
        }
        if reclaimed == 0 {
            return 0;
        }

        // Justifications: drop dead heads, remap every body row id
        // (identity for relations that had no dead rows). Visiting old
        // rows in order keeps the new store parallel to the compacted
        // row ids, because the remap is order-preserving.
        if let Some(prov) = &mut self.prov {
            let mut body_scratch: Vec<u32> = Vec::new();
            for &hrel in &self.idb_rels {
                let old = std::mem::take(&mut prov[hrel]);
                let mut new = RelJust::default();
                for hrow in 0..old.len() {
                    let new_id = match &remaps[hrel] {
                        Some(m) => m[hrow],
                        None => hrow as u32,
                    };
                    if new_id == NO_ROW {
                        continue;
                    }
                    let (rule, body) = old.entry(hrow);
                    body_scratch.clear();
                    for (k, &brow) in body.iter().enumerate() {
                        let brel = self.plans[rule as usize].body_rels[k];
                        let nb = match &remaps[brel] {
                            Some(m) => m[brow as usize],
                            None => brow,
                        };
                        debug_assert_ne!(
                            nb, NO_ROW,
                            "live justification references a reclaimed row"
                        );
                        body_scratch.push(nb);
                    }
                    new.push(rule, &body_scratch);
                }
                prov[hrel] = new;
            }
        }

        // Join indexes over rebuilt relations re-hash from scratch (the
        // chains embed row ids); untouched relations keep theirs.
        for idx in &mut self.idxs {
            if remaps[idx.rel()].is_some() {
                idx.reset();
                idx.extend(&self.rels[idx.rel()]);
            }
        }

        // The store sits at a fixpoint (compaction runs between rounds),
        // so every watermark re-pins at the new row count.
        for r in 0..self.rels.len() {
            self.old_hi[r] = self.rels[r].num_rows();
        }

        // The reverse index embeds row ids on both sides; rebuild it
        // live-only (also shedding stale edges). Not counted by
        // `csr_builds` — that counter tracks lazy from-scratch builds.
        if self.rev.is_some() {
            self.rev = Some(self.build_rev_index());
        }

        self.compactions += 1;
        reclaimed
    }

    /// A memory snapshot of the row-addressed structures (tuple data,
    /// join indexes, justifications, reverse index), in words — what the
    /// churn benches gate on to prove compaction bounds the store.
    pub fn mem_stats(&self) -> MemStats {
        let mut s = MemStats::default();
        for rel in &self.rels {
            s.live_rows += rel.num_rows() - rel.num_dead();
            s.total_rows += rel.num_rows();
            s.tuple_words += rel.num_rows() * rel.arity();
        }
        for idx in &self.idxs {
            s.index_words += idx.footprint_words();
            s.seg_words += idx.seg_pool_words();
        }
        if let Some(prov) = &self.prov {
            for rj in prov {
                s.just_words += rj.footprint_words();
            }
        }
        if let Some(rev) = &self.rev {
            s.rev_words = rev.footprint_words();
        }
        s
    }

    // -----------------------------------------------------------------
    // Persistence (snapshot / restore; see [`crate::persist`] for the
    // file format)
    // -----------------------------------------------------------------

    /// Serializes the complete materialized state — rows, liveness,
    /// watermarks, justifications, rule slots (deactivated ids
    /// included), counters — into one versioned, length-prefixed,
    /// checksummed snapshot image ([`crate::persist`] documents the
    /// layout). Derived structures whose layout is probe-history
    /// dependent (dedup tables, join indexes, compiled plans, the
    /// reverse index) are rebuilt on restore, so
    /// `to_bytes(from_bytes(x)) == x` bit-for-bit.
    pub fn to_bytes(&self) -> Vec<u8> {
        fn atom(e: &mut Enc, a: &Atom) {
            e.u32(a.pred.0);
            e.usize(a.args.len());
            for t in &a.args {
                match *t {
                    Term::Const(c) => {
                        e.u8(0);
                        e.u32(c.0);
                    }
                    Term::Var(v) => {
                        e.u8(1);
                        e.u32(v.0);
                    }
                }
            }
        }

        let mut e = Enc::default();
        match self.strategy {
            Strategy::Naive => e.u8(0),
            Strategy::SemiNaive => e.u8(1),
            Strategy::SemiNaiveParallel { threads } => {
                e.u8(2);
                e.usize(threads);
            }
            Strategy::SemiNaiveSharded { threads, shards } => {
                e.u8(3);
                e.usize(threads);
                e.usize(shards);
            }
        }
        atom(&mut e, &self.goal);
        e.usize(self.rules.len());
        for r in &self.rules {
            atom(&mut e, &r.head);
            e.usize(r.body.len());
            for a in &r.body {
                atom(&mut e, a);
            }
        }
        e.usize(self.rule_active.len());
        for &a in &self.rule_active {
            e.u8(u8::from(a));
        }
        e.u64(self.epoch);
        e.u64(self.csr_builds);
        e.u64(self.compactions);
        e.usize(self.stats.iterations);
        e.u64(self.stats.rule_firings);
        e.u64(self.stats.tuples_derived);
        e.u64(self.stats.join_probes);
        e.u64s(&self.profile);
        match self.policy {
            None => e.u8(0),
            Some(p) => {
                e.u8(1);
                e.usize(p.min_dead_rows);
                e.u32(p.dead_percent);
            }
        }
        match self.planner.order {
            OrderMode::Original => e.u8(0),
            OrderMode::Planned => e.u8(1),
            OrderMode::Shuffled(seed) => {
                e.u8(2);
                e.u64(seed);
            }
        }
        e.u8(u8::from(self.planner.staged_filter));
        e.u8(u8::from(self.planner.suffix_prune));
        e.u8(u8::from(self.planner.tc_kernel));
        e.u8(u8::from(self.planner.productive_firings));
        e.u8(u8::from(self.planner.segmented));
        // Per-rule body permutation (the step depth of each original
        // body atom): restored plans must be bit-identical to the live
        // ones, which a cardinality re-derivation could not guarantee
        // after drift re-plans or rule adds.
        for p in &self.plans {
            let sob: Vec<u32> = p.step_of_body.iter().map(|&d| d as u32).collect();
            e.u32s(&sob);
        }
        // The drift baseline, so a restored store re-plans exactly when
        // the live store would have.
        e.u64s(&self.planned_card);
        e.usize(self.rels.len());
        for (r, rel) in self.rels.iter().enumerate() {
            e.u32(self.pred_of_rel[r].0);
            e.u8(u8::from(self.idb_flag[r]));
            e.usize(rel.arity());
            e.usize(rel.num_rows());
            e.usize(self.old_hi[r]);
            e.reserve(rel.data().len() * 4);
            for c in rel.data() {
                e.u32(c.0);
            }
            e.u64s(rel.dead_words());
            e.usize(rel.num_dead());
            e.u64(rel.current_epoch());
            // Tags sorted by row id: the hash map's iteration order must
            // not leak into the bytes (bit-for-bit round-trips).
            let mut tags: Vec<(u32, u64)> =
                rel.tomb_tags().iter().map(|(&row, &te)| (row, te)).collect();
            tags.sort_unstable();
            e.usize(tags.len());
            for (row, te) in tags {
                e.u32(row);
                e.u64(te);
            }
        }
        match &self.prov {
            None => e.u8(0),
            Some(prov) => {
                e.u8(1);
                for rj in prov {
                    let (off, buf) = rj.parts();
                    e.u32s(off);
                    e.u32s(buf);
                }
            }
        }
        e.seal()
    }

    /// Reassembles a materialization from a snapshot image, rebuilding
    /// the derived structures (dedup tables, join indexes, compiled
    /// plans) from the persisted rows and rules. The store comes back
    /// **at the persisted fixpoint** — no re-evaluation — ready for
    /// queries and further [`Materialization::apply`] rounds.
    ///
    /// Container framing (magic, version, stored length, FNV-1a 64
    /// checksum) is verified before any payload byte is parsed, and the
    /// payload itself is shape-checked, so a truncated, corrupted or
    /// hand-forged file yields a clean [`PersistError`] — never a
    /// silently wrong store.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        fn atom(d: &mut Dec<'_>) -> Result<Atom, PersistError> {
            let pred = Pred(d.u32()?);
            let n = d.count(5)?;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(match d.u8()? {
                    0 => Term::Const(Const(d.u32()?)),
                    1 => Term::Var(Var(d.u32()?)),
                    _ => return Err(PersistError::Corrupt("unknown term tag")),
                });
            }
            Ok(Atom { pred, args })
        }

        let mut d = persist::open(bytes)?;
        let strategy = match d.u8()? {
            0 => Strategy::Naive,
            1 => Strategy::SemiNaive,
            2 => Strategy::SemiNaiveParallel {
                threads: d.usize()?,
            },
            3 => {
                let threads = d.usize()?;
                let shards = d.usize()?;
                Strategy::SemiNaiveSharded { threads, shards }
            }
            _ => return Err(PersistError::Corrupt("unknown strategy tag")),
        };
        let goal = atom(&mut d)?;
        let nrules = d.count(1)?;
        let mut rules = Vec::with_capacity(nrules);
        for _ in 0..nrules {
            let head = atom(&mut d)?;
            let nbody = d.count(1)?;
            let mut body = Vec::with_capacity(nbody);
            for _ in 0..nbody {
                body.push(atom(&mut d)?);
            }
            rules.push(Rule { head, body });
        }
        let nact = d.count(1)?;
        if nact != nrules {
            return Err(PersistError::Corrupt("rule-activity length mismatch"));
        }
        let mut rule_active = Vec::with_capacity(nact);
        for _ in 0..nact {
            rule_active.push(d.u8()? != 0);
        }
        let epoch = d.u64()?;
        let csr_builds = d.u64()?;
        let compactions = d.u64()?;
        let stats = EvalStats {
            iterations: d.usize()?,
            rule_firings: d.u64()?,
            tuples_derived: d.u64()?,
            join_probes: d.u64()?,
        };
        let profile = d.u64s()?;
        let policy = match d.u8()? {
            0 => None,
            1 => Some(CompactionPolicy {
                min_dead_rows: d.usize()?,
                dead_percent: d.u32()?,
            }),
            _ => return Err(PersistError::Corrupt("unknown policy tag")),
        };
        let planner = PlannerConfig {
            order: match d.u8()? {
                0 => OrderMode::Original,
                1 => OrderMode::Planned,
                2 => OrderMode::Shuffled(d.u64()?),
                _ => return Err(PersistError::Corrupt("unknown order-mode tag")),
            },
            staged_filter: d.u8()? != 0,
            suffix_prune: d.u8()? != 0,
            tc_kernel: d.u8()? != 0,
            productive_firings: d.u8()? != 0,
            segmented: d.u8()? != 0,
        };
        // Per-rule body permutations: inverted back into evaluation
        // order and fed straight to `compile_rule`, so the restored
        // plans match the persisted ones exactly regardless of what the
        // planner would pick from today's cardinalities.
        let mut orders: Vec<Vec<usize>> = Vec::with_capacity(nrules);
        for rule in &rules {
            let sob = d.u32s()?;
            if sob.len() != rule.body.len() {
                return Err(PersistError::Corrupt("body-order length mismatch"));
            }
            let mut ord = vec![usize::MAX; sob.len()];
            for (k, &depth) in sob.iter().enumerate() {
                let depth = depth as usize;
                if depth >= ord.len() || ord[depth] != usize::MAX {
                    return Err(PersistError::Corrupt("body order is not a permutation"));
                }
                ord[depth] = k;
            }
            orders.push(ord);
        }
        let planned_card = d.u64s()?;

        let nrels = d.count(1)?;
        if planned_card.len() != nrels {
            return Err(PersistError::Corrupt("cardinality snapshot length mismatch"));
        }
        let mut rels: Vec<ColumnarRelation> = Vec::with_capacity(nrels);
        let mut pred_of_rel: Vec<Pred> = Vec::with_capacity(nrels);
        let mut rel_of_pred: FxHashMap<Pred, usize> = FxHashMap::default();
        let mut idb_flag: Vec<bool> = Vec::with_capacity(nrels);
        let mut old_hi: Vec<usize> = Vec::with_capacity(nrels);
        for rid in 0..nrels {
            let pred = Pred(d.u32()?);
            if rel_of_pred.insert(pred, rid).is_some() {
                return Err(PersistError::Corrupt("duplicate predicate"));
            }
            let idb = match d.u8()? {
                0 => false,
                1 => true,
                _ => return Err(PersistError::Corrupt("bad IDB flag")),
            };
            let arity = d.usize()?;
            let rows = d.usize()?;
            let hi = d.usize()?;
            if hi > rows {
                return Err(PersistError::Corrupt("watermark beyond row count"));
            }
            let ncells = rows
                .checked_mul(arity)
                .filter(|n| n.checked_mul(4).is_some_and(|b| b <= d.remaining()))
                .ok_or(PersistError::Corrupt("row data overruns the file"))?;
            let data: Vec<Const> = d.u32_run(ncells)?.into_iter().map(Const).collect();
            let dead = d.u64s()?;
            let dead_rows = d.usize()?;
            if dead.len() > rows.div_ceil(64) {
                return Err(PersistError::Corrupt("tombstone bitset too long"));
            }
            let mut pop = 0usize;
            for (wi, &w) in dead.iter().enumerate() {
                pop += w.count_ones() as usize;
                let base = wi * 64;
                if base + 64 > rows && (w >> (rows - base)) != 0 {
                    return Err(PersistError::Corrupt("tombstone bit beyond row count"));
                }
            }
            if pop != dead_rows {
                return Err(PersistError::Corrupt("tombstone count mismatch"));
            }
            let rel_epoch = d.u64()?;
            let ntags = d.count(12)?;
            let mut tomb_at = FxHashMap::default();
            let mut prev: Option<u32> = None;
            for _ in 0..ntags {
                let row = d.u32()?;
                let te = d.u64()?;
                if prev.is_some_and(|p| row <= p) {
                    return Err(PersistError::Corrupt("death-epoch tags out of order"));
                }
                prev = Some(row);
                let dead_bit = dead
                    .get(row as usize >> 6)
                    .is_some_and(|w| (w >> (row & 63)) & 1 == 1);
                if !dead_bit {
                    return Err(PersistError::Corrupt("death-epoch tag on a live row"));
                }
                tomb_at.insert(row, te);
            }
            rels.push(ColumnarRelation::from_persist(
                arity, data, rows, dead, dead_rows, rel_epoch, tomb_at,
            ));
            pred_of_rel.push(pred);
            idb_flag.push(idb);
            old_hi.push(hi);
        }

        let prov = match d.u8()? {
            0 => None,
            1 => {
                let mut ps = Vec::with_capacity(nrels);
                for _ in 0..nrels {
                    ps.push(RelJust::from_parts(d.u32s()?, d.u32s()?));
                }
                Some(ps)
            }
            _ => return Err(PersistError::Corrupt("unknown provenance tag")),
        };
        d.finish()?;

        // ------------- shape validation + derived-state rebuild -------------

        // Relation ids of IDB predicates, in increasing order — matching
        // construction, where IDB relations are interned first and added
        // rules only ever append.
        let idb_rels: Vec<usize> = idb_flag
            .iter()
            .enumerate()
            .filter_map(|(r, &f)| f.then_some(r))
            .collect();

        // Every rule must type-check against the relations before plan
        // compilation (which asserts rather than returns).
        for rule in &rules {
            let head_rel = *rel_of_pred
                .get(&rule.head.pred)
                .ok_or(PersistError::Corrupt("rule head over unknown relation"))?;
            if !idb_flag[head_rel] {
                return Err(PersistError::Corrupt("rule head over an EDB relation"));
            }
            if rels[head_rel].arity() != rule.head.arity() {
                return Err(PersistError::Corrupt("rule head arity mismatch"));
            }
            for a in &rule.body {
                let brel = *rel_of_pred
                    .get(&a.pred)
                    .ok_or(PersistError::Corrupt("rule body over unknown relation"))?;
                if rels[brel].arity() != a.arity() {
                    return Err(PersistError::Corrupt("rule body arity mismatch"));
                }
            }
        }

        // Recompile the plans in slot order against the final IDB set.
        // (Safe even for rules compiled before later-added predicates: a
        // predicate can never transition EDB→IDB for a rule that already
        // referenced it — `compile_added_rule` interns unknown body
        // predicates as EDB and rejects EDB heads — so each rule sees
        // the same IDB/EDB partition it was originally compiled under.)
        let idbs: Vec<Pred> = idb_rels.iter().map(|&r| pred_of_rel[r]).collect();
        let mut idxs: Vec<IncrementalIndex> = Vec::new();
        let mut idx_of: FxHashMap<(usize, Vec<usize>), usize> = FxHashMap::default();
        let plans: Vec<RulePlan> = rules
            .iter()
            .zip(&orders)
            .map(|(r, ord)| compile_rule(r, &idbs, &rel_of_pred, &mut idxs, &mut idx_of, ord))
            .collect();

        // Justification shape: parallel to the rows, entries sized by
        // their rule's body, body row ids in range. After this,
        // `RelJust::entry` is panic-free for every persisted row.
        if let Some(prov) = &prov {
            for (r, rj) in prov.iter().enumerate() {
                let (off, buf) = rj.parts();
                if idb_flag[r] {
                    if off.len() != rels[r].num_rows() {
                        return Err(PersistError::Corrupt("justification store length mismatch"));
                    }
                } else if !off.is_empty() || !buf.is_empty() {
                    return Err(PersistError::Corrupt("justifications on an EDB relation"));
                }
                for row in 0..off.len() {
                    let lo = off[row] as usize;
                    let hi = off.get(row + 1).map_or(buf.len(), |&o| o as usize);
                    if lo >= hi || hi > buf.len() {
                        return Err(PersistError::Corrupt("justification entry out of bounds"));
                    }
                    let rule = buf[lo] as usize;
                    if rule >= plans.len() {
                        return Err(PersistError::Corrupt("justification names unknown rule"));
                    }
                    let body_rels = &plans[rule].body_rels;
                    if hi - lo != 1 + body_rels.len() {
                        return Err(PersistError::Corrupt("justification entry length mismatch"));
                    }
                    for (k, &brow) in buf[lo + 1..hi].iter().enumerate() {
                        if brow as usize >= rels[body_rels[k]].num_rows() {
                            return Err(PersistError::Corrupt(
                                "justification references nonexistent row",
                            ));
                        }
                    }
                }
            }
        }

        let mut m = Self {
            rels,
            idxs,
            plans,
            idb_rels,
            idb_flag,
            pred_of_rel,
            rel_of_pred,
            old_hi,
            profile,
            prov,
            stats,
            strategy,
            goal,
            rules,
            idx_of,
            rederive: None,
            rule_active,
            csr_builds,
            epoch,
            rev: None,
            policy,
            compactions,
            version: 0,
            edb_retracts: 0,
            ext_flag: Vec::new(),
            planner,
            planned_card,
            tc_hits: 0,
            tc_rows: 0,
            replans: 0,
        };
        m.apply_index_layout();
        m.extend_indexes();
        // A store that had ever over-deleted carried a reverse index;
        // rebuild it now (live justifications only) so the restored
        // store is behaviorally identical — same O(affected) retracts,
        // same counters — instead of paying a second lazy build.
        if m.csr_builds > 0 && m.prov.is_some() {
            m.rev = Some(m.build_rev_index());
        }
        Ok(m)
    }

    /// Writes a snapshot of the current state to `path` **atomically**
    /// (temp file + rename): a crash mid-save leaves the previous
    /// snapshot intact, never a torn file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), PersistError> {
        persist::write_atomic(path.as_ref(), &self.to_bytes())?;
        Ok(())
    }

    /// Restores a materialization from a snapshot file written by
    /// [`Materialization::save`] — back at the persisted fixpoint
    /// without re-evaluation. See [`Materialization::from_bytes`] for
    /// the failure guarantees.
    pub fn restore<P: AsRef<Path>>(path: P) -> Result<Self, PersistError> {
        Self::from_bytes(&persist::read_file(path.as_ref())?)
    }

    /// Moves the store into epoch mode for the serving layer: tombstones
    /// from now on are tagged `epoch` so readers pinned at earlier
    /// epochs keep seeing the rows (see
    /// [`ColumnarRelation::set_epoch`]). Called by the server before
    /// each round, with the epoch the round will publish.
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        for rel in &mut self.rels {
            rel.set_epoch(epoch);
        }
    }

    /// Drops tombstone tags at or below `min_epoch` (no reader pinned
    /// there any more) — compaction-free reclamation.
    pub(crate) fn reclaim_epochs(&mut self, min_epoch: u64) {
        for rel in &mut self.rels {
            rel.reclaim_tombstones(min_epoch);
        }
    }

    /// The epoch of the last applied round (0 until the serving layer
    /// moves the store into epoch mode).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Tombstone tags currently retained across all relations — the
    /// per-epoch cost of pinned readers (see
    /// [`Materialization::reclaim_epochs`]). Test-only observability
    /// for the server's reclamation protocol.
    #[cfg(test)]
    pub(crate) fn tagged_tombstones(&self) -> usize {
        self.rels.iter().map(|r| r.tomb_tags().len()).sum()
    }

    /// The per-relation live-row frontiers (current row counts): what a
    /// snapshot pin captures.
    pub(crate) fn frontiers(&self) -> Vec<usize> {
        self.rels.iter().map(ColumnarRelation::num_rows).collect()
    }

    /// [`Materialization::database`] as of a pinned snapshot: rows below
    /// the frontier, visible at `epoch`. Relations interned after the
    /// pin (by rule adds) fall off the end of `frontier` and are
    /// invisible.
    pub(crate) fn database_at(&self, frontier: &[usize], epoch: u64) -> Database {
        let mut out = Database::new();
        for (r, (&f, rel)) in frontier.iter().zip(&self.rels).enumerate() {
            let dst = out.relation_mut(self.pred_of_rel[r], rel.arity());
            for row in rel.rows_iter_at(f, epoch) {
                dst.insert(row.to_vec());
            }
        }
        out
    }

    /// [`Materialization::idb_database`] as of a pinned snapshot.
    pub(crate) fn idb_database_at(&self, frontier: &[usize], epoch: u64) -> Database {
        let mut out = Database::new();
        for (r, (&f, rel)) in frontier.iter().zip(&self.rels).enumerate() {
            if !self.idb_flag[r] {
                continue;
            }
            let dst = out.relation_mut(self.pred_of_rel[r], rel.arity());
            for row in rel.rows_iter_at(f, epoch) {
                dst.insert(row.to_vec());
            }
        }
        out
    }

    /// [`Materialization::answer`] as of a pinned snapshot.
    pub(crate) fn answer_at(&self, frontier: &[usize], epoch: u64) -> Relation {
        let (ops, nvars) = eval::goal_plan(&self.goal);
        match self.rel_of_pred.get(&self.goal.pred) {
            Some(&rid) if self.idb_flag[rid] && rid < frontier.len() => eval::select_project(
                &ops,
                nvars,
                self.rels[rid].rows_iter_at(frontier[rid], epoch),
            ),
            _ => Relation::new(nvars),
        }
    }

    /// [`Materialization::num_facts`] as of a pinned snapshot.
    pub(crate) fn num_facts_at(&self, pred: Pred, frontier: &[usize], epoch: u64) -> usize {
        match self.rel_of_pred.get(&pred) {
            Some(&r) if r < frontier.len() => {
                self.rels[r].rows_iter_at(frontier[r], epoch).count()
            }
            _ => 0,
        }
    }

    // -----------------------------------------------------------------
    // Shared-EDB views (the query cache's storage layer)
    //
    // A *view* is an ordinary `Materialization` of a magic template
    // whose non-IDB relations are marked **external**: they belong to a
    // base store, and the view holds empty placeholders for them. For
    // every maintenance round the base's relation objects — and the
    // shared incremental indexes over them — are `mem::swap`ped into the
    // view's slots, the standard update machinery runs (the view's
    // `old_hi` watermarks over external slots persist between rounds, so
    // base rows appended since the last sync are exactly the delta), and
    // everything is swapped back. The view therefore stores only its
    // *derived* rows; base EDB rows are never copied.
    // -----------------------------------------------------------------

    /// Update-round counter (bumped once per [`Materialization::apply`];
    /// runtime-only, so a restored store restarts at 0).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Cumulative EDB rows actually retracted over this store's lifetime
    /// (runtime-only, like [`Materialization::version`]).
    pub fn edb_retracts(&self) -> u64 {
        self.edb_retracts
    }

    /// Applies an arbitrary goal atom over the current live rows of its
    /// predicate — EDB or IDB. Unlike [`Materialization::answer`] this
    /// is not tied to the program's own goal; an untracked predicate
    /// yields the empty relation.
    pub fn answer_goal(&self, goal: &Atom) -> Relation {
        let (ops, nvars) = eval::goal_plan(goal);
        match self.rel_of_pred.get(&goal.pred) {
            Some(&rid) => eval::select_project(&ops, nvars, self.rels[rid].rows_iter()),
            None => Relation::new(nvars),
        }
    }

    /// [`Materialization::answer_goal`] as of a pinned snapshot.
    pub(crate) fn answer_goal_at(&self, goal: &Atom, frontier: &[usize], epoch: u64) -> Relation {
        let (ops, nvars) = eval::goal_plan(goal);
        match self.rel_of_pred.get(&goal.pred) {
            Some(&rid) if rid < frontier.len() => eval::select_project(
                &ops,
                nvars,
                self.rels[rid].rows_iter_at(frontier[rid], epoch),
            ),
            _ => Relation::new(nvars),
        }
    }

    /// Replaces the goal this store answers (used when a cloned template
    /// prototype is instantiated for one concrete bound query).
    pub(crate) fn set_goal(&mut self, goal: Atom) {
        self.goal = goal;
    }

    /// Live and total stored rows over the store's *own* (non-external)
    /// relations — the view-eviction signal.
    pub(crate) fn own_rows(&self) -> (usize, usize) {
        let mut live = 0;
        let mut total = 0;
        for (r, rel) in self.rels.iter().enumerate() {
            if self.ext_flag.get(r).copied().unwrap_or(false) {
                continue;
            }
            live += rel.num_live();
            total += rel.num_rows();
        }
        (live, total)
    }

    /// Builds an empty view for a magic-template program: semi-naive,
    /// justification recording on, re-derivation plans compiled
    /// **eagerly** — every index the view will ever probe must exist
    /// before [`Materialization::link_external`] maps index slots, or a
    /// later lazy compile would register a private index over an
    /// external relation and fill it with the whole base store — and
    /// automatic compaction off (a view's recorded justifications hold
    /// base-store row ids, which row-remapping compaction of either side
    /// would corrupt; the cache drops and rebuilds dead-heavy views
    /// instead).
    pub(crate) fn new_view(program: &Program, planner: PlannerConfig) -> Self {
        let mut m = Self::build(program, &Database::new(), Strategy::SemiNaive, true, planner);
        m.ensure_rederive_plans();
        m.policy = None;
        m
    }

    /// Registers (or reuses) an index over `(rel, mask)` and brings it
    /// up to the relation's current rows. Used by
    /// [`Materialization::link_external`] to give views shared access to
    /// base-store indexes.
    pub(crate) fn ensure_index(&mut self, rel: usize, mask: Vec<usize>) -> usize {
        let id = match self.idx_of.get(&(rel, mask.clone())) {
            Some(&i) => i,
            None => {
                let i = self.idxs.len();
                let mut idx = IncrementalIndex::new(rel, mask.clone());
                idx.set_segmented(self.planner.segmented);
                self.idxs.push(idx);
                self.idx_of.insert((rel, mask), i);
                i
            }
        };
        self.idxs[id].extend(&self.rels[rel]);
        id
    }

    /// Marks every non-IDB relation of this view that `base` also stores
    /// as external and computes the slot pairing for
    /// [`Materialization::swap_external`]. Relations the base does not
    /// track (notably the template's seed predicate) stay view-owned.
    pub(crate) fn link_external(&mut self, base: &mut Materialization) -> Result<ExtLinks, String> {
        let mut links = ExtLinks::default();
        let mut ext = vec![false; self.rels.len()];
        let mut base_of_rel = vec![usize::MAX; self.rels.len()];
        for vr in 0..self.rels.len() {
            if self.idb_flag[vr] {
                continue;
            }
            let pred = self.pred_of_rel[vr];
            let Some(&br) = base.rel_of_pred.get(&pred) else {
                continue;
            };
            if base.idb_flag[br] {
                return Err(
                    "view treats a base IDB predicate as external EDB (program mismatch)"
                        .to_owned(),
                );
            }
            if self.rels[vr].arity() != base.rels[br].arity() {
                return Err("view/base arity mismatch on shared relation".to_owned());
            }
            ext[vr] = true;
            base_of_rel[vr] = br;
            links.rels.push((vr, br));
        }
        for vi in 0..self.idxs.len() {
            let vr = self.idxs[vi].rel();
            if !ext[vr] {
                continue;
            }
            let bi = base.ensure_index(base_of_rel[vr], self.idxs[vi].mask().to_vec());
            links.idxs.push((vi, bi, vr, base_of_rel[vr]));
        }
        self.ext_flag = ext;
        Ok(links)
    }

    /// Swaps the base's external relation objects (and the shared
    /// indexes over them) into this view's slots — or back out again;
    /// the operation is an involution. The caller must hold both stores
    /// exclusively and must pair every swap-in with a swap-out before
    /// the base is used again.
    pub(crate) fn swap_external(&mut self, base: &mut Materialization, links: &ExtLinks) {
        for &(vr, br) in &links.rels {
            std::mem::swap(&mut self.rels[vr], &mut base.rels[br]);
        }
        for &(vi, bi, vr, br) in &links.idxs {
            std::mem::swap(&mut self.idxs[vi], &mut base.idxs[bi]);
            // Each side numbers the shared relation differently; fix the
            // id so `extend_indexes` reads the right slot.
            self.idxs[vi].set_rel(vr);
            base.idxs[bi].set_rel(br);
        }
    }

    /// Catches a view up with its (swapped-in) external relations:
    /// delete-rederive for base rows that died since the last sync, then
    /// one semi-naive resume over the appended base rows (the external
    /// `old_hi` watermarks make them exactly the delta).
    ///
    /// `check_retracts` gates the deletion pass: external rows are
    /// tombstoned in place by the base, so a justification scan of the
    /// view's derived rows finds every casualty; the cascade and rescue
    /// then mirror [`Materialization::apply`]'s phases over the view's
    /// own reverse index (external rows carry no reverse chains — see
    /// `ext_flag`).
    pub(crate) fn sync_external(&mut self, check_retracts: bool) {
        if check_retracts {
            let prov = self
                .prov
                .as_ref()
                .expect("views record justifications");
            let mut seeds: Vec<(u32, u32)> = Vec::new();
            for &hrel in &self.idb_rels {
                for hrow in 0..self.rels[hrel].num_rows() {
                    if !self.rels[hrel].is_live(hrow) {
                        continue;
                    }
                    let (rule, body) = prov[hrel].entry(hrow);
                    let dead = body.iter().enumerate().any(|(k, &brow)| {
                        let brel = self.plans[rule as usize].body_rels[k];
                        !self.rels[brel].is_live(brow as usize)
                    });
                    if dead {
                        seeds.push((hrel as u32, hrow as u32));
                    }
                }
            }
            if !seeds.is_empty() {
                let mut worklist: Vec<(u32, u32)> = Vec::new();
                let mut candidates: Vec<(u32, u32)> = Vec::new();
                for &(srel, srow) in &seeds {
                    if self.rels[srel as usize].tombstone(srow as usize) {
                        worklist.push((srel, srow));
                        candidates.push((srel, srow));
                    }
                }
                self.ensure_rev_index();
                let rev = self.rev.take().expect("just ensured");
                let mut i = 0;
                while i < worklist.len() {
                    let (drel, drow) = worklist[i];
                    i += 1;
                    let mut e = rev.chain(drel as usize, drow);
                    while e != NO_EDGE {
                        let RevEdge { hrel, hrow, next } = rev.edges[e as usize];
                        if self.rels[hrel as usize].tombstone(hrow as usize) {
                            worklist.push((hrel, hrow));
                            candidates.push((hrel, hrow));
                        }
                        e = next;
                    }
                }
                self.rev = Some(rev);

                self.extend_indexes();
                let mut scratch = Scratch::default();
                for &(crel, crow) in &candidates {
                    let tuple = self.rels[crel as usize].row(crow as usize).to_vec();
                    let mut probes = 0u64;
                    let found =
                        self.rederive_row(crel as usize, &tuple, &mut scratch, &mut probes);
                    self.stats.join_probes += probes;
                    if let Some((rule, body_rows)) = found {
                        self.rels[crel as usize].insert(&tuple);
                        self.stats.rule_firings += 1;
                        self.stats.tuples_derived += 1;
                        self.prov.as_mut().expect("recording on")[crel as usize]
                            .push(rule, &body_rows);
                        if let Some(rev) = self.rev.as_mut() {
                            let hrow = (self.rels[crel as usize].num_rows() - 1) as u32;
                            for (k, &brow) in body_rows.iter().enumerate() {
                                let brel = self.plans[rule as usize].body_rels[k];
                                if self.ext_flag.get(brel).copied().unwrap_or(false) {
                                    continue;
                                }
                                rev.add(brel, brow, crel, hrow);
                            }
                        }
                    }
                }
            }
        }
        self.run_update();
        self.version = self.version.wrapping_add(1);
    }

    // -----------------------------------------------------------------
    // Fixpoint loops
    // -----------------------------------------------------------------

    /// The batch fixpoint (initial construction): identical code path —
    /// and identical [`EvalStats`] — to the pre-materialization engine.
    /// On exit every watermark is normalized to the store length, so
    /// updates resume from "everything is old".
    fn run_batch(&mut self) {
        match self.strategy {
            Strategy::SemiNaiveParallel { threads } if threads >= 2 => {
                self.run_batch_parallel(threads, OVERSHARD * threads);
            }
            Strategy::SemiNaiveSharded { threads, shards } if threads >= 2 || shards >= 2 => {
                self.run_batch_parallel(threads.max(1), shards.max(1));
            }
            // `threads <= 1` degenerates to the sequential code path,
            // byte-for-byte: same loop, same buffers, same row ids.
            s => self.run_batch_sequential(s.sequential_spec()),
        }
        for r in 0..self.rels.len() {
            self.old_hi[r] = self.rels[r].num_rows();
        }
    }

    fn run_batch_sequential(&mut self, strategy: Strategy) {
        let mut scratch = Scratch::default();
        let mut pending = PendingTuples::default();
        let mut first = true;
        loop {
            self.stats.iterations += 1;
            self.extend_indexes();

            for pi in 0..self.plans.len() {
                let plan = &self.plans[pi];
                match strategy {
                    Strategy::Naive => {
                        self.eval_rule(pi, None, false, &mut scratch, &mut pending);
                    }
                    _ => {
                        if plan.idb_steps.is_empty() {
                            if first {
                                self.eval_rule(pi, None, false, &mut scratch, &mut pending);
                            }
                        } else if !first {
                            for di in 0..self.plans[pi].idb_steps.len() {
                                let d = self.plans[pi].idb_steps[di];
                                self.eval_rule(pi, Some(d), false, &mut scratch, &mut pending);
                            }
                        }
                    }
                }
            }

            // Merge: advance the watermarks to the current length, then
            // append this iteration's new tuples — they become the delta.
            for r in 0..self.rels.len() {
                self.old_hi[r] = self.rels[r].num_rows();
            }
            let appended =
                Self::merge_pending(
                &mut self.rels,
                &mut pending,
                self.prov.as_mut(),
                self.rev.as_mut(),
                &self.plans,
                &self.ext_flag,
            );
            self.stats.tuples_derived += appended;
            if self.planner.productive_firings {
                self.stats.rule_firings += appended;
            }
            if appended == 0 {
                break;
            }
            self.profile.push(appended);
            first = false;
        }
    }

    /// The sharded batch fixpoint. Per iteration, every
    /// `(rule, delta step)` pair becomes [`ShardTask`]s that partition
    /// the **first join step's** row range (see
    /// [`Materialization::shard0_range`]); the merge applies the staged
    /// buffers in `(rule, delta, shard)` order, which — because shards
    /// are top-down subranges of the first step's descending enumeration
    /// — is exactly the sequential engine's staging order, so row ids,
    /// justifications and [`EvalStats`] are identical at every thread
    /// and shard count.
    fn run_batch_parallel(&mut self, threads: usize, shards: usize) {
        // Spawned on the first delta iteration (a fixpoint that converges
        // on the seed rules never pays for threads) and dropped with this
        // call: the spawn cost amortizes over the iterations of one
        // evaluation. For sub-millisecond workloads the sequential
        // strategy is the right tool; the counters are identical.
        let mut pool: Option<ThreadPool> = None;
        let mut scratch = Scratch::default();
        let mut pending = PendingTuples::default();
        // Recycled task slots: merged-out staging buffers and scratch
        // space return here and are reused next iteration.
        let mut spare: Vec<ShardTask> = Vec::new();
        let mut first = true;
        loop {
            self.stats.iterations += 1;
            self.extend_indexes();

            let appended = if first {
                // First iteration: only EDB-only rules fire (no deltas
                // exist yet); identical to the sequential engine.
                for pi in 0..self.plans.len() {
                    if self.plans[pi].idb_steps.is_empty() {
                        self.eval_rule(pi, None, false, &mut scratch, &mut pending);
                    }
                }
                for r in 0..self.rels.len() {
                    self.old_hi[r] = self.rels[r].num_rows();
                }
                Self::merge_pending(
                &mut self.rels,
                &mut pending,
                self.prov.as_mut(),
                self.rev.as_mut(),
                &self.plans,
                &self.ext_flag,
            )
            } else {
                let items: Vec<(usize, usize)> = self
                    .plans
                    .iter()
                    .enumerate()
                    .flat_map(|(pi, p)| p.idb_steps.iter().map(move |&d| (pi, d)))
                    .collect();
                self.parallel_round(&mut pool, threads, shards, &mut spare, &items, false)
            };
            self.stats.tuples_derived += appended;
            if self.planner.productive_firings {
                self.stats.rule_firings += appended;
            }
            if appended == 0 {
                break;
            }
            self.profile.push(appended);
            first = false;
        }
    }

    /// The incremental fixpoint: resumes semi-naive evaluation from the
    /// current watermarks. Delta candidates are **every** body step over
    /// a relation that has grown — EDB steps included, which is how
    /// freshly inserted facts (and DRed rescues) enter the join — under
    /// the same "last delta occurrence" convention as the batch engine.
    /// After the first round the EDB deltas are consumed and the loop is
    /// ordinary semi-naive over the derived deltas.
    fn run_update(&mut self) {
        match self.strategy {
            Strategy::SemiNaiveParallel { threads } if threads >= 2 => {
                self.run_update_parallel(threads, OVERSHARD * threads);
            }
            Strategy::SemiNaiveSharded { threads, shards } if threads >= 2 || shards >= 2 => {
                self.run_update_parallel(threads.max(1), shards.max(1));
            }
            // Updates are delta-driven by nature; a Naive-strategy
            // materialization updates through the same machinery.
            _ => self.run_update_sequential(),
        }
    }

    /// The `(rule, body step)` pairs whose step relation has unconsumed
    /// delta rows, in deterministic `(rule, step)` order. Dropped rules
    /// never fire again.
    fn update_items(&self) -> Vec<(usize, usize)> {
        let mut items = Vec::new();
        for (pi, plan) in self.plans.iter().enumerate() {
            if !self.rule_active[pi] {
                continue;
            }
            for (d, step) in plan.steps.iter().enumerate() {
                if self.rels[step.rel].num_rows() > self.old_hi[step.rel] {
                    items.push((pi, d));
                }
            }
        }
        items
    }

    fn run_update_sequential(&mut self) {
        let mut scratch = Scratch::default();
        let mut pending = PendingTuples::default();
        loop {
            let items = self.update_items();
            if items.is_empty() {
                break;
            }
            self.stats.iterations += 1;
            self.extend_indexes();
            for &(pi, d) in &items {
                self.eval_rule(pi, Some(d), true, &mut scratch, &mut pending);
            }
            for r in 0..self.rels.len() {
                self.old_hi[r] = self.rels[r].num_rows();
            }
            let appended =
                Self::merge_pending(
                &mut self.rels,
                &mut pending,
                self.prov.as_mut(),
                self.rev.as_mut(),
                &self.plans,
                &self.ext_flag,
            );
            self.stats.tuples_derived += appended;
            if self.planner.productive_firings {
                self.stats.rule_firings += appended;
            }
            if appended == 0 {
                break;
            }
            self.profile.push(appended);
        }
    }

    fn run_update_parallel(&mut self, threads: usize, shards: usize) {
        let mut pool: Option<ThreadPool> = None;
        let mut spare: Vec<ShardTask> = Vec::new();
        loop {
            let items = self.update_items();
            if items.is_empty() {
                break;
            }
            self.stats.iterations += 1;
            self.extend_indexes();
            let appended =
                self.parallel_round(&mut pool, threads, shards, &mut spare, &items, true);
            self.stats.tuples_derived += appended;
            if self.planner.productive_firings {
                self.stats.rule_firings += appended;
            }
            if appended == 0 {
                break;
            }
            self.profile.push(appended);
        }
    }

    /// The row range the parallel shards partition for rule `pi` with
    /// delta at step `d`: the delta range when the delta step is the
    /// first body atom, the first step's **full** snapshot range
    /// otherwise — so shards partition the pre-delta probe work instead
    /// of duplicating it (the ROADMAP's mid-body delta item, E5's
    /// shape). Either way the shards are top-down subranges of the
    /// sequential engine's descending depth-0 enumeration, which is what
    /// keeps the merge order — and hence row ids and justifications —
    /// sequential-identical.
    fn shard0_range(&self, pi: usize, d: usize) -> (usize, usize) {
        let step0 = &self.plans[pi].steps[0];
        if d == 0 {
            (self.old_hi[step0.rel], self.rels[step0.rel].num_rows())
        } else {
            (0, self.rels[step0.rel].num_rows())
        }
    }

    /// Runs one parallel iteration over `items`, returning the number of
    /// rows appended. Builds shard tasks, executes them on the pool,
    /// accounts counters (lead-shard `pre`, summed `post`), advances the
    /// watermarks and merges in deterministic task order.
    fn parallel_round(
        &mut self,
        pool: &mut Option<ThreadPool>,
        threads: usize,
        shards: usize,
        spare: &mut Vec<ShardTask>,
        items: &[(usize, usize)],
        update: bool,
    ) -> u64 {
        let mut tasks: Vec<ShardTask> = Vec::new();
        for &(pi, d) in items {
            let (slo, shi) = self.shard0_range(pi, d);
            for (si, &(lo, hi)) in shard_ranges(slo, shi, shards).iter().enumerate() {
                // The lead shard always runs (it accounts the depth-0
                // probe even over an empty range, exactly like the
                // sequential engine); empty trailing shards contribute
                // nothing.
                if si > 0 && lo == hi {
                    continue;
                }
                let mut t = spare.pop().unwrap_or_default();
                t.plan_i = pi;
                t.delta_pos = d;
                t.range = (lo, hi);
                t.lead = si == 0;
                t.counters = Counters::default();
                // t.pending was cleared by the last merge; t.scratch
                // keeps its capacity.
                tasks.push(t);
            }
        }
        {
            let plans = &self.plans;
            let rels = &self.rels;
            let idxs = &self.idxs;
            let old_hi = &self.old_hi;
            let record = self.prov.is_some();
            let cfg = self.planner;
            let pool = pool.get_or_insert_with(|| ThreadPool::new(threads));
            pool.scope(|s| {
                for t in tasks.iter_mut() {
                    s.execute(move || {
                        let ShardTask {
                            plan_i,
                            delta_pos,
                            range,
                            scratch,
                            pending,
                            counters,
                            ..
                        } = t;
                        eval_rule_shard(
                            plans,
                            rels,
                            idxs,
                            old_hi,
                            *plan_i,
                            Some(*delta_pos),
                            Some(*range),
                            update,
                            record,
                            cfg,
                            scratch,
                            pending,
                            counters,
                        );
                    });
                }
            });
        }
        for t in &tasks {
            if t.lead {
                self.stats.join_probes += t.counters.pre;
            }
            self.stats.join_probes += t.counters.post;
            self.stats.rule_firings += t.counters.firings;
            self.tc_hits += t.counters.tc_hits;
            self.tc_rows += t.counters.tc_rows;
        }
        for r in 0..self.rels.len() {
            self.old_hi[r] = self.rels[r].num_rows();
        }
        // Deterministic merge: staged buffers in task order = (rule,
        // delta step, shard top-down) = the sequential staging order, so
        // the first staged copy of a row — whose justification the merge
        // keeps — is the same one the sequential engine finds.
        let mut appended = 0u64;
        for t in &mut tasks {
            appended += Self::merge_pending(
                &mut self.rels,
                &mut t.pending,
                self.prov.as_mut(),
                self.rev.as_mut(),
                &self.plans,
                &self.ext_flag,
            );
        }
        spare.append(&mut tasks);
        appended
    }

    /// Applies the planner's index storage layout to every registered
    /// index. Only newly registered (still row-less) indexes can change;
    /// for already-extended ones the call is an idempotence check —
    /// [`IncrementalIndex::set_segmented`] rejects an actual flip. Every
    /// path that registers indexes (construction, restore, rule adds,
    /// re-plans, re-derivation compilation, view linking) runs this
    /// before the new indexes are extended.
    fn apply_index_layout(&mut self) {
        let seg = self.planner.segmented;
        for idx in &mut self.idxs {
            idx.set_segmented(seg);
        }
    }

    /// Extends the per-`(relation, mask)` indexes over the rows that
    /// became visible at the last merge (incremental: only the delta
    /// rows are hashed). Unkeyed steps have no index at all
    /// ([`NO_INDEX`]): the join scans their row range directly.
    /// Rebuilds any dedup table a restore left stale
    /// ([`ColumnarRelation::ensure_slots`]). Called at the head of every
    /// mutating entry point (all single mutators funnel through
    /// [`Materialization::apply`]); one branch per relation when fresh.
    fn ensure_dedup(&mut self) {
        for rel in &mut self.rels {
            rel.ensure_slots();
        }
    }

    fn extend_indexes(&mut self) {
        debug_assert!(
            self.idxs.iter().all(|i| i.is_segmented() == self.planner.segmented),
            "an index registration path skipped apply_index_layout"
        );
        for idx in &mut self.idxs {
            idx.extend(&self.rels[idx.rel()]);
        }
    }

    /// Merges one staging buffer into the relations, deduplicating;
    /// returns how many rows were actually appended. With provenance
    /// recording on, the staged justification of each tuple that
    /// actually inserts (the first staged copy in merge order) is
    /// appended to the head relation's justification store, and — once
    /// the reverse-dependency index exists — one reverse edge per body
    /// position is appended so later retracts stay O(affected).
    fn merge_pending(
        rels: &mut [ColumnarRelation],
        pending: &mut PendingTuples,
        prov: Option<&mut Vec<RelJust>>,
        mut rev: Option<&mut RevIndex>,
        plans: &[RulePlan],
        ext_flag: &[bool],
    ) -> u64 {
        // Staging under the cache-conscious layout memoizes one hash per
        // tuple (`pending.hash`); the chains-only baseline leaves the
        // buffer empty and re-hashes at insert, as the pre-change merge
        // did.
        let batched = pending.hash.len() == pending.rels.len();
        // Pre-size each target's dedup table from the staged count (an
        // upper bound on what actually appends), so the batch never
        // rehashes mid-merge; per-insert growth stays as the backstop.
        // The baseline keeps the pre-change incremental growth.
        if batched {
            let mut counts: FxHashMap<u32, usize> = FxHashMap::default();
            for &rid in &pending.rels {
                *counts.entry(rid).or_insert(0) += 1;
            }
            for (&rid, &n) in &counts {
                rels[rid as usize].reserve_rows(n);
            }
        }
        let insert = |rel: &mut ColumnarRelation, row: &[Const], k: usize, hash: &[u64]| {
            if batched {
                rel.insert_hashed(row, hash[k])
            } else {
                rel.insert(row)
            }
        };
        let mut appended = 0u64;
        let mut off = 0;
        match prov {
            None => {
                for (k, &rid) in pending.rels.iter().enumerate() {
                    let rel = &mut rels[rid as usize];
                    let ar = rel.arity();
                    if insert(rel, &pending.data[off..off + ar], k, &pending.hash) {
                        appended += 1;
                    }
                    off += ar;
                }
            }
            Some(prov) => {
                let mut joff = 0;
                for (k, &rid) in pending.rels.iter().enumerate() {
                    let rel = &mut rels[rid as usize];
                    let ar = rel.arity();
                    let rule = pending.just[joff];
                    let blen = plans[rule as usize].body_rels.len();
                    if insert(rel, &pending.data[off..off + ar], k, &pending.hash) {
                        appended += 1;
                        let body = &pending.just[joff + 1..joff + 1 + blen];
                        prov[rid as usize].push(rule, body);
                        if let Some(rev) = rev.as_deref_mut() {
                            let hrow = (rel.num_rows() - 1) as u32;
                            for (kb, &brow) in body.iter().enumerate() {
                                let brel = plans[rule as usize].body_rels[kb];
                                if ext_flag.get(brel).copied().unwrap_or(false) {
                                    continue;
                                }
                                rev.add(brel, brow, rid, hrow);
                            }
                        }
                    }
                    off += ar;
                    joff += 1 + blen;
                }
                pending.just.clear();
            }
        }
        pending.data.clear();
        pending.rels.clear();
        pending.hash.clear();
        appended
    }

    /// Evaluates one rule with an optional delta position over the full
    /// first-step range (the sequential engines' unit of work).
    fn eval_rule(
        &mut self,
        plan_i: usize,
        delta_pos: Option<usize>,
        update: bool,
        scratch: &mut Scratch,
        pending: &mut PendingTuples,
    ) {
        let mut counters = Counters::default();
        eval_rule_shard(
            &self.plans,
            &self.rels,
            &self.idxs,
            &self.old_hi,
            plan_i,
            delta_pos,
            None,
            update,
            self.prov.is_some(),
            self.planner,
            scratch,
            pending,
            &mut counters,
        );
        self.stats.join_probes += counters.pre + counters.post;
        self.stats.rule_firings += counters.firings;
        self.tc_hits += counters.tc_hits;
        self.tc_rows += counters.tc_rows;
    }

    // -----------------------------------------------------------------
    // Re-derivation (the DRed rescue phase)
    // -----------------------------------------------------------------

    fn ensure_rederive_plans(&mut self) {
        if self.rederive.is_some() {
            return;
        }
        let plans = self
            .rules
            .iter()
            .enumerate()
            .map(|(ri, r)| {
                compile_rederive(ri, r, &self.rel_of_pred, &mut self.idxs, &mut self.idx_of)
            })
            .collect();
        self.rederive = Some(plans);
        self.apply_index_layout();
    }

    /// Checks whether `tuple` (of relation `rel`) is derivable in one
    /// rule application from the current live store; returns the rule
    /// and body row ids of the first derivation found. Goal-directed:
    /// the head binds the rule slots up front, so the body join is
    /// keyed on them.
    fn rederive_row(
        &self,
        rel: usize,
        tuple: &[Const],
        scratch: &mut Scratch,
        probes: &mut u64,
    ) -> Option<(u32, Vec<u32>)> {
        let plans = self.rederive.as_ref().expect("compiled before rescue");
        'plans: for plan in plans
            .iter()
            .filter(|p| p.head_rel == rel && self.rule_active[p.rule as usize])
        {
            scratch.env.clear();
            scratch.env.resize(plan.num_slots, Const(0));
            for (i, op) in plan.head.iter().enumerate() {
                match *op {
                    HeadOp::Const(c) => {
                        if tuple[i] != c {
                            continue 'plans;
                        }
                    }
                    HeadOp::First(s) => scratch.env[s] = tuple[i],
                    HeadOp::Repeat(s) => {
                        if scratch.env[s] != tuple[i] {
                            continue 'plans;
                        }
                    }
                }
            }
            scratch.rows.clear();
            scratch.rows.resize(plan.steps.len(), 0);
            if rederive_descend(
                &plan.steps,
                0,
                &self.rels,
                &self.idxs,
                scratch,
                probes,
            ) {
                return Some((plan.rule, scratch.rows[..plan.steps.len()].to_vec()));
            }
        }
        None
    }

    // -----------------------------------------------------------------
    // Read-out (used by the thin eval wrappers)
    // -----------------------------------------------------------------

    /// Applies a goal directly over the columnar rows of the goal
    /// predicate (no intermediate `Database`).
    pub(crate) fn goal_answer(&self, goal: &Atom) -> Relation {
        let (ops, nvars) = eval::goal_plan(goal);
        match self.rel_of_pred.get(&goal.pred) {
            Some(&rid) if self.idb_flag[rid] => {
                eval::select_project(&ops, nvars, self.rels[rid].rows_iter())
            }
            _ => Relation::new(nvars),
        }
    }

    /// Per-iteration appended-fact counts (the convergence profile).
    pub(crate) fn profile(&self) -> &[u64] {
        &self.profile
    }

    pub(crate) fn into_result(self) -> EvalResult {
        EvalResult {
            idb: self.idb_database(),
            stats: self.stats,
        }
    }

    pub(crate) fn into_provenance_result(self) -> ProvenanceResult {
        // Per rule: the dense relation id of each body atom (what the
        // justification body row ids index into).
        let body_rels = self
            .plans
            .iter()
            .map(|p| p.body_rels.iter().map(|&r| r as u32).collect())
            .collect();
        let provenance = Provenance::from_engine(
            self.rels,
            self.pred_of_rel,
            self.rel_of_pred,
            self.idb_rels,
            body_rels,
            self.prov.expect("provenance recording was on"),
        );
        ProvenanceResult {
            stats: self.stats,
            provenance,
        }
    }
}

// ---------------------------------------------------------------------
// The join
// ---------------------------------------------------------------------

/// Evaluates one rule with an optional delta position, the first join
/// step optionally restricted to the row subrange `shard0` (the parallel
/// engine's unit of work; `None` sequentially). `update` applies the
/// watermark snapshot convention to EDB steps too (incremental rounds).
/// Shared state is read-only, so any number of shards may run
/// concurrently; derived rows go to the caller's staging buffer and
/// counters.
#[allow(clippy::too_many_arguments)]
fn eval_rule_shard(
    plans: &[RulePlan],
    rels: &[ColumnarRelation],
    idxs: &[IncrementalIndex],
    old_hi: &[usize],
    plan_i: usize,
    delta_pos: Option<usize>,
    shard0: Option<(usize, usize)>,
    update: bool,
    record: bool,
    cfg: PlannerConfig,
    scratch: &mut Scratch,
    pending: &mut PendingTuples,
    counters: &mut Counters,
) {
    let plan = &plans[plan_i];
    scratch.env.resize(plan.num_slots, Const(0));
    scratch.rows.resize(plan.steps.len(), 0);
    if cfg.staged_filter {
        if cfg.segmented {
            scratch.staged.begin();
        } else {
            scratch.staged_legacy.clear();
        }
    }
    let ctx = JoinCtx {
        rels,
        idxs,
        old_hi,
        delta_pos,
        shard0,
        update,
        plan_i,
        record,
        cfg,
    };
    if cfg.tc_kernel && plan.tc {
        tc_kernel(plan, &ctx, scratch, pending, counters);
    } else {
        descend(plan, 0, &ctx, scratch, pending, counters);
    }
}

/// Borrowed engine state for one rule-evaluation pass.
struct JoinCtx<'a> {
    rels: &'a [ColumnarRelation],
    idxs: &'a [IncrementalIndex],
    old_hi: &'a [usize],
    delta_pos: Option<usize>,
    /// Row-range restriction of the **first** join step (one shard of
    /// the parallel engine's depth-0 partition; `None` sequentially).
    shard0: Option<(usize, usize)>,
    /// Incremental round: watermark snapshots apply to every step, EDB
    /// included (the batch engine's EDB relations never change, so its
    /// EDB steps always read the full relation).
    update: bool,
    /// Index of the plan being evaluated (= the rule index).
    plan_i: usize,
    /// Whether to stage justifications alongside derived tuples.
    record: bool,
    /// The planner features live for this evaluation.
    cfg: PlannerConfig,
}

impl JoinCtx<'_> {
    /// Snapshot row range for one step ("last delta occurrence"
    /// convention: steps before the delta read the full relation, the
    /// delta step reads its delta range, steps after read `[0, old_hi)`).
    /// Batch rounds apply it to IDB steps only; incremental rounds to
    /// every step. A parallel shard additionally restricts the first
    /// step to its subrange (the subranges partition exactly this range).
    fn step_range(&self, step: &Step, depth: usize) -> (usize, usize) {
        let rel = &self.rels[step.rel];
        let (lo, hi) = if !(step.idb || self.update) {
            (0, rel.num_rows())
        } else {
            match self.delta_pos {
                None => (0, rel.num_rows()),
                Some(d) if depth == d => (self.old_hi[step.rel], rel.num_rows()),
                Some(d) if depth < d => (0, rel.num_rows()),
                Some(_) => (0, self.old_hi[step.rel]),
            }
        };
        match self.shard0 {
            Some(r) if depth == 0 => r,
            _ => (lo, hi),
        }
    }
}

/// Builds the head tuple from the bound environment into `scratch.head`.
fn build_head(plan: &RulePlan, scratch: &mut Scratch) {
    scratch.head.clear();
    for op in plan.head.iter() {
        scratch.head.push(match *op {
            Out::Const(c) => c,
            Out::Slot(s) => scratch.env[s],
        });
    }
}

/// The firing point: stages the fully-instantiated head (unless it
/// already exists, or the per-shard staged-head filter has seen it).
/// With provenance recording on, the matched row ids are staged in
/// **original rule-body order** via [`RulePlan::step_of_body`], whatever
/// order the steps ran in.
fn stage_head(
    plan: &RulePlan,
    ctx: &JoinCtx<'_>,
    scratch: &mut Scratch,
    pending: &mut PendingTuples,
    counters: &mut Counters,
) {
    if !ctx.cfg.productive_firings {
        counters.firings += 1;
    }
    build_head(plan, scratch);
    if ctx.cfg.segmented {
        // One hash serves the existence probe, the staged filter, and —
        // via the staging buffer — the merge's insert.
        let hash = ColumnarRelation::hash_row(&scratch.head);
        // Only buffer tuples not already in the relation (the merge
        // dedups again; this keeps the pending buffer small).
        if ctx.rels[plan.head_rel].contains_hashed(&scratch.head, hash) {
            return;
        }
        if ctx.cfg.staged_filter
            && !scratch.staged.insert_if_new(&scratch.head, hash, &pending.data)
        {
            return;
        }
        pending.data.extend_from_slice(&scratch.head);
        pending.rels.push(plan.head_rel as u32);
        pending.hash.push(hash);
    } else {
        // The pre-change staging path, kept selectable as the storage
        // A/B baseline: the existence probe, the staged filter and the
        // merge each hash on their own, and the filter clones every
        // staged head into an owning set.
        if ctx.rels[plan.head_rel].contains(&scratch.head) {
            return;
        }
        if ctx.cfg.staged_filter && !scratch.staged_legacy.insert(scratch.head.clone()) {
            return;
        }
        pending.data.extend_from_slice(&scratch.head);
        pending.rels.push(plan.head_rel as u32);
    }
    if ctx.record {
        // The justification, packed: this rule, then the row matched
        // for each body atom in rule-text order.
        pending.just.push(ctx.plan_i as u32);
        for &d in plan.step_of_body.iter() {
            pending.just.push(scratch.rows[d]);
        }
    }
}

/// Recursive backtracking join over the plan steps. Slots are bound by
/// overwriting (`Action::Bind`); no unbinding is needed on backtrack
/// because the plan guarantees every slot read happens at a depth after
/// its binding depth, and the next row at the binding depth overwrites.
fn descend(
    plan: &RulePlan,
    depth: usize,
    ctx: &JoinCtx<'_>,
    scratch: &mut Scratch,
    pending: &mut PendingTuples,
    counters: &mut Counters,
) {
    if depth == plan.steps.len() {
        stage_head(plan, ctx, scratch, pending, counters);
        return;
    }
    // Staged-head suffix pruning: once every head position is bound,
    // a head that already exists in the (frozen) head relation can
    // never stage anything — kill the whole remaining join suffix
    // before probing it. The check reads only frozen rows, so probe
    // counts stay identical at every thread and shard count.
    if ctx.cfg.suffix_prune && depth == plan.head_ready_depth {
        build_head(plan, scratch);
        if ctx.rels[plan.head_rel].contains(&scratch.head) {
            return;
        }
    }
    let step = &plan.steps[depth];
    let rel = &ctx.rels[step.rel];
    let (lo, hi) = ctx.step_range(step, depth);

    // The depth-0 probe is identical in every shard (`pre`, accounted
    // once from the lead shard); deeper probes are partitioned by the
    // first step's rows (`post`, summed across shards).
    if depth == 0 {
        counters.pre += 1;
    } else {
        counters.post += 1;
    }

    if step.key.is_empty() {
        // Unkeyed step: the empty-mask chain is exactly the rows in
        // descending id order, so scan the range directly — no index
        // traversal, and (for a sharded first step) no walking through
        // other shards' rows to reach this shard's.
        for r in (lo..hi).rev() {
            match_row(plan, step, rel, r, depth, ctx, scratch, pending, counters);
        }
        return;
    }

    let idx = &ctx.idxs[step.idx];
    // Single-column keys (one key op ⇔ one mask column) take the raw-
    // value fast path: no key buffer, no slice hash.
    let mut cur = if let &[op] = &*step.key {
        let k = match op {
            KeyOp::Const(c) => c,
            KeyOp::Slot(s) => scratch.env[s],
        };
        idx.probe1_range(rel, k, lo, hi)
    } else {
        scratch.key.clear();
        for op in step.key.iter() {
            scratch.key.push(match *op {
                KeyOp::Const(c) => c,
                KeyOp::Slot(s) => scratch.env[s],
            });
        }
        idx.probe_range(rel, &scratch.key, lo, hi)
    };
    loop {
        let row = idx.next_match(&mut cur);
        if row == NO_ROW {
            break;
        }
        match_row(plan, step, rel, row as usize, depth, ctx, scratch, pending, counters);
    }
}

/// Applies one matched row's bind/check actions and, if they pass,
/// descends to the next step. Returns whether the actions passed.
/// Tombstoned rows never match (index chains keep addressing them, but
/// they are no longer facts).
#[allow(clippy::too_many_arguments)]
fn match_row(
    plan: &RulePlan,
    step: &Step,
    rel: &ColumnarRelation,
    r: usize,
    depth: usize,
    ctx: &JoinCtx<'_>,
    scratch: &mut Scratch,
    pending: &mut PendingTuples,
    counters: &mut Counters,
) -> bool {
    if !rel.is_live(r) {
        return false;
    }
    for a in step.actions.iter() {
        match *a {
            Action::Bind { pos, slot } => scratch.env[slot] = rel.value(r, pos),
            Action::Check { pos, slot } => {
                if scratch.env[slot] != rel.value(r, pos) {
                    return false;
                }
            }
        }
    }
    // Derivation coordinate for provenance staging (one word; cheaper
    // than branching on the recording flag here).
    scratch.rows[depth] = r as u32;
    descend(plan, depth + 1, ctx, scratch, pending, counters);
    true
}

/// The specialized transitive-closure kernel: the generic recursive
/// descent flattened into one two-level loop for recognized
/// [`RulePlan::tc`] plans (`tc(x,z) :- tc(x,y), e(y,z)` and its
/// right-linear/nonlinear variants, in any planner order). The action
/// and key shapes are unpacked once, the snapshot ranges hoisted out of
/// the loop, and the per-row recursion replaced by straight-line code.
/// Enumeration order, staging order and every counter are identical to
/// [`descend`] — recognition changes speed, never results. Suffix
/// pruning never applies here: a TC head is only fully bound at full
/// instantiation ([`RulePlan::head_ready_depth`] = 2 = the step count).
fn tc_kernel(
    plan: &RulePlan,
    ctx: &JoinCtx<'_>,
    scratch: &mut Scratch,
    pending: &mut PendingTuples,
    counters: &mut Counters,
) {
    counters.tc_hits += 1;
    let step0 = &plan.steps[0];
    let step1 = &plan.steps[1];
    let rel0 = &ctx.rels[step0.rel];
    let rel1 = &ctx.rels[step1.rel];
    let idx1 = &ctx.idxs[step1.idx];
    let (lo0, hi0) = ctx.step_range(step0, 0);
    let (lo1, hi1) = ctx.step_range(step1, 1);
    // `tc_shape` guarantees exactly these shapes.
    let (Action::Bind { pos: apos, slot: aslot }, Action::Bind { pos: bpos, slot: bslot }) =
        (step0.actions[0], step0.actions[1])
    else {
        unreachable!("tc plan: step 0 is two fresh binds")
    };
    let Action::Bind { pos: cpos, slot: cslot } = step1.actions[0] else {
        unreachable!("tc plan: step 1 is one fresh bind")
    };
    let KeyOp::Slot(kslot) = step1.key[0] else {
        unreachable!("tc plan: step 1 is keyed on a step-0 slot")
    };

    counters.pre += 1;
    for r in (lo0..hi0).rev() {
        if !rel0.is_live(r) {
            continue;
        }
        scratch.env[aslot] = rel0.value(r, apos);
        scratch.env[bslot] = rel0.value(r, bpos);
        scratch.rows[0] = r as u32;
        counters.post += 1;
        // `tc_shape` guarantees a single-column key: raw-value probe,
        // no key buffer.
        let mut cur = idx1.probe1_range(rel1, scratch.env[kslot], lo1, hi1);
        loop {
            let row = idx1.next_match(&mut cur);
            if row == NO_ROW {
                break;
            }
            let rr = row as usize;
            if rel1.is_live(rr) {
                scratch.env[cslot] = rel1.value(rr, cpos);
                scratch.rows[1] = rr as u32;
                counters.tc_rows += 1;
                stage_head(plan, ctx, scratch, pending, counters);
            }
        }
    }
}

/// Backtracking search for **one** body instantiation of a re-derivation
/// plan over the full live store; row ids land in `scratch.rows`.
/// Returns on the first success. Body depths are small (rule body
/// length), so recursion is fine here.
fn rederive_descend(
    steps: &[Step],
    depth: usize,
    rels: &[ColumnarRelation],
    idxs: &[IncrementalIndex],
    scratch: &mut Scratch,
    probes: &mut u64,
) -> bool {
    if depth == steps.len() {
        return true;
    }
    let step = &steps[depth];
    let rel = &rels[step.rel];
    *probes += 1;

    let try_row = |r: usize, scratch: &mut Scratch| -> bool {
        if !rel.is_live(r) {
            return false;
        }
        for a in step.actions.iter() {
            match *a {
                Action::Bind { pos, slot } => scratch.env[slot] = rel.value(r, pos),
                Action::Check { pos, slot } => {
                    if scratch.env[slot] != rel.value(r, pos) {
                        return false;
                    }
                }
            }
        }
        scratch.rows[depth] = r as u32;
        true
    };

    if step.key.is_empty() {
        for r in (0..rel.num_rows()).rev() {
            if try_row(r, scratch) && rederive_descend(steps, depth + 1, rels, idxs, scratch, probes)
            {
                return true;
            }
        }
        return false;
    }
    scratch.key.clear();
    for op in step.key.iter() {
        scratch.key.push(match *op {
            KeyOp::Const(c) => c,
            KeyOp::Slot(s) => scratch.env[s],
        });
    }
    // The key is only needed for the probe itself; deeper levels are
    // free to reuse the buffer.
    let idx = &idxs[step.idx];
    let mut cur = idx.probe_range(rel, &scratch.key, 0, rel.num_rows());
    loop {
        let row = idx.next_match(&mut cur);
        if row == NO_ROW {
            break;
        }
        let r = row as usize;
        if try_row(r, scratch) && rederive_descend(steps, depth + 1, rels, idxs, scratch, probes) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::reference;

    const SRC_A: &str = "?- anc(john, Y).\n\
                         anc(X, Y) :- par(X, Y).\n\
                         anc(X, Y) :- anc(X, Z), par(Z, Y).";

    fn chain_edges(p: &mut Program, n: usize) -> Vec<Tuple> {
        let mut prev = p.symbols.constant("john");
        (1..=n)
            .map(|i| {
                let c = p.symbols.constant(&format!("c{i}"));
                let t = vec![prev, c];
                prev = c;
                t
            })
            .collect()
    }

    /// Sorted `(pred, tuples)` view of a Database for comparisons.
    fn sorted_model(db: &Database) -> Vec<(Pred, Vec<Tuple>)> {
        db.sorted_models()
    }

    /// The from-scratch executable spec: reference engine on the mirror.
    fn spec_idb(p: &Program, db: &Database) -> Vec<(Pred, Vec<Tuple>)> {
        reference::evaluate(p, db, Strategy::SemiNaive).idb.sorted_models()
    }

    /// The stats-staleness regression: adaptive re-planning must never
    /// move existing rows — row ids are provenance currency
    /// (justifications, snapshots, view links), so a re-plan may only
    /// change *future* join orders. Interleaves churn that drives
    /// `par` far past the 2x+16 drift threshold (forcing re-plans at
    /// round boundaries) with retractions, snapshotting every
    /// relation's flat row data before each round and asserting the
    /// old prefix is bit-identical after — while the model and the
    /// recorded justifications track the from-scratch oracle.
    /// Compaction is disabled so any row movement could only come from
    /// a re-plan bug, not a legitimate remap.
    #[test]
    fn replanning_is_row_id_stable_under_churn() {
        let mut p = parse_program(SRC_A).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        // Start tiny: the initial plan is built on near-empty
        // cardinalities, so growth is guaranteed to look like drift.
        let seed_edges = chain_edges(&mut p, 4);
        let mut db = Database::new();
        for e in &seed_edges {
            db.insert(par, e.clone());
        }
        let mut m = Materialization::from_database(&p, &db, Strategy::SemiNaive);
        m.set_compaction_policy(None);
        assert_eq!(m.planner_report().replans, 0);

        let mut live: Vec<Tuple> = seed_edges.clone();
        let mut tail = *seed_edges.last().unwrap().last().unwrap();
        for round in 0..4usize {
            let before: Vec<(usize, Vec<Const>)> = m
                .rels
                .iter()
                .map(|r| (r.num_rows(), r.data().to_vec()))
                .collect();

            // Extend the chain by 30 fresh nodes (~2.5x growth the
            // first round — past `new > 2*old + 16`), then retract two
            // of the freshly inserted edges, splitting the chain.
            let fan: Vec<Tuple> = (0..30)
                .map(|i| {
                    let c = p.symbols.constant(&format!("r{round}n{i}"));
                    let t = vec![tail, c];
                    tail = c;
                    t
                })
                .collect();
            assert_eq!(m.insert_facts(par, &fan), fan.len());
            live.extend(fan.iter().cloned());
            let dropped = [fan[7].clone(), fan[19].clone()];
            assert_eq!(m.retract_facts(par, &dropped), 2);
            live.retain(|t| !dropped.contains(t));

            // Row-id stability: every pre-round row is still at its id
            // with its exact data (retraction tombstones, never moves).
            for (rel, (n, data)) in m.rels.iter().zip(&before) {
                assert!(rel.num_rows() >= *n, "rows must only be appended");
                assert_eq!(
                    &rel.data()[..data.len()],
                    &data[..],
                    "a re-plan moved already-derived rows"
                );
            }

            let mut mirror = Database::new();
            for t in &live {
                mirror.insert(par, t.clone());
            }
            assert_eq!(sorted_model(&m.idb_database()), spec_idb(&p, &mirror));
            m.provenance()
                .check(&p)
                .expect("justifications stay valid across re-plans");
        }
        assert!(
            m.planner_report().replans > 0,
            "churn this steep must have crossed the drift threshold"
        );
    }

    #[test]
    fn insert_resumes_instead_of_recomputing() {
        let mut p = parse_program(SRC_A).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain_edges(&mut p, 6);
        let mut db = Database::new();
        for e in &edges[..3] {
            db.insert(par, e.clone());
        }
        let mut m = Materialization::from_database(&p, &db, Strategy::SemiNaive);
        assert_eq!(m.answer().len(), 3);
        let before = m.stats();

        // Absorb the rest of the chain one edge at a time, and total up
        // what a non-incremental system would pay: a full recompute
        // after every update.
        let mut mirror = db.clone();
        let mut recompute_work = 0u64;
        for e in &edges[3..] {
            assert_eq!(m.insert_facts(par, std::slice::from_ref(e)), 1);
            mirror.insert(par, e.clone());
            assert_eq!(sorted_model(&m.idb_database()), spec_idb(&p, &mirror));
            recompute_work += crate::eval::evaluate(&p, &mirror, Strategy::SemiNaive)
                .stats
                .work();
        }
        assert_eq!(m.answer().len(), 6);
        // The updates resumed from the fixpoint instead of recomputing.
        let update_work = m.stats().work() - before.work();
        assert!(
            update_work < recompute_work,
            "update cost {update_work} should undercut per-update recomputes {recompute_work}"
        );
        // Duplicate inserts are no-ops.
        assert_eq!(m.insert_facts(par, &edges), 0);
        m.provenance().check(&p).expect("justifications stay valid");
    }

    #[test]
    fn insert_on_idb_or_unknown_predicates_is_a_noop() {
        let mut p = parse_program(SRC_A).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let anc = p.symbols.get_predicate("anc").unwrap();
        let stranger = p.symbols.predicate("unrelated");
        let a = p.symbols.constant("a");
        let b = p.symbols.constant("b");
        let mut m = Materialization::new(&p, Strategy::SemiNaive);
        assert_eq!(m.insert_facts(anc, &[vec![a, b]]), 0, "IDB facts ignored");
        assert_eq!(m.insert_facts(stranger, &[vec![a, b]]), 0, "untracked pred");
        assert_eq!(m.retract_facts(anc, &[vec![a, b]]), 0);
        assert_eq!(m.retract_facts(stranger, &[vec![a, b]]), 0);
        assert_eq!(m.num_facts(anc), 0);
        assert_eq!(m.insert_facts(par, &[vec![a, b]]), 1);
        assert_eq!(m.num_facts(anc), 1);
        assert_eq!(m.num_facts(par), 1);
    }

    #[test]
    fn retract_cascades_through_derived_facts() {
        let mut p = parse_program(SRC_A).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain_edges(&mut p, 5);
        let mut db = Database::new();
        for e in &edges {
            db.insert(par, e.clone());
        }
        let mut m = Materialization::from_database(&p, &db, Strategy::SemiNaive);
        assert_eq!(m.answer().len(), 5);
        // Cut the chain in the middle: everything past c2 is gone.
        assert_eq!(m.retract_facts(par, std::slice::from_ref(&edges[2])), 1);
        let mut mirror = db.clone();
        mirror.remove(par, &edges[2]);
        assert_eq!(sorted_model(&m.idb_database()), spec_idb(&p, &mirror));
        assert_eq!(m.answer().len(), 2);
        m.provenance().check(&p).expect("surviving justifications valid");
        // Retracting an absent fact is a no-op.
        assert_eq!(m.retract_facts(par, std::slice::from_ref(&edges[2])), 0);
    }

    #[test]
    fn retract_rescues_facts_with_alternative_derivations() {
        // The classic DRed diamond: p(a) holds via e(a) AND via f(a).
        // Its recorded justification uses e(a); retracting e(a) must
        // over-delete p(a) and then rescue it through f(a), with the
        // new justification recorded.
        let mut p = parse_program(
            "?- p(Y).\n\
             p(X) :- e(X).\n\
             p(X) :- f(X).\n\
             q(X) :- p(X), g(X).",
        )
        .unwrap();
        let e = p.symbols.get_predicate("e").unwrap();
        let f = p.symbols.get_predicate("f").unwrap();
        let g = p.symbols.get_predicate("g").unwrap();
        let pp = p.symbols.get_predicate("p").unwrap();
        let q = p.symbols.get_predicate("q").unwrap();
        let a = p.symbols.constant("a");
        let mut db = Database::new();
        db.insert(e, vec![a]);
        db.insert(f, vec![a]);
        db.insert(g, vec![a]);
        let mut m = Materialization::from_database(&p, &db, Strategy::SemiNaive);
        let prov = m.provenance();
        let pa = crate::derivation::GroundAtom { pred: pp, args: vec![a] };
        assert_eq!(prov.justification(&pa).map(|(r, _)| r), Some(0), "via e");

        assert_eq!(m.retract_facts(e, &[vec![a]]), 1);
        let mut mirror = db.clone();
        mirror.remove(e, &[a]);
        assert_eq!(sorted_model(&m.idb_database()), spec_idb(&p, &mirror));
        let idb = m.idb_database();
        assert!(idb.relation(pp).unwrap().contains(&[a]), "p(a) rescued");
        assert!(idb.relation(q).unwrap().contains(&[a]), "q(a) survives too");
        let prov = m.provenance();
        prov.check(&p).expect("rescued justification is valid");
        assert_eq!(prov.justification(&pa).map(|(r, _)| r), Some(1), "now via f");

        // Retract the second support: now everything goes.
        assert_eq!(m.retract_facts(f, &[vec![a]]), 1);
        mirror.remove(f, &[a]);
        assert_eq!(sorted_model(&m.idb_database()), spec_idb(&p, &mirror));
        assert_eq!(m.num_facts(pp), 0);
        assert_eq!(m.num_facts(q), 0);
    }

    #[test]
    fn insert_then_retract_restores_the_store() {
        let mut p = parse_program(SRC_A).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain_edges(&mut p, 8);
        let mut db = Database::new();
        for e in &edges[..4] {
            db.insert(par, e.clone());
        }
        let mut m = Materialization::from_database(&p, &db, Strategy::SemiNaive);
        let snapshot = sorted_model(&m.database());
        m.insert_facts(par, &edges[4..]);
        assert_ne!(sorted_model(&m.database()), snapshot);
        m.retract_facts(par, &edges[4..]);
        assert_eq!(
            sorted_model(&m.database()),
            snapshot,
            "retracting the inserted rows restores the pre-insert store"
        );
        m.provenance().check(&p).expect("valid after the round trip");
    }

    #[test]
    fn update_sequences_are_strategy_independent() {
        // The same op sequence under every strategy yields the same
        // store — and, because shards merge in sequential order, the
        // same provenance bit-for-bit for the semi-naive family.
        let mut p = parse_program(SRC_A).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain_edges(&mut p, 9);
        let mut db = Database::new();
        for e in &edges[..5] {
            db.insert(par, e.clone());
        }
        let run = |strategy: Strategy| {
            let mut m = Materialization::from_database(&p, &db, strategy);
            m.insert_facts(par, &edges[5..]);
            m.retract_facts(par, &edges[2..4]);
            m.insert_facts(par, &edges[2..3]);
            m
        };
        let seq = run(Strategy::SemiNaive);
        let seq_model = sorted_model(&seq.database());
        let seq_prov = seq.provenance();
        for strategy in [
            Strategy::Naive,
            Strategy::SemiNaiveParallel { threads: 2 },
            Strategy::SemiNaiveParallel { threads: 4 },
            Strategy::SemiNaiveSharded { threads: 2, shards: 7 },
        ] {
            let m = run(strategy);
            assert_eq!(sorted_model(&m.database()), seq_model, "{strategy:?}");
            m.provenance().check(&p).expect("valid under every strategy");
            if strategy != Strategy::Naive {
                assert_eq!(
                    m.provenance(),
                    seq_prov,
                    "{strategy:?}: provenance thread/shard independent"
                );
                assert_eq!(m.stats(), seq.stats(), "{strategy:?} counters");
            }
        }
    }

    #[test]
    fn batch_wrappers_are_the_materialization_special_case() {
        let mut p = parse_program(SRC_A).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain_edges(&mut p, 7);
        let mut db = Database::new();
        for e in &edges {
            db.insert(par, e.clone());
        }
        let wrapped = crate::eval::evaluate(&p, &db, Strategy::SemiNaive);
        let m = Materialization::from_database(&p, &db, Strategy::SemiNaive);
        assert_eq!(m.stats(), wrapped.stats, "recording changes no counter");
        assert_eq!(sorted_model(&m.idb_database()), sorted_model(&wrapped.idb));
        let (ans, _) = crate::eval::answer(&p, &db, Strategy::SemiNaive);
        assert_eq!(m.answer().sorted(), ans.sorted());
    }

    #[test]
    fn one_csr_build_per_apply_round() {
        // The reverse-dependency index is built lazily exactly once —
        // on the first round with any over-deletion work — and then
        // maintained incrementally: later retracting rounds (batched or
        // single-fact) never rebuild it.
        let mut p = parse_program(SRC_A).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain_edges(&mut p, 10);
        let mut db = Database::new();
        for e in &edges {
            db.insert(par, e.clone());
        }
        let mut m = Materialization::from_database(&p, &db, Strategy::SemiNaive);
        assert_eq!(m.csr_builds(), 0, "construction never over-deletes");

        let round = UpdateRound::new()
            .retract_all(par, &edges[6..])
            .drop_rule(RuleId(1));
        let report = m.apply(&round);
        assert_eq!(report.retracted, 4);
        assert_eq!(report.rules_dropped, 1);
        assert_eq!(m.csr_builds(), 1, "one build for the whole mixed round");

        // Insert-only and empty rounds never build the index.
        m.apply(&UpdateRound::new().insert(par, edges[6].clone()));
        m.apply(&UpdateRound::new());
        assert_eq!(m.csr_builds(), 1);

        // A later retracting round reuses the maintained index.
        m.apply(&UpdateRound::new().retract(par, edges[6].clone()));
        assert_eq!(m.csr_builds(), 1, "incremental maintenance, no rebuild");

        // The single-fact path also pays exactly one lazy build, on the
        // first retract call — O(affected) from then on.
        let mut m2 = Materialization::from_database(&p, &db, Strategy::SemiNaive);
        for e in &edges[6..] {
            m2.retract_facts(par, std::slice::from_ref(e));
        }
        assert_eq!(m2.csr_builds(), 1);
    }

    #[test]
    fn batched_mixed_round_matches_sequential_calls() {
        let mut p = parse_program(SRC_A).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain_edges(&mut p, 10);
        let mut db = Database::new();
        for e in &edges[..6] {
            db.insert(par, e.clone());
        }
        let mut batched = Materialization::from_database(&p, &db, Strategy::SemiNaive);
        let report = batched.apply(
            &UpdateRound::new()
                .retract_all(par, &edges[2..4])
                .insert_all(par, &edges[6..]),
        );
        assert_eq!(report.inserted, 4);
        assert_eq!(report.retracted, 2);

        let mut sequential = Materialization::from_database(&p, &db, Strategy::SemiNaive);
        for e in &edges[6..] {
            sequential.insert_facts(par, std::slice::from_ref(e));
        }
        for e in &edges[2..4] {
            sequential.retract_facts(par, std::slice::from_ref(e));
        }
        assert_eq!(
            sorted_model(&batched.database()),
            sorted_model(&sequential.database()),
            "one mixed round ≡ any order of the single-fact calls"
        );
        // And both match the from-scratch spec of the edited database.
        let mut mirror = db.clone();
        for e in &edges[6..] {
            mirror.insert(par, e.clone());
        }
        for e in &edges[2..4] {
            mirror.remove(par, e);
        }
        assert_eq!(sorted_model(&batched.idb_database()), spec_idb(&p, &mirror));
        batched.provenance().check(&p).expect("valid after a mixed round");
    }

    #[test]
    fn drop_rule_overdeletes_and_rescues_via_surviving_rules() {
        // The DRed diamond again, but cutting a *rule* instead of a
        // fact: p(a) is justified via rule 0 (p :- e); dropping rule 0
        // must rescue p(a) through rule 1 (p :- f) and keep q(a).
        let mut p = parse_program(
            "?- p(Y).\n\
             p(X) :- e(X).\n\
             p(X) :- f(X).\n\
             q(X) :- p(X), g(X).",
        )
        .unwrap();
        let e = p.symbols.get_predicate("e").unwrap();
        let f = p.symbols.get_predicate("f").unwrap();
        let g = p.symbols.get_predicate("g").unwrap();
        let pp = p.symbols.get_predicate("p").unwrap();
        let q = p.symbols.get_predicate("q").unwrap();
        let a = p.symbols.constant("a");
        let mut db = Database::new();
        db.insert(e, vec![a]);
        db.insert(f, vec![a]);
        db.insert(g, vec![a]);
        let mut m = Materialization::from_database(&p, &db, Strategy::SemiNaive);
        assert!(m.is_rule_active(RuleId(0)));

        assert!(m.drop_rule(RuleId(0)));
        assert!(!m.is_rule_active(RuleId(0)));
        assert!(!m.drop_rule(RuleId(0)), "double drop is a no-op");
        assert_eq!(m.num_facts(pp), 1, "p(a) rescued via rule 1");
        assert_eq!(m.num_facts(q), 1, "q(a) survives");
        let prov = m.provenance();
        // Check against the full original program: rule slots align.
        prov.check(&p).expect("rescued justification valid");
        let pa = crate::derivation::GroundAtom { pred: pp, args: vec![a] };
        assert_eq!(prov.justification(&pa).map(|(r, _)| r), Some(1), "via f now");

        // The edited program is the spec: dropping the last support of
        // p kills everything derived.
        assert!(m.drop_rule(RuleId(1)));
        assert_eq!(m.num_facts(pp), 0);
        assert_eq!(m.num_facts(q), 0);
        // e/f/g facts are untouched.
        assert_eq!(m.num_facts(e), 1);
    }

    #[test]
    fn add_rule_seeds_from_existing_rows() {
        let mut p = parse_program(SRC_A).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let anc = p.symbols.get_predicate("anc").unwrap();
        let edges = chain_edges(&mut p, 5);
        let mut db = Database::new();
        for e in &edges {
            db.insert(par, e.clone());
        }
        let mut m = Materialization::from_database(&p, &db, Strategy::SemiNaive);
        assert_eq!(m.num_rule_slots(), 2);

        // Hot-add: sib(X, Y) :- par(Z, X), par(Z, Y) over a new IDB.
        let extra = parse_program(
            "?- sib(X, Y).\n\
             sib(X, Y) :- par(Z, X), par(Z, Y).",
        )
        .unwrap();
        // Predicate/constant ids are interned per-Symbols; rebuild the
        // rule against p's symbol table for a like-for-like comparison.
        let mut p_plus = p.clone();
        let sib = p_plus.symbols.predicate("sib");
        let rule = {
            let mut r = extra.rules[0].clone();
            r.head.pred = sib;
            for (a, src) in r.body.iter_mut().zip(&extra.rules[0].body) {
                assert_eq!(extra.symbols.pred_name(src.pred), "par");
                a.pred = par;
            }
            r
        };
        p_plus.rules.push(rule.clone());

        let id = m.add_rule(rule);
        assert_eq!(id, RuleId(2));
        assert!(m.is_rule_active(id));
        assert_eq!(m.active_rules().len(), 3);
        // Chain graph: each parent has one child, so sib is the diagonal.
        assert_eq!(m.num_facts(sib), 5, "seeded from the existing rows");
        assert_eq!(
            sorted_model(&m.idb_database()),
            spec_idb(&p_plus, &{
                let mut mirror = Database::new();
                for e in &edges {
                    mirror.insert(par, e.clone());
                }
                mirror
            }),
            "incrementally seeded ≡ from-scratch on the edited program"
        );
        m.provenance().check(&p_plus).expect("seeded justifications valid");

        // New facts keep flowing through the added rule.
        let john = p.symbols.get_constant("john").unwrap();
        let x = p_plus.symbols.constant("x");
        m.insert_facts(par, &[vec![john, x]]);
        assert_eq!(m.num_facts(sib), 5 + 3, "sib(c1,x), sib(x,c1) and sib(x,x)");
        let _ = anc;
    }

    #[test]
    #[should_panic(expected = "head must not be a stored EDB relation")]
    fn add_rule_rejects_edb_heads() {
        let p = parse_program(SRC_A).unwrap();
        let mut m = Materialization::new(&p, Strategy::SemiNaive);
        // par is a stored EDB relation: deriving into it would break the
        // fixed IDB/EDB partition. par(X, Y) :- anc(X, Y).
        let par = p.symbols.get_predicate("par").unwrap();
        let anc = p.symbols.get_predicate("anc").unwrap();
        let args = vec![Term::Var(Var(0)), Term::Var(Var(1))];
        m.add_rule(Rule {
            head: Atom { pred: par, args: args.clone() },
            body: vec![Atom { pred: anc, args }],
        });
    }

    #[test]
    fn apply_round_with_new_predicates_tracks_them() {
        // An added rule may introduce brand-new body predicates; the
        // same round can already insert facts for them.
        let mut p = parse_program(SRC_A).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain_edges(&mut p, 3);
        let mut db = Database::new();
        for e in &edges {
            db.insert(par, e.clone());
        }
        let mut m = Materialization::from_database(&p, &db, Strategy::SemiNaive);

        let mut p_plus = p.clone();
        let anc = p_plus.symbols.get_predicate("anc").unwrap();
        let step = p_plus.symbols.predicate("step");
        let rule = Rule {
            head: Atom {
                pred: anc,
                args: vec![Term::Var(Var(90)), Term::Var(Var(91))],
            },
            body: vec![Atom {
                pred: step,
                args: vec![Term::Var(Var(90)), Term::Var(Var(91))],
            }],
        };
        p_plus.rules.push(rule.clone());
        let a = p_plus.symbols.constant("zz1");
        let b = p_plus.symbols.constant("zz2");
        let report = m.apply(
            &UpdateRound::new()
                .add_rule(rule)
                .insert(step, vec![a, b]),
        );
        assert_eq!(report.rules_added, 1);
        assert_eq!(report.inserted, 1, "the new EDB predicate is tracked");
        let mut mirror = db.clone();
        mirror.insert(step, vec![a, b]);
        assert_eq!(sorted_model(&m.idb_database()), spec_idb(&p_plus, &mirror));
        m.provenance().check(&p_plus).expect("valid");
    }

    #[test]
    fn empty_materialization_fires_seed_rules() {
        // Magic-style seed rules (empty body) fire during the initial
        // fixpoint of an empty materialization; stream inserts build on
        // them.
        let mut p = parse_program(
            "?- reach(Y).\n\
             seed(c).\n\
             reach(Y) :- seed(X), e(X, Y).\n\
             reach(Y) :- reach(X), e(X, Y).",
        )
        .unwrap();
        let e = p.symbols.get_predicate("e").unwrap();
        let seed = p.symbols.get_predicate("seed").unwrap();
        let c = p.symbols.get_constant("c").unwrap();
        let d = p.symbols.constant("d");
        let mut m = Materialization::new(&p, Strategy::SemiNaive);
        assert_eq!(m.num_facts(seed), 1, "seed(c) fired on the empty store");
        assert_eq!(m.insert_facts(e, &[vec![c, d]]), 1);
        assert_eq!(m.answer().len(), 1);
        m.provenance().check(&p).expect("valid");
    }

    // -----------------------------------------------------------------
    // Compaction
    // -----------------------------------------------------------------

    #[test]
    fn compact_preserves_model_provenance_and_update_behavior() {
        let mut p = parse_program(SRC_A).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain_edges(&mut p, 12);
        let mut db = Database::new();
        for e in &edges {
            db.insert(par, e.clone());
        }
        let mut m = Materialization::from_database(&p, &db, Strategy::SemiNaive);
        m.set_compaction_policy(None); // manual compaction for this test

        // Churn: cut the chain tail, then reattach a shorter one.
        m.retract_facts(par, &edges[8..]);
        let mut mirror = db.clone();
        for e in &edges[8..] {
            mirror.remove(par, e);
        }
        assert_eq!(sorted_model(&m.idb_database()), spec_idb(&p, &mirror));

        let stats_before = m.stats();
        let mem_before = m.mem_stats();
        assert!(mem_before.total_rows > mem_before.live_rows, "churn left tombstones");

        let reclaimed = m.compact();
        assert!(reclaimed > 0);
        assert_eq!(m.compactions(), 1);
        let mem_after = m.mem_stats();
        assert_eq!(mem_after.total_rows, mem_after.live_rows, "no dead rows survive");
        assert!(mem_after.row_words() < mem_before.row_words());

        // Results, counters and provenance are untouched.
        assert_eq!(m.stats(), stats_before, "compaction does no evaluation work");
        assert_eq!(sorted_model(&m.idb_database()), spec_idb(&p, &mirror));
        m.provenance().check(&p).expect("remapped justifications stay valid");

        // A second compact is a no-op.
        assert_eq!(m.compact(), 0);
        assert_eq!(m.compactions(), 1);

        // Updates keep working against the renumbered store: retract
        // deeper (exercising the rebuilt reverse index), then insert.
        m.retract_facts(par, &edges[4..8]);
        for e in &edges[4..8] {
            mirror.remove(par, e);
        }
        assert_eq!(m.insert_facts(par, &edges[4..6]), 2);
        for e in &edges[4..6] {
            mirror.insert(par, e.clone());
        }
        assert_eq!(sorted_model(&m.idb_database()), spec_idb(&p, &mirror));
        m.provenance().check(&p).expect("post-compact churn provenance valid");
    }

    #[test]
    fn policy_triggers_automatic_compaction() {
        let mut p = parse_program(SRC_A).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain_edges(&mut p, 40);
        let mut db = Database::new();
        for e in &edges {
            db.insert(par, e.clone());
        }
        let mut m = Materialization::from_database(&p, &db, Strategy::SemiNaive);
        m.set_compaction_policy(Some(CompactionPolicy {
            min_dead_rows: 8,
            dead_percent: 10,
        }));
        // Cutting the chain at edge 20 tombstones half the closure: far
        // past the 10% threshold, so the apply round compacts itself.
        m.retract_facts(par, std::slice::from_ref(&edges[20]));
        assert!(m.compactions() >= 1, "policy breach compacts automatically");
        let mem = m.mem_stats();
        assert_eq!(mem.total_rows, mem.live_rows);

        let mut mirror = db.clone();
        mirror.remove(par, &edges[20]);
        assert_eq!(sorted_model(&m.idb_database()), spec_idb(&p, &mirror));
    }

    #[test]
    fn retract_is_a_counted_no_op_on_absent_and_double_retracts() {
        let mut p = parse_program(SRC_A).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain_edges(&mut p, 6);
        let never = {
            let x = p.symbols.constant("x");
            let y = p.symbols.constant("y");
            vec![x, y]
        };
        let mut db = Database::new();
        for e in &edges {
            db.insert(par, e.clone());
        }
        let mut m = Materialization::from_database(&p, &db, Strategy::SemiNaive);
        let baseline = sorted_model(&m.database());

        // Never-inserted fact: count 0, store untouched.
        assert_eq!(m.retract_facts(par, std::slice::from_ref(&never)), 0);
        assert_eq!(sorted_model(&m.database()), baseline);

        // Real retract counts once; the immediate double-retract counts 0.
        assert_eq!(m.retract_facts(par, std::slice::from_ref(&edges[5])), 1);
        assert_eq!(m.retract_facts(par, std::slice::from_ref(&edges[5])), 0);
        let mut mirror = db.clone();
        mirror.remove(par, &edges[5]);
        assert_eq!(sorted_model(&m.idb_database()), spec_idb(&p, &mirror));

        // Retract-after-compact: the row is gone entirely, still a
        // clean counted no-op.
        assert!(m.compact() > 0);
        assert_eq!(m.retract_facts(par, std::slice::from_ref(&edges[5])), 0);
        // And a mixed round counts only the rows actually removed.
        let r = m.apply(&UpdateRound::new().retract_all(par, &edges[3..6]));
        assert_eq!(r.retracted, 2, "edges[5] is already gone");
        m.provenance().check(&p).expect("valid after no-op retracts");
    }

    // -----------------------------------------------------------------
    // Snapshot / restore
    // -----------------------------------------------------------------

    #[test]
    fn snapshot_round_trip_is_bit_for_bit_and_update_equivalent() {
        let mut p = parse_program(SRC_A).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain_edges(&mut p, 14);
        let mut db = Database::new();
        for e in &edges {
            db.insert(par, e.clone());
        }
        let mut m = Materialization::from_database(&p, &db, Strategy::SemiNaive);
        m.set_compaction_policy(None);
        // Leave interesting state behind: tombstones (live dead bitset +
        // stale justifications), a dropped rule slot, a convergence
        // profile, nonzero counters.
        m.retract_facts(par, &edges[10..12]);

        let bytes = m.to_bytes();
        let m2 = Materialization::from_bytes(&bytes).expect("intact snapshot restores");
        assert_eq!(m2.to_bytes(), bytes, "serialize(restore(x)) == x, bit for bit");
        assert_eq!(m2.stats(), m.stats());
        assert_eq!(m2.strategy(), m.strategy());
        assert_eq!(m2.csr_builds(), m.csr_builds());
        assert_eq!(sorted_model(&m2.database()), sorted_model(&m.database()));
        assert_eq!(m2.answer().sorted(), m.answer().sorted());
        m2.provenance().check(&p).expect("restored justifications valid");

        // The same mixed round lands identically on both stores.
        let round = UpdateRound::new()
            .retract_all(par, &edges[4..6])
            .insert_all(par, &edges[10..12]);
        let mut m2 = m2;
        let ra = m.apply(&round);
        let rb = m2.apply(&round);
        assert_eq!(ra, rb);
        assert_eq!(m.stats(), m2.stats(), "identical work on both stores");
        assert_eq!(sorted_model(&m.database()), sorted_model(&m2.database()));
        assert_eq!(m.to_bytes(), m2.to_bytes(), "stores stay bit-identical after the round");
    }

    #[test]
    fn snapshot_round_trips_rule_slots_and_epoch_state() {
        let mut p = parse_program(SRC_A).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain_edges(&mut p, 8);
        let mut db = Database::new();
        for e in &edges {
            db.insert(par, e.clone());
        }
        let mut m = Materialization::from_database(&p, &db, Strategy::SemiNaive);
        // Epoch mode with a live tombstone tag, plus a dropped rule.
        m.set_epoch(3);
        m.apply(&UpdateRound::new().retract(par, edges[6].clone()));
        m.apply(&UpdateRound::new().drop_rule(RuleId(1)));

        let bytes = m.to_bytes();
        let m2 = Materialization::from_bytes(&bytes).unwrap();
        assert_eq!(m2.to_bytes(), bytes);
        assert!(!m2.is_rule_active(RuleId(1)));
        assert!(m2.is_rule_active(RuleId(0)));
        assert_eq!(m2.num_rule_slots(), 2, "dropped slots persist");
        // The pinned-epoch view survives: a reader pinned at epoch 3
        // still sees rows tombstoned at epoch > 3.
        let f = m2.frontiers();
        assert_eq!(
            m.database_at(&f, 3).sorted_models(),
            m2.database_at(&f, 3).sorted_models()
        );
    }

    #[test]
    fn save_restore_via_file_is_atomic_and_faithful() {
        let dir = std::env::temp_dir().join(format!("selprop-mat-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.snap");

        let mut p = parse_program(SRC_A).unwrap();
        let par = p.symbols.get_predicate("par").unwrap();
        let edges = chain_edges(&mut p, 10);
        let mut db = Database::new();
        for e in &edges {
            db.insert(par, e.clone());
        }
        let mut m = Materialization::from_database(&p, &db, Strategy::SemiNaive);
        m.save(&path).expect("save");
        let m2 = Materialization::restore(&path).expect("restore");
        assert_eq!(m2.to_bytes(), m.to_bytes());

        // Overwrite with new state; the file is replaced atomically.
        m.retract_facts(par, &edges[8..]);
        m.save(&path).expect("second save");
        let m3 = Materialization::restore(&path).expect("restore updated");
        assert_eq!(m3.to_bytes(), m.to_bytes());

        assert!(matches!(
            Materialization::restore(dir.join("missing.snap")),
            Err(PersistError::Io(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
