//! Flat columnar storage for the fixpoint engine.
//!
//! The evaluator's hot loop touches three structures, all allocation-free
//! per tuple:
//!
//! - [`ColumnarRelation`] — a predicate's extension as one flat
//!   `Vec<Const>` with an arity stride. A tuple is a **row**: a `&[Const]`
//!   slice into the column store, identified by a dense `u32` row id in
//!   insertion order. An open-addressing row table (keyed with the
//!   in-tree [`crate::hash::FxHasher`]) deduplicates rows on insert.
//! - [`IncrementalIndex`] — a persistent hash index over one relation and
//!   one column **mask** (the bound argument positions of a join step).
//!   Rows with equal key are chained through a flat `next` array,
//!   newest-first; extending the index with freshly appended rows is
//!   incremental, so semi-naive iterations never rebuild an index.
//! - watermarks — because relations are append-only, the semi-naive
//!   snapshots `old ⊆ full` and the per-iteration `delta` are just row
//!   ranges: `old = [0, old_hi)`, `delta = [old_hi, len)`, `full =
//!   [0, len)`. No cloning, no separate set/vec duplication.
//!
//! The newest-first chain invariant is what makes one index serve all
//! three snapshots: a chain's row ids are strictly decreasing, so a
//! traversal takes the `delta` rows as a prefix and the `old` rows as the
//! remaining suffix.

use crate::ast::Const;
use crate::hash::{hash_ids, FxHashMap};

/// Sentinel row id: "no row" / end of an index chain.
pub const NO_ROW: u32 = u32::MAX;

/// Dedup-table sentinel for a slot whose row was tombstoned. Probes
/// continue past it (the slot may sit mid-chain); inserts may reuse it.
/// Never a valid row id ([`ColumnarRelation::insert`] asserts ids stay
/// below it).
const TOMB_SLOT: u32 = u32::MAX - 1;

/// Partitions the row range `[lo, hi)` into `shards` contiguous
/// subranges for the parallel evaluator, returned **top-down**: the
/// first subrange covers the newest (highest-id) rows. Subrange sizes
/// differ by at most one; when the range has fewer rows than `shards`,
/// the trailing subranges are empty.
///
/// Top-down order matters for determinism: index chains are traversed
/// newest-first, so concatenating per-shard results in this order
/// reproduces the sequential engine's enumeration order whenever the
/// sharded (delta) step is the first step of a join.
pub fn shard_ranges(lo: usize, hi: usize, shards: usize) -> Vec<(usize, usize)> {
    assert!(shards >= 1, "need at least one shard");
    assert!(lo <= hi, "inverted row range");
    let n = hi - lo;
    let base = n / shards;
    let extra = n % shards;
    let mut out = Vec::with_capacity(shards);
    let mut top = hi;
    for s in 0..shards {
        let size = base + usize::from(s < extra);
        out.push((top - size, top));
        top -= size;
    }
    debug_assert_eq!(top, lo);
    out
}

/// A relation stored as one flat column-major-free `Vec<Const>` with an
/// arity stride, plus a row-id hash table for O(1) dedup and membership.
///
/// Equality compares the full insertion-ordered contents (row ids
/// included), which is what the provenance determinism tests assert.
///
/// # Tombstones
///
/// Rows can be **tombstoned** ([`ColumnarRelation::tombstone`]) for the
/// incremental maintenance layer's delete–rederive: the row's data stays
/// in place (row ids never shift — index chains and recorded
/// justifications keep referencing them), but it leaves the dedup table
/// (`contains`/`find_row` report it absent; re-inserting the same tuple
/// appends a **new** row id) and [`ColumnarRelation::is_live`] turns
/// false, which the join machinery checks before matching a row.
///
/// # Epoch-tagged tombstones (snapshot reads)
///
/// The serving layer ([`crate::server`]) needs point-in-time reads while
/// the writer keeps mutating. Append-only row ids make the *insert* side
/// of a snapshot free — a per-relation row-count frontier bounds what a
/// reader may see — but tombstones mutate in place. So a relation can be
/// moved into **epoch mode** ([`ColumnarRelation::set_epoch`] with a
/// nonzero epoch): from then on each tombstone records the epoch it died
/// in, and [`ColumnarRelation::visible_at`] resurrects rows that died
/// *after* a reader's pinned epoch. Relations that never enter epoch mode
/// (every plain [`crate::materialize::Materialization`]) pay nothing: the
/// side table stays empty and untouched.
///
/// Reclamation is compaction-free: once no reader is pinned below epoch
/// `e`, [`ColumnarRelation::reclaim_tombstones`] drops the tags `<= e` —
/// an untagged dead row is simply dead at every pinnable epoch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ColumnarRelation {
    arity: usize,
    /// Row-major tuple data: row `r` occupies `data[r*arity .. (r+1)*arity]`.
    data: Vec<Const>,
    /// Number of rows (kept explicitly so 0-ary relations work).
    rows: usize,
    /// Open-addressing dedup table over row ids (capacity is a power of
    /// two; `NO_ROW` marks an empty slot, [`TOMB_SLOT`] a deleted one).
    slots: Vec<u32>,
    /// Tombstone bitset, allocated lazily on the first
    /// [`ColumnarRelation::tombstone`]; empty means every row is live.
    dead: Vec<u64>,
    /// Number of tombstoned rows.
    dead_rows: usize,
    /// The epoch new tombstones are tagged with; 0 = epoch mode off.
    epoch: u64,
    /// Death epoch per tombstoned row, populated only in epoch mode. A
    /// dead row absent from this table died "before memory": invisible
    /// at every epoch still pinnable.
    tomb_at: FxHashMap<u32, u64>,
}

impl ColumnarRelation {
    /// Creates an empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Self {
            arity,
            data: Vec::new(),
            rows: 0,
            slots: Vec::new(),
            dead: Vec::new(),
            dead_rows: 0,
            epoch: 0,
            tomb_at: FxHashMap::default(),
        }
    }

    /// The arity (row stride).
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// The flat tuple data (`num_rows() * arity()` constants).
    #[inline]
    pub fn data(&self) -> &[Const] {
        &self.data
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[Const] {
        &self.data[r * self.arity..r * self.arity + self.arity]
    }

    /// The value at row `r`, column `col`.
    #[inline]
    pub fn value(&self, r: usize, col: usize) -> Const {
        self.data[r * self.arity + col]
    }

    /// Number of live (non-tombstoned) rows.
    #[inline]
    pub fn num_live(&self) -> usize {
        self.rows - self.dead_rows
    }

    /// Whether row `r` is live (not tombstoned). Cheap: one bounds check
    /// when the relation has never been tombstoned (the bitset is empty,
    /// and rows appended after a tombstone may also lie past its end).
    #[inline]
    pub fn is_live(&self, r: usize) -> bool {
        match self.dead.get(r >> 6) {
            None => true,
            Some(w) => (w >> (r & 63)) & 1 == 0,
        }
    }

    /// Iterates over the **live** rows in insertion order.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[Const]> {
        (0..self.rows)
            .filter(move |&r| self.is_live(r))
            .map(move |r| self.row(r))
    }

    /// Enters (or advances) epoch mode: tombstones created from now on
    /// are tagged with `epoch`, so [`ColumnarRelation::visible_at`] can
    /// serve reads pinned at earlier epochs. Epochs must be nonzero and
    /// non-decreasing across calls (the serving layer's round counter).
    pub fn set_epoch(&mut self, epoch: u64) {
        debug_assert!(epoch >= self.epoch, "epochs never go backwards");
        self.epoch = epoch;
    }

    /// Whether row `r` is visible to a reader pinned at `epoch`: live, or
    /// tombstoned in a *later* epoch (the reader pinned before the row
    /// died). Rows at ids `>= frontier` of the reader's pinned snapshot
    /// must be excluded by the caller — this checks liveness only.
    #[inline]
    pub fn visible_at(&self, r: usize, epoch: u64) -> bool {
        self.is_live(r) || self.tomb_at.get(&(r as u32)).is_some_and(|&te| te > epoch)
    }

    /// Iterates the rows of the pinned snapshot `(frontier, epoch)`:
    /// row ids below `frontier` (the relation's row count when the
    /// snapshot was pinned) that are visible at `epoch`, in insertion
    /// order.
    pub fn rows_iter_at(&self, frontier: usize, epoch: u64) -> impl Iterator<Item = &[Const]> {
        (0..frontier.min(self.rows))
            .filter(move |&r| self.visible_at(r, epoch))
            .map(move |r| self.row(r))
    }

    /// Drops the death-epoch tags `<= min_epoch` (no reader is pinned at
    /// or below it any more): the rows stay dead, just untagged — dead at
    /// every epoch still pinnable. Compaction-free reclamation.
    pub fn reclaim_tombstones(&mut self, min_epoch: u64) {
        self.tomb_at.retain(|_, te| *te > min_epoch);
    }

    fn hash_row_slice(row: &[Const]) -> u64 {
        hash_ids(row.iter().map(|c| c.0))
    }

    /// Membership test (O(1) expected).
    pub fn contains(&self, row: &[Const]) -> bool {
        self.find_row(row) != NO_ROW
    }

    /// The row id of a tuple, or [`NO_ROW`] if absent (O(1) expected).
    /// Row ids are dense and stable: the provenance subsystem uses them
    /// as node identities of the justification DAG.
    pub fn find_row(&self, row: &[Const]) -> u32 {
        debug_assert_eq!(row.len(), self.arity);
        if self.slots.is_empty() {
            return NO_ROW;
        }
        let mask = self.slots.len() - 1;
        let mut i = (Self::hash_row_slice(row) as usize) & mask;
        loop {
            let s = self.slots[i];
            if s == NO_ROW {
                return NO_ROW;
            }
            if s != TOMB_SLOT && self.row(s as usize) == row {
                return s;
            }
            i = (i + 1) & mask;
        }
    }

    /// Appends a row if it is not already present **and live**; returns
    /// whether it was new. Row ids are dense and assigned in insertion
    /// order; re-inserting a tombstoned tuple appends a fresh row id
    /// (the dead row stays dead).
    pub fn insert(&mut self, row: &[Const]) -> bool {
        assert_eq!(row.len(), self.arity, "tuple arity mismatch");
        if (self.rows + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (Self::hash_row_slice(row) as usize) & mask;
        // First reusable (tombstoned) slot on the probe path, if any.
        let mut reuse: Option<usize> = None;
        loop {
            let s = self.slots[i];
            if s == NO_ROW {
                let id = u32::try_from(self.rows).expect("relation row-id overflow");
                assert!(id < TOMB_SLOT, "relation row-id overflow");
                self.slots[reuse.unwrap_or(i)] = id;
                self.data.extend_from_slice(row);
                self.rows += 1;
                return true;
            }
            if s == TOMB_SLOT {
                reuse.get_or_insert(i);
            } else if self.row(s as usize) == row {
                return false;
            }
            i = (i + 1) & mask;
        }
    }

    /// Tombstones a live row: removes it from the dedup table and marks
    /// it dead. Returns whether the row was live. The row data and id
    /// stay in place — index chains and recorded justifications keep
    /// addressing it; only [`ColumnarRelation::is_live`] flips.
    pub fn tombstone(&mut self, r: usize) -> bool {
        assert!(r < self.rows, "tombstone of nonexistent row");
        if !self.is_live(r) {
            return false;
        }
        if self.dead.is_empty() {
            self.dead = vec![0; self.rows.div_ceil(64)];
        } else if self.dead.len() < self.rows.div_ceil(64) {
            self.dead.resize(self.rows.div_ceil(64), 0);
        }
        self.dead[r >> 6] |= 1 << (r & 63);
        self.dead_rows += 1;
        if self.epoch > 0 {
            self.tomb_at.insert(r as u32, self.epoch);
        }
        // Unlink from the dedup table (the slot may sit mid-probe-chain,
        // so it becomes TOMB_SLOT, not NO_ROW).
        let mask = self.slots.len() - 1;
        let mut i = (Self::hash_row_slice(self.row(r)) as usize) & mask;
        loop {
            let s = self.slots[i];
            debug_assert_ne!(s, NO_ROW, "live row must be in the dedup table");
            if s == r as u32 {
                self.slots[i] = TOMB_SLOT;
                return true;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(8);
        self.slots = vec![NO_ROW; cap];
        let mask = cap - 1;
        for r in 0..self.rows {
            if !self.is_live(r) {
                continue; // tombstoned rows stay out of the dedup table
            }
            let mut i = (Self::hash_row_slice(self.row(r)) as usize) & mask;
            while self.slots[i] != NO_ROW {
                i = (i + 1) & mask;
            }
            self.slots[i] = r as u32;
        }
    }

    /// Rebuilds the dedup table from scratch over the live rows, sized
    /// for the current row count (used after compaction and restore —
    /// the probe-history-dependent slot layout is not serialized).
    fn rebuild_slots(&mut self) {
        if self.rows == 0 {
            self.slots = Vec::new();
            return;
        }
        let mut cap = 8usize;
        while (self.rows + 1) * 2 > cap {
            cap *= 2;
        }
        self.slots = vec![NO_ROW; cap];
        let mask = cap - 1;
        for r in 0..self.rows {
            if !self.is_live(r) {
                continue;
            }
            let mut i = (Self::hash_row_slice(self.row(r)) as usize) & mask;
            while self.slots[i] != NO_ROW {
                i = (i + 1) & mask;
            }
            self.slots[i] = r as u32;
        }
    }

    /// Number of tombstoned rows.
    #[inline]
    pub fn num_dead(&self) -> usize {
        self.dead_rows
    }

    /// **Compacts** the relation: drops every tombstoned row, renumbers
    /// the survivors densely in their original order, and rebuilds the
    /// dedup table. Returns the old→new row-id map (`remap[old]`, with
    /// [`NO_ROW`] for dropped rows); callers must remap every structure
    /// that addresses rows by id (index chains, recorded justifications).
    ///
    /// Epoch tags are cleared: compaction is only legal when no reader
    /// is pinned below the current epoch (the serving layer defers it
    /// until the last unpin), at which point every tag is unobservable.
    /// The epoch itself is preserved.
    pub fn compact(&mut self) -> Vec<u32> {
        let mut remap = vec![NO_ROW; self.rows];
        let mut data = Vec::with_capacity((self.rows - self.dead_rows) * self.arity.max(1));
        let mut next = 0u32;
        for (r, slot) in remap.iter_mut().enumerate() {
            if self.is_live(r) {
                *slot = next;
                data.extend_from_slice(self.row(r));
                next += 1;
            }
        }
        self.data = data;
        self.rows = next as usize;
        self.dead = Vec::new();
        self.dead_rows = 0;
        self.tomb_at = FxHashMap::default();
        self.rebuild_slots();
        remap
    }

    // -----------------------------------------------------------------
    // Serialization support (crate::persist)
    // -----------------------------------------------------------------

    /// The tombstone bitset words (may be shorter than `rows/64`; missing
    /// words mean live).
    pub(crate) fn dead_words(&self) -> &[u64] {
        &self.dead
    }

    /// The epoch new tombstones are tagged with (0 = epoch mode off).
    pub(crate) fn current_epoch(&self) -> u64 {
        self.epoch
    }

    /// The death-epoch tags still held (serving-layer metadata).
    pub(crate) fn tomb_tags(&self) -> &FxHashMap<u32, u64> {
        &self.tomb_at
    }

    /// Reassembles a relation from its serialized parts, rebuilding the
    /// dedup table (slot layout is probe-history dependent and is not
    /// persisted). `dead_rows` must equal the popcount of `dead`.
    pub(crate) fn from_persist(
        arity: usize,
        data: Vec<Const>,
        rows: usize,
        dead: Vec<u64>,
        dead_rows: usize,
        epoch: u64,
        tomb_at: FxHashMap<u32, u64>,
    ) -> Self {
        let mut rel = Self {
            arity,
            data,
            rows,
            slots: Vec::new(),
            dead,
            dead_rows,
            epoch,
            tomb_at,
        };
        rel.rebuild_slots();
        rel
    }
}

/// A persistent hash index over one [`ColumnarRelation`] and one column
/// mask, extended incrementally as the relation grows.
///
/// Equal-key rows form a chain through `next`, **newest-first** (strictly
/// decreasing row ids). The key of a chain is never stored: the head
/// row's projection onto the mask *is* the key.
#[derive(Clone, Debug)]
pub struct IncrementalIndex {
    /// The relation this index belongs to (an id into the engine's dense
    /// relation table; opaque to this module).
    rel: usize,
    mask: Box<[usize]>,
    /// Open-addressing key table: head row id per distinct key.
    slots: Vec<u32>,
    /// `next[r]` = next-older row with the same key, `NO_ROW` at chain end.
    next: Vec<u32>,
    /// Number of distinct keys (for the load factor).
    keys: usize,
    /// Rows `[0, watermark)` are indexed.
    watermark: usize,
}

impl IncrementalIndex {
    /// Creates an empty index for relation id `rel` over `mask`.
    pub fn new(rel: usize, mask: Vec<usize>) -> Self {
        Self {
            rel,
            mask: mask.into_boxed_slice(),
            slots: Vec::new(),
            next: Vec::new(),
            keys: 0,
            watermark: 0,
        }
    }

    /// The relation id this index covers.
    #[inline]
    pub fn rel(&self) -> usize {
        self.rel
    }

    /// Re-targets the index at a different relation id without touching
    /// its contents. Used when an index object is swapped between two
    /// engines that share the underlying relation but number it
    /// differently (the query cache's external-relation swap); the rows
    /// it describes must be the same on both sides.
    pub(crate) fn set_rel(&mut self, rel: usize) {
        self.rel = rel;
    }

    /// The indexed column positions.
    #[inline]
    pub fn mask(&self) -> &[usize] {
        &self.mask
    }

    /// How many rows are indexed.
    #[inline]
    pub fn watermark(&self) -> usize {
        self.watermark
    }

    /// Number of distinct keys in the index. With
    /// [`IncrementalIndex::watermark`], this is the planner's
    /// selectivity surface: `watermark / num_keys` is the mean join
    /// chain length a probe of this index walks.
    #[inline]
    pub fn num_keys(&self) -> usize {
        self.keys
    }

    fn key_hash(&self, rel: &ColumnarRelation, r: usize) -> u64 {
        hash_ids(self.mask.iter().map(|&p| rel.value(r, p).0))
    }

    fn keys_equal(&self, rel: &ColumnarRelation, a: usize, b: usize) -> bool {
        self.mask.iter().all(|&p| rel.value(a, p) == rel.value(b, p))
    }

    /// Indexes the rows appended to `rel` since the last call (the delta
    /// `[watermark, num_rows)`). The caller must always pass the same
    /// relation.
    pub fn extend(&mut self, rel: &ColumnarRelation) {
        let upto = rel.num_rows();
        if upto == self.watermark {
            return;
        }
        self.next.resize(upto, NO_ROW);
        for r in self.watermark..upto {
            if (self.keys + 1) * 2 > self.slots.len() {
                self.grow(rel, r);
            }
            self.add_row(rel, r);
        }
        self.watermark = upto;
    }

    fn add_row(&mut self, rel: &ColumnarRelation, r: usize) {
        let mask = self.slots.len() - 1;
        let mut i = (self.key_hash(rel, r) as usize) & mask;
        loop {
            let head = self.slots[i];
            if head == NO_ROW {
                self.slots[i] = r as u32;
                self.next[r] = NO_ROW;
                self.keys += 1;
                return;
            }
            if self.keys_equal(rel, head as usize, r) {
                // newest-first chaining keeps row ids strictly decreasing
                self.next[r] = head;
                self.slots[i] = r as u32;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    /// Rebuilds the key table at double capacity, re-adding rows
    /// `[0, upto)` (cheap: geometric growth amortizes to O(1) per row).
    fn grow(&mut self, rel: &ColumnarRelation, upto: usize) {
        let cap = (self.slots.len() * 2).max(8);
        self.slots = vec![NO_ROW; cap];
        self.keys = 0;
        for r in 0..upto {
            self.add_row(rel, r);
        }
    }

    /// Looks up a key (values in mask order): the head of the matching
    /// chain, or [`NO_ROW`]. Chains are newest-first; follow with
    /// [`Self::next_row`]. No allocation.
    pub fn probe(&self, rel: &ColumnarRelation, key: &[Const]) -> u32 {
        debug_assert_eq!(key.len(), self.mask.len());
        if self.slots.is_empty() {
            return NO_ROW;
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash_ids(key.iter().map(|c| c.0)) as usize) & mask;
        loop {
            let head = self.slots[i];
            if head == NO_ROW {
                return NO_ROW;
            }
            let h = head as usize;
            if self.mask.iter().zip(key).all(|(&p, &k)| rel.value(h, p) == k) {
                return head;
            }
            i = (i + 1) & mask;
        }
    }

    /// The next-older row in `r`'s chain.
    #[inline]
    pub fn next_row(&self, r: u32) -> u32 {
        self.next[r as usize]
    }

    /// Forgets every indexed row (chains, key table, watermark). The
    /// next [`IncrementalIndex::extend`] re-indexes the relation from
    /// row 0 — used after compaction renumbers the rows.
    pub fn reset(&mut self) {
        self.slots = Vec::new();
        self.next = Vec::new();
        self.keys = 0;
        self.watermark = 0;
    }

    /// Words held by the chain and key tables (the memory-accounting
    /// hook for [`crate::materialize::Materialization::mem_stats`]).
    pub(crate) fn footprint_words(&self) -> usize {
        self.next.len() + self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: u32) -> Const {
        Const(v)
    }

    #[test]
    fn insert_dedup_and_membership() {
        let mut rel = ColumnarRelation::new(2);
        assert!(rel.insert(&[c(1), c(2)]));
        assert!(!rel.insert(&[c(1), c(2)]));
        assert!(rel.insert(&[c(2), c(1)]));
        assert_eq!(rel.num_rows(), 2);
        assert!(rel.contains(&[c(1), c(2)]));
        assert!(!rel.contains(&[c(3), c(3)]));
        assert_eq!(rel.row(0), &[c(1), c(2)]);
        assert_eq!(rel.row(1), &[c(2), c(1)]);
    }

    #[test]
    fn find_row_returns_dense_insertion_ids() {
        let mut rel = ColumnarRelation::new(2);
        for i in 0..100u32 {
            rel.insert(&[c(i), c(i + 1)]);
        }
        for i in 0..100u32 {
            assert_eq!(rel.find_row(&[c(i), c(i + 1)]), i);
        }
        assert_eq!(rel.find_row(&[c(1), c(1)]), NO_ROW);
    }

    #[test]
    fn zero_arity_relation_holds_at_most_one_row() {
        let mut rel = ColumnarRelation::new(0);
        assert!(!rel.contains(&[]));
        assert!(rel.insert(&[]));
        assert!(!rel.insert(&[]));
        assert_eq!(rel.num_rows(), 1);
        assert!(rel.contains(&[]));
        assert_eq!(rel.row(0), &[] as &[Const]);
    }

    #[test]
    fn dedup_survives_growth() {
        let mut rel = ColumnarRelation::new(1);
        for i in 0..1000 {
            assert!(rel.insert(&[c(i)]));
        }
        for i in 0..1000 {
            assert!(!rel.insert(&[c(i)]));
            assert!(rel.contains(&[c(i)]));
        }
        assert_eq!(rel.num_rows(), 1000);
    }

    #[test]
    fn index_chains_are_newest_first() {
        let mut rel = ColumnarRelation::new(2);
        // key = column 0; three rows share key 7
        rel.insert(&[c(7), c(0)]);
        rel.insert(&[c(8), c(1)]);
        rel.insert(&[c(7), c(2)]);
        rel.insert(&[c(7), c(3)]);
        let mut idx = IncrementalIndex::new(0, vec![0]);
        idx.extend(&rel);
        let mut rows = Vec::new();
        let mut r = idx.probe(&rel, &[c(7)]);
        while r != NO_ROW {
            rows.push(r);
            r = idx.next_row(r);
        }
        assert_eq!(rows, vec![3, 2, 0], "newest-first, strictly decreasing");
        assert_eq!(idx.probe(&rel, &[c(9)]), NO_ROW);
    }

    #[test]
    fn incremental_extension_matches_full_rebuild() {
        let mut rel = ColumnarRelation::new(2);
        let mut incremental = IncrementalIndex::new(0, vec![1]);
        for step in 0..10 {
            for i in 0..50u32 {
                rel.insert(&[c(step * 50 + i), c(i % 7)]);
            }
            incremental.extend(&rel);
        }
        let mut fresh = IncrementalIndex::new(0, vec![1]);
        fresh.extend(&rel);
        for k in 0..7u32 {
            let collect = |idx: &IncrementalIndex| {
                let mut rows = Vec::new();
                let mut r = idx.probe(&rel, &[c(k)]);
                while r != NO_ROW {
                    rows.push(r);
                    r = idx.next_row(r);
                }
                rows
            };
            assert_eq!(collect(&incremental), collect(&fresh), "key {k}");
        }
    }

    #[test]
    fn shard_ranges_partition_top_down() {
        for (lo, hi, k) in [(0, 100, 8), (5, 6, 4), (7, 7, 3), (0, 3, 8), (10, 1000, 1)] {
            let shards = shard_ranges(lo, hi, k);
            assert_eq!(shards.len(), k);
            // top-down, contiguous, exactly covering [lo, hi)
            let mut top = hi;
            for &(a, b) in &shards {
                assert_eq!(b, top, "contiguous top-down");
                assert!(a <= b);
                top = a;
            }
            assert_eq!(top, lo);
            let total: usize = shards.iter().map(|(a, b)| b - a).sum();
            assert_eq!(total, hi - lo);
            // balanced: sizes differ by at most one
            let sizes: Vec<usize> = shards.iter().map(|(a, b)| b - a).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "{lo}..{hi} x{k}: {sizes:?}");
        }
    }

    #[test]
    fn tombstone_removes_membership_and_reinsert_gets_new_id() {
        let mut rel = ColumnarRelation::new(2);
        rel.insert(&[c(1), c(2)]);
        rel.insert(&[c(3), c(4)]);
        assert!(rel.tombstone(0));
        assert!(!rel.tombstone(0), "already dead");
        assert!(!rel.contains(&[c(1), c(2)]));
        assert_eq!(rel.find_row(&[c(1), c(2)]), NO_ROW);
        assert!(rel.contains(&[c(3), c(4)]));
        assert!(!rel.is_live(0));
        assert!(rel.is_live(1));
        assert_eq!(rel.num_live(), 1);
        assert_eq!(rel.num_rows(), 2, "row ids never shift");
        // Re-insert appends a fresh id; the dead row stays dead.
        assert!(rel.insert(&[c(1), c(2)]));
        assert_eq!(rel.find_row(&[c(1), c(2)]), 2);
        assert!(!rel.is_live(0));
        assert_eq!(rel.num_live(), 2);
        let live: Vec<_> = rel.rows_iter().collect();
        assert_eq!(live, vec![&[c(3), c(4)][..], &[c(1), c(2)][..]]);
    }

    #[test]
    fn tombstones_survive_growth_and_mass_churn() {
        let mut rel = ColumnarRelation::new(1);
        for i in 0..500u32 {
            rel.insert(&[c(i)]);
        }
        for i in (0..500u32).step_by(2) {
            assert!(rel.tombstone(i as usize));
        }
        // Growth rebuilds the dedup table from live rows only.
        for i in 500..1500u32 {
            assert!(rel.insert(&[c(i)]));
        }
        for i in 0..500u32 {
            assert_eq!(rel.contains(&[c(i)]), i % 2 == 1, "{i}");
        }
        assert_eq!(rel.num_live(), 250 + 1000);
        // Dead tuples re-insert at fresh ids, exactly once.
        for i in (0..500u32).step_by(2) {
            assert!(rel.insert(&[c(i)]));
            assert!(!rel.insert(&[c(i)]));
        }
        assert_eq!(rel.num_live(), 1500);
        assert_eq!(rel.num_rows(), 1750);
    }

    #[test]
    fn rows_appended_after_a_tombstone_are_live() {
        let mut rel = ColumnarRelation::new(1);
        rel.insert(&[c(0)]);
        rel.tombstone(0);
        for i in 1..200u32 {
            rel.insert(&[c(i)]);
            assert!(rel.is_live(i as usize), "{i}");
        }
    }

    #[test]
    fn epoch_tags_resurrect_rows_for_pinned_readers() {
        let mut rel = ColumnarRelation::new(1);
        rel.insert(&[c(0)]); // row 0, alive from epoch 0
        // Round producing epoch 1: insert row 1.
        rel.set_epoch(1);
        rel.insert(&[c(1)]);
        // Round producing epoch 2: retract row 0.
        rel.set_epoch(2);
        rel.tombstone(0);
        // Round producing epoch 3: re-insert the tuple (fresh row id 2).
        rel.set_epoch(3);
        rel.insert(&[c(0)]);

        // A reader pinned at epoch 1 (frontier 2) sees rows 0 and 1: row
        // 0 died in epoch 2 (> 1), row 2 is past the frontier.
        let snap: Vec<Vec<Const>> =
            rel.rows_iter_at(2, 1).map(|r| r.to_vec()).collect();
        assert_eq!(snap, vec![vec![c(0)], vec![c(1)]]);
        // A reader pinned at epoch 2 (frontier 2) no longer sees row 0.
        let snap: Vec<Vec<Const>> =
            rel.rows_iter_at(2, 2).map(|r| r.to_vec()).collect();
        assert_eq!(snap, vec![vec![c(1)]]);
        // A reader at the current epoch (frontier 3) sees the re-insert.
        let snap: Vec<Vec<Const>> =
            rel.rows_iter_at(3, 3).map(|r| r.to_vec()).collect();
        assert_eq!(snap, vec![vec![c(1)], vec![c(0)]]);
        // A frontier beyond the store clamps.
        assert_eq!(rel.rows_iter_at(100, 3).count(), 2);
    }

    #[test]
    fn reclaim_drops_only_unpinnable_tags() {
        let mut rel = ColumnarRelation::new(1);
        for i in 0..4u32 {
            rel.insert(&[c(i)]);
        }
        rel.set_epoch(1);
        rel.tombstone(0);
        rel.set_epoch(2);
        rel.tombstone(1);
        rel.set_epoch(3);
        rel.tombstone(2);
        // Readers pinned at >= 1 remain: tags <= 1 are reclaimable.
        rel.reclaim_tombstones(1);
        // The epoch-1 death (row 0) lost its tag — dead at every epoch.
        assert!(!rel.visible_at(0, 0), "untagged dead row is dead everywhere");
        // Later deaths still resurrect for earlier pins.
        assert!(rel.visible_at(1, 1), "row 1 died in epoch 2");
        assert!(!rel.visible_at(1, 2));
        assert!(rel.visible_at(2, 2), "row 2 died in epoch 3");
        // Full reclamation: nothing resurrects any more.
        rel.reclaim_tombstones(3);
        assert!(!rel.visible_at(1, 1));
        assert!(!rel.visible_at(2, 2));
        assert!(rel.visible_at(3, 0), "live rows are visible at any epoch");
    }

    #[test]
    fn plain_relations_never_populate_the_epoch_table() {
        let mut rel = ColumnarRelation::new(1);
        rel.insert(&[c(7)]);
        rel.tombstone(0); // epoch mode off: no tag
        assert!(!rel.visible_at(0, 0), "dead without a tag is just dead");
        assert_eq!(rel.rows_iter_at(1, 0).count(), 0);
    }

    #[test]
    fn compact_renumbers_survivors_and_rebuilds_dedup() {
        let mut rel = ColumnarRelation::new(2);
        for i in 0..300u32 {
            rel.insert(&[c(i), c(i + 1)]);
        }
        for i in (0..300).step_by(3) {
            rel.tombstone(i);
        }
        let remap = rel.compact();
        assert_eq!(remap.len(), 300);
        assert_eq!(rel.num_rows(), 200);
        assert_eq!(rel.num_dead(), 0);
        let mut expect = 0u32;
        for (old, &new) in remap.iter().enumerate() {
            if old % 3 == 0 {
                assert_eq!(new, NO_ROW, "dead row {old} dropped");
            } else {
                assert_eq!(new, expect, "dense, order-preserving");
                expect += 1;
            }
        }
        for i in 0..300u32 {
            let present = i % 3 != 0;
            assert_eq!(rel.contains(&[c(i), c(i + 1)]), present, "{i}");
            if present {
                assert_eq!(rel.find_row(&[c(i), c(i + 1)]), remap[i as usize]);
            }
        }
        // Inserts keep working after the rebuild, at dense fresh ids.
        assert!(rel.insert(&[c(0), c(1)]));
        assert_eq!(rel.find_row(&[c(0), c(1)]), 200);
        assert!(!rel.insert(&[c(1), c(2)]), "survivor still deduped");
    }

    #[test]
    fn compact_clears_epoch_tags_but_keeps_the_epoch() {
        let mut rel = ColumnarRelation::new(1);
        rel.insert(&[c(0)]);
        rel.insert(&[c(1)]);
        rel.set_epoch(5);
        rel.tombstone(0);
        assert_eq!(rel.tomb_tags().len(), 1);
        let remap = rel.compact();
        assert_eq!(remap, vec![NO_ROW, 0]);
        assert_eq!(rel.tomb_tags().len(), 0);
        assert_eq!(rel.current_epoch(), 5);
        // New tombstones keep getting tagged with the preserved epoch.
        rel.tombstone(0);
        assert_eq!(rel.tomb_tags().get(&0), Some(&5));
    }

    #[test]
    fn from_persist_round_trips_contents_and_liveness() {
        let mut rel = ColumnarRelation::new(2);
        for i in 0..100u32 {
            rel.insert(&[c(i), c(i * 2)]);
        }
        rel.set_epoch(3);
        for i in (0..100).step_by(7) {
            rel.tombstone(i);
        }
        let rebuilt = ColumnarRelation::from_persist(
            rel.arity(),
            rel.data().to_vec(),
            rel.num_rows(),
            rel.dead_words().to_vec(),
            rel.num_dead(),
            rel.current_epoch(),
            rel.tomb_tags().clone(),
        );
        assert_eq!(rebuilt.num_rows(), rel.num_rows());
        assert_eq!(rebuilt.num_live(), rel.num_live());
        for i in 0..100u32 {
            let t = [c(i), c(i * 2)];
            assert_eq!(rebuilt.contains(&t), rel.contains(&t), "{i}");
            assert_eq!(rebuilt.find_row(&t), rel.find_row(&t), "{i}");
            assert_eq!(rebuilt.is_live(i as usize), rel.is_live(i as usize));
            assert_eq!(rebuilt.visible_at(i as usize, 2), rel.visible_at(i as usize, 2));
        }
    }

    #[test]
    fn index_reset_then_extend_matches_fresh() {
        let mut rel = ColumnarRelation::new(2);
        for i in 0..100u32 {
            rel.insert(&[c(i % 5), c(i)]);
        }
        let mut idx = IncrementalIndex::new(0, vec![0]);
        idx.extend(&rel);
        idx.reset();
        assert_eq!(idx.watermark(), 0);
        idx.extend(&rel);
        let mut fresh = IncrementalIndex::new(0, vec![0]);
        fresh.extend(&rel);
        for k in 0..5u32 {
            let collect = |ix: &IncrementalIndex| {
                let mut rows = Vec::new();
                let mut r = ix.probe(&rel, &[c(k)]);
                while r != NO_ROW {
                    rows.push(r);
                    r = ix.next_row(r);
                }
                rows
            };
            assert_eq!(collect(&idx), collect(&fresh), "key {k}");
        }
    }

    #[test]
    fn empty_mask_chains_every_row() {
        let mut rel = ColumnarRelation::new(1);
        for i in 0..20u32 {
            rel.insert(&[c(i)]);
        }
        let mut idx = IncrementalIndex::new(0, vec![]);
        idx.extend(&rel);
        let mut n = 0;
        let mut r = idx.probe(&rel, &[]);
        while r != NO_ROW {
            n += 1;
            r = idx.next_row(r);
        }
        assert_eq!(n, 20);
    }
}
